"""Shim for environments without the `wheel` package (offline installs).

`pip install -e . --no-build-isolation` needs `wheel` for PEP 660
editable installs; this shim lets `python setup.py develop` and legacy
`pip install -e .` work everywhere.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
