"""Memory clusters: the shared, software-connected SRAM pools of Fusion-3D.

Each cluster holds multiple SRAM arrays whose connections to the computing
modules are software-configurable, enabling a ping-pong scheme: while one
array is being filled by stage *k*, its twin is drained by stage *k+1*.
The paper's prototype has two clusters; the scaled-up chip has five.
"""

from __future__ import annotations

from dataclasses import dataclass

from .sram import SramBankSpec, BankedSram
from .technology import Technology, TECH_28NM


@dataclass(frozen=True)
class MemoryClusterSpec:
    """Static configuration of one memory cluster."""

    #: Number of independently connectable SRAM arrays in the cluster.
    n_arrays: int = 4
    #: Banks inside each array (the unit the hash tiling maps onto).
    banks_per_array: int = 8
    #: Capacity of each bank.
    bank_kb: float = 4.0

    @property
    def total_kb(self) -> float:
        return self.n_arrays * self.banks_per_array * self.bank_kb


class MemoryCluster:
    """One memory cluster plus its ping-pong bookkeeping.

    The cluster does not store payload data (the functional NeRF lives in
    NumPy); it accounts capacity, area, leakage, and whether a
    producer/consumer pair can run concurrently on complementary arrays.
    """

    def __init__(self, spec: MemoryClusterSpec, tech: Technology = TECH_28NM):
        self.spec = spec
        self.tech = tech
        bank = SramBankSpec(size_kb=spec.bank_kb)
        self.arrays = [
            BankedSram(spec.banks_per_array, bank, tech) for _ in range(spec.n_arrays)
        ]
        self._owner = [None] * spec.n_arrays

    @property
    def total_kb(self) -> float:
        return self.spec.total_kb

    def area_mm2(self) -> float:
        return sum(array.area_mm2() for array in self.arrays)

    def leakage_mw(self) -> float:
        return sum(array.leakage_mw() for array in self.arrays)

    def claim(self, array_idx: int, owner: str) -> BankedSram:
        """Connect an array to a computing module (software crossbar)."""
        if not 0 <= array_idx < self.spec.n_arrays:
            raise IndexError(f"array index {array_idx} out of range")
        current = self._owner[array_idx]
        if current is not None and current != owner:
            raise RuntimeError(
                f"array {array_idx} already connected to {current!r}"
            )
        self._owner[array_idx] = owner
        return self.arrays[array_idx]

    def release(self, array_idx: int) -> None:
        self._owner[array_idx] = None

    def owners(self) -> list:
        return list(self._owner)

    def ping_pong_pair(self, producer: str, consumer: str) -> tuple:
        """Claim two arrays as a ping-pong pair; returns their indices.

        Raises ``RuntimeError`` when fewer than two arrays are free, which
        is exactly the condition under which the pipeline must stall.
        """
        free = [i for i, owner in enumerate(self._owner) if owner is None]
        if len(free) < 2:
            raise RuntimeError("not enough free arrays for a ping-pong pair")
        ping, pong = free[0], free[1]
        self.claim(ping, producer)
        self.claim(pong, consumer)
        return ping, pong

    def swap(self, ping: int, pong: int) -> None:
        """Swap the roles of a ping-pong pair at a stage boundary."""
        self._owner[ping], self._owner[pong] = self._owner[pong], self._owner[ping]
