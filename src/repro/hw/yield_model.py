"""Die yield and fabrication cost model.

Sec. II-D motivates the multi-chip approach with a yield argument drawn
from the Chiplet Actuary cost model (Feng & Ma, DAC'22): scaling RT-NeRF
up drops yield from 99% to 72%, roughly doubling cost per unit area.  We
implement the classic negative-binomial yield model and a per-good-die
cost comparison between one big chip and N small chips on a board.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ProcessDefects:
    """Defect statistics of the target process."""

    #: Defect density, defects per mm^2.  Chosen so the paper's anchor
    #: reproduces: a 4x-scaled RT-NeRF die (75.4 mm^2) yields 72%.
    density_per_mm2: float = 0.0046
    #: Clustering parameter of the negative-binomial model.
    clustering_alpha: float = 3.0
    #: Wafer diameter in mm (300 mm wafers).
    wafer_diameter_mm: float = 300.0
    #: Processed-wafer cost in arbitrary cost units.
    wafer_cost: float = 4000.0


def die_yield(area_mm2: float, process: ProcessDefects = ProcessDefects()) -> float:
    """Negative-binomial die yield: ``(1 + A*D0/alpha)^-alpha``."""
    if area_mm2 <= 0:
        raise ValueError("die area must be positive")
    a = process.clustering_alpha
    return (1.0 + area_mm2 * process.density_per_mm2 / a) ** (-a)


def dies_per_wafer(area_mm2: float, process: ProcessDefects = ProcessDefects()) -> int:
    """Gross dies per wafer with the standard edge-loss correction."""
    if area_mm2 <= 0:
        raise ValueError("die area must be positive")
    d = process.wafer_diameter_mm
    wafer_area = math.pi * (d / 2.0) ** 2
    edge_loss = math.pi * d / math.sqrt(2.0 * area_mm2)
    return max(0, int(wafer_area / area_mm2 - edge_loss))


def cost_per_good_die(area_mm2: float, process: ProcessDefects = ProcessDefects()) -> float:
    """Wafer cost amortized over good dies."""
    gross = dies_per_wafer(area_mm2, process)
    if gross == 0:
        raise ValueError("die too large for the wafer")
    good = gross * die_yield(area_mm2, process)
    return process.wafer_cost / good


def cost_per_good_mm2(area_mm2: float, process: ProcessDefects = ProcessDefects()) -> float:
    """Cost per good silicon mm^2 — the paper's doubling metric."""
    return cost_per_good_die(area_mm2, process) / area_mm2


@dataclass(frozen=True)
class ScalingComparison:
    """One big die versus N small dies with the same total area."""

    monolithic_area_mm2: float
    n_chips: int
    monolithic_yield: float
    per_chip_yield: float
    monolithic_cost: float
    multi_chip_cost: float
    packaging_cost: float

    @property
    def cost_saving(self) -> float:
        total_multi = self.multi_chip_cost + self.packaging_cost
        return 1.0 - total_multi / self.monolithic_cost


def compare_scaling(
    total_area_mm2: float,
    n_chips: int,
    process: ProcessDefects = ProcessDefects(),
    packaging_cost_per_chip: float = 0.5,
) -> ScalingComparison:
    """Compare building one ``total_area`` die against ``n_chips`` smaller ones."""
    if n_chips < 1:
        raise ValueError("need at least one chip")
    small_area = total_area_mm2 / n_chips
    return ScalingComparison(
        monolithic_area_mm2=total_area_mm2,
        n_chips=n_chips,
        monolithic_yield=die_yield(total_area_mm2, process),
        per_chip_yield=die_yield(small_area, process),
        monolithic_cost=cost_per_good_die(total_area_mm2, process),
        multi_chip_cost=n_chips * cost_per_good_die(small_area, process),
        packaging_cost=n_chips * packaging_cost_per_chip,
    )
