"""Energy composition model.

The cycle simulator (:mod:`repro.sim`) emits operation counts per module;
this module folds them with the 28 nm per-op energies into joules, adds
clock/control overhead and SRAM leakage, and produces the power numbers
reported in Figs. 9-10 and Tables III-V.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from .technology import Technology, TECH_28NM


@dataclass
class OpCounts:
    """Dynamic operation counts accumulated while simulating a workload."""

    int8_mac: float = 0.0
    int16_mac: float = 0.0
    fp16_mac: float = 0.0
    fp32_mac: float = 0.0
    fiem_mul: float = 0.0
    int32_add: float = 0.0
    int32_mul: float = 0.0
    int32_div: float = 0.0
    fp32_add: float = 0.0
    fp32_div: float = 0.0
    exp_lookup: float = 0.0
    sram_read_bytes: float = 0.0
    sram_write_bytes: float = 0.0
    noc_bytes: float = 0.0

    def __iadd__(self, other: "OpCounts") -> "OpCounts":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def __add__(self, other: "OpCounts") -> "OpCounts":
        result = OpCounts()
        result += self
        result += other
        return result

    def scaled(self, factor: float) -> "OpCounts":
        result = OpCounts()
        for f in fields(self):
            setattr(result, f.name, getattr(self, f.name) * factor)
        return result


@dataclass
class EnergyBreakdown:
    """Joules attributed to each physical resource."""

    compute_j: float = 0.0
    sram_j: float = 0.0
    noc_j: float = 0.0
    clock_ctrl_j: float = 0.0
    leakage_j: float = 0.0

    @property
    def total_j(self) -> float:
        return (
            self.compute_j
            + self.sram_j
            + self.noc_j
            + self.clock_ctrl_j
            + self.leakage_j
        )

    def as_dict(self) -> dict:
        return {
            "compute_j": self.compute_j,
            "sram_j": self.sram_j,
            "noc_j": self.noc_j,
            "clock_ctrl_j": self.clock_ctrl_j,
            "leakage_j": self.leakage_j,
            "total_j": self.total_j,
        }


class EnergyModel:
    """Fold :class:`OpCounts` into energy using a technology instance."""

    #: pJ for one piecewise exponential/sigmoid lookup-table evaluation.
    EXP_LOOKUP_PJ = 0.6
    #: pJ per byte moved over the NoC.
    NOC_PJ_PER_BYTE = 0.08

    def __init__(self, tech: Technology = TECH_28NM):
        self.tech = tech

    def dynamic_energy(self, ops: OpCounts) -> EnergyBreakdown:
        """Dynamic energy only; leakage is added by :meth:`energy`."""
        t = self.tech.ops
        compute_pj = (
            ops.int8_mac * t.mac_pj("int8")
            + ops.int16_mac * t.mac_pj("int16")
            + ops.fp16_mac * t.mac_pj("fp16")
            + ops.fp32_mac * t.mac_pj("fp32")
            + ops.fiem_mul * self._fiem_pj()
            + ops.int32_add * t.int32_add_pj
            + ops.int32_mul * t.int32_mul_pj
            + ops.int32_div * t.int32_div_pj
            + ops.fp32_add * t.fp32_add_pj
            + ops.fp32_div * t.fp32_div_pj
            + ops.exp_lookup * self.EXP_LOOKUP_PJ
        )
        sram_pj = (
            ops.sram_read_bytes * self.tech.sram.read_pj_per_byte
            + ops.sram_write_bytes * self.tech.sram.write_pj_per_byte
        )
        noc_pj = ops.noc_bytes * self.NOC_PJ_PER_BYTE
        clock_pj = self.tech.logic.clock_overhead * (compute_pj + noc_pj)
        return EnergyBreakdown(
            compute_j=compute_pj * 1e-12,
            sram_j=sram_pj * 1e-12,
            noc_j=noc_pj * 1e-12,
            clock_ctrl_j=clock_pj * 1e-12,
        )

    def energy(
        self,
        ops: OpCounts,
        runtime_s: float,
        sram_kb: float,
        logic_mgates: float,
    ) -> EnergyBreakdown:
        """Total energy for a workload that ran for ``runtime_s`` seconds."""
        breakdown = self.dynamic_energy(ops)
        leakage_mw = (
            sram_kb * self.tech.sram.leakage_mw_per_kb
            + logic_mgates * self.tech.logic.leakage_mw_per_mgate
        )
        breakdown.leakage_j = leakage_mw * 1e-3 * runtime_s
        return breakdown

    def average_power_w(
        self,
        ops: OpCounts,
        runtime_s: float,
        sram_kb: float,
        logic_mgates: float,
    ) -> float:
        if runtime_s <= 0:
            raise ValueError("runtime must be positive")
        return self.energy(ops, runtime_s, sram_kb, logic_mgates).total_j / runtime_s

    def _fiem_pj(self) -> float:
        # Import here to avoid a cycle at module import time.
        from .arith import fiem_cost

        return fiem_cost(self.tech).energy_pj
