"""Hardware substrate models: technology, arithmetic, memory, links.

These modules play the role the 28 nm silicon characterization plays in
the paper: they supply the per-operation energies, SRAM macro costs, and
link budgets that the cycle simulator composes into chip-level results.
"""

from .technology import (
    Technology,
    TECH_28NM,
    OperationEnergy,
    SramTechnology,
    LogicTechnology,
    technology_at_voltage,
)
from .arith import (
    fiem_multiply,
    reference_multiply,
    fiem_cost,
    int2fp_fpmul_cost,
    fiem_savings,
    MultiplierCost,
)
from .sram import SramBankSpec, BankedSram, AccessStats
from .memory_cluster import MemoryCluster, MemoryClusterSpec
from .noc import Noc, NocSpec, crossbar_area_mm2, one_to_one_area_mm2
from .interconnect import (
    LinkSpec,
    USB_3_2_GEN1,
    PCB_CHIP_LINK,
    CHIPLET_LINK,
    LPDDR4_1866,
    required_bandwidth_gbps,
    fits_link,
)
from .energy import OpCounts, EnergyModel, EnergyBreakdown
from .area import AreaModel, ModuleArea, stage2_sharing_ablation
from .yield_model import (
    ProcessDefects,
    die_yield,
    dies_per_wafer,
    cost_per_good_die,
    cost_per_good_mm2,
    compare_scaling,
    ScalingComparison,
)

__all__ = [
    "Technology",
    "TECH_28NM",
    "OperationEnergy",
    "SramTechnology",
    "LogicTechnology",
    "technology_at_voltage",
    "fiem_multiply",
    "reference_multiply",
    "fiem_cost",
    "int2fp_fpmul_cost",
    "fiem_savings",
    "MultiplierCost",
    "SramBankSpec",
    "BankedSram",
    "AccessStats",
    "MemoryCluster",
    "MemoryClusterSpec",
    "Noc",
    "NocSpec",
    "crossbar_area_mm2",
    "one_to_one_area_mm2",
    "LinkSpec",
    "USB_3_2_GEN1",
    "PCB_CHIP_LINK",
    "CHIPLET_LINK",
    "LPDDR4_1866",
    "required_bandwidth_gbps",
    "fits_link",
    "OpCounts",
    "EnergyModel",
    "EnergyBreakdown",
    "AreaModel",
    "ModuleArea",
    "stage2_sharing_ablation",
    "ProcessDefects",
    "die_yield",
    "dies_per_wafer",
    "cost_per_good_die",
    "cost_per_good_mm2",
    "compare_scaling",
    "ScalingComparison",
]
