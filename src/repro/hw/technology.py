"""28 nm technology constants used to calibrate the Fusion-3D models.

The paper characterizes its cycle-accurate simulator with measurements from
a taped-out 28 nm prototype.  We cannot measure silicon, so this module
plays the role of that characterization: a single, documented set of
per-operation energies, SRAM macro parameters, and logic densities for a
commercial 28 nm CMOS process at the paper's operating point (0.95 V,
600 MHz).  The values sit at the aggressive end of published 28 nm
figures — consistent with the 10-TOPS/W-class efficiency Fusion-3D and
its ISSCC-generation peers (MetaVRain) report — and were globally tuned
once so that the *scaled single-chip configuration* lands near the
silicon-derived numbers the paper reports (2.5 nJ / 7.4 nJ per sampled
point, ~1.5 W at 600 MHz).  Nothing downstream hardcodes a result;
everything is composed from these constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class OperationEnergy:
    """Energy per arithmetic operation, in picojoules.

    The datapath mixes INT8/INT16 fixed point (sampling, interpolation
    weights) with FP16 (features, MLP activations and gradients); FP32 is
    used only in the renderer accumulator.
    """

    int8_add_pj: float = 0.015
    int8_mul_pj: float = 0.05
    int16_add_pj: float = 0.03
    int16_mul_pj: float = 0.11
    int32_add_pj: float = 0.1
    int32_mul_pj: float = 0.8
    int32_div_pj: float = 3.5
    fp16_add_pj: float = 0.05
    fp16_mul_pj: float = 0.14
    fp32_add_pj: float = 0.3
    fp32_mul_pj: float = 1.2
    fp32_div_pj: float = 6.0

    def mac_pj(self, kind: str) -> float:
        """Energy of one multiply-accumulate of the given kind.

        ``kind`` is one of ``"int8"``, ``"int16"``, ``"fp16"``, ``"fp32"``.
        """
        table = {
            "int8": self.int8_mul_pj + self.int8_add_pj,
            "int16": self.int16_mul_pj + self.int16_add_pj,
            "fp16": self.fp16_mul_pj + self.fp16_add_pj,
            "fp32": self.fp32_mul_pj + self.fp32_add_pj,
        }
        if kind not in table:
            raise ValueError(f"unknown MAC kind: {kind!r}")
        return table[kind]


@dataclass(frozen=True)
class SramTechnology:
    """28 nm 6T SRAM macro parameters.

    Densities include peripheral overhead of compiled macros (not raw
    bit-cell density).  Access energies are per byte at 0.95 V.
    """

    #: mm^2 per KB including periphery (~0.49 um^2/bit compiled macro).
    area_mm2_per_kb: float = 0.0040
    #: pJ per byte read from a small (<=64 KB) bank (wide-word access).
    read_pj_per_byte: float = 0.35
    #: pJ per byte written to a small bank.
    write_pj_per_byte: float = 0.45
    #: Leakage, mW per KB at 0.95 V / 25 C.
    leakage_mw_per_kb: float = 0.0045
    #: Random-access latency of one bank, in cycles at 600 MHz.
    access_cycles: int = 1


@dataclass(frozen=True)
class LogicTechnology:
    """28 nm standard-cell logic parameters."""

    #: Equivalent NAND2 gates per mm^2 (placement density ~70%).
    gates_per_mm2: float = 2.8e6
    #: Dynamic energy per gate toggle, pJ (average activity already folded).
    gate_toggle_pj: float = 0.0025
    #: Leakage, mW per million gates.
    leakage_mw_per_mgate: float = 0.55
    #: Clock-tree + control overhead as a fraction of datapath energy.
    clock_overhead: float = 0.15

    # Gate counts of common datapath blocks (NAND2-equivalents), used by
    # the area model.  Multiplier gates scale ~quadratically with width;
    # adders linearly.
    int8_mul_gates: int = 420
    int16_mul_gates: int = 1700
    int32_mul_gates: int = 6800
    fp16_mul_gates: int = 1600
    fp32_mul_gates: int = 7000
    fp16_add_gates: int = 1100
    fp32_add_gates: int = 2700
    int32_add_gates: int = 320
    int32_div_gates: int = 5200
    int2fp_gates: int = 900


@dataclass(frozen=True)
class Technology:
    """Bundle of all 28 nm technology models at the chip operating point."""

    node_nm: int = 28
    core_voltage_v: float = 0.95
    #: Nominal clock of both the prototype and the scaled-up chip.
    clock_hz: float = 600e6
    ops: OperationEnergy = field(default_factory=OperationEnergy)
    sram: SramTechnology = field(default_factory=SramTechnology)
    logic: LogicTechnology = field(default_factory=LogicTechnology)

    @property
    def cycle_s(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1.0 / self.clock_hz

    def frequency_at_voltage(self, voltage_v: float) -> float:
        """Estimated max clock (Hz) at a given supply voltage.

        Reproduces the shape of the measured voltage-frequency curve in
        Fig. 10(d): near-linear alpha-power scaling above threshold.  The
        curve is anchored at 600 MHz @ 0.95 V.
        """
        v_th = 0.42  # effective threshold of the 28 nm HVT corner
        if voltage_v <= v_th:
            return 0.0
        anchor = (self.core_voltage_v - v_th) ** 1.3 / self.core_voltage_v
        scale = (voltage_v - v_th) ** 1.3 / voltage_v
        return self.clock_hz * scale / anchor


#: Module-level default instance; most call sites never need another one.
TECH_28NM = Technology()


def technology_at_voltage(tech: Technology, voltage_v: float) -> Technology:
    """Derive a :class:`Technology` at another supply-voltage operating
    point (the knob behind the measured V-f curve of Fig. 10(d)).

    Clock follows the alpha-power law of :meth:`Technology.frequency_at_voltage`;
    dynamic energies scale with ``CV^2`` (quadratic in supply); leakage
    scales roughly linearly over the usable range.
    """
    from dataclasses import replace

    if voltage_v <= 0:
        raise ValueError("voltage must be positive")
    clock = tech.frequency_at_voltage(voltage_v)
    if clock <= 0.0:
        raise ValueError(f"{voltage_v} V is below the usable threshold")
    e = (voltage_v / tech.core_voltage_v) ** 2
    lv = voltage_v / tech.core_voltage_v
    ops = replace(
        tech.ops,
        **{
            name: getattr(tech.ops, name) * e
            for name in (
                "int8_add_pj", "int8_mul_pj", "int16_add_pj", "int16_mul_pj",
                "int32_add_pj", "int32_mul_pj", "int32_div_pj",
                "fp16_add_pj", "fp16_mul_pj",
                "fp32_add_pj", "fp32_mul_pj", "fp32_div_pj",
            )
        },
    )
    sram = replace(
        tech.sram,
        read_pj_per_byte=tech.sram.read_pj_per_byte * e,
        write_pj_per_byte=tech.sram.write_pj_per_byte * e,
        leakage_mw_per_kb=tech.sram.leakage_mw_per_kb * lv,
    )
    logic = replace(
        tech.logic,
        gate_toggle_pj=tech.logic.gate_toggle_pj * e,
        leakage_mw_per_mgate=tech.logic.leakage_mw_per_mgate * lv,
    )
    return replace(
        tech, core_voltage_v=voltage_v, clock_hz=clock, ops=ops, sram=sram,
        logic=logic,
    )
