"""Off-chip and chip-to-chip link models.

Three substrates matter to the paper:

* the **USB 3.2 Gen 1 port** (5 Gbps = 0.625 GB/s) that edge devices
  expose for a plug-in accelerator — the hard budget Fusion-3D lives in;
* the **8-layer PCB traces** connecting the four chips to the FPGA I/O
  module in the multi-chip prototype (characterized at 0.6 GB/s per link,
  2.4 GB/s aggregate intra-system);
* the **chiplet in-package links** of the Sec. VIII discussion, with far
  higher bandwidth and lower pJ/bit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkSpec:
    """One off-chip link."""

    name: str
    bandwidth_gbps: float  # GB/s usable payload bandwidth
    energy_pj_per_byte: float
    latency_ns: float

    def transfer_s(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` over the link (bandwidth + latency)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.latency_ns * 1e-9 + nbytes / (self.bandwidth_gbps * 1e9)

    def transfer_energy_j(self, nbytes: float) -> float:
        return nbytes * self.energy_pj_per_byte * 1e-12

    def sustainable_rate_gbps(self, duty_cycle: float = 1.0) -> float:
        if not 0.0 < duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be in (0, 1]")
        return self.bandwidth_gbps * duty_cycle


#: USB 3.2 Gen 1 (5 Gbps line rate = 0.625 GB/s), the host-side budget.
USB_3_2_GEN1 = LinkSpec(
    name="USB 3.2 Gen 1",
    bandwidth_gbps=0.625,
    energy_pj_per_byte=40.0,  # ~5 pJ/bit for a SuperSpeed PHY
    latency_ns=1500.0,
)

#: One PCB trace between a Fusion-3D chip and the FPGA I/O module.
PCB_CHIP_LINK = LinkSpec(
    name="PCB chip-to-chip",
    bandwidth_gbps=0.6,
    energy_pj_per_byte=16.0,  # ~2 pJ/bit PCB SerDes (Poulton et al.)
    latency_ns=25.0,
)

#: An in-package chiplet link (InFO-class; Lin et al., Hot Chips'16).
CHIPLET_LINK = LinkSpec(
    name="chiplet in-package",
    bandwidth_gbps=89.6,
    energy_pj_per_byte=0.5,  # 0.062 pJ/bit
    latency_ns=4.0,
)

#: LPDDR4-1866: what Instant-3D assumed for off-chip DRAM.
LPDDR4_1866 = LinkSpec(
    name="LPDDR4-1866",
    bandwidth_gbps=59.7,
    energy_pj_per_byte=32.0,  # ~4 pJ/bit DRAM interface
    latency_ns=80.0,
)


def degrade(link: LinkSpec, bandwidth_factor: float) -> LinkSpec:
    """A faulted copy of ``link`` at a fraction of its bandwidth.

    Models a marginal PCB trace or SerDes lane that trained down to a
    lower rate: payload bandwidth scales by ``bandwidth_factor`` in
    (0, 1]; per-byte energy and latency are unchanged.  Used by the
    fault-injection layer (:class:`repro.robustness.ChipletFaultConfig`);
    a factor of 1.0 returns the link itself.
    """
    if not 0.0 < bandwidth_factor <= 1.0:
        raise ValueError("bandwidth_factor must be in (0, 1]")
    if bandwidth_factor == 1.0:
        return link
    return LinkSpec(
        name=f"{link.name} (degraded x{bandwidth_factor:g})",
        bandwidth_gbps=link.bandwidth_gbps * bandwidth_factor,
        energy_pj_per_byte=link.energy_pj_per_byte,
        latency_ns=link.latency_ns,
    )


def required_bandwidth_gbps(nbytes: float, deadline_s: float) -> float:
    """Bandwidth needed to move ``nbytes`` within ``deadline_s``."""
    if deadline_s <= 0:
        raise ValueError("deadline must be positive")
    return nbytes / deadline_s / 1e9


def fits_link(nbytes: float, deadline_s: float, link: LinkSpec) -> bool:
    """Whether a transfer meets a deadline over the given link."""
    return required_bandwidth_gbps(nbytes, deadline_s) <= link.bandwidth_gbps
