"""Arithmetic unit models, including the FP-INT Efficient Multiplier (FIEM).

Technique T2-2 of the paper replaces the traditional INT2FP-conversion +
full-FP-multiplier datapath (used for the mixed integer/floating-point
products in Stage II, e.g. interpolation-weight x feature) with a unit
that multiplies the integer directly against the float's fraction and then
folds in the exponent.  The paper reports a 55% area and 65% power saving
(Fig. 6(d)).

This module provides both a *functional* model (bit-accurate mantissa
arithmetic, so tests can prove FIEM returns exactly the same product as
convert-then-multiply) and a *cost* model (gate counts / energy composed
from :mod:`repro.hw.technology`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .technology import Technology, TECH_28NM

# IEEE half-precision layout used by the functional model.
_FP16_MANT_BITS = 10
_FP16_EXP_BIAS = 15


def _decompose_fp16(values: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split fp16 values into (sign, exponent, mantissa-with-hidden-bit)."""
    bits = values.astype(np.float16).view(np.uint16)
    sign = (bits >> 15) & 0x1
    exp = ((bits >> 10) & 0x1F).astype(np.int32)
    frac = (bits & 0x3FF).astype(np.int64)
    normal = exp > 0
    mant = np.where(normal, frac | (1 << _FP16_MANT_BITS), frac)
    eff_exp = np.where(normal, exp, 1)
    return sign, eff_exp, mant


def fiem_multiply(fp_values: np.ndarray, int_values: np.ndarray) -> np.ndarray:
    """Multiply fp16 values by small integers the way the FIEM datapath does.

    The fraction (with hidden bit) is multiplied by the integer in a plain
    integer multiplier; the exponent passes through untouched and is only
    adjusted during the final normalization.  The result is returned as
    float32 (the unit feeds an FP accumulator).

    This is exact: an fp16 mantissa times an integer fits comfortably in
    64-bit intermediate precision, so the product equals
    ``float(fp) * int`` up to fp32 rounding, which the tests assert.
    """
    fp_values = np.asarray(fp_values, dtype=np.float16)
    int_values = np.asarray(int_values)
    if not np.issubdtype(int_values.dtype, np.integer):
        raise TypeError("FIEM integer operand must have an integer dtype")
    sign, exp, mant = _decompose_fp16(fp_values)
    signed_int = int_values.astype(np.int64)
    product = mant * np.abs(signed_int)
    # value = (-1)^sign * product * 2^(exp - bias - mant_bits)
    scale = np.exp2((exp - _FP16_EXP_BIAS - _FP16_MANT_BITS).astype(np.float64))
    result = product.astype(np.float64) * scale
    result = np.where(sign == 1, -result, result)
    result = np.where(signed_int < 0, -result, result)
    return result.astype(np.float32)


def reference_multiply(fp_values: np.ndarray, int_values: np.ndarray) -> np.ndarray:
    """Baseline datapath: convert the integer to float, then FP-multiply."""
    fp_values = np.asarray(fp_values, dtype=np.float16)
    converted = np.asarray(int_values).astype(np.float32)
    return fp_values.astype(np.float32) * converted


@dataclass(frozen=True)
class MultiplierCost:
    """Area (NAND2-equivalent gates) and energy (pJ/op) of one multiplier."""

    gates: float
    energy_pj: float

    def area_mm2(self, tech: Technology = TECH_28NM) -> float:
        return self.gates / tech.logic.gates_per_mm2


def int2fp_fpmul_cost(tech: Technology = TECH_28NM) -> MultiplierCost:
    """Cost of the traditional INT2FP converter followed by a full FPMUL."""
    gates = tech.logic.int2fp_gates + tech.logic.fp16_mul_gates
    # The conversion's priority encoder + shifter toggles about as much
    # logic as the multiplier array itself, then the FP multiplier runs at
    # full mantissa x mantissa width.
    energy = 1.15 * tech.ops.fp16_mul_pj + tech.ops.fp16_mul_pj
    return MultiplierCost(gates=gates, energy_pj=energy)


def fiem_cost(tech: Technology = TECH_28NM) -> MultiplierCost:
    """Cost of the FP-INT Efficient Multiplier.

    The unit is an 11x8 integer multiplier on the fraction (cheaper than
    the FP multiplier's 11x11 array plus rounding), an exponent adder, and
    a leading-zero normalizer; there is no conversion stage at all.
    """
    fraction_mul_gates = 760  # 11b x 8b array multiplier
    exponent_add_gates = 110
    normalizer_gates = 255
    gates = fraction_mul_gates + exponent_add_gates + normalizer_gates
    # Only the narrow integer array toggles; no conversion, no full
    # mantissa product, no rounding logic.
    energy = 0.40 * tech.ops.fp16_mul_pj + 0.05
    return MultiplierCost(gates=gates, energy_pj=energy)


def fiem_savings(tech: Technology = TECH_28NM) -> dict:
    """Area and power savings of FIEM vs INT2FP+FPMUL (paper: 55% / 65%)."""
    base = int2fp_fpmul_cost(tech)
    fiem = fiem_cost(tech)
    return {
        "baseline_gates": base.gates,
        "fiem_gates": fiem.gates,
        "area_saving": 1.0 - fiem.gates / base.gates,
        "baseline_energy_pj": base.energy_pj,
        "fiem_energy_pj": fiem.energy_pj,
        "power_saving": 1.0 - fiem.energy_pj / base.energy_pj,
    }
