"""On-chip network model connecting Fusion-3D's modules.

The NoC links the sampling, feature-interpolation, and post-processing
modules to the memory clusters and the interface/controller.  We model it
as a small crossbar with per-hop energy and bandwidth limits; Sec. V-B's
ablation (Fig. 12(b)) compares this crossbar against the one-to-one wiring
that the two-level hash tiling makes sufficient.
"""

from __future__ import annotations

from dataclasses import dataclass

from .technology import Technology, TECH_28NM


@dataclass(frozen=True)
class NocSpec:
    """Static NoC parameters."""

    n_ports: int = 8
    #: Link width in bytes per cycle per port.
    link_bytes_per_cycle: int = 16
    #: Energy to move one byte across the crossbar, pJ.
    energy_pj_per_byte: float = 0.08
    #: Router/arbitration latency, cycles.
    hop_cycles: int = 1


class Noc:
    """Bandwidth/energy accounting for on-chip transfers."""

    def __init__(self, spec: NocSpec, tech: Technology = TECH_28NM):
        self.spec = spec
        self.tech = tech

    def transfer_cycles(self, nbytes: int) -> int:
        """Cycles to move ``nbytes`` over one port, including the hop."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0
        beats = -(-nbytes // self.spec.link_bytes_per_cycle)
        return beats + self.spec.hop_cycles

    def transfer_energy_pj(self, nbytes: int) -> float:
        return nbytes * self.spec.energy_pj_per_byte

    def peak_bandwidth_gbps(self) -> float:
        """Aggregate bandwidth across all ports, GB/s."""
        per_port = self.spec.link_bytes_per_cycle * self.tech.clock_hz
        return self.spec.n_ports * per_port / 1e9


def crossbar_area_mm2(n_ports: int, width_bits: int, tech: Technology = TECH_28NM) -> float:
    """Area of a full crossbar memory-access unit (the untiled baseline).

    A crossbar needs an ``n x n`` grid of ``width_bits``-wide muxes plus
    per-output arbitration; its area grows quadratically with port count.
    """
    mux_gates = n_ports * n_ports * width_bits * 3.5
    arb_gates = n_ports * 220
    return (mux_gates + arb_gates) / tech.logic.gates_per_mm2


def one_to_one_area_mm2(n_ports: int, width_bits: int, tech: Technology = TECH_28NM) -> float:
    """Area of the direct one-to-one connection enabled by hash tiling.

    With conflict-free bank mapping (Sec. V-B) every interpolation lane
    talks to exactly one bank, so only pipeline registers remain.
    """
    register_gates = n_ports * width_bits * 1.2
    return register_gates / tech.logic.gates_per_mm2
