"""Area composition model.

Composes module areas from SRAM macros plus standard-cell gate counts, and
reports the chip-level breakdown of Fig. 10(c).  Also quantifies the
Stage II sharing ablation (Sec. IV-B3: 87.4% of Stage II area directly
shared between inference and training, 12.6% reused via reconfiguration).
"""

from __future__ import annotations

from dataclasses import dataclass

from .technology import Technology, TECH_28NM


@dataclass(frozen=True)
class ModuleArea:
    """Area of one chip module, split into logic and SRAM."""

    name: str
    logic_mm2: float
    sram_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.logic_mm2 + self.sram_mm2


class AreaModel:
    """Compose chip area from gate counts and SRAM capacities."""

    def __init__(self, tech: Technology = TECH_28NM):
        self.tech = tech

    def logic_area_mm2(self, gates: float) -> float:
        return gates / self.tech.logic.gates_per_mm2

    def sram_area_mm2(self, kb: float) -> float:
        return kb * self.tech.sram.area_mm2_per_kb

    def module(self, name: str, gates: float, sram_kb: float) -> ModuleArea:
        return ModuleArea(
            name=name,
            logic_mm2=self.logic_area_mm2(gates),
            sram_mm2=self.sram_area_mm2(sram_kb),
        )

    @staticmethod
    def chip_total_mm2(modules: list, floorplan_overhead: float = 0.12) -> float:
        """Total die area with routing/floorplan whitespace overhead."""
        raw = sum(module.total_mm2 for module in modules)
        return raw * (1.0 + floorplan_overhead)

    @staticmethod
    def breakdown(modules: list) -> dict:
        """Fractional area per module (Fig. 10(c) style)."""
        total = sum(module.total_mm2 for module in modules)
        if total <= 0:
            raise ValueError("modules have no area")
        return {module.name: module.total_mm2 / total for module in modules}


def stage2_sharing_ablation(tech: Technology = TECH_28NM) -> dict:
    """Stage II area sharing between inference and training (Sec. IV-B3).

    Directly shared: vertex-coordinate generation, feature-index (hash)
    computation, and interpolation-weight units, plus the feature SRAM.
    Reused via reconfiguration: the interpolation array that flips between
    a MAC tree (forward) and a vector-multiply/scatter unit (backward).
    A training-only residue (gradient scaling glue) is what a non-shared
    design would have to duplicate wholesale.
    """
    from .arith import fiem_cost

    area = AreaModel(tech)
    fiem_mm2 = fiem_cost(tech).area_mm2(tech)
    # Logic-area accounting per interpolation core, 8 vertex lanes each
    # (the feature SRAM is excluded: it belongs to the memory clusters).
    coord_gen = area.logic_area_mm2(8 * 800)  # corner offsets + clamping
    hash_unit = area.logic_area_mm2(8 * (2 * 6800 + 500))  # muls + xor/mod
    weight_unit = area.logic_area_mm2(26000)  # fractional weight products
    # The reconfigurable array: 8 FIEMs, a 7-node adder tree that reverses
    # into a scatter network, and the mode-switch muxing.
    interp_array = 8 * fiem_mm2 + area.logic_area_mm2(7 * 1100 + 4000)
    shared = coord_gen + hash_unit + weight_unit
    reconfigured = interp_array
    total = shared + reconfigured
    return {
        "shared_mm2": shared,
        "reconfigured_mm2": reconfigured,
        "shared_fraction": shared / total,
        "reconfigured_fraction": reconfigured / total,
    }
