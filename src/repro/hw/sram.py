"""SRAM bank and array models.

Fusion-3D keeps the entire hash-encoded feature model on chip (2 x 5 x
64 KB per the paper's final configuration), organized so that the
two-level hash tiling of Sec. V-B can issue the eight vertex fetches of a
trilinear interpolation without bank conflicts.  This module models the
banks themselves: capacity, per-access cost, and conflict accounting when
several requests target one bank in the same cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .technology import Technology, TECH_28NM


@dataclass(frozen=True)
class SramBankSpec:
    """Static parameters of one SRAM bank."""

    size_kb: float
    word_bytes: int = 4

    def area_mm2(self, tech: Technology = TECH_28NM) -> float:
        return self.size_kb * tech.sram.area_mm2_per_kb

    def leakage_mw(self, tech: Technology = TECH_28NM) -> float:
        return self.size_kb * tech.sram.leakage_mw_per_kb

    def read_energy_pj(self, nbytes: int, tech: Technology = TECH_28NM) -> float:
        return nbytes * tech.sram.read_pj_per_byte

    def write_energy_pj(self, nbytes: int, tech: Technology = TECH_28NM) -> float:
        return nbytes * tech.sram.write_pj_per_byte


@dataclass
class AccessStats:
    """Aggregate outcome of replaying accesses against a banked array."""

    requests: int = 0
    cycles: int = 0
    conflicts: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    energy_pj: float = 0.0
    #: Per-group serialized cycle counts; used for latency-variance plots.
    group_cycles: list = field(default_factory=list)

    @property
    def mean_cycles_per_group(self) -> float:
        if not self.group_cycles:
            return 0.0
        return float(np.mean(self.group_cycles))

    @property
    def cycle_variance(self) -> float:
        if not self.group_cycles:
            return 0.0
        return float(np.var(self.group_cycles))


class BankedSram:
    """A group of single-ported SRAM banks accessed in lockstep.

    The unit of work is an *access group*: a set of simultaneous requests
    (e.g. the 8 vertex fetches of one sampled point).  Requests that map to
    distinct banks complete in one cycle; requests that collide on a bank
    serialize, so a group costs ``max(requests per bank)`` cycles.  That is
    exactly the 1-to-8-cycle variability Sec. V-B describes for the
    untiled baseline.
    """

    def __init__(self, n_banks: int, bank: SramBankSpec, tech: Technology = TECH_28NM):
        if n_banks <= 0:
            raise ValueError("n_banks must be positive")
        self.n_banks = n_banks
        self.bank = bank
        self.tech = tech

    @property
    def total_kb(self) -> float:
        return self.n_banks * self.bank.size_kb

    def area_mm2(self) -> float:
        return self.n_banks * self.bank.area_mm2(self.tech)

    def leakage_mw(self) -> float:
        return self.n_banks * self.bank.leakage_mw(self.tech)

    def replay_groups(
        self,
        bank_ids: np.ndarray,
        bytes_per_access: int,
        write: bool = False,
    ) -> AccessStats:
        """Replay access groups and account cycles, conflicts and energy.

        Parameters
        ----------
        bank_ids:
            Integer array of shape ``(n_groups, accesses_per_group)``; each
            entry is the bank targeted by one request.
        bytes_per_access:
            Payload of each request.
        write:
            Whether the accesses are writes (affects energy only; writes
            serialize exactly like reads on a single-ported bank).
        """
        bank_ids = np.asarray(bank_ids)
        if bank_ids.ndim != 2:
            raise ValueError("bank_ids must be (n_groups, accesses_per_group)")
        if bank_ids.size and (bank_ids.min() < 0 or bank_ids.max() >= self.n_banks):
            raise ValueError("bank id out of range")
        stats = AccessStats()
        n_groups, per_group = bank_ids.shape
        stats.requests = int(bank_ids.size)
        if n_groups == 0:
            return stats
        # Vectorized per-group max bank load: count occurrences of each
        # bank within each row.
        counts = np.zeros((n_groups, self.n_banks), dtype=np.int32)
        rows = np.repeat(np.arange(n_groups), per_group)
        np.add.at(counts, (rows, bank_ids.ravel()), 1)
        group_cycles = counts.max(axis=1)
        stats.group_cycles = group_cycles.tolist()
        stats.cycles = int(group_cycles.sum())
        stats.conflicts = int((group_cycles - 1).sum())
        nbytes = stats.requests * bytes_per_access
        if write:
            stats.bytes_written = nbytes
            stats.energy_pj = self.bank.write_energy_pj(nbytes, self.tech)
        else:
            stats.bytes_read = nbytes
            stats.energy_pj = self.bank.read_energy_pj(nbytes, self.tech)
        return stats
