"""Fusion-3D reproduction: end-to-end NeRF acceleration in simulation.

A full-system reproduction of *Fusion-3D: Integrated Acceleration for
Instant 3D Reconstruction and Real-Time Rendering* (MICRO 2024):

* :mod:`repro.nerf` — the NeRF algorithms (Instant-NGP in pure NumPy with
  hand-written gradients, MoE decomposition, quantized training);
* :mod:`repro.datasets` — procedural stand-ins for NeRF-Synthetic and
  NeRF-360;
* :mod:`repro.hw` — 28 nm technology, FIEM arithmetic, SRAM/NoC/link and
  area/energy/yield models;
* :mod:`repro.sim` — the cycle-level chip and multi-chip simulators;
* :mod:`repro.baselines` — published-spec models of the compared GPUs and
  accelerators;
* :mod:`repro.core` — the :class:`~repro.core.Fusion3D` facade, bandwidth
  accounting, and reporting helpers;
* :mod:`repro.experiments` — one runner per paper table/figure;
* :mod:`repro.telemetry` — structured tracing (Chrome-trace export),
  metrics registry, and profiling hooks, disabled (zero-overhead) by
  default.
"""

import logging as _logging

# Library-friendly logging default: emit nothing unless the embedding
# application (or the CLI in experiments.runner) attaches a handler.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from .core import Fusion3D, Fusion3DConfig, ReconstructionResult, RenderingResult

__version__ = "1.0.0"

__all__ = [
    "Fusion3D",
    "Fusion3DConfig",
    "ReconstructionResult",
    "RenderingResult",
    "__version__",
]
