"""Kernel-level benchmarks: each hot-path kernel vs its frozen reference.

Every bench builds one deterministic workload, then times the reference
implementation (:mod:`repro.perf.reference`) and the optimized library
code back to back on identical inputs.  Input equality *is* checked in
the test suite, not here — the bench trusts the equivalence tests and
only measures.

``KERNEL_BENCHES`` maps bench name to a builder; builders take a
``smoke`` flag that shrinks the workload for CI.
"""

from __future__ import annotations

import numpy as np

from ..nerf.hash_encoding import HashEncoding, HashEncodingConfig
from ..nerf.model import InstantNGPModel, ModelConfig
from ..nerf.occupancy import OccupancyGrid
from ..nerf.precision import LowPrecisionField
from ..nerf.tensorf import PlaneLineEncoding
from ..nerf.volume_rendering import segment_sum
from ..sim.trace import distribute_samples_over_pairs
from . import reference
from .timing import time_pair

#: Bench RNG seed — fixed so recorded numbers are workload-reproducible.
SEED = 1234


def _bench_encoding(smoke: bool) -> tuple:
    """Shared hash-encoding workload: ``(encoding, reference, points)``."""
    config = HashEncodingConfig(
        n_levels=8,
        n_features=2,
        log2_table_size=14,
        base_resolution=16,
        finest_resolution=256,
    )
    opt = HashEncoding(config, rng=np.random.default_rng(SEED))
    ref = reference.ReferenceHashEncoding(config, rng=np.random.default_rng(SEED))
    rng = np.random.default_rng(SEED)
    points = rng.random((2_000 if smoke else 20_000, 3))
    return opt, ref, points


def bench_hash_forward(smoke: bool = False) -> dict:
    """Multi-level hash-encoding forward: fused batch vs per-level loop."""
    opt, ref, points = _bench_encoding(smoke)
    timing = time_pair(
        lambda: ref.forward(points),
        lambda: opt.forward(points),
        repeats=3 if smoke else 5,
    )
    return dict(timing.as_record(), renderer="ngp")


def bench_hash_backward(smoke: bool = False) -> dict:
    """Hash-table gradient scatter: flat bincount vs per-level add.at."""
    opt, ref, points = _bench_encoding(smoke)
    _, opt_trace = opt.forward(points)
    _, ref_trace = ref.forward(points)
    rng = np.random.default_rng(SEED + 1)
    grad = rng.normal(size=(points.shape[0], opt.config.output_dim))
    timing = time_pair(
        lambda: ref.backward(grad, ref_trace),
        lambda: opt.backward(grad, opt_trace),
        repeats=3 if smoke else 5,
    )
    return dict(timing.as_record(), renderer="ngp")


def bench_hash_fwd_bwd(smoke: bool = False) -> dict:
    """Full encoding round trip (forward + backward) — the headline
    kernel number the acceptance gate tracks."""
    opt, ref, points = _bench_encoding(smoke)
    rng = np.random.default_rng(SEED + 1)
    grad = rng.normal(size=(points.shape[0], opt.config.output_dim))

    def run(encoding):
        _, trace = encoding.forward(points)
        encoding.backward(grad, trace)

    timing = time_pair(
        lambda: run(ref), lambda: run(opt), repeats=3 if smoke else 5
    )
    return dict(timing.as_record(), renderer="ngp")


def _bench_plane_line(smoke: bool) -> tuple:
    """Shared TensoRF VM-encoding workload: ``(opt, ref, points)``."""
    resolution, n_components = 48, 8
    opt = PlaneLineEncoding(
        resolution, n_components, rng=np.random.default_rng(SEED)
    )
    ref = reference.ReferencePlaneLineEncoding(
        resolution, n_components, rng=np.random.default_rng(SEED)
    )
    # Smoke stays large enough that the optimized side is well clear of
    # timer jitter — the speedup ratio is what the 20% gate defends, and
    # a sub-millisecond denominator makes it noisy.
    rng = np.random.default_rng(SEED)
    points = rng.random((4_000 if smoke else 8_000, 3))
    return opt, ref, points


def bench_tensorf_forward(smoke: bool = False) -> dict:
    """TensoRF VM-encoding forward: fused gathers vs per-point loop."""
    opt, ref, points = _bench_plane_line(smoke)
    timing = time_pair(
        lambda: ref.forward(points),
        lambda: opt.forward(points),
        repeats=3 if smoke else 5,
    )
    return dict(timing.as_record(), renderer="tensorf")


def bench_tensorf_fwd_bwd(smoke: bool = False) -> dict:
    """TensoRF VM-encoding round trip (forward + backward) — the
    ``tensorf`` renderer's headline kernel number, the peer of
    ``hash_fwd_bwd`` on the ``ngp`` side."""
    opt, ref, points = _bench_plane_line(smoke)
    rng = np.random.default_rng(SEED + 1)
    grad = rng.normal(size=(points.shape[0], opt.output_dim))

    def run(encoding):
        _, trace = encoding.forward(points)
        encoding.backward(grad, trace)

    timing = time_pair(
        lambda: run(ref), lambda: run(opt), repeats=3 if smoke else 5
    )
    return dict(timing.as_record(), renderer="tensorf")


def bench_precision_field_fwd(smoke: bool = False) -> dict:
    """Field inference: float64 training forward vs the fp16/INT8
    snapshot (:class:`~repro.nerf.precision.LowPrecisionField`).

    The same sample batch through the same weights; the snapshot wins by
    gathering half-width tables, running float32 matmuls, and building
    no backward caches.  This is the kernel the ``precision_pareto``
    experiment and the ``render_frame_precision`` e2e bench rest on, so
    its ratio is what the CI bench gate defends at smoke scale.
    """
    config = ModelConfig(
        encoding=HashEncodingConfig(
            n_levels=8,
            n_features=2,
            log2_table_size=14,
            base_resolution=16,
            finest_resolution=256,
        ),
        hidden_width=64,
        geo_features=16,
    )
    model = InstantNGPModel(config, seed=SEED)
    lowp = LowPrecisionField(model, mode="fp16-int8")
    rng = np.random.default_rng(SEED)
    n = 2_000 if smoke else 20_000
    # float32 buffers, as the ray marcher hands both paths in the
    # rendering pipeline.
    points = rng.random((n, 3)).astype(np.float32)
    directions = rng.normal(size=(n, 3))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    directions = directions.astype(np.float32)
    timing = time_pair(
        lambda: model.forward(points, directions),
        lambda: lowp.forward(points, directions),
        repeats=3 if smoke else 5,
    )
    return dict(timing.as_record(), renderer="ngp", precision=lowp.precision)


def bench_scatter_add(smoke: bool = False) -> dict:
    """Duplicate-heavy segment sum: bincount columns vs ``np.add.at``."""
    rng = np.random.default_rng(SEED)
    n = 20_000 if smoke else 200_000
    n_rays = n // 16
    ray_idx = np.sort(rng.integers(0, n_rays, size=n))
    values = rng.normal(size=(n, 3))
    timing = time_pair(
        lambda: reference.scatter_add_reference(values, ray_idx, n_rays),
        lambda: segment_sum(values, ray_idx, n_rays),
        repeats=3 if smoke else 5,
    )
    return timing.as_record()


def bench_occupancy_init(smoke: bool = False) -> dict:
    """Analytic grid init: one batched draw vs per-round jitter loop."""

    def density_fn(p):
        return np.exp(-10.0 * ((p - 0.5) ** 2).sum(axis=-1))

    res = 16 if smoke else 48
    opt = OccupancyGrid(resolution=res)
    ref = OccupancyGrid(resolution=res)
    timing = time_pair(
        lambda: reference.set_from_function_reference(
            ref, density_fn, samples_per_cell=4, rng=np.random.default_rng(SEED)
        ),
        lambda: opt.set_from_function(
            density_fn, samples_per_cell=4, rng=np.random.default_rng(SEED)
        ),
        repeats=3 if smoke else 5,
    )
    return timing.as_record()


def bench_trace_pair_durations(smoke: bool = False) -> dict:
    """Trace span accounting: vectorized slices vs per-pair Python loop."""
    rng = np.random.default_rng(SEED)
    n_rays = 2_000 if smoke else 20_000
    pairs_per_ray = rng.integers(1, 4, size=n_rays)
    pair_ray_idx = np.repeat(np.arange(n_rays), pairs_per_ray)
    spans = rng.random(pair_ray_idx.shape[0])
    kept = rng.integers(0, 32, size=n_rays)
    timing = time_pair(
        lambda: reference.pair_durations_reference(
            pair_ray_idx, spans, kept, n_rays
        ),
        lambda: distribute_samples_over_pairs(pair_ray_idx, spans, kept, n_rays),
        repeats=3 if smoke else 5,
    )
    return timing.as_record()


#: name -> builder registry the bench driver iterates, in report order.
KERNEL_BENCHES = {
    "hash_forward": bench_hash_forward,
    "hash_backward": bench_hash_backward,
    "hash_fwd_bwd": bench_hash_fwd_bwd,
    "tensorf_forward": bench_tensorf_forward,
    "tensorf_fwd_bwd": bench_tensorf_fwd_bwd,
    "precision_field_fwd": bench_precision_field_fwd,
    "scatter_add": bench_scatter_add,
    "occupancy_init": bench_occupancy_init,
    "trace_pair_durations": bench_trace_pair_durations,
}
