"""Benchmark driver: run the benches, persist ``BENCH_nerf.json``, gate CI.

The committed ``BENCH_nerf.json`` is the repo's perf trajectory: each
bench records the frozen pre-overhaul reference and the current
optimized kernel side by side, and the *speedup ratio* is the number the
regression gate defends.  Ratios are machine-portable (both sides run in
the same process on the same machine), so CI can compare a laptop-
recorded baseline against a CI runner without chasing absolute
milliseconds.

Gate rule: a bench regresses when its current speedup falls more than
``tolerance`` (default 20%) below the baseline speedup.  Output is
greppable — one ``PERF OK``/``PERF REGRESSION`` line per bench and a
final ``bench: PASS``/``bench: FAIL`` verdict.
"""

from __future__ import annotations

import json

import numpy as np

from .e2e import E2E_BENCHES
from .kernels import KERNEL_BENCHES

#: Payload schema version, bumped on incompatible layout changes.
SCHEMA_VERSION = 1

#: Default relative slack before a speedup drop counts as a regression.
DEFAULT_TOLERANCE = 0.2

#: Default location of the committed baseline.
DEFAULT_BASELINE = "BENCH_nerf.json"


def run_benches(smoke: bool = False, kernels_only: bool = False) -> dict:
    """Run every registered bench and return the JSON-ready payload."""
    benches = {}
    for name, builder in KERNEL_BENCHES.items():
        benches[name] = builder(smoke)
    if not kernels_only:
        for name, builder in E2E_BENCHES.items():
            benches[name] = builder(smoke)
    return {
        "schema": SCHEMA_VERSION,
        "mode": "smoke" if smoke else "full",
        "numpy": np.__version__,
        "benches": benches,
    }


def merge_into_baseline(payload: dict, baseline: dict = None) -> dict:
    """Fold one run into the on-disk baseline document.

    The baseline keeps one bench table *per mode* (``full`` and
    ``smoke``): speedup ratios depend on workload size, so a smoke run
    in CI must gate against smoke-recorded ratios, never full ones.
    """
    doc = baseline if baseline is not None else {}
    doc["schema"] = SCHEMA_VERSION
    doc["numpy"] = payload["numpy"]
    doc.setdefault("modes", {})[payload["mode"]] = payload["benches"]
    return doc


def format_report(payload: dict) -> str:
    """Human-readable table of one bench payload."""
    lines = [
        f"perf bench ({payload['mode']} mode, numpy {payload['numpy']})",
        f"{'bench':<24} {'renderer':<9} {'ref ms':>10} {'opt ms':>10} "
        f"{'speedup':>9}",
    ]
    for name, record in payload["benches"].items():
        lines.append(
            f"{name:<24} {record.get('renderer', '-'):<9} "
            f"{record['ref_ms']:>10.2f} {record['opt_ms']:>10.2f} "
            f"{record['speedup']:>8.2f}x"
        )
    return "\n".join(lines)


def compare_to_baseline(
    payload: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> tuple:
    """Gate ``payload`` against ``baseline``: ``(passed, report_lines)``.

    The payload's mode selects the matching per-mode table in the
    baseline (ratios from different workload sizes are not comparable).
    Benches present on only one side are reported as ``PERF SKIP``, not
    failed, so adding a bench never fails the gate retroactively.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    lines, passed = [], True
    baseline_benches = baseline.get("modes", {}).get(payload["mode"])
    if baseline_benches is None:
        return False, [
            f"PERF REGRESSION: baseline has no '{payload['mode']}'-mode "
            "table (refresh it with `runner bench --out`)",
            "bench: FAIL",
        ]
    for name, base in baseline_benches.items():
        current = payload["benches"].get(name)
        if current is None:
            lines.append(f"PERF SKIP {name}: not run in this mode")
            continue
        floor = base["speedup"] * (1.0 - tolerance)
        if current["speedup"] < floor:
            lines.append(
                f"PERF REGRESSION {name}: speedup {current['speedup']:.2f}x "
                f"< {floor:.2f}x (baseline {base['speedup']:.2f}x - "
                f"{tolerance:.0%})"
            )
            passed = False
        else:
            lines.append(
                f"PERF OK {name}: speedup {current['speedup']:.2f}x "
                f"(baseline {base['speedup']:.2f}x)"
            )
    lines.append("bench: PASS" if passed else "bench: FAIL")
    return passed, lines


def load_baseline(path: str) -> dict:
    """Read a committed baseline payload."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"baseline schema {payload.get('schema')!r} != {SCHEMA_VERSION}"
        )
    return payload


def write_payload(payload: dict, path: str) -> None:
    """Merge a run into the baseline file at ``path`` (diff-friendly JSON).

    An existing compatible baseline keeps its other mode's table; an
    unreadable or schema-incompatible file is overwritten.
    """
    try:
        existing = load_baseline(path)
    except (OSError, ValueError):
        existing = None
    doc = merge_into_baseline(payload, existing)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
