"""Performance harness: frozen references, paired benches, CI gate.

The hot-path kernel overhaul (fused hash lookups, bincount scatters,
sorted-segment occupancy maxima, float32 buffer discipline) is only
trustworthy if its speedups are *recorded* and *defended*.  This package
does both:

* :mod:`repro.perf.reference` — the pre-overhaul kernels, frozen
  verbatim, so equivalence tests and benches always have the original to
  compare against;
* :mod:`repro.perf.timing` — paired best-of-N wall-clock measurement;
* :mod:`repro.perf.kernels` / :mod:`repro.perf.e2e` — the bench
  registry: isolated hot kernels plus a whole train iteration and a
  whole rendered frame;
* :mod:`repro.perf.bench` — the driver behind ``runner bench``: emits
  ``BENCH_nerf.json`` and gates CI on >20% speedup regressions against
  the committed baseline.

Run ``python -m repro.experiments.runner bench`` to refresh the numbers,
``... bench --smoke --check`` to reproduce the CI gate locally.
"""

from .bench import (
    DEFAULT_BASELINE,
    DEFAULT_TOLERANCE,
    compare_to_baseline,
    format_report,
    load_baseline,
    merge_into_baseline,
    run_benches,
    write_payload,
)
from .timing import PairedTiming, time_callable, time_pair

__all__ = [
    "DEFAULT_BASELINE",
    "DEFAULT_TOLERANCE",
    "PairedTiming",
    "compare_to_baseline",
    "format_report",
    "load_baseline",
    "merge_into_baseline",
    "run_benches",
    "time_callable",
    "time_pair",
    "write_payload",
]
