"""Pre-optimization reference kernels, frozen for equivalence and benches.

The hot-path overhaul (fused multi-level hash lookups, ``np.bincount``
scatters, sorted-segment occupancy maxima) must not change results, so
the implementations it replaced live on here, verbatim:

* the equivalence suite asserts the optimized kernels are bit-identical
  to these references (or PSNR-identical where a fusion reorders float
  sums);
* the benchmark harness (:mod:`repro.perf.bench`) times reference and
  optimized side by side in the same process, which makes the recorded
  speedups machine-portable — the CI regression gate compares speedup
  *ratios*, not wall-clock seconds.

Nothing here is a fallback: library code always runs the optimized
kernels.  These functions exist to be measured against and tested
against, never to be fast.

(The occupancy EMA update has no reference here on purpose: its
buffered ``np.maximum.at`` *survived* the overhaul — the harness
measured a sorted-segment rewrite ~8x slower, see the comment in
:meth:`repro.nerf.occupancy.OccupancyGrid.update` — so the optimized
kernel and the original are the same code.)
"""

from __future__ import annotations

import numpy as np

from ..nerf.hash_encoding import EncodingTrace, HashEncoding
from ..nerf.occupancy import OccupancyGrid
from ..nerf.tensorf import LINE_AXES, PLANE_AXES, PlaneLineEncoding, PlaneLineTrace


def hash_forward_reference(encoding: HashEncoding, points: np.ndarray) -> tuple:
    """Per-level loop hash-encoding forward (the pre-fusion kernel).

    Mirrors the original :meth:`HashEncoding.forward`: one
    ``level_lookup`` + gather + weighted sum per resolution level, with a
    Python-level loop over levels.  Returns ``(features, trace)`` with
    the same contract as the optimized forward.
    """
    points = np.atleast_2d(points)
    n = points.shape[0]
    cfg = encoding.config
    features = np.empty((n, cfg.output_dim), dtype=np.float64)
    all_indices, all_weights, all_corners = [], [], []
    for level in range(cfg.n_levels):
        corners, indices, weights = encoding.level_lookup(points, level)
        gathered = encoding.tables[level][indices]  # (n, 8, F)
        features[:, level * cfg.n_features : (level + 1) * cfg.n_features] = (
            weights[:, :, None] * gathered
        ).sum(axis=1)
        all_indices.append(indices)
        all_weights.append(weights)
        all_corners.append(corners)
    trace = EncodingTrace(
        indices=all_indices, weights=all_weights, corners=all_corners, n_points=n
    )
    return features, trace


def hash_backward_reference(
    encoding: HashEncoding, grad_features: np.ndarray, trace: EncodingTrace
) -> np.ndarray:
    """Per-level ``np.add.at`` hash-encoding backward (pre-bincount).

    The element-at-a-time buffered scatter this reproduces is the
    hotspot the optimized backward replaces with one flat
    ``np.bincount`` per feature channel.
    """
    grad_features = np.atleast_2d(grad_features)
    if grad_features.shape != (trace.n_points, encoding.config.output_dim):
        raise ValueError("grad_features shape mismatch with trace")
    cfg = encoding.config
    grad_tables = np.zeros_like(encoding.tables)
    for level in range(cfg.n_levels):
        g = grad_features[:, level * cfg.n_features : (level + 1) * cfg.n_features]
        contrib = trace.weights[level][:, :, None] * g[:, None, :]  # (n, 8, F)
        flat_idx = np.asarray(trace.indices[level]).reshape(-1)
        np.add.at(
            grad_tables[level],
            flat_idx,
            contrib.reshape(-1, cfg.n_features),
        )
    return grad_tables


class ReferenceHashEncoding(HashEncoding):
    """A :class:`HashEncoding` running the pre-fusion forward/backward.

    Drop-in replacement used by the end-to-end benches: swapping this
    into a model re-creates the pre-overhaul training iteration without
    touching the trainer.
    """

    def forward(self, points: np.ndarray) -> tuple:
        """Reference per-level-loop forward (see module docstring)."""
        return hash_forward_reference(self, points)

    def backward(self, grad_features: np.ndarray, trace: EncodingTrace) -> np.ndarray:
        """Reference ``np.add.at`` backward (see module docstring)."""
        return hash_backward_reference(self, grad_features, trace)


class ReferencePlaneLineEncoding(PlaneLineEncoding):
    """A :class:`PlaneLineEncoding` running naive per-point kernels.

    The unfused TensoRF VM lookup a first port would write: a Python
    loop over sample points, each doing its own plane/line gathers and
    the *same* corner accumulation order as the fused forward — so
    forward features are bit-identical — and per-point ``np.add.at``
    scatters in backward (numerically equal to the flat-bincount
    optimized path up to summation order across points).  Drop-in
    replacement for the end-to-end benches, same as
    :class:`ReferenceHashEncoding`.
    """

    def forward(self, points: np.ndarray) -> tuple:
        """Reference per-point-loop forward (see class docstring)."""
        points = np.atleast_2d(points)
        n = points.shape[0]
        res = self.resolution
        features = np.empty((n, self.output_dim), dtype=np.float64)
        base = np.empty((n, 3), dtype=np.int64)
        frac = np.empty((n, 3), dtype=np.float64)
        plane_vals = [np.empty((n, self.n_components)) for _ in range(3)]
        line_vals = [np.empty((n, self.n_components)) for _ in range(3)]
        n_comp = self.n_components
        for i in range(n):
            scaled = points[i].astype(np.float64) * (res - 1)
            cell = np.clip(np.floor(scaled).astype(np.int64), 0, res - 2)
            offs = scaled - cell
            base[i] = cell
            frac[i] = offs
            for k in range(3):
                a, b = PLANE_AXES[k]
                ia, ib = cell[a], cell[b]
                fa, fb = offs[a], offs[b]
                plane = self.factor_planes[k]
                pv = (
                    ((1.0 - fa) * (1.0 - fb)) * plane[ia, ib]
                    + ((1.0 - fa) * fb) * plane[ia, ib + 1]
                    + (fa * (1.0 - fb)) * plane[ia + 1, ib]
                    + (fa * fb) * plane[ia + 1, ib + 1]
                )
                axis = LINE_AXES[k]
                il, fl = cell[axis], offs[axis]
                line = self.factor_lines[k]
                lv = (1.0 - fl) * line[il] + fl * line[il + 1]
                plane_vals[k][i] = pv
                line_vals[k][i] = lv
                features[i, k * n_comp : (k + 1) * n_comp] = pv * lv
        trace = PlaneLineTrace(
            base=base,
            frac=frac,
            plane_vals=plane_vals,
            line_vals=line_vals,
            n_points=n,
        )
        return features, trace

    def backward(self, grad_features: np.ndarray, trace: PlaneLineTrace) -> dict:
        """Reference per-point ``np.add.at`` backward (see class docstring)."""
        grad_features = np.atleast_2d(grad_features)
        if grad_features.shape != (trace.n_points, self.output_dim):
            raise ValueError("grad_features shape mismatch with trace")
        n_comp = self.n_components
        grad_planes = np.zeros_like(self.factor_planes)
        grad_lines = np.zeros_like(self.factor_lines)
        for i in range(trace.n_points):
            for k in range(3):
                a, b = PLANE_AXES[k]
                g = grad_features[i, k * n_comp : (k + 1) * n_comp]
                gp = g * trace.line_vals[k][i]
                gl = g * trace.plane_vals[k][i]
                ia, ib = trace.base[i, a], trace.base[i, b]
                fa, fb = trace.frac[i, a], trace.frac[i, b]
                grad_planes[k, ia, ib] += ((1.0 - fa) * (1.0 - fb)) * gp
                grad_planes[k, ia, ib + 1] += ((1.0 - fa) * fb) * gp
                grad_planes[k, ia + 1, ib] += (fa * (1.0 - fb)) * gp
                grad_planes[k, ia + 1, ib + 1] += (fa * fb) * gp
                axis = LINE_AXES[k]
                il, fl = trace.base[i, axis], trace.frac[i, axis]
                grad_lines[k, il] += (1.0 - fl) * gl
                grad_lines[k, il + 1] += fl * gl
        return {"factor_planes": grad_planes, "factor_lines": grad_lines}


def scatter_add_reference(
    values: np.ndarray, index: np.ndarray, size: int
) -> np.ndarray:
    """``np.add.at`` segment sum: the scatter idiom the overhaul retired.

    ``values`` may be 1-D or ``(n, k)``; returns the per-bin sums with
    ``size`` bins.  Semantically identical to the ``np.bincount`` path in
    :func:`repro.perf.kernels` and to
    :func:`repro.nerf.volume_rendering.segment_sum`.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim == 1:
        out = np.zeros(size, dtype=np.float64)
    else:
        out = np.zeros((size,) + values.shape[1:], dtype=np.float64)
    np.add.at(out, index, values)
    return out


def set_from_function_reference(
    grid: OccupancyGrid, density_fn, samples_per_cell: int = 2, rng=None
) -> None:
    """Pre-vectorization grid initialization: one jitter round per pass.

    Draws and evaluates ``samples_per_cell`` jitter rounds sequentially —
    the Python loop the optimized ``set_from_function`` collapses into a
    single draw and a single ``density_fn`` call.  RNG consumption order
    matches the vectorized version exactly, so both produce bit-identical
    grids from equal seeds.
    """
    rng = rng or np.random.default_rng(0)
    r = grid.resolution
    base = (
        np.stack(np.meshgrid(*([np.arange(r)] * 3), indexing="ij"), axis=-1)
        .reshape(-1, 3)
        .astype(np.float64)
    )
    best = np.zeros(grid.n_cells, dtype=np.float32)
    for _ in range(samples_per_cell):
        jitter = rng.uniform(0.0, 1.0, size=base.shape)
        points = (base + jitter) / r
        density = np.asarray(density_fn(points), dtype=np.float32).reshape(-1)
        np.maximum(best, density, out=best)
    grid.density_ema = best.reshape((r,) * 3)
    grid.mask = grid.density_ema > grid.threshold


def pair_durations_reference(
    pair_ray_idx: np.ndarray,
    spans: np.ndarray,
    kept_per_ray: np.ndarray,
    n_rays: int,
) -> list:
    """Pre-vectorization trace span accounting (Python loop + ``add.at``).

    Distributes each ray's kept samples over its cube-pairs
    proportionally to span length, exactly as the original
    ``trace_from_rays`` inner loop did.
    """
    pair_durations = [[] for _ in range(n_rays)]
    span_per_ray = np.zeros(n_rays, dtype=np.float64)
    np.add.at(span_per_ray, pair_ray_idx, spans)
    for ray, span in zip(pair_ray_idx, spans):
        total_span = span_per_ray[ray]
        share = span / total_span if total_span > 0 else 0.0
        pair_durations[ray].append(float(kept_per_ray[ray]) * share)
    return pair_durations
