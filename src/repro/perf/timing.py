"""Wall-clock timing primitives for the benchmark harness.

Every measurement here is *paired*: a reference implementation and its
optimized replacement are timed back to back in the same process, and
the recorded figure of merit is the speedup ratio.  Ratios transfer
across machines (both sides see the same CPU, cache state, and NumPy
build), which is what lets CI gate on a baseline recorded elsewhere —
absolute milliseconds are kept in the payload for human eyes only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


def time_callable(fn, repeats: int = 5, warmup: int = 1) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds.

    Best (not mean) is the standard noise-robust estimator for
    single-process CPU microbenchmarks: scheduling hiccups only ever add
    time, so the minimum is the closest observation to the true cost.
    ``warmup`` un-timed calls absorb lazy imports and allocator warmup.
    """
    if repeats < 1:
        raise ValueError("repeats must be positive")
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


@dataclass
class PairedTiming:
    """One reference-vs-optimized measurement."""

    ref_s: float
    opt_s: float

    @property
    def speedup(self) -> float:
        """Reference time over optimized time (>1 means faster)."""
        if self.opt_s <= 0.0:
            return float("inf")
        return self.ref_s / self.opt_s

    def as_record(self) -> dict:
        """JSON-ready ``{ref_ms, opt_ms, speedup}`` record."""
        return {
            "ref_ms": round(self.ref_s * 1e3, 4),
            "opt_ms": round(self.opt_s * 1e3, 4),
            "speedup": round(self.speedup, 3),
        }


def time_pair(ref_fn, opt_fn, repeats: int = 5, warmup: int = 1) -> PairedTiming:
    """Time ``ref_fn`` and ``opt_fn`` interleaved (same process/state).

    Repeats alternate ref/opt rather than running each side's block
    back to back, so a transient noise window (scheduler preemption,
    frequency scaling, a neighboring process) lands on both sides of
    the pair instead of skewing one — the best-of estimator then keeps
    the ratio stable even on busy machines.
    """
    if repeats < 1:
        raise ValueError("repeats must be positive")
    for _ in range(warmup):
        ref_fn()
    for _ in range(warmup):
        opt_fn()
    best_ref = best_opt = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        ref_fn()
        best_ref = min(best_ref, time.perf_counter() - start)
        start = time.perf_counter()
        opt_fn()
        best_opt = min(best_opt, time.perf_counter() - start)
    return PairedTiming(ref_s=best_ref, opt_s=best_opt)
