"""End-to-end benches: real train iterations and real rendered frames.

The kernel benches isolate single hot loops; these measure the whole
pipeline the paper characterizes (Figs. 9/10): Stage I sampling, Stage
II encoding gather + MLP, Stage III compositing, optimizer step.  The
"reference" side swaps the frozen naive encoding
(:class:`~repro.perf.reference.ReferenceHashEncoding` for the ``ngp``
renderer, :class:`~repro.perf.reference.ReferencePlaneLineEncoding` for
``tensorf``) into an otherwise identical trainer/renderer, so the ratio
is attributable to the encoding kernels alone.  Each record carries a
``renderer`` tag; the bench gate and trend panels group on it.
"""

from __future__ import annotations

import numpy as np

from ..datasets import synthetic
from ..nerf.model import InstantNGPModel, ModelConfig
from ..nerf.hash_encoding import HashEncodingConfig
from ..nerf.occupancy import OccupancyGrid
from ..nerf.renderer import render_image
from ..nerf.sampling import RayMarcher, SamplerConfig
from ..nerf.tensorf import TensoRFConfig, TensoRFModel
from ..nerf.trainer import Trainer, TrainerConfig
from .reference import ReferenceHashEncoding, ReferencePlaneLineEncoding
from .timing import PairedTiming, time_callable

#: Bench RNG/model seed — fixed so recorded numbers are reproducible.
SEED = 0


def _bench_model(smoke: bool, reference_kernels: bool) -> InstantNGPModel:
    """A mid-size model, optionally running the pre-overhaul encoding."""
    config = ModelConfig(
        encoding=HashEncodingConfig(
            n_levels=4 if smoke else 8,
            n_features=2,
            log2_table_size=12 if smoke else 14,
            base_resolution=8,
            finest_resolution=64 if smoke else 128,
        ),
        hidden_width=32,
        geo_features=15,
    )
    model = InstantNGPModel(config, seed=SEED)
    if reference_kernels:
        model.encoding = ReferenceHashEncoding(
            config.encoding, rng=np.random.default_rng(SEED)
        )
    return model


def _bench_tensorf_model(smoke: bool, reference_kernels: bool) -> TensoRFModel:
    """A mid-size TensoRF field, optionally with the naive VM lookup."""
    config = TensoRFConfig(
        resolution=24 if smoke else 48,
        n_components=4 if smoke else 8,
        hidden_width=32,
        geo_features=15,
    )
    model = TensoRFModel(config, seed=SEED)
    if reference_kernels:
        encoding = ReferencePlaneLineEncoding(
            config.resolution,
            config.n_components,
            rng=np.random.default_rng(SEED),
        )
        encoding.load_parameters(model.encoding.parameters())
        model.encoding = encoding
    return model


def _bench_dataset(smoke: bool):
    return synthetic.make_dataset(
        "mic",
        n_views=4,
        width=16 if smoke else 32,
        height=16 if smoke else 32,
        gt_steps=32,
    )


def _time_train_iteration(smoke: bool, model_builder) -> PairedTiming:
    """Time one training step for both kernel sides of a model family.

    Fresh trainers (same seeds) are built for each side so optimizer and
    RNG state cannot leak between the measurements.
    """
    dataset = _bench_dataset(smoke)
    iters = 4 if smoke else 12
    config = TrainerConfig(
        batch_rays=256 if smoke else 1024,
        lr=5e-3,
        max_samples_per_ray=32,
        occupancy_resolution=32,
        occupancy_interval=4,
        seed=SEED,
    )

    def run(reference_kernels: bool):
        model = model_builder(smoke, reference_kernels)
        trainer = Trainer(
            model, dataset.cameras, dataset.images, dataset.normalizer, config
        )

        def step_all():
            for _ in range(iters):
                trainer.train_step()

        return time_callable(step_all, repeats=1, warmup=0) / iters

    return PairedTiming(ref_s=run(True), opt_s=run(False))


def _time_render_frame(smoke: bool, model_builder) -> PairedTiming:
    """Time one full :func:`render_image` frame for both kernel sides."""
    dataset = _bench_dataset(smoke)
    marcher = RayMarcher(SamplerConfig(max_samples=32))
    occupancy = OccupancyGrid(resolution=16)
    camera = dataset.cameras[0]

    def run(reference_kernels: bool) -> float:
        model = model_builder(smoke, reference_kernels)
        return time_callable(
            lambda: render_image(
                model, camera, dataset.normalizer, marcher, occupancy=occupancy
            ),
            repeats=2 if smoke else 3,
        )

    return PairedTiming(ref_s=run(True), opt_s=run(False))


def bench_train_iteration(smoke: bool = False) -> dict:
    """One ``ngp`` training step, averaged over a short run."""
    timing = _time_train_iteration(smoke, _bench_model)
    return dict(timing.as_record(), renderer="ngp")


def bench_render_frame(smoke: bool = False) -> dict:
    """One full ``ngp`` rendered frame through :func:`render_image`."""
    timing = _time_render_frame(smoke, _bench_model)
    return dict(timing.as_record(), renderer="ngp")


def _bench_opaque_model(smoke: bool) -> InstantNGPModel:
    """The render-frame bench model with matter in it.

    The stock bench model keeps the library default ``density_bias=-3``
    (untrained space reads empty), which renders a transparent scene —
    the worst case for early termination and precisely the case where a
    precision/sparsity fast path has nothing to skip.  Raising the bias
    makes the untrained field read opaque, so transmittance actually
    collapses along rays and the adaptive path exercises its
    termination + precision-switch machinery the way it would on a
    trained surface.
    """
    config = ModelConfig(
        encoding=HashEncodingConfig(
            n_levels=4 if smoke else 8,
            n_features=2,
            log2_table_size=12 if smoke else 14,
            base_resolution=8,
            finest_resolution=64 if smoke else 128,
        ),
        hidden_width=32,
        geo_features=15,
        density_bias=12.0,
    )
    return InstantNGPModel(config, seed=SEED)


def bench_render_frame_precision(smoke: bool = False) -> dict:
    """Full frame: default full-precision path vs the precision fast path.

    Both sides render the same opaque scene through the staged
    :class:`~repro.pipeline.renderer.Renderer` with the same marcher and
    the same occupancy mask.  The reference is today's default: every
    occupancy-surviving sample evaluated by the float64 field.  The
    optimized side is the ``precision="fp16-int8"`` stage config with
    transmittance-adaptive sampling (ERT rounds + per-ray precision
    switch) and the hierarchical occupancy query — the tentpole
    configuration the ``precision_pareto`` experiment quality-gates.
    """
    from ..nerf.occupancy import HierarchicalOccupancy
    from ..pipeline.registry import wrap_model

    dataset = _bench_dataset(smoke)
    camera = dataset.cameras[0]
    model = _bench_opaque_model(smoke)
    occupancy = OccupancyGrid(resolution=16)

    def run(precision: bool) -> float:
        if precision:
            renderer = wrap_model(
                model,
                marcher=RayMarcher(SamplerConfig(max_samples=32)),
                occupancy=HierarchicalOccupancy(occupancy, factor=4),
                ert_threshold=1e-2,
                precision="fp16-int8",
                switch_threshold=0.5,
            )
            # Small rounds so the per-ray transmittance check fires
            # before rays terminate: at this density a surface crossing
            # kills a ray within ~8 samples, and the precision switch
            # only re-routes at round boundaries.
            renderer.compositor.round_size = 4
        else:
            renderer = wrap_model(
                model,
                marcher=RayMarcher(SamplerConfig(max_samples=32)),
                occupancy=occupancy,
            )
        return time_callable(
            lambda: renderer.render_image(camera, dataset.normalizer),
            repeats=2 if smoke else 3,
        )

    timing = PairedTiming(ref_s=run(False), opt_s=run(True))
    return dict(
        timing.as_record(), renderer="ngp", precision="fp16-int8+adaptive"
    )


def bench_tensorf_train_iteration(smoke: bool = False) -> dict:
    """One ``tensorf`` training step, averaged over a short run."""
    timing = _time_train_iteration(smoke, _bench_tensorf_model)
    return dict(timing.as_record(), renderer="tensorf")


def bench_tensorf_render_frame(smoke: bool = False) -> dict:
    """One full ``tensorf`` rendered frame through :func:`render_image`."""
    timing = _time_render_frame(smoke, _bench_tensorf_model)
    return dict(timing.as_record(), renderer="tensorf")


#: name -> builder registry for the end-to-end benches.
E2E_BENCHES = {
    "train_iteration": bench_train_iteration,
    "render_frame": bench_render_frame,
    "render_frame_precision": bench_render_frame_precision,
    "tensorf_train_iteration": bench_tensorf_train_iteration,
    "tensorf_render_frame": bench_tensorf_render_frame,
}
