"""Data-volume and off-chip bandwidth accounting (Sec. II-B, Fig. 3).

Training a hash-grid NeRF to 25 PSNR moves on the order of 155 GB of
intermediate data; which part of it crosses the chip boundary depends on
the *design boundary* — how many pipeline stages the accelerator covers
and whether the feature tables fit on chip.  This model decomposes the
traffic into documented per-sample/per-iteration components and evaluates
any design boundary against any deadline, reproducing:

* Fig. 3's stage data volumes (inter-stage vs intra-stage vs pure I/O);
* Table I's bandwidth comparison (prior partial-pipeline accelerators
  need tens of GB/s; the end-to-end chip with resident tables needs only
  the USB budget);
* Fig. 13(b)'s bandwidth-vs-model-size sweep, including the 76% (~44
  GB/s) reduction at Instant-3D's model size that is attributable to the
  end-to-end pipeline alone.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TrafficConstants:
    """Per-sample / per-ray / per-iteration byte costs of the pipeline."""

    #: Stage I -> II: quantized sample coords + dt + ray id.
    stage1_to_2_bytes: float = 10.0
    #: Stage II -> III: encoded features forward (fp16, compacted).
    stage2_to_3_fwd_bytes: float = 24.0
    #: Stage III -> II: feature gradients during training.
    stage2_to_3_bwd_bytes: float = 28.0
    #: Stage II internal: vertex feature reads after ray-locality reuse.
    stage2_feature_read_bytes: float = 128.0
    #: Stage II internal: gradient read-modify-write traffic (training).
    stage2_feature_update_bytes: float = 192.0
    #: Stage III internal: MLP activation spills.
    stage3_activation_bytes: float = 64.0
    #: Per-ray supervision streamed from the host during training
    #: (quantized ray spec + RGB target + ids).
    ray_supervision_bytes: float = 24.0
    #: Per-pixel output (RGB8) during inference.
    pixel_out_bytes: float = 3.0
    #: One-off model download/upload (hash tables + MLP weights).
    model_io_bytes: float = 10e6
    #: A non-end-to-end trainer streams the touched table entries through
    #: DRAM roughly once per iteration (Adam reads + writes).
    table_stream_factor: float = 1.0


@dataclass(frozen=True)
class WorkloadVolume:
    """Scale of one training or inference run."""

    total_samples: float
    total_rays: float
    iterations: int = 1
    deadline_s: float = 2.0

    @classmethod
    def instant_training(
        cls,
        samples_per_second: float = 199e6,
        samples_per_ray: float = 13.0,
        iterations: int = 3072,
        deadline_s: float = 2.0,
    ) -> "WorkloadVolume":
        """The paper's 2-second instant-training working point."""
        total = samples_per_second * deadline_s
        return cls(
            total_samples=total,
            total_rays=total / samples_per_ray,
            iterations=iterations,
            deadline_s=deadline_s,
        )

    @classmethod
    def realtime_inference(
        cls,
        fps: float = 36.0,
        width: int = 800,
        height: int = 800,
        samples_per_ray: float = 13.0,
        duration_s: float = 1.0,
    ) -> "WorkloadVolume":
        rays = fps * width * height * duration_s
        return cls(
            total_samples=rays * samples_per_ray,
            total_rays=rays,
            iterations=1,
            deadline_s=duration_s,
        )


@dataclass
class VolumeBreakdown:
    """Bytes moved, by category, for one run (Fig. 3's quantities)."""

    inter_stage_bytes: float
    intra_stage_bytes: float
    io_bytes: float

    @property
    def total_intermediate_bytes(self) -> float:
        return self.inter_stage_bytes + self.intra_stage_bytes

    def rates_gbps(self, deadline_s: float) -> dict:
        return {
            "inter_stage": self.inter_stage_bytes / deadline_s / 1e9,
            "intra_stage": self.intra_stage_bytes / deadline_s / 1e9,
            "io": self.io_bytes / deadline_s / 1e9,
        }


class BandwidthModel:
    """Evaluate data volumes and off-chip bandwidth for design boundaries."""

    def __init__(self, constants: TrafficConstants = TrafficConstants()):
        self.constants = constants

    # -- data volumes (Fig. 3) -------------------------------------------

    def training_volume(self, workload: WorkloadVolume) -> VolumeBreakdown:
        c = self.constants
        s = workload.total_samples
        inter = s * (
            c.stage1_to_2_bytes + c.stage2_to_3_fwd_bytes + c.stage2_to_3_bwd_bytes
        )
        intra = s * (
            c.stage2_feature_read_bytes
            + c.stage2_feature_update_bytes
            + c.stage3_activation_bytes
        )
        io = workload.total_rays * c.ray_supervision_bytes + c.model_io_bytes
        return VolumeBreakdown(
            inter_stage_bytes=inter, intra_stage_bytes=intra, io_bytes=io
        )

    def inference_volume(self, workload: WorkloadVolume) -> VolumeBreakdown:
        c = self.constants
        s = workload.total_samples
        inter = s * (c.stage1_to_2_bytes + c.stage2_to_3_fwd_bytes)
        intra = s * (c.stage2_feature_read_bytes + c.stage3_activation_bytes)
        io = workload.total_rays * c.pixel_out_bytes + c.model_io_bytes
        return VolumeBreakdown(
            inter_stage_bytes=inter, intra_stage_bytes=intra, io_bytes=io
        )

    # -- model footprint ---------------------------------------------------

    @staticmethod
    def table_bytes(
        log2_table_size: int,
        n_hashed_levels: int = 10,
        n_features: int = 2,
        bytes_per_feature: int = 2,
    ) -> float:
        """fp16 feature-table footprint; the paper's headline model
        (2^14 per level across ten hashed levels) is exactly the
        2 x 5 x 64 KB = 640 KB it stores on chip.  Coarse dense levels
        live in the misc buffer space and are not counted here."""
        return n_hashed_levels * (1 << log2_table_size) * n_features * bytes_per_feature

    # -- off-chip bandwidth for a design boundary -------------------------

    def required_training_bandwidth_gbps(
        self,
        workload: WorkloadVolume,
        table_bytes: float,
        on_chip_feature_bytes: float = 640 * 1024,
        end_to_end: bool = True,
    ) -> float:
        """Off-chip bandwidth to finish training within the deadline.

        ``end_to_end=False`` models a partial-pipeline accelerator
        (Instant-3D's boundary): inter-stage data and Stage III activation
        spills cross the chip edge, feature reads miss DRAM in sample
        order, and the updated table streams back every iteration.  The
        end-to-end chip instead processes samples sorted by table region
        (the two-level tiling makes that streaming order natural), so any
        table overflow crosses the boundary once per iteration.
        """
        c = self.constants
        volume = self.training_volume(workload)
        bw = volume.io_bytes / workload.deadline_s
        miss = max(0.0, 1.0 - on_chip_feature_bytes / max(table_bytes, 1.0))
        table_stream = (
            table_bytes * workload.iterations * c.table_stream_factor * miss
        )
        bw += table_stream / workload.deadline_s
        if not end_to_end:
            # Sample-order feature reads miss DRAM individually.
            bw += (
                workload.total_samples * c.stage2_feature_read_bytes * miss
            ) / workload.deadline_s
            bw += volume.inter_stage_bytes / workload.deadline_s
            spill = workload.total_samples * c.stage3_activation_bytes
            bw += spill / workload.deadline_s
        return bw / 1e9

    def required_inference_bandwidth_gbps(
        self,
        workload: WorkloadVolume,
        table_bytes: float,
        on_chip_feature_bytes: float = 640 * 1024,
        end_to_end: bool = True,
    ) -> float:
        c = self.constants
        volume = self.inference_volume(workload)
        bw = volume.io_bytes / workload.deadline_s
        miss = max(0.0, 1.0 - on_chip_feature_bytes / max(table_bytes, 1.0))
        # Inference re-reads missing table entries per frame working set.
        bw += (
            workload.total_samples
            * c.stage2_feature_read_bytes
            * miss
            / workload.deadline_s
        )
        if not end_to_end:
            bw += volume.inter_stage_bytes / workload.deadline_s
        return bw / 1e9

    def end_to_end_reduction(
        self,
        workload: WorkloadVolume,
        table_bytes: float,
        baseline_sram_bytes: float = 1536 * 1024,
    ) -> dict:
        """Bandwidth saved by the end-to-end boundary at equal model size
        (Fig. 13(b)'s 76% / 44 GB/s callout vs Instant-3D)."""
        ours = self.required_training_bandwidth_gbps(
            workload, table_bytes, end_to_end=True
        )
        theirs = self.required_training_bandwidth_gbps(
            workload,
            table_bytes,
            on_chip_feature_bytes=baseline_sram_bytes,
            end_to_end=False,
        )
        return {
            "end_to_end_gbps": ours,
            "partial_gbps": theirs,
            "saved_gbps": theirs - ours,
            "reduction": 1.0 - ours / theirs if theirs > 0 else 0.0,
        }
