"""Reporting helpers: the units and ratios the paper's tables use."""

from __future__ import annotations

from dataclasses import dataclass


def fps_from_throughput(
    samples_per_second: float,
    width: int = 800,
    height: int = 800,
    samples_per_ray: float = 13.0,
) -> float:
    """Frames per second sustained at a given sample throughput."""
    per_frame = width * height * samples_per_ray
    if per_frame <= 0:
        raise ValueError("frame must contain samples")
    return samples_per_second / per_frame


def training_seconds(
    total_samples: float,
    samples_per_second: float,
) -> float:
    """Wall-clock training time for a sample budget."""
    if samples_per_second <= 0:
        raise ValueError("throughput must be positive")
    return total_samples / samples_per_second


def speedup(ours_seconds: float, baseline_seconds: float) -> float:
    """How many times faster we are than the baseline."""
    if ours_seconds <= 0:
        raise ValueError("our runtime must be positive")
    return baseline_seconds / ours_seconds


def energy_efficiency(ours_joules: float, baseline_joules: float) -> float:
    """How many times less energy we burn than the baseline."""
    if ours_joules <= 0:
        raise ValueError("our energy must be positive")
    return baseline_joules / ours_joules


@dataclass(frozen=True)
class ComparisonRow:
    """One platform's entry in a speedup/efficiency comparison."""

    platform: str
    throughput_mps: float = None
    energy_per_point_nj: float = None
    speedup: float = None
    energy_efficiency: float = None

    def formatted(self) -> str:
        parts = [f"{self.platform:28s}"]
        if self.throughput_mps is not None:
            parts.append(f"{self.throughput_mps:9.1f} M/s")
        if self.energy_per_point_nj is not None:
            parts.append(f"{self.energy_per_point_nj:8.2f} nJ/pt")
        if self.speedup is not None:
            parts.append(f"{self.speedup:7.2f}x speed")
        if self.energy_efficiency is not None:
            parts.append(f"{self.energy_efficiency:8.1f}x energy")
        return "  ".join(parts)


def format_table(title: str, rows: list) -> str:
    """Render comparison rows as the text tables the benches print."""
    lines = [title, "=" * len(title)]
    lines.extend(row.formatted() for row in rows)
    return "\n".join(lines)


def _gaussian_kernel(size: int = 7, sigma: float = 1.5):
    import numpy as np

    half = size // 2
    x = np.arange(-half, half + 1, dtype=np.float64)
    g = np.exp(-(x**2) / (2.0 * sigma**2))
    return g / g.sum()


def _filter2d(image, kernel):
    """Separable 2D convolution with edge padding (no SciPy needed)."""
    import numpy as np

    half = kernel.size // 2
    padded = np.pad(image, ((half, half), (half, half)), mode="edge")
    rows = np.apply_along_axis(
        lambda r: np.convolve(r, kernel, mode="valid"), 1, padded
    )
    return np.apply_along_axis(
        lambda c: np.convolve(c, kernel, mode="valid"), 0, rows
    )


def ssim(pred, target, max_value: float = 1.0) -> float:
    """Structural similarity (mean SSIM, Gaussian 7x7 window).

    Complements the paper's PSNR metric with the other standard
    view-synthesis quality number.  Color images are averaged over
    channels.
    """
    import numpy as np

    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError("pred and target must have the same shape")
    if pred.ndim == 3:
        return float(
            np.mean([ssim(pred[..., c], target[..., c], max_value)
                     for c in range(pred.shape[-1])])
        )
    if pred.ndim != 2:
        raise ValueError("ssim expects a 2D image or an HxWxC stack")
    kernel = _gaussian_kernel()
    c1 = (0.01 * max_value) ** 2
    c2 = (0.03 * max_value) ** 2
    mu_p = _filter2d(pred, kernel)
    mu_t = _filter2d(target, kernel)
    sigma_p = _filter2d(pred * pred, kernel) - mu_p**2
    sigma_t = _filter2d(target * target, kernel) - mu_t**2
    sigma_pt = _filter2d(pred * target, kernel) - mu_p * mu_t
    numerator = (2 * mu_p * mu_t + c1) * (2 * sigma_pt + c2)
    denominator = (mu_p**2 + mu_t**2 + c1) * (sigma_p + sigma_t + c2)
    return float(np.mean(numerator / denominator))
