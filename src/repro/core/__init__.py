"""Top-level Fusion-3D API: the system facade, bandwidth accounting, and
reporting helpers."""

from .fusion3d import (
    Fusion3D,
    Fusion3DConfig,
    ReconstructionResult,
    RenderingResult,
)
from .bandwidth import (
    BandwidthModel,
    TrafficConstants,
    WorkloadVolume,
    VolumeBreakdown,
)
from .metrics import (
    fps_from_throughput,
    ssim,
    training_seconds,
    speedup,
    energy_efficiency,
    ComparisonRow,
    format_table,
)

__all__ = [
    "Fusion3D",
    "Fusion3DConfig",
    "ReconstructionResult",
    "RenderingResult",
    "BandwidthModel",
    "TrafficConstants",
    "WorkloadVolume",
    "VolumeBreakdown",
    "fps_from_throughput",
    "ssim",
    "training_seconds",
    "speedup",
    "energy_efficiency",
    "ComparisonRow",
    "format_table",
]
