"""The Fusion-3D system facade: the library's primary entry point.

Glues the functional NeRF substrate to the cycle simulator: you hand it a
posed dataset, it trains a radiance field (real gradients, real PSNR)
while extracting workload traces, and reports what the accelerator —
single chip or four-chip board — would have achieved on that workload:
reconstruction seconds, rendering FPS, energy, bandwidth.

    >>> dataset = synthetic.make_dataset("lego")
    >>> system = Fusion3D.single_chip()
    >>> result = system.reconstruct(dataset, iterations=300)
    >>> result.meets_instant_target
    True
    >>> result.psnr > 20.0
    True
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nerf.hash_encoding import HashEncodingConfig
from ..nerf.model import InstantNGPModel, ModelConfig
from ..nerf.moe import MoENeRF, MoEConfig, MoETrainer
from ..nerf.rays import generate_rays
from ..nerf.renderer import render_image
from ..nerf.trainer import Trainer, TrainerConfig
from ..nerf.volume_rendering import psnr as compute_psnr
from ..sim.chip import ChipConfig, SingleChipAccelerator
from ..sim.multichip import MultiChipConfig, MultiChipSystem
from ..sim.trace import WorkloadTrace, trace_from_rays
from .bandwidth import BandwidthModel, WorkloadVolume
from .metrics import fps_from_throughput


@dataclass
class ReconstructionResult:
    """Outcome of :meth:`Fusion3D.reconstruct`."""

    psnr: float
    iterations: int
    total_samples: float
    #: What the accelerator would take for this sample budget.
    simulated_training_s: float
    simulated_energy_j: float
    simulated_power_w: float
    throughput_samples_per_s: float
    offchip_bandwidth_gbps: float
    trace: WorkloadTrace

    @property
    def meets_instant_target(self) -> bool:
        """The paper's <= 2 s instant-reconstruction bar (at the paper's
        sample budget; small demo runs scale proportionally)."""
        return self.simulated_training_s <= 2.0


@dataclass
class RenderingResult:
    """Outcome of :meth:`Fusion3D.render`."""

    image: np.ndarray
    psnr: float
    simulated_frame_s: float
    simulated_fps_800p: float
    simulated_energy_j: float
    throughput_samples_per_s: float
    trace: WorkloadTrace

    @property
    def meets_realtime_target(self) -> bool:
        """The paper's >= 30 FPS bar at 800x800."""
        return self.simulated_fps_800p >= 30.0


@dataclass(frozen=True)
class Fusion3DConfig:
    """Top-level system configuration."""

    chip: ChipConfig = field(default_factory=ChipConfig.scaled)
    multi_chip: bool = False
    n_chips: int = 4
    model: ModelConfig = field(
        default_factory=lambda: ModelConfig(
            encoding=HashEncodingConfig(
                n_levels=8, log2_table_size=12, base_resolution=8, finest_resolution=128
            ),
            hidden_width=32,
        )
    )
    trainer: TrainerConfig = field(
        default_factory=lambda: TrainerConfig(
            batch_rays=1024, lr=5e-3, max_samples_per_ray=48, occupancy_resolution=24
        )
    )
    seed: int = 0


class Fusion3D:
    """End-to-end reconstruct/render with hardware co-simulation."""

    def __init__(self, config: Fusion3DConfig = Fusion3DConfig()):
        self.config = config
        if config.multi_chip:
            self.system = MultiChipSystem(
                MultiChipConfig(n_chips=config.n_chips, chip=config.chip)
            )
        else:
            self.system = SingleChipAccelerator(config.chip)
        self.bandwidth = BandwidthModel()
        self._model = None
        self._trainer = None

    @classmethod
    def single_chip(cls, **overrides) -> "Fusion3D":
        return cls(Fusion3DConfig(**overrides))

    @classmethod
    def multi_chip(cls, n_chips: int = 4, **overrides) -> "Fusion3D":
        return cls(Fusion3DConfig(multi_chip=True, n_chips=n_chips, **overrides))

    @property
    def model(self):
        if self._model is None:
            raise RuntimeError("call reconstruct() first")
        return self._model

    def reconstruct(self, dataset, iterations: int = 300) -> ReconstructionResult:
        """Train a radiance field on the dataset, co-simulating hardware."""
        cfg = self.config
        if cfg.multi_chip:
            model = MoENeRF(
                MoEConfig(n_experts=cfg.n_chips, expert_model=cfg.model),
                seed=cfg.seed,
            )
            trainer = MoETrainer(
                model, dataset.cameras, dataset.images, dataset.normalizer, cfg.trainer
            )
        else:
            model = InstantNGPModel(cfg.model, seed=cfg.seed)
            trainer = Trainer(
                model, dataset.cameras, dataset.images, dataset.normalizer, cfg.trainer
            )
        total_samples = 0.0
        for _ in range(iterations):
            trainer.train_step()
            if cfg.multi_chip:
                total_samples += float(np.mean(trainer.last_expert_samples))
            else:
                total_samples += len(trainer.last_batch)
        self._model = model
        self._trainer = trainer
        return self._finish_reconstruction(dataset, trainer, iterations, total_samples)

    def reconstruct_until(
        self,
        dataset,
        psnr_target: float = 25.0,
        max_iterations: int = 2000,
        check_every: int = 50,
    ) -> ReconstructionResult:
        """Train until the paper's quality bar (default: 25 PSNR).

        The paper measures training time as wall clock to 25 PSNR; this
        is the library's equivalent: iterate until the evaluated PSNR
        crosses ``psnr_target`` (checked every ``check_every`` steps) or
        ``max_iterations`` is exhausted, then report as
        :meth:`reconstruct` does for the samples actually consumed.
        """
        if check_every < 1:
            raise ValueError("check_every must be positive")
        cfg = self.config
        if cfg.multi_chip:
            model = MoENeRF(
                MoEConfig(n_experts=cfg.n_chips, expert_model=cfg.model),
                seed=cfg.seed,
            )
            trainer = MoETrainer(
                model, dataset.cameras, dataset.images, dataset.normalizer, cfg.trainer
            )
        else:
            model = InstantNGPModel(cfg.model, seed=cfg.seed)
            trainer = Trainer(
                model, dataset.cameras, dataset.images, dataset.normalizer, cfg.trainer
            )
        total_samples = 0.0
        iterations = 0
        while iterations < max_iterations:
            trainer.train_step()
            iterations += 1
            if cfg.multi_chip:
                total_samples += float(np.mean(trainer.last_expert_samples))
            else:
                total_samples += len(trainer.last_batch)
            if iterations % check_every == 0:
                if trainer.eval_psnr(n_views=min(2, len(dataset.cameras))) >= psnr_target:
                    break
        self._model = model
        self._trainer = trainer
        return self._finish_reconstruction(dataset, trainer, iterations, total_samples)

    def render(self, dataset, view: int = 0) -> RenderingResult:
        """Render one dataset view with the trained model, co-simulating."""
        if self._trainer is None:
            raise RuntimeError("call reconstruct() before render()")
        cfg = self.config
        camera = dataset.cameras[view]
        target = dataset.images[view]
        trainer = self._trainer
        if cfg.multi_chip:
            rays = generate_rays(camera)
            origins, directions = dataset.normalizer.rays_to_unit(
                rays.origins, rays.directions
            )
            colors = trainer.render_rays(origins, directions)
            image = np.clip(colors, 0.0, 1.0).reshape(camera.height, camera.width, 3)
        else:
            image = render_image(
                self._model,
                camera,
                dataset.normalizer,
                trainer.marcher,
                occupancy=trainer.occupancy,
            )
        trace = self._extract_trace(dataset, trainer, camera=camera)
        report = self._simulate(trace, trace.n_samples, training=False)
        quality = compute_psnr(image, target)
        fps = fps_from_throughput(report["samples_per_s"])
        return RenderingResult(
            image=image,
            psnr=quality,
            simulated_frame_s=report["runtime_s"],
            simulated_fps_800p=fps,
            simulated_energy_j=report["energy_j"],
            throughput_samples_per_s=report["samples_per_s"],
            trace=trace,
        )

    # -- internals ---------------------------------------------------------

    def _finish_reconstruction(
        self, dataset, trainer, iterations: int, total_samples: float
    ) -> ReconstructionResult:
        cfg = self.config
        trace = self._extract_trace(dataset, trainer)
        report = self._simulate(trace, total_samples, training=True)
        quality = trainer.eval_psnr(n_views=min(2, len(dataset.cameras)))
        volume = WorkloadVolume(
            total_samples=total_samples,
            total_rays=iterations * cfg.trainer.batch_rays,
            iterations=iterations,
            deadline_s=max(report["runtime_s"], 1e-9),
        )
        # Scale the one-off model download to this run's actual model (the
        # default constants describe the paper's full-size configuration).
        from dataclasses import replace

        model_bytes = (
            sum(p.size for p in self._model.parameters().values()) * 2  # fp16
        )
        bandwidth = BandwidthModel(
            replace(self.bandwidth.constants, model_io_bytes=model_bytes)
        )
        bw = bandwidth.required_training_bandwidth_gbps(
            volume,
            table_bytes=self.bandwidth.table_bytes(cfg.model.encoding.log2_table_size),
            on_chip_feature_bytes=cfg.chip.feature_sram_kb * 1024,
        )
        return ReconstructionResult(
            psnr=quality,
            iterations=iterations,
            total_samples=total_samples,
            simulated_training_s=report["runtime_s"],
            simulated_energy_j=report["energy_j"],
            simulated_power_w=report["power_w"],
            throughput_samples_per_s=report["samples_per_s"],
            offchip_bandwidth_gbps=bw,
            trace=trace,
        )

    def _extract_trace(self, dataset, trainer, camera=None) -> WorkloadTrace:
        """Trace the current occupancy-gated workload of one view."""
        camera = camera or dataset.cameras[0]
        rays = generate_rays(camera)
        origins, directions = dataset.normalizer.rays_to_unit(
            rays.origins, rays.directions
        )
        occupancy = (
            trainer.occupancies[0]
            if self.config.multi_chip
            else trainer.occupancy
        )
        encoding = (
            trainer.model.experts[0].encoding
            if self.config.multi_chip
            else trainer.model.encoding
        )
        return trace_from_rays(
            origins,
            directions,
            occupancy,
            encoding=encoding,
            max_samples=self.config.trainer.max_samples_per_ray,
        )

    def _simulate(self, trace: WorkloadTrace, total_samples: float, training: bool) -> dict:
        scale = trace.scale_for_samples(max(total_samples, 1.0))
        if self.config.multi_chip:
            report = self.system.simulate(
                [trace] * self.config.n_chips,
                training=training,
                workload_scale=scale,
            )
        else:
            report = self.system.simulate(
                trace, training=training, workload_scale=scale
            )
        return {
            "runtime_s": report.runtime_s,
            "energy_j": report.energy_j,
            "power_w": report.power_w,
            "samples_per_s": report.samples_per_second,
        }
