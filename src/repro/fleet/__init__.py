"""Fault-tolerant distributed render fleet.

Scales the single-board serving plane (:mod:`repro.serve`) out to N
simulated render workers while keeping its client surface: scenes are
sharded across workers by consistent hashing with replication, MoE
experts are placed one-per-worker the way
:class:`~repro.sim.multichip.MultiChipSystem` places them one-per-chip,
and the controller survives worker churn — crashes, stalls,
slow-degrades, dropped replies — through heartbeats, per-RPC deadlines,
hedged dispatch, budgeted backoff retries, and greedy-LPT rebalance on
death.  Three modules:

* :mod:`repro.fleet.placement` — the consistent-hash ring and the
  scene/expert placement policies;
* :mod:`repro.fleet.workers` — the simulated worker: a serial board
  plus the fault surface the chaos plan drives;
* :mod:`repro.fleet.controller` — the event-loop controller, the
  exactly-once request ledger, and the fleet report.

The whole fleet is a seeded discrete-event simulation on a virtual
clock, so chaos scenarios (kill 1 of N mid-run) replay bit-exactly,
and a replica-served frame is bit-identical to a primary-served one.
"""

from .controller import (
    FAILED_NO_WORKER,
    FAILED_RPC_EXPIRED,
    FleetConfig,
    FleetController,
    FleetResponse,
    format_fleet_report,
    status_bucket,
)
from .placement import (
    HashRing,
    place_experts,
    place_scenes,
    rebalance_experts,
    stable_hash,
)
from .workers import (
    DEAD,
    HEALTHY,
    SLOW,
    FleetWorker,
    workers_from_fault_config,
)

__all__ = [
    "DEAD",
    "FAILED_NO_WORKER",
    "FAILED_RPC_EXPIRED",
    "FleetConfig",
    "FleetController",
    "FleetResponse",
    "FleetWorker",
    "HEALTHY",
    "HashRing",
    "SLOW",
    "format_fleet_report",
    "place_experts",
    "place_scenes",
    "rebalance_experts",
    "stable_hash",
    "status_bucket",
    "workers_from_fault_config",
]
