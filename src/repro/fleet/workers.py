"""Simulated render workers: per-worker boards, churn, and health.

A :class:`FleetWorker` is one render server of the fleet: a serial
simulated board (one RPC occupies it at a time, so queueing delay is
real — the same property :class:`~repro.serve.service.RenderService`
has for its single board) plus the worker-level failure surface the
fault plan drives: a crash instant, stall windows, and slow-degrade
factors.  The worker does *time accounting only* — pixels are rendered
by the controller through the shared scene registry, which is what
makes a replica-served frame bit-identical to a primary-served one.

Health (``healthy``/``slow``/``dead``) is a *controller-side judgment*
reached through heartbeats; the worker merely stores the verdict.  The
distinction matters: a crashed worker the controller has not yet
noticed still receives dispatches (and silently eats them), exactly as
a real fleet behaves between a death and its detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Health states, in degradation order.
HEALTHY = "healthy"
SLOW = "slow"
DEAD = "dead"


@dataclass
class FleetWorker:
    """One simulated render worker (see module docstring)."""

    index: int
    #: Fleet-clock instant this worker dies (``None`` = never).
    crash_at_s: float = None
    #: Silent windows as ``(start_s, end_s)`` pairs: replies and
    #: heartbeats inside a window are deferred to its end.
    stalls: tuple = ()
    #: Slow-degrades as ``(at_s, factor)`` pairs: service time scales by
    #: ``factor`` from ``at_s`` on (factors compound).
    slowdowns: tuple = ()
    #: MoE experts this worker currently hosts (inherited experts run
    #: serially, scaling service time — the chip-level remap cost model).
    experts: list = field(default_factory=list)
    #: Controller-assigned health verdict.
    health: str = HEALTHY
    #: Consecutive heartbeats missed (controller bookkeeping).
    missed_heartbeats: int = 0
    #: Board busy horizon: an RPC dispatched now starts at
    #: ``max(now, busy_until_s)``.
    busy_until_s: float = 0.0
    #: Total board-busy seconds charged to this worker.
    busy_s: float = 0.0
    #: RPCs this worker completed (reply delivered).
    completed_rpcs: int = 0
    #: Kept-sample load proxy accumulated across its dispatches.
    billed_samples: float = 0.0

    def __post_init__(self):
        if not self.experts:
            self.experts = [self.index]
        self.stalls = tuple(
            (float(a), float(b)) for a, b in self.stalls
        )
        self.slowdowns = tuple(
            (float(a), float(f)) for a, f in self.slowdowns
        )

    # -- failure surface -------------------------------------------------

    def alive_at(self, t: float) -> bool:
        """Whether the worker process exists at fleet-clock ``t``."""
        return self.crash_at_s is None or t < self.crash_at_s

    def stalled_at(self, t: float) -> bool:
        """Whether ``t`` falls inside one of the worker's silent windows."""
        return any(start <= t < end for start, end in self.stalls)

    def responsive_at(self, t: float) -> bool:
        """Whether a heartbeat sent at ``t`` would be answered."""
        return self.alive_at(t) and not self.stalled_at(t)

    def service_multiplier(self, t: float) -> float:
        """Service-time inflation at ``t``: inherited experts x slowdowns.

        Inherited experts run serially (one more expert doubles the
        work, the chip-level ``remap`` cost model); active slow-degrade
        factors compound on top.
        """
        factor = float(max(len(self.experts), 1))
        for at_s, slow in self.slowdowns:
            if t >= at_s:
                factor *= slow
        return factor

    # -- board occupancy -------------------------------------------------

    def occupy(self, now_s: float, service_s: float) -> float:
        """Charge one RPC's board time; returns its finish instant.

        The board is serial: work dispatched while busy queues behind
        the current occupant.
        """
        if service_s < 0:
            raise ValueError("service_s must be non-negative")
        start = max(now_s, self.busy_until_s)
        end = start + service_s
        self.busy_until_s = end
        self.busy_s += service_s
        return end

    def reply_time(self, end_s: float) -> float:
        """When the reply for work finishing at ``end_s`` reaches the
        controller — or ``None`` if it never does.

        A worker that crashes before (or at) the finish instant never
        replies; a stalled worker holds the reply until its silent
        window closes.
        """
        if self.crash_at_s is not None and end_s >= self.crash_at_s:
            return None
        t = end_s
        for start, end in self.stalls:
            if start <= t < end:
                t = end
        if self.crash_at_s is not None and t >= self.crash_at_s:
            return None
        return t

    def summary(self) -> dict:
        """Flat stats row for fleet reports and the dashboard."""
        return {
            "index": self.index,
            "health": self.health,
            "experts": list(self.experts),
            "completed_rpcs": self.completed_rpcs,
            "busy_s": self.busy_s,
        }


def workers_from_fault_config(n_workers: int, fleet_cfg=None) -> list:
    """Build the worker set, pre-wiring the fault plan's churn schedule.

    ``fleet_cfg`` is a
    :class:`~repro.robustness.faults.FleetFaultConfig` (or ``None`` for
    a churn-free fleet).  Crash/stall/slowdown entries naming a worker
    index outside ``[0, n_workers)`` are rejected loudly — a typo'd
    chaos plan must not silently become a no-op.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    workers = [FleetWorker(index=i) for i in range(n_workers)]
    if fleet_cfg is None:
        return workers

    def _check(worker):
        if not 0 <= worker < n_workers:
            raise ValueError(
                f"fault plan names worker {worker} but the fleet has "
                f"{n_workers} workers"
            )
        return worker

    for worker, at_s in fleet_cfg.crashes:
        workers[_check(worker)].crash_at_s = float(at_s)
    stalls = {}
    for worker, at_s, duration_s in fleet_cfg.stalls:
        stalls.setdefault(_check(worker), []).append(
            (float(at_s), float(at_s) + float(duration_s))
        )
    for worker, windows in stalls.items():
        workers[worker].stalls = tuple(sorted(windows))
    slowdowns = {}
    for worker, at_s, factor in fleet_cfg.slowdowns:
        slowdowns.setdefault(_check(worker), []).append(
            (float(at_s), float(factor))
        )
    for worker, factors in slowdowns.items():
        workers[worker].slowdowns = tuple(sorted(factors))
    return workers
