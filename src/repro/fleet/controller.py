"""The fleet controller: dispatch, churn survival, exact accounting.

:class:`FleetController` runs N simulated render workers
(:mod:`repro.fleet.workers`) behind one serving surface.  It duck-types
the client surface of :class:`~repro.serve.service.RenderService`
(``submit`` / ``run`` / ``now_s`` / ``stats`` / ``slo`` / ``report``),
so the existing Poisson and closed-loop load generators
(:mod:`repro.serve.loadgen`) drive a fleet unchanged.

The robustness core, in the order a request meets it:

* **admission** — the serve layer's
  :class:`~repro.serve.admission.AdmissionController` ladder over the
  fleet-wide outstanding-ray backlog, with the per-(scene, renderer)
  EWMA optionally seeded from fitted cost models;
* **placement** — consistent-hash preference lists with replication
  (:mod:`repro.fleet.placement`): primary first, healthy before slow;
* **per-RPC deadlines** — every dispatch schedules a timeout; a reply
  that never comes (crash, stall, dropped reply) cannot hang a request;
* **hedging** — the first missed deadline immediately duplicates the
  request onto an untried replica; the first reply wins, the loser is
  ignored;
* **retries** — further misses retry under the shared
  :class:`~repro.robustness.backoff.BackoffPolicy`: jittered exponential
  delays on the *virtual* clock, budgeted against the request deadline,
  capped by ``max_retries``;
* **failure detection** — heartbeats on the fleet clock; a worker that
  misses ``heartbeat_miss_limit`` consecutive beats is declared dead;
* **rebalance** — on death the ring drops the worker (only its scenes
  move), replicas are promoted, and MoE experts are remapped onto the
  least-loaded survivors via
  :func:`repro.robustness.degradation.plan_remap` — the same greedy-LPT
  policy the chip level uses.

Every submitted request terminates in exactly one of
{completed, shed, failed} — :meth:`FleetController.accounting` proves
it, and the report prints the ``unaccounted requests: 0`` line CI
greps.  Pixels are exact and worker-independent: frames render through
the shared registry's models in ``slice_rays`` chunks, so a
replica-served frame is bit-identical to the primary's, and both match
a direct :func:`~repro.nerf.renderer.render_image` call.

Determinism: the event loop is a seeded discrete-event simulation —
arrival stream, fault schedule (:class:`FleetFaultConfig` sites wired
at init), reply-drop draws, and backoff jitter all derive from the
fault plan's seed, so a churn scenario replays bit-exactly.
"""

from __future__ import annotations

import heapq
import logging
from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..nerf.renderer import render_rays
from ..nerf.sampling import RayMarcher, SamplerConfig
from ..robustness.backoff import BackoffPolicy
from ..robustness.faults import FaultPlan
from ..serve.admission import AdmissionController, AdmissionPolicy
from ..serve.batching import RenderRequest, activate_request, slice_request
from ..serve.registry import SceneRegistry, UnknownSceneError
from ..serve.service import FAILED_UNKNOWN_SCENE
from ..serve.slo import SLOTracker, format_slo_report
from ..sim.multichip import MultiChipSystem
from .placement import HashRing, place_experts, rebalance_experts
from .workers import DEAD, HEALTHY, SLOW, workers_from_fault_config

logger = logging.getLogger("repro.fleet")

#: Terminal status when every RPC attempt for a request ran out.
FAILED_RPC_EXPIRED = "failed_rpc_expired"
#: Terminal status when no live worker remained to dispatch to.
FAILED_NO_WORKER = "failed_worker_unavailable"

# Event kinds, in tie-break priority order (same-instant replies are
# handled before deadlines: a reply landing exactly at the deadline
# still counts).
_EV_ARRIVAL = 0
_EV_REPLY = 1
_EV_DEADLINE = 2
_EV_RETRY = 3
_EV_HEARTBEAT = 4


def status_bucket(status: str) -> str:
    """Map a terminal status onto {completed, shed, failed}.

    Admission rejections (shed, expired/infeasible deadlines) count as
    *shed* — the service refused the work; *failed* is work the fleet
    accepted and could not finish.
    """
    if status == "completed":
        return "completed"
    if status.startswith("shed") or status.startswith("rejected"):
        return "shed"
    return "failed"


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-wide sizing, placement, and robustness knobs."""

    n_workers: int = 4
    #: Workers each scene is placed on (primary + replicas).
    replication: int = 2
    #: Virtual nodes per worker on the consistent-hash ring.
    vnodes: int = 32
    #: Per-RPC deadline on the fleet clock.
    rpc_timeout_s: float = 0.25
    #: Duplicate onto an untried replica at the first missed deadline.
    hedging: bool = True
    #: Retry pacing after (hedge and) deadline misses; delays elapse on
    #: the virtual clock and are budgeted against the request deadline.
    backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(
            base_s=0.02, multiplier=2.0, max_delay_s=0.25, jitter=0.5,
            max_retries=2,
        )
    )
    heartbeat_interval_s: float = 0.05
    #: Consecutive missed heartbeats before a worker is declared dead.
    heartbeat_miss_limit: int = 3
    #: Service-time inflation at which a worker is marked ``slow``
    #: (routing prefers healthy workers over slow ones).
    slow_factor: float = 2.0
    #: Rays of one hardware dispatch chunk — the bit-identity anchor
    #: (frames match ``render_image`` at this chunk size).
    slice_rays: int = 4096
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    slo_targets: dict = None
    keep_frames: bool = False
    ewma_alpha: float = 0.2

    def __post_init__(self):
        if self.n_workers < 1:
            raise ValueError("n_workers must be positive")
        if not 1 <= self.replication <= self.n_workers:
            raise ValueError("need 1 <= replication <= n_workers")
        if self.rpc_timeout_s <= 0:
            raise ValueError("rpc_timeout_s must be positive")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.heartbeat_miss_limit < 1:
            raise ValueError("heartbeat_miss_limit must be >= 1")
        if self.slow_factor <= 1.0:
            raise ValueError("slow_factor must exceed 1")
        if self.slice_rays < 1:
            raise ValueError("slice_rays must be positive")


@dataclass
class _Rpc:
    """One dispatched RPC attempt."""

    request_id: int
    worker: int
    hedge: bool
    service_s: float
    frame: object = None


@dataclass
class _Entry:
    """Ledger record of one admitted request."""

    request: RenderRequest
    handle: object
    marcher: object
    samples_per_ray: int
    resolution_scale: float
    degrade_level: int
    n_rays: int
    primary: int = None
    tried: list = field(default_factory=list)
    rpc_ids: list = field(default_factory=list)
    outstanding: set = field(default_factory=set)
    attempts: int = 0
    retries: int = 0
    hedged: bool = False
    pending_retry: bool = False
    status: str = None
    served_by: int = None
    via_hedge: bool = False


@dataclass
class FleetResponse:
    """Terminal outcome of one fleet request, as seen by the client."""

    request_id: int
    scene: str
    status: str
    priority: int
    degrade_level: int = 0
    latency_s: float = None
    frame: np.ndarray = None
    #: Worker that served the completing reply (``None`` unless completed).
    served_by: int = None
    #: Whether the completing reply came from a hedge/retry dispatch
    #: rather than the first (primary) RPC.
    via_hedge: bool = False

    @property
    def completed(self) -> bool:
        """Whether the request rendered to completion."""
        return self.status == "completed"


class FleetController:
    """N sharded, replicated render workers behind one serving surface."""

    def __init__(
        self,
        registry: SceneRegistry,
        config: FleetConfig = None,
        system: MultiChipSystem = None,
        fault_plan: FaultPlan = None,
        cost_models: dict = None,
    ):
        self.registry = registry
        self.config = config or FleetConfig()
        #: One board model shared for cost evaluation; per-worker *time*
        #: lives on the workers (identical boards, like the chip level).
        self.system = system or MultiChipSystem()
        self.fault_plan = fault_plan
        fleet_cfg = fault_plan.fleet if fault_plan is not None else None
        self.fleet_faults = fleet_cfg
        self.workers = workers_from_fault_config(
            self.config.n_workers, fleet_cfg
        )
        self.ring = HashRing(
            range(self.config.n_workers), vnodes=self.config.vnodes
        )
        for worker, experts in place_experts(self.config.n_workers).items():
            self.workers[worker].experts = list(experts)
        self.admission = AdmissionController(self.config.admission)
        self.slo = SLOTracker(self.config.slo_targets)
        seed = fault_plan.seed if fault_plan is not None else 0
        self._drop_rng = (
            fault_plan.rng("fleet.drop_reply")
            if fault_plan is not None else None
        )
        self._backoff_rng = (
            fault_plan.rng("fleet.backoff")
            if fault_plan is not None
            else np.random.default_rng(seed)
        )
        self._cost_models = dict(cost_models or {})
        #: Fleet clock, virtual seconds.
        self.now_s = 0.0
        self._events = []  # heap of (t, kind, seq, payload)
        self._seq = 0
        self._ledger = {}  # request_id -> _Entry
        self._rpcs = {}  # rpc_id -> _Rpc
        self._next_rpc = 0
        self._callbacks = {}
        self.responses = {}
        self._s_per_ray = {}
        self._outstanding_rays = 0
        self._pending_arrivals = 0
        self._in_flight = 0
        self._hb_armed = False
        self.offered = 0
        self.rpc_timeouts = 0
        self.retries = 0
        self.hedges = 0
        self.late_replies = 0
        self.dropped_replies = 0
        self.dead_workers = []
        #: Rebalance records, one per declared death.
        self.rebalances = []
        #: ``(t_s, priority, latency_s)`` per completion, for windowed
        #: attainment studies (churn dip and recovery).
        self.completions = []

    # -- client surface --------------------------------------------------

    def submit(self, request: RenderRequest, on_complete=None) -> int:
        """Queue a request for its ``arrival_s``; returns the request id."""
        self.offered += 1
        self._pending_arrivals += 1
        self._push(request.arrival_s, _EV_ARRIVAL, request)
        if on_complete is not None:
            self._callbacks[request.request_id] = on_complete
        return request.request_id

    def run(self, max_events: int = None) -> SLOTracker:
        """Replay the fleet timeline until all submitted work is terminal.

        Closed-loop clients may submit from completion callbacks; the
        loop drains until the event heap empties.  ``max_events`` is a
        safety valve for open-ended drivers.
        """
        handled = 0
        while self._events:
            t, kind, _, payload = heapq.heappop(self._events)
            self.now_s = max(self.now_s, t)
            if kind == _EV_ARRIVAL:
                self._pending_arrivals -= 1
                self._admit(payload)
            elif kind == _EV_REPLY:
                self._on_reply(payload)
            elif kind == _EV_DEADLINE:
                self._on_deadline(payload)
            elif kind == _EV_RETRY:
                self._on_retry(payload)
            elif kind == _EV_HEARTBEAT:
                self._on_heartbeat()
            handled += 1
            if max_events is not None and handled >= max_events:
                break
        return self.slo

    # -- event plumbing --------------------------------------------------

    def _push(self, t: float, kind: int, payload) -> None:
        heapq.heappush(self._events, (t, kind, self._seq, payload))
        self._seq += 1
        if kind in (_EV_ARRIVAL, _EV_REPLY, _EV_DEADLINE, _EV_RETRY):
            self._arm_heartbeat()

    def _arm_heartbeat(self) -> None:
        if self._hb_armed:
            return
        self._hb_armed = True
        t = self.now_s + self.config.heartbeat_interval_s
        heapq.heappush(self._events, (t, _EV_HEARTBEAT, self._seq, None))
        self._seq += 1

    # -- admission -------------------------------------------------------

    def _admit(self, request: RenderRequest) -> None:
        try:
            handle = self.registry.acquire(request.scene)
        except UnknownSceneError:
            self._reject(request, FAILED_UNKNOWN_SCENE)
            return
        full_spr = handle.marcher.config.max_samples
        key = (request.scene, handle.renderer, handle.precision)
        est = self._s_per_ray.get(key)
        if est is None:
            est = self._seed_s_per_ray(key)
        n_live = max(len(self.ring), 1)
        decision = self.admission.decide(
            request,
            self.now_s,
            self._outstanding_rays,
            full_spr,
            # The backlog is worked off by every live worker in
            # parallel, so the fleet-effective rate is n_live boards.
            est_s_per_ray=(est / n_live if est is not None else None),
        )
        if not decision.admitted:
            handle.release()
            self._reject(request, decision.status)
            return
        if decision.samples_per_ray == full_spr:
            marcher = handle.marcher
        else:
            marcher = RayMarcher(
                SamplerConfig(max_samples=decision.samples_per_ray)
            )
        entry = _Entry(
            request=request,
            handle=handle,
            marcher=marcher,
            samples_per_ray=decision.samples_per_ray,
            resolution_scale=decision.resolution_scale,
            degrade_level=decision.degrade_level,
            n_rays=max(
                int(request.n_rays * decision.resolution_scale**2), 1
            ),
        )
        self._ledger[request.request_id] = entry
        self._in_flight += 1
        self._outstanding_rays += entry.n_rays
        worker = self._pick_worker(request.scene, exclude=())
        if worker is None:
            self._fail(entry, FAILED_NO_WORKER)
            return
        entry.primary = worker
        self._dispatch(entry, worker)

    def _seed_s_per_ray(self, key: tuple) -> float:
        """Cold-start EWMA prior from a fitted cost model, if one fits.

        Mirrors the single-board service: models are profiled at full
        precision under one renderer family, so mismatched renderers and
        non-full precision keys start unseeded.
        """
        scene, renderer, precision = key
        model = self._cost_models.get(scene)
        if model is None or model.renderer != renderer or precision != "full":
            return None
        seed = float(model.sim_s_per_ray.mean)
        if seed <= 0.0:
            return None
        self._s_per_ray[key] = seed
        return seed

    # -- placement -------------------------------------------------------

    def _preference(self, scene: str) -> list:
        """Scene preference list: ring order, healthy before slow."""
        prefs = self.ring.preference(scene, self.config.replication)
        return sorted(
            prefs,
            key=lambda w: 0 if self.workers[w].health == HEALTHY else 1,
        )

    def _pick_worker(self, scene: str, exclude) -> int:
        """Best dispatch target for ``scene``, skipping ``exclude``.

        Preference-list workers first; any live worker as a fallback
        (the scene's data is in the shared registry, so any worker *can*
        serve it — off-preference dispatch just loses locality); the
        exclusion is relaxed before giving up entirely.
        """
        exclude = set(exclude)
        prefs = self._preference(scene)
        for worker in prefs:
            if worker not in exclude:
                return worker
        fallback = sorted(
            (w for w in self.ring.workers if w not in exclude),
            key=lambda w: (0 if self.workers[w].health == HEALTHY else 1, w),
        )
        if fallback:
            return fallback[0]
        return prefs[0] if prefs else None

    # -- dispatch --------------------------------------------------------

    def _dispatch(self, entry: _Entry, worker_idx: int, hedge: bool = False):
        now = self.now_s
        worker = self.workers[worker_idx]
        entry.attempts += 1
        entry.tried.append(worker_idx)
        rpc_id = self._next_rpc
        self._next_rpc += 1
        entry.rpc_ids.append(rpc_id)
        entry.outstanding.add(rpc_id)
        frame = None
        service_s = 0.0
        reply_t = None
        if worker.alive_at(now):
            frame, billed, service_s = self._execute(entry, worker, now)
            end = worker.occupy(now, service_s)
            worker.billed_samples += billed
            reply_t = worker.reply_time(end)
            if (
                reply_t is not None
                and self.fleet_faults is not None
                and self.fleet_faults.drop_reply_fraction > 0.0
                and float(self._drop_rng.random())
                < self.fleet_faults.drop_reply_fraction
            ):
                self.dropped_replies += 1
                reply_t = None
        self._rpcs[rpc_id] = _Rpc(
            request_id=entry.request.request_id,
            worker=worker_idx,
            hedge=hedge,
            service_s=service_s,
            frame=frame,
        )
        if reply_t is not None:
            self._push(reply_t, _EV_REPLY, rpc_id)
        self._push(now + self.config.rpc_timeout_s, _EV_DEADLINE, rpc_id)

    def _execute(self, entry: _Entry, worker, now: float) -> tuple:
        """Render the request's pixels and price its board time.

        Rendering happens in ``slice_rays`` chunks through the shared
        registry models — the exact computation
        :func:`~repro.nerf.renderer.render_image` performs at the same
        chunk size, on *any* worker, which is the bit-identity
        guarantee.  Board time is the scene trace stretched to the
        billed sample volume (the serve layer's billing model), scaled
        by the worker's current service multiplier (inherited experts,
        slow-degrades).
        """
        handle = entry.handle
        active = activate_request(
            entry.request,
            handle,
            entry.marcher,
            entry.samples_per_ray,
            entry.resolution_scale,
            entry.degrade_level,
            now,
        )
        slices = slice_request(active, self.config.slice_rays)
        billed = 0.0
        for item in slices:
            colors, samples, _ = render_rays(
                handle.model,
                active.origins[item.start : item.stop],
                active.directions[item.start : item.stop],
                active.marcher,
                occupancy=handle.occupancy,
                background=handle.background,
            )
            active.out[item.start : item.stop] = colors
            billed += len(samples) * entry.request.hw_scale
        active.finish("completed", now)
        board_s = self._board_time(entry.request.scene, handle.trace, billed)
        return active.frame, billed, board_s * worker.service_multiplier(now)

    def _board_time(self, scene: str, trace, billed_samples: float) -> float:
        """One worker-board's simulated time for a billed sample volume."""
        n = self.system.config.n_chips
        if billed_samples <= 0 or trace.n_samples == 0:
            comm = self.system.communication([trace] * n, workload_scale=0.0)
            return comm.transfer_s
        report = self.system.simulate_batch(
            scene,
            [trace] * n,
            workload_scale=billed_samples / trace.n_samples,
        )
        return report.runtime_s

    # -- replies, deadlines, retries -------------------------------------

    def _on_reply(self, rpc_id: int) -> None:
        rpc = self._rpcs.get(rpc_id)
        if rpc is None:
            return
        entry = self._ledger.get(rpc.request_id)
        if entry is None or entry.status is not None:
            self.late_replies += 1
            return
        entry.outstanding.discard(rpc_id)
        self.workers[rpc.worker].completed_rpcs += 1
        self._complete(entry, rpc)

    def _on_deadline(self, rpc_id: int) -> None:
        rpc = self._rpcs.get(rpc_id)
        if rpc is None:
            return
        entry = self._ledger.get(rpc.request_id)
        if entry is None or entry.status is not None:
            return
        if rpc_id not in entry.outstanding:
            return  # the reply beat the deadline
        entry.outstanding.discard(rpc_id)
        self.rpc_timeouts += 1
        if self.config.hedging and not entry.hedged:
            worker = self._pick_worker(
                entry.request.scene, exclude=entry.tried
            )
            if worker is not None and worker not in entry.tried:
                entry.hedged = True
                self.hedges += 1
                self._dispatch(entry, worker, hedge=True)
                return
        retry = entry.retries + 1
        deadline = entry.request.deadline_s
        budget = deadline - self.now_s if deadline is not None else None
        if self.config.backoff.within_budget(retry, budget):
            entry.retries = retry
            entry.pending_retry = True
            self.retries += 1
            delay = self.config.backoff.delay_s(
                retry, self._backoff_rng, budget_s=budget
            )
            self._push(
                self.now_s + delay, _EV_RETRY, entry.request.request_id
            )
            return
        if not entry.outstanding and not entry.pending_retry:
            self._fail(entry, FAILED_RPC_EXPIRED)

    def _on_retry(self, request_id: int) -> None:
        entry = self._ledger.get(request_id)
        if entry is None or entry.status is not None:
            return
        entry.pending_retry = False
        worker = self._pick_worker(entry.request.scene, exclude=entry.tried)
        if worker is None:
            if not entry.outstanding:
                self._fail(entry, FAILED_NO_WORKER)
            return
        self._dispatch(entry, worker, hedge=True)

    # -- heartbeats and failure detection --------------------------------

    def _on_heartbeat(self) -> None:
        self._hb_armed = False
        now = self.now_s
        for worker in self.workers:
            if worker.health == DEAD:
                continue
            if worker.responsive_at(now):
                worker.missed_heartbeats = 0
                worker.health = (
                    SLOW
                    if worker.service_multiplier(now) >= self.config.slow_factor
                    else HEALTHY
                )
            else:
                worker.missed_heartbeats += 1
                if worker.missed_heartbeats >= self.config.heartbeat_miss_limit:
                    self._declare_dead(worker)
        if self._in_flight > 0 or self._pending_arrivals > 0:
            self._arm_heartbeat()

    def _declare_dead(self, worker) -> None:
        """Fence a dead worker and rebalance its shards and experts."""
        worker.health = DEAD
        self.dead_workers.append(worker.index)
        scenes = [s["name"] for s in self.registry.scenes()]
        before = {s: self.ring.preference(s, self.config.replication)
                  for s in scenes}
        self.ring.remove(worker.index)
        after = {s: self.ring.preference(s, self.config.replication)
                 for s in scenes}
        promoted = sum(
            1
            for s in scenes
            if before[s] and after[s]
            and before[s][0] == worker.index
            and after[s][0] in before[s]
        )
        moved = sum(
            1
            for s in scenes
            if before[s] and after[s]
            and before[s][0] == worker.index
            and after[s][0] not in before[s]
        )
        survivors = [w for w in range(self.config.n_workers)
                     if w not in self.dead_workers]
        remapped = {}
        if survivors:
            loads = [
                1.0 + self.workers[i].billed_samples
                for i in range(self.config.n_workers)
            ]
            assignment = rebalance_experts(
                self.config.n_workers, self.dead_workers, loads
            )
            for idx, experts in assignment.items():
                self.workers[idx].experts = sorted(experts)
            remapped = {idx: sorted(e) for idx, e in assignment.items()}
        record = {
            "t_s": self.now_s,
            "worker": worker.index,
            "survivors": len(survivors),
            "scenes_promoted": promoted,
            "scenes_moved": moved,
            "experts": remapped,
        }
        self.rebalances.append(record)
        logger.warning(
            "fleet rebalance: worker %d declared dead at t=%.3fs; "
            "%d scene(s) promoted to replicas, %d moved; experts "
            "remapped onto %d survivor(s)",
            worker.index, self.now_s, promoted, moved, len(survivors),
        )
        tel = telemetry.get_session()
        if tel.enabled:
            tel.metrics.counter("fleet.rebalances").inc()
            tel.metrics.gauge("fleet.workers.dead").set(
                float(len(self.dead_workers))
            )

    # -- terminal outcomes -----------------------------------------------

    def _complete(self, entry: _Entry, rpc: _Rpc) -> None:
        request = entry.request
        latency = self.now_s - request.arrival_s
        entry.status = "completed"
        entry.served_by = rpc.worker
        entry.via_hedge = rpc.hedge
        self.slo.record(request.priority, "completed", latency)
        self.completions.append((self.now_s, request.priority, latency))
        key = (request.scene, entry.handle.renderer, entry.handle.precision)
        if rpc.service_s > 0 and entry.n_rays > 0:
            observed = rpc.service_s / entry.n_rays
            previous = self._s_per_ray.get(key)
            if previous is None:
                self._s_per_ray[key] = observed
            else:
                alpha = self.config.ewma_alpha
                self._s_per_ray[key] = (
                    alpha * observed + (1 - alpha) * previous
                )
        callback = self._callbacks.pop(request.request_id, None)
        response = FleetResponse(
            request_id=request.request_id,
            scene=request.scene,
            status="completed",
            priority=request.priority,
            degrade_level=entry.degrade_level,
            latency_s=latency,
            frame=(
                rpc.frame
                if (self.config.keep_frames or callback is not None)
                else None
            ),
            served_by=rpc.worker,
            via_hedge=rpc.hedge,
        )
        self._settle(entry, response, callback)
        tel = telemetry.get_session()
        if tel.enabled:
            tel.metrics.counter("fleet.requests.completed").inc()
            tel.metrics.histogram(
                "fleet.latency_s", min_bound=1e-9
            ).observe(latency)

    def _fail(self, entry: _Entry, status: str) -> None:
        request = entry.request
        entry.status = status
        self.slo.record(request.priority, status)
        callback = self._callbacks.pop(request.request_id, None)
        response = FleetResponse(
            request_id=request.request_id,
            scene=request.scene,
            status=status,
            priority=request.priority,
            degrade_level=entry.degrade_level,
        )
        self._settle(entry, response, callback)
        tel = telemetry.get_session()
        if tel.enabled:
            tel.metrics.counter(f"fleet.requests.{status}").inc()

    def _settle(self, entry: _Entry, response: FleetResponse, callback):
        """Shared terminal bookkeeping: exactly-once by construction."""
        entry.handle.release()
        self._in_flight -= 1
        self._outstanding_rays -= entry.n_rays
        for rpc_id in entry.rpc_ids:
            self._rpcs.pop(rpc_id, None)
        entry.outstanding.clear()
        if not self.config.keep_frames:
            stored = FleetResponse(**{**response.__dict__, "frame": None})
        else:
            stored = response
        self.responses[response.request_id] = stored
        if callback is not None:
            callback(response)

    def _reject(self, request: RenderRequest, status: str) -> None:
        """Terminal pre-queue outcome (never entered the ledger)."""
        self.slo.record(request.priority, status)
        response = FleetResponse(
            request_id=request.request_id,
            scene=request.scene,
            status=status,
            priority=request.priority,
        )
        self.responses[request.request_id] = response
        callback = self._callbacks.pop(request.request_id, None)
        tel = telemetry.get_session()
        if tel.enabled:
            tel.metrics.counter(f"fleet.requests.{status}").inc()
        if callback is not None:
            callback(response)

    # -- reporting -------------------------------------------------------

    def accounting(self) -> dict:
        """Exactly-once ledger: offered = completed + shed + failed.

        ``unaccounted`` must be 0 after :meth:`run` drains — the
        invariant the chaos tests and the CI smoke grep assert.
        """
        buckets = {"completed": 0, "shed": 0, "failed": 0}
        for status, count in self.slo.status_counts().items():
            buckets[status_bucket(status)] += count
        terminal = sum(buckets.values())
        return {
            "offered": self.offered,
            "completed": buckets["completed"],
            "shed": buckets["shed"],
            "failed": buckets["failed"],
            "unaccounted": self.offered - terminal,
        }

    def attainment_between(self, t0: float, t1: float) -> float:
        """SLO attainment over completions in ``[t0, t1)``.

        The windowed view the churn study reads: attainment before the
        kill, through the dip, and after the rebalance.  ``nan`` when
        the window holds no completions.
        """
        total = 0
        met = 0
        for t, priority, latency in self.completions:
            if not t0 <= t < t1:
                continue
            target = self.slo.targets.get(priority)
            if target is None:
                continue
            total += 1
            if latency <= target.latency_s:
                met += 1
        return met / total if total else float("nan")

    def stats(self) -> dict:
        """Operational counters (superset of the serve layer's keys)."""
        busy = sum(w.busy_s for w in self.workers)
        horizon = self.now_s * self.config.n_workers
        accounting = self.accounting()
        return {
            "now_s": self.now_s,
            "completed": self.slo.completed,
            "statuses": self.slo.status_counts(),
            "offered": self.offered,
            "in_flight": self._in_flight,
            "unaccounted": accounting["unaccounted"],
            "shed": accounting["shed"],
            "failed": accounting["failed"],
            "admitted": self.admission.admitted,
            "degraded": self.admission.degraded,
            "utilization": busy / horizon if horizon > 0 else 0.0,
            "rpc_timeouts": self.rpc_timeouts,
            "retries": self.retries,
            "hedges": self.hedges,
            "late_replies": self.late_replies,
            "dropped_replies": self.dropped_replies,
            "rebalances": len(self.rebalances),
            "dead_workers": list(self.dead_workers),
            "workers": [w.summary() for w in self.workers],
        }

    def report(self) -> str:
        """Greppable fleet report: SLO table + fleet panel + ledger."""
        return format_fleet_report(self)


def format_fleet_report(controller: FleetController) -> str:
    """Render the fleet run report (the text CI smoke jobs grep)."""
    stats = controller.stats()
    accounting = controller.accounting()
    lines = [format_slo_report(controller.slo), "-" * 72, "fleet"]
    lines.append(
        f"workers: {controller.config.n_workers} "
        f"({len(controller.dead_workers)} dead)   "
        f"replication: {controller.config.replication}   "
        f"utilization: {stats['utilization']:.0%}"
    )
    for worker in controller.workers:
        summ = worker.summary()
        lines.append(
            f"  worker {summ['index']}: {summ['health']:<8} "
            f"experts={summ['experts']} "
            f"rpcs={summ['completed_rpcs']} busy={summ['busy_s']:.3f}s"
        )
    lines.append(
        f"rpc: timeouts={stats['rpc_timeouts']} retries={stats['retries']} "
        f"hedges={stats['hedges']} dropped_replies={stats['dropped_replies']} "
        f"late_replies={stats['late_replies']}"
    )
    for record in controller.rebalances:
        lines.append(
            f"fleet rebalance: worker {record['worker']} declared dead at "
            f"t={record['t_s']:.3f}s; {record['scenes_promoted']} scene(s) "
            f"promoted, {record['scenes_moved']} moved; experts remapped "
            f"onto {record['survivors']} survivor(s)"
        )
    lines.append(
        f"accounting: offered {accounting['offered']} = "
        f"completed {accounting['completed']} + shed {accounting['shed']} + "
        f"failed {accounting['failed']}"
    )
    lines.append(f"unaccounted requests: {accounting['unaccounted']}")
    return "\n".join(lines)
