"""Scene and expert placement across the render fleet.

Two placement policies, mirroring the two levels the paper scales at:

* **scenes** ride a consistent-hash ring with virtual nodes
  (:class:`HashRing`): each scene hashes to a primary worker plus
  ``replication - 1`` replicas (its *preference list*, the next distinct
  workers clockwise).  When a worker dies, only the scenes it carried
  move — the defining property of consistent hashing, and the reason
  fleet churn does not reshuffle every placement;
* **MoE experts** are placed one-per-worker exactly as
  :class:`~repro.sim.multichip.MultiChipSystem` places them one-per-chip
  (expert *i* on worker *i*), and on worker death are remapped onto the
  least-loaded survivors by the same greedy-LPT policy the chip level
  uses — :func:`repro.robustness.degradation.plan_remap` is called
  directly, not reimplemented.

All hashing is CRC32-based, so placement is deterministic across
processes and Python hash-randomization settings.
"""

from __future__ import annotations

import zlib

from ..robustness.degradation import plan_remap


def stable_hash(key: str) -> int:
    """Deterministic 32-bit hash of a string key (CRC32).

    ``hash()`` is salted per process (``PYTHONHASHSEED``), which would
    make placement differ run to run; CRC32 is stable everywhere.
    """
    return zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF


class HashRing:
    """Consistent-hash ring over worker indices, with virtual nodes.

    Each worker contributes ``vnodes`` points on the ring; a key's
    preference list is the first ``n`` *distinct* workers clockwise from
    the key's own point.  Removing a worker removes only its points, so
    keys that did not map to it keep their placement.
    """

    def __init__(self, workers, vnodes: int = 32):
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._workers = set()
        self._points = []  # sorted [(point, worker), ...]
        for worker in workers:
            self.add(int(worker))

    @property
    def workers(self) -> list:
        """Live worker indices, ascending."""
        return sorted(self._workers)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker: int) -> bool:
        return int(worker) in self._workers

    def add(self, worker: int) -> None:
        """Add a worker's virtual nodes to the ring (idempotent)."""
        worker = int(worker)
        if worker in self._workers:
            return
        self._workers.add(worker)
        for v in range(self.vnodes):
            self._points.append((stable_hash(f"worker-{worker}/vnode-{v}"), worker))
        self._points.sort()

    def remove(self, worker: int) -> None:
        """Remove a worker (e.g. declared dead); its keys move, others stay."""
        worker = int(worker)
        if worker not in self._workers:
            return
        self._workers.discard(worker)
        self._points = [(p, w) for p, w in self._points if w != worker]

    def preference(self, key: str, n: int) -> list:
        """First ``n`` distinct workers clockwise from ``key``'s point.

        Entry 0 is the key's primary; the rest are its replicas in
        takeover order.  Returns fewer than ``n`` workers when the ring
        holds fewer.
        """
        if not self._points:
            return []
        point = stable_hash(key)
        # Binary search for the first ring point at or after the key.
        lo, hi = 0, len(self._points)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._points[mid][0] < point:
                lo = mid + 1
            else:
                hi = mid
        preference = []
        for i in range(len(self._points)):
            worker = self._points[(lo + i) % len(self._points)][1]
            if worker not in preference:
                preference.append(worker)
                if len(preference) >= n:
                    break
        return preference


def place_scenes(scene_names, ring: HashRing, replication: int) -> dict:
    """Preference lists for every scene: ``{scene: [primary, replica, ...]}``."""
    if replication < 1:
        raise ValueError("replication must be positive")
    return {
        scene: ring.preference(scene, replication) for scene in scene_names
    }


def place_experts(n_workers: int) -> dict:
    """Initial MoE expert assignment: expert *i* on worker *i*.

    The identity mapping :class:`~repro.sim.multichip.MultiChipSystem`
    uses for healthy boards, lifted one level up.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    return {worker: [worker] for worker in range(n_workers)}


def rebalance_experts(n_workers: int, dead_workers, loads) -> dict:
    """Remap every expert onto the surviving workers (greedy LPT).

    Thin wrapper over :func:`repro.robustness.degradation.plan_remap`
    with workers in place of chips: each survivor keeps its own expert,
    dead workers' experts go to the least-loaded survivor, heaviest
    first.  ``loads[i]`` is expert *i*'s observed load proxy.
    """
    return plan_remap(n_workers, dead_workers, loads)
