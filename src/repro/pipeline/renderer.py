"""The staged :class:`Renderer`: sampler -> field -> compositor.

Re-expresses :func:`repro.nerf.renderer.render_rays` /
:func:`~repro.nerf.renderer.render_image` as a composition of the stage
interfaces in :mod:`repro.pipeline.stages`, preserving the exact
operation sequence — the same marcher call, the same empty-batch
background fill, the same forward + composite (or ERT) path, the same
fault scrub — so a staged renderer is provably bit-identical to the
monolithic functions (``tests/test_pipeline.py`` holds the proofs).
"""

from __future__ import annotations

import numpy as np

from ..nerf.camera import Camera
from ..nerf.checkpoint import save_model
from ..nerf.rays import generate_rays
from ..nerf.renderer import scrub_rendered_colors
from .stages import Compositor, Field, OccupancySampler, Sampler, VolumeCompositor


class Renderer:
    """A named, fully-assembled rendering pipeline.

    Composes a :class:`~repro.pipeline.stages.Sampler`, a
    :class:`~repro.pipeline.stages.Field`, and a
    :class:`~repro.pipeline.stages.Compositor` under a renderer ``name``
    (the tag the serving, perf, obs, and robustness layers key on).
    Construct directly, via :func:`repro.pipeline.registry.create`, or
    by wrapping an existing model with
    :func:`repro.pipeline.registry.wrap_model`.
    """

    def __init__(
        self,
        name: str,
        field: Field,
        sampler: Sampler = None,
        compositor: Compositor = None,
        background: float = 1.0,
        precision: str = "full",
    ):
        self.name = name
        self.field = field
        self.sampler = sampler or OccupancySampler()
        self.compositor = compositor or VolumeCompositor()
        self.background = background
        #: Inference precision tag (``"full"``, ``"fp16"``,
        #: ``"fp16-int8"``); serving keys its admission EWMA on it.
        self.precision = precision

    @property
    def encoding(self):
        """The field's encoding stage (``None`` for encoding-free fields)."""
        return getattr(self.field, "encoding", None)

    @property
    def occupancy(self):
        """The sampler's occupancy grid when it has one, else ``None``."""
        return getattr(self.sampler, "occupancy", None)

    @property
    def marcher(self):
        """The sampler's ray marcher when it has one, else ``None``."""
        return getattr(self.sampler, "marcher", None)

    @property
    def n_parameters(self) -> int:
        """Learnable parameter count of the field."""
        return sum(p.size for p in self.field.parameters().values())

    def render_rays(self, origins: np.ndarray, directions: np.ndarray) -> tuple:
        """Render a unit-space ray batch: ``(colors, batch, result)``.

        Stage-for-stage the same operation sequence as
        :func:`repro.nerf.renderer.render_rays`, so outputs are
        bit-identical for equivalent stage configurations.
        """
        batch = self.sampler.sample(origins, directions)
        if len(batch) == 0:
            n = np.atleast_2d(origins).shape[0]
            colors = np.full((n, 3), self.background, dtype=np.float64)
            return colors, batch, None
        colors, result = self.compositor.render(
            self.field, batch, self.background
        )
        colors = scrub_rendered_colors(colors, self.background)
        return colors, batch, result

    def render_image(
        self,
        camera: Camera,
        normalizer,
        chunk: int = 8192,
        jobs: int = 1,
    ) -> np.ndarray:
        """Render a full frame, chunked to bound peak memory.

        Mirrors :func:`repro.nerf.renderer.render_image`: fixed
        ``chunk``-sized pixel slices through :meth:`render_rays` into a
        float32 frame buffer, bit-identical across ``jobs`` settings.
        Returns an ``(h, w, 3)`` float32 image in [0, 1].
        """
        if chunk < 1:
            raise ValueError("chunk must be positive")
        from ..parallel.chunking import parallel_map_chunks

        rays = generate_rays(camera)
        origins, directions = normalizer.rays_to_unit(
            rays.origins, rays.directions
        )
        out = np.empty((camera.n_pixels, 3), dtype=np.float32)

        def render_chunk(start, stop):
            colors, _, _ = self.render_rays(
                origins[start:stop], directions[start:stop]
            )
            out[start:stop] = colors

        parallel_map_chunks(render_chunk, camera.n_pixels, chunk, jobs=jobs)
        return np.clip(out, 0.0, 1.0).reshape(camera.height, camera.width, 3)

    def save(self, path, normalizer=None) -> int:
        """Checkpoint the renderer's field (+ occupancy/normalizer state).

        Delegates to :func:`repro.nerf.checkpoint.save_model`; the
        archive round-trips through
        :func:`repro.pipeline.registry.load_renderer`, which restores
        the renderer name from the field type.  Returns the payload size
        in bytes.
        """
        return save_model(
            self.field, path, occupancy=self.occupancy, normalizer=normalizer
        )
