"""Unified renderer pipeline: swappable stages behind one interface.

The Uni-Render direction: one serving/perf/robustness substrate that
executes *diverse* neural renderers.  A
:class:`~repro.pipeline.renderer.Renderer` decomposes into four
swappable stages — :class:`~repro.pipeline.stages.Encoding`,
:class:`~repro.pipeline.stages.Field`,
:class:`~repro.pipeline.stages.Sampler`,
:class:`~repro.pipeline.stages.Compositor` — and the
:class:`~repro.pipeline.registry.RendererRegistry` constructs renderers
by name + config dict.  Two renderers ship in-tree:

* ``ngp`` — the reference Instant-NGP path (hash encoding, MLP field,
  occupancy sampler, ERT-aware compositor), proven bit-identical to the
  monolithic :func:`repro.nerf.renderer.render_image`;
* ``tensorf`` — the VM plane/line factor decomposition
  (:class:`~repro.nerf.tensorf.TensoRFModel`) behind the same stages.

Renderer *names* are the tag the rest of the repo keys on: scene
deployment (:mod:`repro.serve.registry`), per-(scene, renderer)
admission estimates (:mod:`repro.serve.service`), per-renderer bench
baselines (:mod:`repro.perf`), fault-site classification
(:mod:`repro.robustness.injection`), and cost models
(:mod:`repro.obs.costmodel`).  ``docs/renderers.md`` is the authoring
guide for adding a renderer.
"""

from .renderer import Renderer
from .registry import (
    DEFAULT_REGISTRY,
    RendererRegistry,
    UnknownRendererError,
    available,
    create,
    load_renderer,
    renderer_name_for,
    wrap_model,
)
from .stages import (
    Compositor,
    Encoding,
    Field,
    OccupancySampler,
    Sampler,
    VolumeCompositor,
)

__all__ = [
    "Renderer",
    "RendererRegistry",
    "UnknownRendererError",
    "DEFAULT_REGISTRY",
    "available",
    "create",
    "load_renderer",
    "renderer_name_for",
    "wrap_model",
    "Encoding",
    "Field",
    "Sampler",
    "Compositor",
    "OccupancySampler",
    "VolumeCompositor",
]
