"""Renderer registry: construct renderers by name + config dict.

The registry is the single place the rest of the repo resolves a
renderer *name* — ``"ngp"`` (hash encoding + MLP field + occupancy
sampler + ERT-aware compositor) or ``"tensorf"`` (VM plane/line factor
encoding) out of the box — to an assembled
:class:`~repro.pipeline.renderer.Renderer`.  Serving tags deployed
scenes with these names (:meth:`repro.serve.registry.SceneRegistry.deploy`),
the admission EWMA and perf baselines key on them, and fault injection /
cost models classify by them, so registering a factory here is how a new
renderer becomes visible to every downstream layer (see
``docs/renderers.md``).
"""

from __future__ import annotations

from ..nerf.checkpoint import load_scene
from ..nerf.hash_encoding import HashEncodingConfig
from ..nerf.model import InstantNGPModel, ModelConfig
from ..nerf.moe import MoENeRF
from ..nerf.occupancy import OccupancyGrid
from ..nerf.precision import FULL_PRECISION, LowPrecisionField
from ..nerf.sampling import RayMarcher, SamplerConfig
from ..nerf.tensorf import DenseGridField, TensoRFConfig, TensoRFModel
from .renderer import Renderer
from .stages import OccupancySampler, PrecisionCompositor, VolumeCompositor


class UnknownRendererError(KeyError):
    """The named renderer has no registered factory."""


def _split_common(config: dict) -> tuple:
    """Pop the stage-assembly keys shared by every factory.

    Returns ``(model_config, max_samples, background, ert_threshold,
    precision, switch_threshold)``; what remains in ``model_config`` is
    the field's own hyper-parameter dict.  ``precision`` is ``"full"``
    (the default), ``"fp16"``, or ``"fp16-int8"``;
    ``switch_threshold`` enables transmittance-adaptive precision on top
    of a non-full mode.
    """
    cfg = dict(config or {})
    max_samples = cfg.pop("max_samples", 64)
    background = cfg.pop("background", 1.0)
    ert_threshold = cfg.pop("ert_threshold", None)
    precision = cfg.pop("precision", FULL_PRECISION) or FULL_PRECISION
    switch_threshold = cfg.pop("switch_threshold", None)
    return cfg, max_samples, background, ert_threshold, precision, switch_threshold


def _precision_compositor(
    model, ert_threshold, precision, switch_threshold
):
    """The compositing stage for a precision mode (and its guards)."""
    if precision == FULL_PRECISION:
        if switch_threshold is not None:
            raise ValueError(
                "switch_threshold needs a low-precision mode "
                '(precision="fp16" or "fp16-int8")'
            )
        return VolumeCompositor(ert_threshold)
    return PrecisionCompositor(
        LowPrecisionField(model, mode=precision),
        ert_threshold=ert_threshold,
        switch_threshold=switch_threshold,
    )


def _assemble(
    name,
    model,
    max_samples,
    background,
    ert_threshold,
    precision=FULL_PRECISION,
    switch_threshold=None,
) -> Renderer:
    """Standard stage assembly shared by the stock factories."""
    return Renderer(
        name,
        model,
        sampler=OccupancySampler(
            RayMarcher(SamplerConfig(max_samples=max_samples))
        ),
        compositor=_precision_compositor(
            model, ert_threshold, precision, switch_threshold
        ),
        background=background,
        precision=precision,
    )


def _build_ngp(config: dict, seed: int) -> Renderer:
    """Factory for the reference Instant-NGP renderer.

    Config keys: ``encoding`` (a
    :class:`~repro.nerf.hash_encoding.HashEncodingConfig` kwargs dict),
    any :class:`~repro.nerf.model.ModelConfig` field, plus the shared
    ``max_samples`` / ``background`` / ``ert_threshold`` /
    ``precision`` / ``switch_threshold``.
    """
    cfg, max_samples, background, ert, precision, switch = _split_common(config)
    encoding = cfg.pop("encoding", None)
    model_config = ModelConfig(
        encoding=(
            HashEncodingConfig(**encoding)
            if encoding is not None
            else HashEncodingConfig()
        ),
        **cfg,
    )
    model = InstantNGPModel(model_config, seed=seed)
    return _assemble("ngp", model, max_samples, background, ert, precision, switch)


def _build_tensorf(config: dict, seed: int) -> Renderer:
    """Factory for the TensoRF VM-decomposition renderer.

    Config keys: any :class:`~repro.nerf.tensorf.TensoRFConfig` field,
    plus the shared ``max_samples`` / ``background`` /
    ``ert_threshold`` / ``precision`` / ``switch_threshold`` (though
    non-full precision rejects VM fields — snapshots need a hash
    encoding).
    """
    cfg, max_samples, background, ert, precision, switch = _split_common(config)
    model = TensoRFModel(TensoRFConfig(**cfg), seed=seed)
    return _assemble("tensorf", model, max_samples, background, ert, precision, switch)


class RendererRegistry:
    """Name -> factory registry for renderer construction.

    Factories are callables ``factory(config: dict, seed: int) ->
    Renderer``.  A fresh registry starts empty; the module-level
    :data:`DEFAULT_REGISTRY` ships with the stock ``ngp`` and
    ``tensorf`` factories registered.
    """

    def __init__(self):
        self._factories = {}

    def register(self, name: str, factory) -> None:
        """Register (or replace) the factory for ``name``."""
        if not name:
            raise ValueError("renderer name must be non-empty")
        self._factories[name] = factory

    def available(self) -> list:
        """Registered renderer names, sorted."""
        return sorted(self._factories)

    def create(self, name: str, config: dict = None, seed: int = 0) -> Renderer:
        """Build the named renderer from its config dict."""
        factory = self._factories.get(name)
        if factory is None:
            raise UnknownRendererError(
                f"unknown renderer {name!r} (available: {self.available()})"
            )
        return factory(config, seed)


#: The process-wide registry the serving/perf/experiment layers consult.
DEFAULT_REGISTRY = RendererRegistry()
DEFAULT_REGISTRY.register("ngp", _build_ngp)
DEFAULT_REGISTRY.register("tensorf", _build_tensorf)

#: Model type -> renderer name, most specific first (``MoENeRF`` serves
#: NGP-shaped experts; ``DenseGridField`` is the dense TensoRF baseline).
_MODEL_RENDERERS = (
    (TensoRFModel, "tensorf"),
    (DenseGridField, "tensorf"),
    (MoENeRF, "ngp"),
    (InstantNGPModel, "ngp"),
)


def create(name: str, config: dict = None, seed: int = 0) -> Renderer:
    """Build a renderer from the default registry."""
    return DEFAULT_REGISTRY.create(name, config=config, seed=seed)


def available() -> list:
    """Renderer names registered in the default registry."""
    return DEFAULT_REGISTRY.available()


def renderer_name_for(model) -> str:
    """The renderer family an existing model instance belongs to.

    Used wherever a bare model crosses a renderer-tagged boundary (scene
    deployment, checkpoint loads): ``InstantNGPModel`` / ``MoENeRF`` map
    to ``"ngp"``, ``TensoRFModel`` / ``DenseGridField`` to
    ``"tensorf"``, a :class:`~repro.nerf.precision.LowPrecisionField`
    to its source model's family, and anything unrecognized falls back
    to its lowered type name so tags stay stable rather than raising.
    """
    if isinstance(model, LowPrecisionField):
        return renderer_name_for(model.source)
    for model_type, name in _MODEL_RENDERERS:
        if isinstance(model, model_type):
            return name
    return type(model).__name__.lower()


def wrap_model(
    model,
    name: str = None,
    marcher: RayMarcher = None,
    occupancy: OccupancyGrid = None,
    background: float = 1.0,
    ert_threshold: float = None,
    precision: str = FULL_PRECISION,
    switch_threshold: float = None,
) -> Renderer:
    """Lift an existing model into a staged :class:`Renderer`.

    The inverse of "construct by name": takes a trained (or in-training)
    field plus its serving state and assembles the standard stage stack
    around it.  ``name`` defaults to :func:`renderer_name_for`.  A
    non-full ``precision`` snapshots the model into a
    :class:`~repro.nerf.precision.LowPrecisionField` and composites
    through it (adaptively, when ``switch_threshold`` is set); the model
    itself stays the renderer's trainable field.
    """
    precision = precision or FULL_PRECISION
    return Renderer(
        name or renderer_name_for(model),
        model,
        sampler=OccupancySampler(
            marcher or RayMarcher(SamplerConfig()), occupancy
        ),
        compositor=_precision_compositor(
            model, ert_threshold, precision, switch_threshold
        ),
        background=background,
        precision=precision,
    )


def load_renderer(path, background: float = 1.0) -> tuple:
    """Load a checkpoint as a renderer: ``(renderer, normalizer)``.

    Restores the field, occupancy grid, and normalizer via
    :func:`repro.nerf.checkpoint.load_scene` and wraps them with the
    renderer name inferred from the field type; ``normalizer`` is
    ``None`` for weights-only archives.
    """
    model, occupancy, normalizer = load_scene(path)
    renderer = wrap_model(
        model, occupancy=occupancy, background=background
    )
    return renderer, normalizer
