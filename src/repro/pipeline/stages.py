"""The four renderer stage interfaces and their stock implementations.

A :class:`~repro.pipeline.renderer.Renderer` is a composition of four
swappable stages, mirroring the paper's pipeline decomposition:

* :class:`Encoding` — positions to feature rows (Stage II's gather);
* :class:`Field` — positions + directions to ``(sigma, rgb)`` (Stage
  II/III compute: encoding + MLP heads);
* :class:`Sampler` — rays to a :class:`~repro.nerf.sampling.SampleBatch`
  (Stage I's occupancy-gated marching);
* :class:`Compositor` — per-sample ``(sigma, rgb)`` to per-ray colors
  (Stage III's transmittance-weighted blend, optionally ERT-truncated).

The interfaces are *structural*: existing classes
(:class:`~repro.nerf.hash_encoding.HashEncoding`,
:class:`~repro.nerf.model.InstantNGPModel`, ...) satisfy them without
inheriting — the bases exist to document the contract and to give new
renderers a checked skeleton to subclass.  See ``docs/renderers.md`` for
the authoring guide and the obligations (bit-identity, bench, fault
classification) a new renderer must meet.
"""

from __future__ import annotations

import numpy as np

from ..nerf.occupancy import OccupancyGrid
from ..nerf.sampling import RayMarcher, SampleBatch, SamplerConfig
from ..nerf.volume_rendering import composite


class Encoding:
    """Positions -> feature rows, with a hand gradient.

    Contract (satisfied structurally by
    :class:`~repro.nerf.hash_encoding.HashEncoding` and
    :class:`~repro.nerf.tensorf.PlaneLineEncoding`):

    * ``forward(points) -> (features, trace)`` — ``(n, output_dim)``
      float64 features plus an opaque trace for backward;
    * ``backward(grad_features, trace)`` — parameter gradients (array or
      name -> array dict, matching ``parameters()``);
    * ``parameters() -> dict`` — name -> array of learnable stores;
    * ``output_dim`` — feature width.
    """

    def forward(self, points: np.ndarray) -> tuple:
        """Encode unit-cube points: ``(features, trace)``."""
        raise NotImplementedError

    def backward(self, grad_features: np.ndarray, trace):
        """Parameter gradients for the encoded batch."""
        raise NotImplementedError

    def parameters(self) -> dict:
        """Name -> array dict of learnable parameter stores."""
        raise NotImplementedError


class Field:
    """Positions + directions -> per-sample ``(sigma, rgb)``.

    The model contract every layer of the repo speaks (trainer, renderer,
    serving, checkpointing):

    * ``forward(positions, directions) -> (sigma, rgb, cache)``;
    * ``backward(grad_sigma, grad_rgb, cache) -> dict`` of parameter
      gradients keyed like ``parameters()``;
    * ``parameters()`` / ``load_parameters(params)``;
    * ``density(positions)`` — density only, for occupancy refreshes.

    :class:`~repro.nerf.model.InstantNGPModel`,
    :class:`~repro.nerf.tensorf.TensoRFModel`,
    :class:`~repro.nerf.tensorf.DenseGridField`, and
    :class:`~repro.nerf.moe.MoENeRF` all satisfy it structurally.
    """

    def forward(self, positions: np.ndarray, directions: np.ndarray) -> tuple:
        """Per-sample ``(sigma, rgb, cache)``."""
        raise NotImplementedError

    def backward(self, grad_sigma, grad_rgb, cache) -> dict:
        """Parameter gradients given ``d loss / d (sigma, rgb)``."""
        raise NotImplementedError

    def parameters(self) -> dict:
        """Flat name -> array dict of every learnable parameter."""
        raise NotImplementedError

    def density(self, positions: np.ndarray) -> np.ndarray:
        """Density only (occupancy-grid refreshes)."""
        raise NotImplementedError


class Sampler:
    """Rays -> a :class:`~repro.nerf.sampling.SampleBatch` (Stage I)."""

    def sample(self, origins: np.ndarray, directions: np.ndarray) -> SampleBatch:
        """March the rays and return the flattened sample batch."""
        raise NotImplementedError


class OccupancySampler(Sampler):
    """Occupancy-gated ray marching — the stock Stage I.

    Wraps the library :class:`~repro.nerf.sampling.RayMarcher` plus an
    optional :class:`~repro.nerf.occupancy.OccupancyGrid`; ``sample``
    makes exactly the call :func:`repro.nerf.renderer.render_rays`
    makes, so the staged pipeline is bit-identical to the monolithic
    path.
    """

    def __init__(self, marcher: RayMarcher = None, occupancy: OccupancyGrid = None):
        self.marcher = marcher or RayMarcher(SamplerConfig())
        self.occupancy = occupancy

    def sample(self, origins: np.ndarray, directions: np.ndarray) -> SampleBatch:
        """Occupancy-gated march of a unit-space ray batch."""
        return self.marcher.sample(origins, directions, occupancy=self.occupancy)


class Compositor:
    """Per-sample ``(sigma, rgb)`` -> per-ray colors (Stage III)."""

    def render(self, field: Field, batch: SampleBatch, background: float) -> tuple:
        """Render a non-empty sample batch: ``(colors, result)``.

        ``result`` is the per-sample
        :class:`~repro.nerf.volume_rendering.RenderResult` when the
        compositor evaluates every sample, else ``None``.
        """
        raise NotImplementedError


class VolumeCompositor(Compositor):
    """Exact transmittance-weighted compositing, optionally ERT-gated.

    With ``ert_threshold=None`` (default) this is the bit-reproducible
    full evaluation: one ``field.forward`` over the batch and the
    segmented-prefix :func:`~repro.nerf.volume_rendering.composite`.
    A threshold switches to early ray termination
    (:func:`~repro.nerf.early_termination.render_batch_ert`): samples
    behind the transmittance cutoff are never evaluated, the color error
    is bounded by the threshold, and ``result`` is ``None`` because the
    skipped samples have no per-sample render state.
    """

    def __init__(self, ert_threshold: float = None):
        self.ert_threshold = ert_threshold

    def render(self, field: Field, batch: SampleBatch, background: float) -> tuple:
        """Composite one sample batch: ``(colors, result)``."""
        if self.ert_threshold is not None:
            from ..nerf.early_termination import render_batch_ert

            colors, _ = render_batch_ert(
                field, batch, background=background, threshold=self.ert_threshold
            )
            return colors, None
        sigma, rgb, _ = field.forward(batch.positions, batch.directions)
        result = composite(
            sigma,
            rgb,
            batch.deltas,
            batch.ts,
            batch.ray_idx,
            batch.n_rays,
            background=background,
        )
        return result.colors, result


class PrecisionCompositor(VolumeCompositor):
    """Compositing through a low-precision field snapshot.

    Holds a :class:`~repro.nerf.precision.LowPrecisionField` built from
    the renderer's full-precision field and picks one of three regimes:

    * ``switch_threshold`` set — transmittance-adaptive rendering
      (:func:`~repro.nerf.early_termination.render_batch_adaptive`):
      the *full* field evaluates each ray until its transmittance drops
      below ``switch_threshold``, the snapshot evaluates the occluded
      tail.  Adaptive rendering is inherently round-based, so an ERT
      threshold always applies (``ert_threshold`` or the library default
      ``1e-3``).
    * ``ert_threshold`` only — ERT rendering entirely on the snapshot.
    * neither — one snapshot forward over the batch plus the exact
      segmented composite.

    ``result`` is a per-sample ``RenderResult`` only in the last regime,
    matching :class:`VolumeCompositor`'s contract.
    """

    #: ERT threshold adaptive rendering falls back to when none is set.
    DEFAULT_ERT = 1e-3

    def __init__(
        self,
        lowp_field,
        ert_threshold: float | None = None,
        switch_threshold: float | None = None,
        round_size: int = 32,
    ):
        super().__init__(ert_threshold)
        self.lowp_field = lowp_field
        self.switch_threshold = switch_threshold
        self.round_size = round_size

    @property
    def precision(self) -> str:
        """The snapshot's precision tag (``"fp16"`` / ``"fp16-int8"``)."""
        return self.lowp_field.precision

    def render(self, field: Field, batch: SampleBatch, background: float) -> tuple:
        """Composite one sample batch at inference precision."""
        if self.switch_threshold is not None:
            from ..nerf.early_termination import render_batch_adaptive

            colors, _ = render_batch_adaptive(
                field,
                self.lowp_field,
                batch,
                background=background,
                threshold=(
                    self.ert_threshold
                    if self.ert_threshold is not None
                    else self.DEFAULT_ERT
                ),
                switch_threshold=self.switch_threshold,
                round_size=self.round_size,
            )
            return colors, None
        return super().render(self.lowp_field, batch, background)
