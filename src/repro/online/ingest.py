"""Frame ingest: route the capture stream into train and holdout sets.

Online reconstruction has no luxury of a pre-split dataset — frames
arrive one at a time, and the quality gate needs held-out views *now*,
not after the capture ends.  :class:`FrameStore` applies the standard
streaming split: every ``holdout_every``-th frame is diverted to the
holdout set (deterministic in the frame index, so a replayed session
splits identically), everything else grows the training set.

The store also keeps the session's frame accounting: every ingested
frame must land in exactly one of the two sets, and the ``unaccounted``
count the session report greps for is computed here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .capture import CapturedFrame

ROUTE_TRAIN = "train"
ROUTE_HOLDOUT = "holdout"


@dataclass(frozen=True)
class IngestConfig:
    """Streaming split policy."""

    #: Divert every k-th frame (by capture index) to the holdout set.
    holdout_every: int = 4

    def __post_init__(self):
        if self.holdout_every < 2:
            raise ValueError(
                "holdout_every must be >= 2 (1 would starve training)"
            )


class FrameStore:
    """Accumulates the growing train/holdout sets of one capture session."""

    def __init__(self, config: IngestConfig = None):
        self.config = config or IngestConfig()
        self.train_cameras = []
        self.train_images = []
        self.holdout_cameras = []
        self.holdout_images = []
        self.ingested = 0

    def route_for(self, index: int) -> str:
        """The deterministic split decision for capture index ``index``.

        Frame 0 always trains (the trainer needs a first view before any
        evaluation makes sense); thereafter every ``holdout_every``-th
        frame is held out.
        """
        k = self.config.holdout_every
        if index > 0 and index % k == 0:
            return ROUTE_HOLDOUT
        return ROUTE_TRAIN

    def add(self, frame: CapturedFrame) -> str:
        """Ingest one frame; returns the route it took."""
        route = self.route_for(frame.index)
        image = np.asarray(frame.image, dtype=np.float64)
        if route == ROUTE_HOLDOUT:
            self.holdout_cameras.append(frame.camera)
            self.holdout_images.append(image)
        else:
            self.train_cameras.append(frame.camera)
            self.train_images.append(image)
        self.ingested += 1
        return route

    @property
    def n_train(self) -> int:
        """Training frames ingested so far."""
        return len(self.train_cameras)

    @property
    def n_holdout(self) -> int:
        """Held-out frames ingested so far."""
        return len(self.holdout_cameras)

    def holdout_arrays(self) -> tuple:
        """``(cameras, images)`` of the holdout set, images stacked."""
        if not self.holdout_images:
            raise ValueError("no holdout frames ingested yet")
        return self.holdout_cameras, np.stack(self.holdout_images)

    def accounting(self) -> dict:
        """Frame conservation check: ingested == train + holdout."""
        return {
            "ingested": self.ingested,
            "train": self.n_train,
            "holdout": self.n_holdout,
            "unaccounted": self.ingested - self.n_train - self.n_holdout,
        }
