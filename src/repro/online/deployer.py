"""Quality-gated hot-swap deployment of training snapshots.

The bridge between the training side (a live, mutating
:class:`~repro.nerf.trainer.Trainer`) and the serving side (a
:class:`~repro.serve.registry.SceneRegistry` whose generations must be
immutable once handles pin them).  Two obligations meet here:

* **frozen generations** — the trainer keeps optimizing the very arrays
  a deployed record would alias, so every deployment clones the model
  parameters and the occupancy grid (:func:`clone_model`,
  :func:`clone_occupancy`).  A pinned handle's pixels therefore cannot
  drift, which is what makes the session's across-the-swap bit-identity
  proof possible at all;
* **the quality gate** — a generation goes live only when its held-out
  PSNR clears an absolute floor *and* improves on the generation it
  replaces by a minimum delta (:class:`QualityGate`), so serving never
  hot-swaps sideways or backwards.

Each deployment records a *reference frame*: the deployed clone rendered
offline through :func:`~repro.nerf.renderer.render_image` with the
registry record's own marcher and the serving slice size as ``chunk``.
That frame is the generation's ground truth — any frame later served
from a handle pinning this generation must equal it bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nerf.camera import Camera
from ..nerf.occupancy import OccupancyGrid
from ..nerf.renderer import render_image
from ..serve.registry import SceneRegistry


def clone_model(model):
    """A frozen same-type copy of a radiance-field model.

    ``load_parameters`` rebinds (aliases) the arrays it is given, so the
    clone is fed *copies* — the trainer keeps mutating the originals.
    """
    clone = type(model)(model.config, seed=0)
    clone.load_parameters(
        {k: v.copy() for k, v in model.parameters().items()}
    )
    return clone


def clone_occupancy(grid: OccupancyGrid) -> OccupancyGrid:
    """A frozen copy of an occupancy grid (EMA field + mask)."""
    clone = OccupancyGrid(
        resolution=grid.resolution,
        threshold=grid.threshold,
        ema_decay=grid.ema_decay,
    )
    clone.density_ema = grid.density_ema.copy()
    clone.mask = grid.mask.copy()
    return clone


@dataclass(frozen=True)
class QualityGate:
    """When a training snapshot is allowed to go live."""

    #: The session's "acceptable quality" bar — first deployment at or
    #: above this PSNR defines the time-to-quality metric.
    target_psnr_db: float = 16.0
    #: Absolute minimum PSNR for any deployment at all.
    deploy_floor_db: float = 10.0
    #: Required improvement over the live generation's PSNR.
    min_delta_db: float = 0.25

    def __post_init__(self):
        if self.deploy_floor_db > self.target_psnr_db:
            raise ValueError("deploy_floor_db must not exceed target_psnr_db")
        if self.min_delta_db < 0:
            raise ValueError("min_delta_db must be non-negative")


@dataclass(frozen=True)
class Deployment:
    """One generation that went live."""

    generation: int
    #: Capture-clock time of the deploy.
    t_s: float
    #: Trainer iteration count at snapshot time.
    iteration: int
    #: Held-out PSNR that cleared the gate.
    psnr_db: float
    n_train_frames: int

    def row(self) -> dict:
        """This deployment as a report/experiment table row."""
        return {
            "generation": self.generation,
            "t_s": self.t_s,
            "iteration": self.iteration,
            "psnr_db": self.psnr_db,
            "train_frames": self.n_train_frames,
        }


class Deployer:
    """Applies the quality gate and hot-swaps cleared snapshots live."""

    def __init__(
        self,
        registry: SceneRegistry,
        scene_name: str,
        gate: QualityGate = None,
        reference_camera: Camera = None,
        slice_rays: int = 4096,
        background: float = 1.0,
    ):
        self.registry = registry
        self.scene_name = scene_name
        self.gate = gate or QualityGate()
        #: Viewpoint of the per-generation reference frames (``None``
        #: skips reference rendering).
        self.reference_camera = reference_camera
        #: Serving slice granularity — the ``chunk`` a bit-identical
        #: offline render must use.
        self.slice_rays = slice_rays
        self.background = background
        self.deployments = []
        #: generation -> offline reference frame of that generation.
        self.reference_frames = {}

    def clears_gate(self, psnr_db: float) -> bool:
        """Whether a snapshot at this held-out PSNR may go live."""
        if not np.isfinite(psnr_db) or psnr_db < self.gate.deploy_floor_db:
            return False
        if not self.deployments:
            return True
        return psnr_db >= self.deployments[-1].psnr_db + self.gate.min_delta_db

    def deploy(self, trainer, t_s: float, psnr_db: float) -> Deployment:
        """Freeze the trainer's current state and hot-swap it live."""
        model = clone_model(trainer.model)
        occupancy = clone_occupancy(trainer.occupancy)
        summary = self.registry.deploy(
            self.scene_name,
            model=model,
            occupancy=occupancy,
            normalizer=trainer.normalizer,
            background=self.background,
        )
        deployment = Deployment(
            generation=summary["generation"],
            t_s=t_s,
            iteration=trainer.state.iteration,
            psnr_db=psnr_db,
            n_train_frames=len(trainer.cameras),
        )
        self.deployments.append(deployment)
        if self.reference_camera is not None:
            self.reference_frames[deployment.generation] = (
                self.render_reference(deployment.generation)
            )
        return deployment

    def render_reference(self, generation: int) -> np.ndarray:
        """Offline ground-truth frame of the *current* record.

        Rendered through a freshly acquired handle so the marcher,
        occupancy, and background are exactly the record's own; the
        caller must only ask while ``generation`` is still current.
        """
        handle = self.registry.acquire(self.scene_name)
        try:
            if handle.generation != generation:
                raise ValueError(
                    f"generation {generation} is no longer current "
                    f"(registry serves {handle.generation})"
                )
            return render_image(
                handle.model,
                self.reference_camera,
                handle.normalizer,
                handle.marcher,
                occupancy=handle.occupancy,
                background=handle.background,
                chunk=self.slice_rays,
            )
        finally:
            handle.release()

    @property
    def time_to_target_s(self) -> float:
        """Capture-clock time of the first deployment at target quality
        (``None`` if the session never got there)."""
        for deployment in self.deployments:
            if deployment.psnr_db >= self.gate.target_psnr_db:
                return deployment.t_s
        return None
