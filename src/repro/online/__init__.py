"""Live reconstruction service: capture → incremental train → hot-swap.

The online subsystem closes the paper's loop between instant
reconstruction and real-time rendering: a streaming capture session
feeds an incrementally trained radiance field whose quality-gated
snapshots hot-swap into the serving registry *while requests are being
served*, with bit-identity proofs across every swap.  See
``docs/online.md`` for the session lifecycle and the obligations each
stage carries.
"""

from .capture import CaptureConfig, CapturedFrame, CaptureSession
from .deployer import (
    Deployer,
    Deployment,
    QualityGate,
    clone_model,
    clone_occupancy,
)
from .ingest import ROUTE_HOLDOUT, ROUTE_TRAIN, FrameStore, IngestConfig
from .session import (
    OnlineConfig,
    ReconstructionSession,
    SessionResult,
)
from .trainer_loop import IncrementalTrainerLoop

__all__ = [
    "CaptureConfig",
    "CapturedFrame",
    "CaptureSession",
    "Deployer",
    "Deployment",
    "QualityGate",
    "clone_model",
    "clone_occupancy",
    "ROUTE_HOLDOUT",
    "ROUTE_TRAIN",
    "FrameStore",
    "IngestConfig",
    "IncrementalTrainerLoop",
    "OnlineConfig",
    "ReconstructionSession",
    "SessionResult",
]
