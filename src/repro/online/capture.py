"""Streaming capture synthesis: a posed frame source on the virtual clock.

The online reconstruction loop needs what a phone or drone capture rig
produces — a timestamped stream of posed RGB frames arriving at a fixed
capture rate — without any camera hardware.  :class:`CaptureSession`
synthesizes that stream from an analytic scene: poses come from the
seeded trajectory API (:func:`repro.datasets.trajectory_poses`, the
BlenderNeRF camera-on-sphere / spherical-orbit idioms) and pixels from
the scene's exact ground-truth renderer, so the stream is bit-exactly
replayable from ``(scene, trajectory, seed)`` alone.

Timestamps live on the same virtual clock the serving layer bills
hardware time against: frame ``i`` completes capture at
``(i + 1) / rate_hz`` virtual seconds, which is when the ingest side is
allowed to see it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets import synthetic, trajectory_poses
from ..nerf.camera import Camera


@dataclass(frozen=True)
class CaptureConfig:
    """Shape of one synthetic capture session."""

    #: Analytic object scene being walked around (``repro.datasets.synthetic``).
    scene: str = "mic"
    n_frames: int = 16
    #: Frames delivered per virtual second.
    rate_hz: float = 8.0
    width: int = 16
    height: int = 16
    #: Trajectory kind (see :data:`repro.datasets.TRAJECTORIES`).
    trajectory: str = "cos"
    #: Camera orbit radius in world units.
    radius: float = 2.6
    #: Dense-march steps of the ground-truth renderer.
    gt_steps: int = 48
    seed: int = 0

    def __post_init__(self):
        if self.n_frames < 1:
            raise ValueError("n_frames must be positive")
        if self.rate_hz <= 0:
            raise ValueError("rate_hz must be positive")


@dataclass(frozen=True)
class CapturedFrame:
    """One delivered frame: pose, pixels, and its capture-clock timestamp."""

    index: int
    #: Virtual second at which this frame becomes available downstream.
    t_s: float
    camera: Camera
    image: np.ndarray = field(repr=False)


class CaptureSession:
    """A replayable posed-frame stream over an analytic scene.

    Poses are fixed at construction (pure function of the config), but
    pixels render lazily in :meth:`frames` — the ground-truth march is
    the expensive part, and a consumer that stops early should not pay
    for frames it never saw.
    """

    def __init__(self, config: CaptureConfig = None):
        self.config = config or CaptureConfig()
        cfg = self.config
        self.scene = synthetic.make_scene(cfg.scene)
        self.normalizer = self.scene.normalizer()
        poses = trajectory_poses(
            cfg.trajectory, cfg.n_frames, cfg.radius, seed=cfg.seed
        )
        self.cameras = [
            Camera(
                width=cfg.width,
                height=cfg.height,
                focal=1.1 * cfg.width,
                c2w=pose,
            )
            for pose in poses
        ]

    def __len__(self) -> int:
        return self.config.n_frames

    @property
    def horizon_s(self) -> float:
        """Virtual second at which the last frame lands."""
        return self.config.n_frames / self.config.rate_hz

    def frame_time(self, index: int) -> float:
        """Delivery timestamp of frame ``index`` (exposure completes)."""
        return (index + 1) / self.config.rate_hz

    def frames(self):
        """Yield :class:`CapturedFrame` in delivery order, rendering lazily."""
        for index, camera in enumerate(self.cameras):
            image = self.scene.render(camera, n_steps=self.config.gt_steps)
            yield CapturedFrame(
                index=index,
                t_s=self.frame_time(index),
                camera=camera,
                image=image,
            )
