"""Incremental training loop: budgeted step increments over a growing set.

The online session cannot hand the trainer a closed dataset and call
``train(N)`` — frames keep arriving and the serving side needs the model
between increments.  :class:`IncrementalTrainerLoop` owns the trainer
for exactly that interleaving: it creates the trainer from the first
streamed frame(s), appends each later frame via
:meth:`~repro.nerf.trainer.Trainer.add_view`, and advances optimization
in budgeted :meth:`~repro.nerf.trainer.Trainer.train_steps` increments —
the API whose N-increments-equals-one-run bit-identity contract makes
the whole session replayable.

Every increment runs under the divergence watchdog
(:class:`~repro.robustness.watchdog.DivergenceWatchdog`): a diverged
step rolls back to the last good snapshot and backs off the learning
rate instead of poisoning the next deployment.  Use the loop as a
context manager so the watchdog's hook subscriptions are scoped::

    with IncrementalTrainerLoop(model, store, normalizer, cfg) as loop:
        loop.increment(10)
"""

from __future__ import annotations

import numpy as np

from ..nerf.trainer import Trainer, TrainerConfig
from ..robustness.faults import WatchdogConfig
from ..robustness.watchdog import DivergenceWatchdog
from .capture import CapturedFrame
from .ingest import ROUTE_TRAIN, FrameStore


class IncrementalTrainerLoop:
    """Watchdog-guarded incremental trainer over a :class:`FrameStore`."""

    def __init__(
        self,
        model,
        store: FrameStore,
        normalizer,
        trainer_config: TrainerConfig = None,
        watchdog_config: WatchdogConfig = None,
    ):
        if store.n_train < 1:
            raise ValueError(
                "the store needs at least one training frame before the "
                "trainer can exist"
            )
        self.store = store
        self.trainer = Trainer(
            model,
            list(store.train_cameras),
            np.stack(store.train_images),
            normalizer,
            trainer_config or TrainerConfig(),
        )
        self.watchdog = DivergenceWatchdog(
            self.trainer, watchdog_config or WatchdogConfig()
        )
        self.steps_total = 0

    def __enter__(self) -> "IncrementalTrainerLoop":
        self.watchdog.attach()
        return self

    def __exit__(self, *exc_info) -> None:
        self.watchdog.detach()

    def ingest(self, frame: CapturedFrame) -> str:
        """Route one frame through the store and into the trainer.

        Holdout frames stay out of the training set (they are the
        quality gate's evaluation material); training frames are
        appended to the live trainer so the very next ray batch can draw
        from them.
        """
        route = self.store.add(frame)
        if route == ROUTE_TRAIN:
            self.trainer.add_view(frame.camera, frame.image)
        return route

    def increment(self, n_steps: int) -> float:
        """Run one budgeted training increment; returns the last loss.

        NaN (a skipped/diverged step as the last step of the increment)
        is a legitimate return — the watchdog has already rolled the
        model back, so the caller's next evaluation sees the last good
        state, not the diverged one.
        """
        state = self.trainer.train_steps(n_steps)
        self.steps_total += n_steps
        return state.losses[-1] if state.losses else float("nan")

    def eval_holdout_psnr(self) -> float:
        """PSNR of the current model over every held-out view."""
        cameras, images = self.store.holdout_arrays()
        return self.trainer.eval_psnr(cameras=cameras, images=images)

    @property
    def rollbacks(self) -> int:
        """Watchdog recoveries so far this session."""
        return self.watchdog.rollbacks
