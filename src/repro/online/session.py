"""The online reconstruction session: capture → train → hot-swap → serve.

:class:`ReconstructionSession` runs the paper's instant-reconstruction
story end to end on one shared virtual clock.  A synthetic capture
stream delivers posed frames at a fixed rate; between frames the trainer
advances a budgeted step increment under the divergence watchdog; at
checkpoints the held-out PSNR is evaluated and, when the quality gate
clears, the frozen snapshot hot-swaps into the serving registry — while
the render service keeps draining a Poisson viewer workload against
whichever generation each request pinned at admission.

Three properties the session proves about itself every run:

* **bit-identity across the swap** — at every hot-swap a proof request
  is admitted against the outgoing generation, exactly one batch is
  dispatched, the new generation deploys, and the service then finishes
  the proof from its pinned handle.  The completed frame must equal the
  outgoing generation's offline reference render bit-for-bit;
* **frame conservation** — every captured frame lands in exactly one of
  train/holdout, and every submitted request reaches exactly one
  terminal status (the report's ``unaccounted: 0`` lines);
* **replayability** — everything (trajectory, pixels, ray batches,
  arrivals) derives from the config's seeds on the virtual clock, so two
  runs of the same config produce bit-identical deployments, PSNR
  trajectories, and reference frames.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..nerf.hash_encoding import HashEncodingConfig
from ..nerf.model import InstantNGPModel, ModelConfig
from ..nerf.trainer import TrainerConfig
from ..robustness.faults import WatchdogConfig
from ..serve.batching import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    RenderRequest,
)
from ..serve.loadgen import demo_camera, poisson_arrivals
from ..serve.registry import SceneRegistry
from ..serve.scheduler import BatchPolicy
from ..serve.service import RenderService, ServiceConfig
from .capture import CaptureConfig, CaptureSession
from .deployer import Deployer, QualityGate
from .ingest import FrameStore, IngestConfig
from .trainer_loop import IncrementalTrainerLoop

#: Request-id base of the swap-proof probes (keeps them distinguishable
#: from the viewer workload in ``service.responses``).
PROOF_ID_BASE = 1_000_000


@dataclass(frozen=True)
class OnlineConfig:
    """Everything one online reconstruction session depends on."""

    capture: CaptureConfig = field(default_factory=CaptureConfig)
    ingest: IngestConfig = field(default_factory=IngestConfig)
    gate: QualityGate = field(default_factory=QualityGate)
    #: Training steps per delivered frame (the incremental budget).
    steps_per_frame: int = 10
    #: Evaluate/maybe-deploy every this many frames (and at the last).
    eval_every_frames: int = 4
    # -- trainer ---------------------------------------------------------
    batch_rays: int = 256
    lr: float = 5e-3
    max_samples_per_ray: int = 32
    occupancy_resolution: int = 32
    occupancy_interval: int = 8
    # -- serving ---------------------------------------------------------
    #: Offered viewer request rate over the capture horizon.
    serve_rate_hz: float = 30.0
    #: Side of the square probe frames viewers request.
    probe: int = 12
    #: Hardware billing multiplier per probe frame (cf. serving_study).
    hw_scale: float = 200.0
    #: Serving slice granularity; also the swap-proof batch size, so it
    #: must leave a probe frame spanning several dispatches.
    slice_rays: int = 64
    #: Width of the SLO-attainment windows in the report.
    window_s: float = 0.5
    seed: int = 0


@dataclass
class SessionResult:
    """Everything a finished session proved and measured."""

    scene: str
    horizon_s: float
    deployments: list
    psnr_history: list
    target_psnr_db: float
    time_to_target_s: float
    swap_proofs: list
    windows: list
    serve_stats: dict
    slo: dict
    accounting: dict
    steps_total: int
    rollbacks: int

    @property
    def generations(self) -> int:
        """Generations that went live during the session."""
        return len(self.deployments)

    @property
    def reached_target(self) -> bool:
        """Whether any deployed generation met the target PSNR."""
        return self.time_to_target_s is not None

    def ops_panel(self) -> dict:
        """The dashboard's online-reconstruction panel payload."""
        return {
            "scene": self.scene,
            "frames_ingested": self.accounting["frames"]["ingested"],
            "generations": self.generations,
            "psnr_trend": [p["psnr_db"] for p in self.psnr_history],
            "last_psnr_db": (
                self.psnr_history[-1]["psnr_db"] if self.psnr_history else None
            ),
            "target_psnr_db": self.target_psnr_db,
            "time_to_target_s": self.time_to_target_s,
            "steps_total": self.steps_total,
            "steps_per_s": (
                self.steps_total / self.horizon_s if self.horizon_s > 0 else 0.0
            ),
            "rollbacks": self.rollbacks,
        }

    def report(self) -> str:
        """The greppable session log (deploys, proofs, accounting, SLO)."""
        lines = [
            f"online session: scene={self.scene} "
            f"frames={self.accounting['frames']['ingested']} "
            f"horizon={self.horizon_s:.2f}s steps={self.steps_total}"
        ]
        for d in self.deployments:
            lines.append(
                f"online: deployed generation {d['generation']} "
                f"psnr={d['psnr_db']:.2f} at t={d['t_s']:.3f}"
            )
        if self.time_to_target_s is not None:
            lines.append(
                f"online: reached target {self.target_psnr_db:.1f} dB "
                f"at t={self.time_to_target_s:.3f}"
            )
        else:
            lines.append(
                f"online: target {self.target_psnr_db:.1f} dB not reached"
            )
        for proof in self.swap_proofs:
            lines.append(
                f"online swap proof: generation {proof['pinned_generation']} "
                f"-> {proof['swapped_to']} spanned={proof['spanned_swap']} "
                f"bit_identical={proof['bit_identical']}"
            )
        frames = self.accounting["frames"]
        lines.append(
            f"frame accounting: ingested {frames['ingested']} "
            f"train {frames['train']} holdout {frames['holdout']} "
            f"unaccounted: {frames['unaccounted']}"
        )
        requests = self.accounting["requests"]
        lines.append(
            f"request accounting: offered {requests['offered']} "
            f"terminal {requests['terminal']} "
            f"unaccounted: {requests['unaccounted']}"
        )
        for w in self.windows:
            att = (
                f"{w['attainment']:.2f}"
                if w["attainment"] is not None
                else "-"
            )
            lines.append(
                f"slo window [{w['t0_s']:.2f}, {w['t1_s']:.2f}): "
                f"completed {w['completed']} not-live {w['not_live']} "
                f"attainment {att}"
            )
        return "\n".join(lines)


class ReconstructionSession:
    """One live reconstruction run on the shared virtual clock."""

    def __init__(self, config: OnlineConfig = None):
        self.config = config or OnlineConfig()

    # -- construction helpers --------------------------------------------

    def _build_model(self) -> InstantNGPModel:
        """A compact hash-grid field sized for streaming-rate training."""
        config = ModelConfig(
            encoding=HashEncodingConfig(
                n_levels=4,
                n_features=2,
                log2_table_size=12,
                base_resolution=8,
                finest_resolution=64,
            ),
            hidden_width=32,
            geo_features=15,
        )
        return InstantNGPModel(config, seed=self.config.seed)

    def _trainer_config(self) -> TrainerConfig:
        cfg = self.config
        return TrainerConfig(
            batch_rays=cfg.batch_rays,
            lr=cfg.lr,
            max_samples_per_ray=cfg.max_samples_per_ray,
            occupancy_resolution=cfg.occupancy_resolution,
            occupancy_interval=cfg.occupancy_interval,
            seed=cfg.seed,
        )

    def _build_service(self, registry: SceneRegistry) -> RenderService:
        cfg = self.config
        return RenderService(
            registry,
            config=ServiceConfig(
                # One slice per dispatch: a probe frame spans several
                # batches, which is what lets a swap-proof request start
                # on one generation and finish after the hot-swap.
                batch=BatchPolicy(
                    slice_rays=cfg.slice_rays,
                    max_batch_rays=cfg.slice_rays,
                ),
            ),
        )

    def _viewer_requests(self, capture: CaptureSession, camera) -> list:
        cfg = self.config
        times = poisson_arrivals(
            cfg.serve_rate_hz,
            capture.horizon_s,
            np.random.default_rng(cfg.seed + 1),
        )
        return [
            RenderRequest(
                request_id=i,
                scene=cfg.capture.scene,
                camera=camera,
                arrival_s=float(t),
                priority=PRIORITY_INTERACTIVE,
                hw_scale=cfg.hw_scale,
            )
            for i, t in enumerate(times)
        ]

    # -- the run ---------------------------------------------------------

    def run(self) -> SessionResult:
        """Play the whole session; returns what it proved and measured."""
        cfg = self.config
        capture = CaptureSession(cfg.capture)
        store = FrameStore(cfg.ingest)
        registry = SceneRegistry(max_samples_per_ray=cfg.max_samples_per_ray)
        service = self._build_service(registry)
        camera = demo_camera(cfg.probe, cfg.probe)
        deployer = Deployer(
            registry,
            cfg.capture.scene,
            gate=cfg.gate,
            reference_camera=camera,
            slice_rays=cfg.slice_rays,
            background=capture.scene.background,
        )
        arrivals = self._viewer_requests(capture, camera)
        proof_frames = {}
        swap_proofs = []
        psnr_history = []
        loop = None
        arrival_idx = 0
        n_frames = cfg.capture.n_frames
        try:
            for frame in capture.frames():
                t = frame.t_s
                if loop is None:
                    store.add(frame)
                    loop = IncrementalTrainerLoop(
                        self._build_model(),
                        store,
                        capture.normalizer,
                        trainer_config=self._trainer_config(),
                        watchdog_config=WatchdogConfig(),
                    )
                    loop.watchdog.attach()
                else:
                    loop.ingest(frame)
                loop.increment(cfg.steps_per_frame)
                due_eval = (
                    (frame.index + 1) % cfg.eval_every_frames == 0
                    or frame.index == n_frames - 1
                )
                if due_eval and store.n_holdout >= 1:
                    psnr = loop.eval_holdout_psnr()
                    psnr_history.append(
                        {
                            "t_s": t,
                            "iteration": loop.trainer.state.iteration,
                            "psnr_db": psnr,
                        }
                    )
                    if deployer.clears_gate(psnr):
                        self._deploy_with_proof(
                            service,
                            deployer,
                            loop.trainer,
                            t,
                            psnr,
                            camera,
                            proof_frames,
                            swap_proofs,
                        )
                while (
                    arrival_idx < len(arrivals)
                    and arrivals[arrival_idx].arrival_s <= t
                ):
                    service.submit(arrivals[arrival_idx])
                    arrival_idx += 1
                service.run()
        finally:
            if loop is not None:
                loop.watchdog.detach()
        while arrival_idx < len(arrivals):
            service.submit(arrivals[arrival_idx])
            arrival_idx += 1
        service.run()
        self._check_proofs(deployer, proof_frames, swap_proofs, service)
        return self._result(
            capture,
            store,
            deployer,
            service,
            arrivals,
            swap_proofs,
            psnr_history,
            loop,
        )

    def _deploy_with_proof(
        self,
        service,
        deployer,
        trainer,
        t_s,
        psnr,
        camera,
        proof_frames,
        swap_proofs,
    ) -> None:
        """Hot-swap a cleared snapshot live, proving the swap is safe.

        For every generation after the first: admit a proof request
        against the *outgoing* generation (pinning its handle), dispatch
        exactly one batch so the request is provably in flight, then
        deploy.  The request finishes later from its pinned handle; the
        completed frame is checked against the outgoing generation's
        reference in :meth:`_check_proofs`.
        """
        outgoing = deployer.deployments[-1] if deployer.deployments else None
        pending = None
        if outgoing is not None:
            proof_id = PROOF_ID_BASE + outgoing.generation
            service.submit(
                RenderRequest(
                    request_id=proof_id,
                    scene=deployer.scene_name,
                    camera=camera,
                    arrival_s=service.now_s,
                    priority=PRIORITY_BATCH,
                    hw_scale=self.config.hw_scale,
                ),
                on_complete=lambda response: proof_frames.__setitem__(
                    response.request_id, response.frame
                ),
            )
            service.run(max_batches=service.batches_dispatched + 1)
            pending = {
                "pinned_generation": outgoing.generation,
                "spanned_swap": proof_id not in service.responses,
            }
        deployment = deployer.deploy(trainer, t_s, psnr)
        if pending is not None:
            pending["swapped_to"] = deployment.generation
            swap_proofs.append(pending)

    def _check_proofs(
        self, deployer, proof_frames, swap_proofs, service
    ) -> None:
        """Compare each completed proof frame to its generation's reference."""
        for proof in swap_proofs:
            generation = proof["pinned_generation"]
            frame = proof_frames.get(PROOF_ID_BASE + generation)
            reference = deployer.reference_frames.get(generation)
            proof["bit_identical"] = (
                frame is not None
                and reference is not None
                and np.array_equal(frame, reference)
            )

    # -- reporting -------------------------------------------------------

    def _windows(self, service, arrivals) -> list:
        """Per-window interactive SLO attainment over the session."""
        cfg = self.config
        target = service.slo.targets[PRIORITY_INTERACTIVE].latency_s
        arrival_by_id = {r.request_id: r.arrival_s for r in arrivals}
        horizon = max(
            [cfg.capture.n_frames / cfg.capture.rate_hz]
            + [
                arrival_by_id[rid] + response.latency_s
                for rid, response in service.responses.items()
                if rid in arrival_by_id and response.latency_s is not None
            ]
        )
        n_windows = max(1, math.ceil(horizon / cfg.window_s))
        windows = [
            {
                "t0_s": i * cfg.window_s,
                "t1_s": (i + 1) * cfg.window_s,
                "arrived": 0,
                "completed": 0,
                "met": 0,
                "not_live": 0,
                "other": 0,
            }
            for i in range(n_windows)
        ]

        def _bucket(t):
            return windows[min(int(t / cfg.window_s), n_windows - 1)]

        for rid, arrival_s in arrival_by_id.items():
            response = service.responses.get(rid)
            if response is None:
                continue
            _bucket(arrival_s)["arrived"] += 1
            if response.completed:
                window = _bucket(arrival_s + response.latency_s)
                window["completed"] += 1
                if response.latency_s <= target:
                    window["met"] += 1
            elif response.status == "failed_unknown_scene":
                _bucket(arrival_s)["not_live"] += 1
            else:
                _bucket(arrival_s)["other"] += 1
        for window in windows:
            window["attainment"] = (
                window["met"] / window["completed"]
                if window["completed"]
                else None
            )
        return windows

    def _result(
        self,
        capture,
        store,
        deployer,
        service,
        arrivals,
        swap_proofs,
        psnr_history,
        loop,
    ) -> SessionResult:
        statuses = service.slo.status_counts()
        offered = len(arrivals) + len(swap_proofs)
        terminal = sum(statuses.values())
        return SessionResult(
            scene=self.config.capture.scene,
            horizon_s=capture.horizon_s,
            deployments=[d.row() for d in deployer.deployments],
            psnr_history=psnr_history,
            target_psnr_db=deployer.gate.target_psnr_db,
            time_to_target_s=deployer.time_to_target_s,
            swap_proofs=swap_proofs,
            windows=self._windows(service, arrivals),
            serve_stats=service.stats(),
            slo=service.slo.summary(),
            accounting={
                "frames": store.accounting(),
                "requests": {
                    "offered": offered,
                    "terminal": terminal,
                    "unaccounted": offered - terminal,
                },
            },
            steps_total=loop.steps_total if loop is not None else 0,
            rollbacks=loop.rollbacks if loop is not None else 0,
        )
