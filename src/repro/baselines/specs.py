"""Published specifications of the baseline platforms.

These are the numbers the paper itself compares against (Tables I, III
and IV) — reported by the respective publications, or estimated by the
Fusion-3D authors where the original paper did not report them (marked
``estimated``).  Fields that a platform does not support or report are
``None``, matching the N/S and N/R entries of the tables.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PlatformSpec:
    """One row of the paper's comparison tables."""

    name: str
    venue: str
    kind: str  # "gpu", "accelerator", or "this-work"
    process_nm: int = None
    die_mm2: float = None
    clock_mhz: float = None
    sram_kb: float = None
    core_voltage_v: float = None
    algorithm: str = None
    silicon_prototype: bool = False
    supports_training: bool = False
    instant_training: bool = False
    realtime_inference: bool = False
    end_to_end: bool = False
    #: Throughputs in million sampled points per second (Table III metric).
    inference_mps: float = None
    training_mps: float = None
    #: Energy per sampled point, nanojoules.
    inference_nj_per_point: float = None
    training_nj_per_point: float = None
    off_chip_bandwidth_gbps: float = None
    typical_power_w: float = None
    estimated: bool = False

    @property
    def inference_mps_per_watt(self) -> float:
        """Throughput per watt (Table IV metric), M points/s/W."""
        if self.inference_mps is None or not self.typical_power_w:
            return None
        return self.inference_mps / self.typical_power_w

    @property
    def training_mps_per_watt(self) -> float:
        if self.training_mps is None or not self.typical_power_w:
            return None
        return self.training_mps / self.typical_power_w


JETSON_NANO = PlatformSpec(
    name="Nvidia Jetson Nano",
    venue="product",
    kind="gpu",
    process_nm=20,
    die_mm2=118.0,
    clock_mhz=900.0,
    sram_kb=2500.0,
    algorithm="hash-grid",
    supports_training=True,
    end_to_end=True,
    inference_mps=2.5,
    training_mps=0.5,
    inference_nj_per_point=192.0,
    training_nj_per_point=943.0,
    off_chip_bandwidth_gbps=25.6,
    typical_power_w=10.0,
)

JETSON_XNX = PlatformSpec(
    name="Nvidia Jetson XNX",
    venue="product",
    kind="gpu",
    process_nm=12,
    die_mm2=350.0,
    clock_mhz=1100.0,
    sram_kb=11000.0,
    algorithm="hash-grid",
    supports_training=True,
    end_to_end=True,
    inference_mps=12.5,
    training_mps=2.6,
    inference_nj_per_point=486.0,
    training_nj_per_point=2357.0,
    off_chip_bandwidth_gbps=59.7,
    typical_power_w=15.0,
)

RTX_2080TI = PlatformSpec(
    name="Nvidia RTX 2080 Ti",
    venue="product",
    kind="gpu",
    process_nm=12,
    die_mm2=754.0,
    clock_mhz=1350.0,
    sram_kb=27394.0,
    algorithm="hash-grid",
    supports_training=True,
    end_to_end=True,
    inference_mps=100.0,  # 0.4 M/s/W x 250 W (Table IV)
    training_mps=25.0,  # 0.1 M/s/W x 250 W
    off_chip_bandwidth_gbps=616.0,
    typical_power_w=250.0,
)

RT_NERF_EDGE = PlatformSpec(
    name="RT-NeRF (Edge)",
    venue="ICCAD'22",
    kind="accelerator",
    process_nm=28,
    die_mm2=18.85,
    clock_mhz=1000.0,
    sram_kb=3500.0,
    core_voltage_v=1.0,
    algorithm="dense-grid",
    realtime_inference=True,
    inference_mps=288.0,
    inference_nj_per_point=27.0,
    off_chip_bandwidth_gbps=17.0,
)

RT_NERF_CLOUD = PlatformSpec(
    name="RT-NeRF (Cloud)",
    venue="ICCAD'22",
    kind="accelerator",
    process_nm=28,
    die_mm2=565.0,
    clock_mhz=1000.0,
    sram_kb=105000.0,
    algorithm="dense-grid",
    realtime_inference=True,
    inference_mps=8160.0,  # 34 M/s/W x 240 W, estimated in the paper
    off_chip_bandwidth_gbps=510.0,
    typical_power_w=240.0,
    estimated=True,
)

INSTANT_3D = PlatformSpec(
    name="Instant-3D",
    venue="ISCA'23",
    kind="accelerator",
    process_nm=28,
    die_mm2=6.8,
    clock_mhz=800.0,
    sram_kb=1536.0,
    core_voltage_v=1.0,
    algorithm="hash-grid",
    supports_training=True,
    instant_training=True,
    realtime_inference=True,
    training_mps=32.0,
    training_nj_per_point=59.0,
    off_chip_bandwidth_gbps=59.7,
)

NEUREX_EDGE = PlatformSpec(
    name="NeuRex (Edge)",
    venue="ISCA'23",
    kind="accelerator",
    process_nm=28,
    die_mm2=3.14,
    clock_mhz=1000.0,
    sram_kb=884.0,
    algorithm="hash-grid",
    realtime_inference=True,
    inference_mps=112.0,
    inference_nj_per_point=41.0,
    off_chip_bandwidth_gbps=25.6,
    estimated=True,
)

NEUREX_SERVER = PlatformSpec(
    name="NeuRex (Server)",
    venue="ISCA'23",
    kind="accelerator",
    process_nm=28,
    die_mm2=21.37,
    clock_mhz=1000.0,
    sram_kb=4644.0,
    algorithm="hash-grid",
    realtime_inference=True,
    inference_mps=305.0,  # 50 M/s/W x 6.1 W, estimated in the paper
    off_chip_bandwidth_gbps=512.0,
    typical_power_w=6.1,
    estimated=True,
)

METAVRAIN = PlatformSpec(
    name="MetaVRain",
    venue="ISSCC'23",
    kind="accelerator",
    process_nm=28,
    die_mm2=20.25,
    clock_mhz=250.0,
    sram_kb=2050.0,
    core_voltage_v=0.95,
    algorithm="mlp",
    silicon_prototype=True,
    realtime_inference=True,  # via >97% frame-overlap image warping
    inference_mps=13.8,
    inference_nj_per_point=65.0,
)

NGPC = PlatformSpec(
    name="NGPC",
    venue="ISCA'23",
    kind="accelerator",
    process_nm=28,
    algorithm="hash-grid",
    realtime_inference=True,
    off_chip_bandwidth_gbps=231.0,
)

GEN_NERF = PlatformSpec(
    name="Gen-NeRF",
    venue="ISCA'23",
    kind="accelerator",
    process_nm=28,
    algorithm="generalizable",
    off_chip_bandwidth_gbps=17.8,
)

#: Edge platforms of Table I: the available budget is the USB port.
EDGE_PLATFORM_BANDWIDTH_GBPS = {
    "Nvidia XNX": 0.625,
    "Meta Quest 2/3/Pro": 0.625,
    "Samsung S24 Ultra": 0.625,
}

#: Table III column order.
TABLE3_BASELINES = (
    JETSON_NANO,
    JETSON_XNX,
    RT_NERF_EDGE,
    INSTANT_3D,
    NEUREX_EDGE,
    METAVRAIN,
)

#: Table IV column order.
TABLE4_BASELINES = (RTX_2080TI, RT_NERF_CLOUD, NEUREX_SERVER)

#: Table I accelerator rows.
TABLE1_ACCELERATORS = (
    RT_NERF_EDGE,
    GEN_NERF,
    NEUREX_EDGE,
    INSTANT_3D,
    NGPC,
    RT_NERF_CLOUD,
    NEUREX_SERVER,
)

ALL_BASELINES = {
    spec.name: spec
    for spec in (
        JETSON_NANO,
        JETSON_XNX,
        RTX_2080TI,
        RT_NERF_EDGE,
        RT_NERF_CLOUD,
        INSTANT_3D,
        NEUREX_EDGE,
        NEUREX_SERVER,
        METAVRAIN,
        NGPC,
        GEN_NERF,
    )
}
