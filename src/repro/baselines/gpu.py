"""Analytical GPU performance model for per-scene comparisons.

The paper's per-scene GPU results (Fig. 11, Table V) vary with workload
character: GPUs amortize their wide SIMT front-end well on dense scenes
(long rays, many samples per warp) and poorly on sparse ones, where
occupancy-gated early exits leave warps divergent and memory accesses
uncoalesced.  We model that with a saturating efficiency curve in the
mean samples-per-ray statistic:

``throughput = dense_peak * (s + base) / (s + base + warp_overhead)``

anchored so the scene-averaged throughput reproduces the GPU's reported
numbers (e.g. the 2080 Ti's 100 M points/s inference from Table IV).
Energy per point rises as utilization falls, against a constant
background of static power.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import PlatformSpec
from ..sim.trace import WorkloadTrace


@dataclass(frozen=True)
class GpuModelConfig:
    """Shape parameters of the SIMT efficiency curve."""

    #: Samples/ray at which a warp is half utilized.
    warp_overhead: float = 8.0
    #: Baseline work per ray (setup, ray gen) that keeps lanes partially
    #: busy even on near-empty rays — the efficiency floor.
    base_samples: float = 2.0
    #: Scene-average samples/ray that the reported numbers correspond to.
    reference_samples_per_ray: float = 13.0
    #: Fraction of TDP burned regardless of utilization.
    static_power_fraction: float = 0.35


class GpuModel:
    """Per-scene throughput/energy of a GPU platform."""

    def __init__(self, spec: PlatformSpec, config: GpuModelConfig = GpuModelConfig()):
        if spec.kind != "gpu":
            raise ValueError(f"{spec.name} is not a GPU")
        self.spec = spec
        self.config = config

    def _efficiency(self, samples_per_ray: float) -> float:
        s = max(samples_per_ray, 0.0) + self.config.base_samples
        return s / (s + self.config.warp_overhead)

    def _dense_peak(self, reported_mps: float) -> float:
        """Back out the dense-scene peak from the reported average."""
        ref_eff = self._efficiency(self.config.reference_samples_per_ray)
        return reported_mps / ref_eff

    def throughput_mps(self, trace: WorkloadTrace, training: bool = False) -> float:
        """Million samples/s the GPU sustains on this workload."""
        reported = self.spec.training_mps if training else self.spec.inference_mps
        if reported is None:
            raise ValueError(f"{self.spec.name} does not report this mode")
        peak = self._dense_peak(reported)
        return peak * self._efficiency(trace.mean_samples_per_ray)

    def runtime_s(self, trace: WorkloadTrace, training: bool = False) -> float:
        mps = self.throughput_mps(trace, training=training)
        return trace.n_samples / (mps * 1e6)

    def energy_per_point_j(self, trace: WorkloadTrace, training: bool = False) -> float:
        """Energy per sampled point on this workload.

        Uses the reported per-point energy when available, inflated by the
        utilization loss on sparse scenes (static power amortizes over
        fewer useful points); otherwise falls back to TDP over throughput.
        """
        reported_nj = (
            self.spec.training_nj_per_point
            if training
            else self.spec.inference_nj_per_point
        )
        eff = self._efficiency(trace.mean_samples_per_ray)
        ref_eff = self._efficiency(self.config.reference_samples_per_ray)
        static = self.config.static_power_fraction
        # Dynamic share scales with work; static share with runtime (1/eff).
        scale = (1.0 - static) + static * ref_eff / eff
        if reported_nj is not None:
            return reported_nj * 1e-9 * scale
        if not self.spec.typical_power_w:
            raise ValueError(f"{self.spec.name}: no energy data available")
        mps = self.throughput_mps(trace, training=training)
        return self.spec.typical_power_w / (mps * 1e6)

    def power_w(self, trace: WorkloadTrace, training: bool = False) -> float:
        return (
            self.energy_per_point_j(trace, training)
            * self.throughput_mps(trace, training)
            * 1e6
        )
