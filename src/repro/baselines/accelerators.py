"""Analytical models of the prior NeRF accelerators.

The paper compares against reported numbers (see Table III's footnotes);
accelerators are far less workload-sensitive than GPUs — their dedicated
datapaths keep utilization high — so per-scene variation is mild and
driven mainly by the occupancy-gated sample volume.  We model each
baseline as its reported throughput with a small irregularity penalty on
very sparse scenes (their schedulers are static, unlike T1-2's dynamic
dispatch).
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import PlatformSpec
from ..sim.trace import WorkloadTrace


@dataclass(frozen=True)
class AcceleratorModelConfig:
    """Shape of the (mild) workload sensitivity of fixed-function designs."""

    #: Samples/ray below which static schedulers start to stall.
    stall_knee: float = 4.0
    #: Worst-case utilization on degenerate (1-sample) rays.
    min_utilization: float = 0.6
    reference_samples_per_ray: float = 13.0


class AcceleratorModel:
    """Per-scene throughput/energy of a prior accelerator."""

    def __init__(
        self,
        spec: PlatformSpec,
        config: AcceleratorModelConfig = AcceleratorModelConfig(),
    ):
        if spec.kind != "accelerator":
            raise ValueError(f"{spec.name} is not an accelerator")
        self.spec = spec
        self.config = config

    def _utilization(self, samples_per_ray: float) -> float:
        cfg = self.config
        s = max(samples_per_ray, 1e-6)
        return cfg.min_utilization + (1.0 - cfg.min_utilization) * s / (
            s + cfg.stall_knee
        )

    def throughput_mps(self, trace: WorkloadTrace, training: bool = False) -> float:
        reported = self.spec.training_mps if training else self.spec.inference_mps
        if reported is None:
            raise ValueError(
                f"{self.spec.name} does not support "
                f"{'training' if training else 'inference'}"
            )
        ref = self._utilization(self.config.reference_samples_per_ray)
        return reported * self._utilization(trace.mean_samples_per_ray) / ref

    def runtime_s(self, trace: WorkloadTrace, training: bool = False) -> float:
        mps = self.throughput_mps(trace, training=training)
        return trace.n_samples / (mps * 1e6)

    def energy_per_point_j(self, trace: WorkloadTrace, training: bool = False) -> float:
        reported_nj = (
            self.spec.training_nj_per_point
            if training
            else self.spec.inference_nj_per_point
        )
        if reported_nj is None:
            if self.spec.typical_power_w:
                mps = self.throughput_mps(trace, training=training)
                return self.spec.typical_power_w / (mps * 1e6)
            raise ValueError(f"{self.spec.name}: no energy data available")
        ref = self._utilization(self.config.reference_samples_per_ray)
        return (
            reported_nj
            * 1e-9
            * ref
            / self._utilization(trace.mean_samples_per_ray)
        )
