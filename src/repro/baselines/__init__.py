"""Baseline platform models: published specs plus analytical per-scene
performance models for the GPUs and prior NeRF accelerators the paper
compares against."""

from .specs import (
    PlatformSpec,
    JETSON_NANO,
    JETSON_XNX,
    RTX_2080TI,
    RT_NERF_EDGE,
    RT_NERF_CLOUD,
    INSTANT_3D,
    NEUREX_EDGE,
    NEUREX_SERVER,
    METAVRAIN,
    NGPC,
    GEN_NERF,
    TABLE1_ACCELERATORS,
    TABLE3_BASELINES,
    TABLE4_BASELINES,
    ALL_BASELINES,
    EDGE_PLATFORM_BANDWIDTH_GBPS,
)
from .gpu import GpuModel, GpuModelConfig
from .accelerators import AcceleratorModel, AcceleratorModelConfig
from .warping import ImageWarpingModel, WarpingModelConfig

__all__ = [
    "PlatformSpec",
    "JETSON_NANO",
    "JETSON_XNX",
    "RTX_2080TI",
    "RT_NERF_EDGE",
    "RT_NERF_CLOUD",
    "INSTANT_3D",
    "NEUREX_EDGE",
    "NEUREX_SERVER",
    "METAVRAIN",
    "NGPC",
    "GEN_NERF",
    "TABLE1_ACCELERATORS",
    "TABLE3_BASELINES",
    "TABLE4_BASELINES",
    "ALL_BASELINES",
    "EDGE_PLATFORM_BANDWIDTH_GBPS",
    "GpuModel",
    "GpuModelConfig",
    "AcceleratorModel",
    "AcceleratorModelConfig",
    "ImageWarpingModel",
    "WarpingModelConfig",
]
