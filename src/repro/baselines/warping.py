"""Image-warping reuse model (MetaVRain's real-time technique).

Table III footnote 1: MetaVRain only sustains real-time rates when more
than 97% of pixels overlap between consecutive frames, reusing the
previous frame via warping and re-rendering only the residual.  This
model quantifies that trade against head motion: as the camera turns,
the overlapping fraction falls — newly exposed image border plus
disocclusion — and the effective frame rate of a warping renderer
collapses toward its raw (non-warped) rate, while a full-pipeline
renderer like Fusion-3D is motion-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WarpingModelConfig:
    """Geometry of the reuse estimate."""

    #: Horizontal field of view, degrees (Quest-class headset).
    fov_deg: float = 90.0
    #: Fraction of *overlapped* pixels that still need re-rendering due to
    #: disocclusion and specular invalidation, per radian of rotation.
    disocclusion_per_radian: float = 0.35
    #: Frame rate the display asks for (render clock), Hz.
    target_fps: float = 36.0


class ImageWarpingModel:
    """Effective throughput of a warp-then-patch renderer."""

    def __init__(
        self,
        raw_fps: float,
        config: WarpingModelConfig = WarpingModelConfig(),
    ):
        if raw_fps <= 0:
            raise ValueError("raw_fps must be positive")
        self.raw_fps = raw_fps
        self.config = config

    def overlap_fraction(self, angular_velocity_deg_s: float) -> float:
        """Pixels of the new frame covered by warping the previous one."""
        if angular_velocity_deg_s < 0:
            raise ValueError("angular velocity must be non-negative")
        per_frame_deg = angular_velocity_deg_s / self.config.target_fps
        border_loss = min(per_frame_deg / self.config.fov_deg, 1.0)
        disocclusion = (
            self.config.disocclusion_per_radian
            * np.deg2rad(per_frame_deg)
        )
        return float(np.clip(1.0 - border_loss - disocclusion, 0.0, 1.0))


    def rerender_fraction(self, angular_velocity_deg_s: float) -> float:
        return 1.0 - self.overlap_fraction(angular_velocity_deg_s)

    def effective_fps(self, angular_velocity_deg_s: float) -> float:
        """Frame rate with warping: only the residual re-renders.

        ``raw_fps / rerender_fraction``, capped at the display rate the
        warp path can feed.
        """
        residual = self.rerender_fraction(angular_velocity_deg_s)
        if residual <= 0.0:
            return float("inf")
        return self.raw_fps / residual

    def realtime_headroom_deg_s(self, realtime_fps: float = 30.0) -> float:
        """Fastest head motion at which warping still hits real time.

        Solved by bisection on the (monotone) effective-fps curve.
        """
        if self.raw_fps >= realtime_fps:
            return float("inf")
        low, high = 0.0, 2000.0
        if self.effective_fps(high) >= realtime_fps:
            return high
        for _ in range(60):
            mid = (low + high) / 2.0
            if self.effective_fps(mid) >= realtime_fps:
                low = mid
            else:
                high = mid
        return low
