"""Observability for the Fusion-3D reproduction: tracing, metrics, hooks.

Three pillars, all stdlib-only (no numpy — importable from every layer):

* :mod:`~repro.telemetry.tracing` — nestable wall-clock :class:`Span`\\ s
  exported as Chrome ``about:tracing`` / Perfetto JSON;
* :mod:`~repro.telemetry.metrics` — a process-wide registry of counters,
  gauges, and log-scale histograms (p50/p95/p99);
* :mod:`~repro.telemetry.hooks` — a callback protocol (``on_iteration``,
  ``on_batch``, ``on_module_simulated``) the trainer and simulators emit
  so experiments can subscribe without coupling.

The three are bundled into a :class:`TelemetrySession`; exactly one
session is *active* per process.  The default session is **disabled**:
its tracer and metrics are shared null singletons, so the instrumentation
compiled into the hot paths costs a couple of attribute lookups and
leaves every numerical result bit-identical.  Hooks stay live even when
disabled — subscribing must not require paying for spans and metrics.

Typical use::

    from repro import telemetry

    with telemetry.session() as tel:
        trainer.train(200)
        tel.tracer.write_chrome_trace("trace.json")
        print(tel.metrics.snapshot()["counters"]["trainer.iterations"])

or imperatively: ``tel = telemetry.enable(); ...; telemetry.disable()``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from .hooks import (
    HookDispatcher,
    ON_BATCH,
    ON_DIVERGENCE,
    ON_ITERATION,
    ON_MODULE_SIMULATED,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    NULL_METRICS,
    SnapshotPublisher,
)
from .tracing import NullTracer, NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HookDispatcher",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NullTracer",
    "NULL_METRICS",
    "NULL_TRACER",
    "ON_BATCH",
    "ON_DIVERGENCE",
    "ON_ITERATION",
    "ON_MODULE_SIMULATED",
    "SnapshotPublisher",
    "Span",
    "TelemetrySession",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "get_hooks",
    "get_metrics",
    "get_session",
    "get_tracer",
    "session",
    "set_session",
]


class TelemetrySession:
    """One tracer + one metrics registry + one hook dispatcher.

    ``enabled`` tells instrumentation sites whether it is worth computing
    derived quantities (rates, per-ray distributions) before recording
    them; with the disabled default session those branches are skipped
    entirely.
    """

    def __init__(self, tracer=None, metrics=None, hooks=None, enabled=True):
        self.tracer = tracer if tracer is not None else (
            Tracer() if enabled else NULL_TRACER
        )
        self.metrics = metrics if metrics is not None else (
            MetricsRegistry() if enabled else NULL_METRICS
        )
        self.hooks = hooks if hooks is not None else HookDispatcher()
        self.enabled = enabled
        #: Optional :class:`~repro.telemetry.metrics.SnapshotPublisher`;
        #: instrumented loops feed it only inside their ``enabled``
        #: branches, so the disabled session never pays for it.
        self.publisher = None

    def attach_publisher(
        self, interval_s: float = 1.0, capacity: int = 256
    ) -> SnapshotPublisher:
        """Attach a periodic metrics-snapshot publisher to this session.

        Returns the publisher; instrumentation sites (serve dispatch
        loop, trainer step) call its ``maybe_publish`` whenever the
        session is enabled.  Attaching on a disabled session raises —
        there would be nothing to sample.
        """
        if not self.enabled:
            raise ValueError("cannot attach a publisher to a disabled session")
        self.publisher = SnapshotPublisher(
            self.metrics, interval_s=interval_s, capacity=capacity
        )
        return self.publisher

    def summary(self) -> dict:
        """JSON-serializable digest: metrics snapshot + span aggregates.

        This is what :class:`~repro.experiments.base.ExperimentResult`
        stores in its ``telemetry`` section.
        """
        return {
            "metrics": self.metrics.snapshot(),
            "spans": self.tracer.aggregate(),
        }

    def clear(self) -> None:
        self.tracer.clear()
        self.metrics.clear()


#: The always-available disabled session.  Its hooks dispatcher is real
#: (subscription works without enabling telemetry); tracer and metrics
#: are the shared null singletons.
_DISABLED = TelemetrySession(
    tracer=NULL_TRACER, metrics=NULL_METRICS, enabled=False
)

_active = _DISABLED
_swap_lock = threading.Lock()


def get_session() -> TelemetrySession:
    """The active session; instrumentation sites call this once per op."""
    return _active


def set_session(session_obj: TelemetrySession) -> TelemetrySession:
    """Install ``session_obj`` as active; returns the previous session."""
    global _active
    with _swap_lock:
        previous = _active
        _active = session_obj
    return previous


def enable(tracer=None, metrics=None, hooks=None) -> TelemetrySession:
    """Activate a fresh (or caller-supplied) recording session."""
    session_obj = TelemetrySession(
        tracer=tracer, metrics=metrics, hooks=hooks, enabled=True
    )
    set_session(session_obj)
    return session_obj


def disable() -> None:
    """Restore the zero-overhead disabled default."""
    set_session(_DISABLED)


def enabled() -> bool:
    return _active.enabled


@contextmanager
def session(tracer=None, metrics=None, hooks=None):
    """Scoped recording session: activates on entry, restores on exit."""
    session_obj = TelemetrySession(
        tracer=tracer, metrics=metrics, hooks=hooks, enabled=True
    )
    previous = set_session(session_obj)
    try:
        yield session_obj
    finally:
        set_session(previous)


def get_tracer():
    return _active.tracer


def get_metrics():
    return _active.metrics


def get_hooks() -> HookDispatcher:
    return _active.hooks
