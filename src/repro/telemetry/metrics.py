"""Process-wide metrics: counters, gauges, and log-scale histograms.

The :class:`MetricsRegistry` is a thread-safe name -> instrument map.
Instruments are create-on-first-use (``registry.counter("trainer.rays")``)
so call sites never coordinate; asking for an existing name with a
different instrument type is an error rather than silent aliasing.

Histograms bucket observations on a geometric grid (default four buckets
per octave, ~9% relative width), the standard trick for latency-style
distributions whose range spans many orders of magnitude: memory stays
bounded while p50/p95/p99 come back within one bucket width of the truth.

Like the rest of :mod:`repro.telemetry`, this module is stdlib-only.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque


class Counter:
    """Monotonically increasing value (accepts float increments: cycles,
    bytes, and simulated quantities are not integers)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-write-wins scalar (loss, utilization, rates)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Log-scale histogram with approximate percentiles.

    Bucket *i* covers ``[min_bound * growth**i, min_bound * growth**(i+1))``;
    non-positive observations land in a dedicated underflow bucket.
    Percentiles report the geometric midpoint of the covering bucket,
    clamped to the exact observed min/max.
    """

    __slots__ = ("name", "growth", "min_bound", "_counts", "_lock",
                 "count", "sum", "min", "max")

    def __init__(self, name: str, growth: float = 2.0 ** 0.25,
                 min_bound: float = 1e-9):
        if growth <= 1.0:
            raise ValueError("growth must exceed 1")
        self.name = name
        self.growth = growth
        self.min_bound = min_bound
        self._counts = {}
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _bucket(self, value: float) -> int:
        if value < self.min_bound:
            return -1
        return int(math.log(value / self.min_bound) / math.log(self.growth))

    def observe(self, value: float, n: int = 1) -> None:
        """Record ``value``; ``n`` collapses repeated identical samples
        (e.g. a pre-binned per-ray count distribution) into one call.

        Non-finite observations are rejected: a NaN or infinity would
        poison every percentile downstream, so it fails loudly at the
        recording site instead.
        """
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(
                f"histogram {self.name!r} observed non-finite value {value!r}"
            )
        idx = self._bucket(value)
        with self._lock:
            self._counts[idx] = self._counts.get(idx, 0) + n
            self.count += n
            self.sum += value * n
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def observe_many(self, values) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate the ``q``-th percentile (``q`` in [0, 100]).

        Edge cases are always defined, never NaN: an empty histogram
        reports ``0.0`` (matching :meth:`summary`'s zero-filled form),
        a single observation — or any population of identical values —
        reports that exact value for every ``q``, and ``q`` of exactly 0
        or 100 report the observed min/max rather than a bucket estimate.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        with self._lock:
            if self.count == 0:
                return 0.0
            if self.min == self.max:
                return self.min  # single sample / identical population
            if q == 0.0:
                return self.min
            if q == 100.0:
                return self.max
            target = q / 100.0 * self.count
            seen = 0
            for idx in sorted(self._counts):
                seen += self._counts[idx]
                if seen >= target:
                    if idx < 0:
                        # Underflow bucket covers (-inf, min_bound): clamp
                        # zero into the observed range so an all-negative
                        # population never reports a value it did not see.
                        return min(max(0.0, self.min), self.max)
                    lower = self.min_bound * self.growth ** idx
                    upper = lower * self.growth
                    estimate = math.sqrt(lower * upper)
                    return min(max(estimate, self.min), self.max)
            return self.max

    def summary(self) -> dict:
        """count/sum/mean/min/max plus p50/p95/p99."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                    "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


class MetricsRegistry:
    """Thread-safe, create-on-first-use instrument registry."""

    def __init__(self):
        self._instruments = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, *args):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = cls(name, *args)
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {cls.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, **kwargs) -> Histogram:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = Histogram(name, **kwargs)
            elif not isinstance(instrument, Histogram):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not Histogram"
                )
            return instrument

    def names(self) -> list:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> dict:
        """Point-in-time dump: ``{"counters": ..., "gauges": ...,
        "histograms": ...}``, all plain JSON-serializable values."""
        with self._lock:
            instruments = dict(self._instruments)
        out = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, instrument in sorted(instruments.items()):
            if isinstance(instrument, Counter):
                out["counters"][name] = instrument.value
            elif isinstance(instrument, Gauge):
                out["gauges"][name] = instrument.value
            else:
                out["histograms"][name] = instrument.summary()
        return out

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()


class SnapshotPublisher:
    """Periodic metrics-snapshot ring buffer feeding the live ops plane.

    Instrumented loops (the serve dispatch loop, the trainer step) call
    :meth:`maybe_publish` with their own clock — the serve subsystem
    passes its *virtual* service clock, the trainer passes nothing and
    gets wall time — and the publisher samples the registry at most once
    per ``interval_s``, keeping the last ``capacity`` snapshots.  Each
    snapshot is the registry's plain-JSON :meth:`MetricsRegistry.snapshot`
    dict plus a ``"t_s"`` timestamp, which is exactly what the dashboard
    (:mod:`repro.obs.dashboard`) differentiates into rates.

    The publisher only ever *reads* instruments, so attaching one cannot
    change any recorded value, and it lives behind
    ``TelemetrySession.publisher`` (default ``None``) so the disabled
    telemetry path never touches it.
    """

    def __init__(self, registry, interval_s: float = 1.0, capacity: int = 256):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.registry = registry
        self.interval_s = interval_s
        self.capacity = capacity
        self._ring = deque(maxlen=capacity)
        self._last_t = None
        self._lock = threading.Lock()

    def maybe_publish(self, now_s: float = None):
        """Publish a snapshot if ``interval_s`` has elapsed since the last.

        ``now_s`` is the caller's clock (virtual seconds for the serving
        stack); ``None`` falls back to ``time.monotonic()``.  Returns the
        new snapshot dict, or ``None`` when the interval has not elapsed.
        """
        now_s = time.monotonic() if now_s is None else float(now_s)
        with self._lock:
            if self._last_t is not None and now_s - self._last_t < self.interval_s:
                return None
        return self.publish(now_s)

    def publish(self, now_s: float = None) -> dict:
        """Unconditionally sample the registry and append to the ring."""
        now_s = time.monotonic() if now_s is None else float(now_s)
        snapshot = self.registry.snapshot()
        snapshot["t_s"] = now_s
        with self._lock:
            self._ring.append(snapshot)
            self._last_t = now_s
        return snapshot

    def history(self) -> list:
        """All retained snapshots, oldest first."""
        with self._lock:
            return list(self._ring)

    def latest(self):
        """The most recent snapshot (``None`` before the first publish)."""
        with self._lock:
            return self._ring[-1] if self._ring else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        """Drop all retained snapshots and reset the interval timer."""
        with self._lock:
            self._ring.clear()
            self._last_t = None


class _NullInstrument:
    """Accepts every instrument method as a no-op."""

    __slots__ = ()
    name = "null"
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, n: int = 1) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def summary(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Zero-overhead registry: every lookup is the same null instrument."""

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **kwargs) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def names(self) -> list:
        return []

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def clear(self) -> None:
        pass


#: Process-wide no-op registry used whenever telemetry is disabled.
NULL_METRICS = NullMetricsRegistry()
