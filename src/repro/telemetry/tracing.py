"""Structured tracing: nestable wall-clock spans with Chrome-trace export.

A :class:`Tracer` hands out :class:`Span` context managers; entering a
span pushes it on a per-thread stack (so nesting is tracked without any
caller bookkeeping), exiting records its wall-clock duration.  Finished
spans serialize to the Chrome ``about:tracing`` / Perfetto JSON event
format (complete ``"X"`` events), so a training run can be dropped
straight into ``chrome://tracing`` or https://ui.perfetto.dev.

The :class:`NullTracer` is the process default: its :meth:`~NullTracer.span`
returns one shared no-op context manager, so instrumented hot paths cost
two attribute lookups and nothing else when telemetry is off.

This module is dependency-free (stdlib only) by design: the tracer must
be importable from every layer of the package without cycles.
"""

from __future__ import annotations

import json
import os
import threading
import time


class Span:
    """One timed region of code; use as a context manager.

    Spans are handed out by :meth:`Tracer.span` and report back to their
    tracer on exit.  ``parent`` is filled in on ``__enter__`` from the
    calling thread's span stack, giving the nesting structure for free.
    """

    __slots__ = (
        "tracer",
        "name",
        "args",
        "tid",
        "parent",
        "depth",
        "start_s",
        "duration_s",
    )

    def __init__(self, tracer: "Tracer", name: str, args: dict):
        self.tracer = tracer
        self.name = name
        self.args = args
        self.tid = 0
        self.parent = None
        self.depth = 0
        self.start_s = 0.0
        self.duration_s = 0.0

    def __enter__(self) -> "Span":
        self.tid = threading.get_ident()
        stack = self.tracer._stack()
        self.parent = stack[-1] if stack else None
        self.depth = len(stack)
        stack.append(self)
        self.start_s = self.tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = self.tracer._clock() - self.start_s
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self.tracer._record(self)
        return False

    @property
    def parent_name(self):
        return self.parent.name if self.parent is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_s * 1e3:.3f} ms)"


class Tracer:
    """Collects finished spans; thread-safe; exports Chrome trace JSON."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self._finished = []
        self._lock = threading.Lock()
        self._local = threading.local()

    #: A real tracer records; the NullTracer overrides this to False.
    enabled = True

    def span(self, name: str, **args) -> Span:
        """Open a named span: ``with tracer.span("forward"): ...``."""
        return Span(self, name, args)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    @property
    def finished(self) -> list:
        """Snapshot of completed spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    def aggregate(self) -> dict:
        """Wall-clock totals per span name.

        Returns ``{name: {"count": n, "total_s": t, "mean_s": t/n}}``,
        the input for the per-module wall-clock breakdown report.
        """
        totals = {}
        for span in self.finished:
            entry = totals.setdefault(span.name, {"count": 0, "total_s": 0.0})
            entry["count"] += 1
            entry["total_s"] += span.duration_s
        for entry in totals.values():
            entry["mean_s"] = entry["total_s"] / entry["count"]
        return totals

    def to_chrome_trace(self) -> dict:
        """Render finished spans as a Chrome ``about:tracing`` document.

        Each span becomes one complete (``"ph": "X"``) event with
        microsecond ``ts``/``dur``, so nesting is reconstructed by the
        viewer from time containment per thread track.
        """
        pid = os.getpid()
        events = []
        for span in self.finished:
            event = {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.start_s - self._epoch) * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": pid,
                "tid": span.tid,
            }
            if span.args:
                event["args"] = dict(span.args)
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        """Dump the Chrome-trace JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)


class _NullSpan:
    """Shared do-nothing context manager; one instance per process."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-overhead tracer: every span is the same no-op singleton."""

    enabled = False

    def span(self, name: str, **args) -> _NullSpan:
        return _NULL_SPAN

    @property
    def finished(self) -> list:
        return []

    def clear(self) -> None:
        pass

    def aggregate(self) -> dict:
        return {}

    def to_chrome_trace(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)


#: Process-wide no-op tracer used whenever telemetry is disabled.
NULL_TRACER = NullTracer()
