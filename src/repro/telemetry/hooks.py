"""Profiling hooks: a keyword-argument callback protocol.

The instrumented layers announce progress through a small set of named
events; experiments subscribe with plain callables and never import the
emitting module.  Events carry keyword arguments only, so emitters can
add context without breaking existing subscribers (callbacks should
accept ``**_`` for forward compatibility).

Well-known events (emitters in parentheses):

* ``on_iteration(trainer, loss)`` — one optimizer step finished
  (:class:`~repro.nerf.trainer.Trainer`).
* ``on_batch(trainer, batch)`` — a sample batch was marched, before the
  forward pass (:class:`~repro.nerf.trainer.Trainer`).
* ``on_module_simulated(module, cycles, ...)`` — one hardware module's
  cycle simulation finished (:class:`~repro.sim.chip.SingleChipAccelerator`,
  :class:`~repro.sim.multichip.MultiChipSystem`).
* ``on_divergence(trainer, event)`` — a training step went non-finite
  and was skipped; ``event`` is a
  :class:`~repro.robustness.errors.DivergenceEvent`.  If nobody is
  subscribed the trainer raises instead
  (:class:`~repro.nerf.trainer.Trainer`); subscribing — e.g. a
  :class:`~repro.robustness.watchdog.DivergenceWatchdog` — claims
  responsibility for recovery.

Custom event names are allowed; the dispatcher is just a name -> list
map.  Callbacks run synchronously in registration order; an exception in
a callback propagates to the emitter (hooks are a debugging tool — fail
loudly, not silently).
"""

from __future__ import annotations

import threading

ON_ITERATION = "on_iteration"
ON_BATCH = "on_batch"
ON_MODULE_SIMULATED = "on_module_simulated"
ON_DIVERGENCE = "on_divergence"


class HookDispatcher:
    """Name -> subscriber-list event bus; emit order == register order."""

    def __init__(self):
        self._listeners = {}
        self._lock = threading.Lock()

    def register(self, event: str, callback):
        """Subscribe ``callback`` to ``event``; returns the callback so it
        can be used as a decorator argument or unregistered later."""
        if not callable(callback):
            raise TypeError("hook callback must be callable")
        with self._lock:
            self._listeners.setdefault(event, []).append(callback)
        return callback

    def unregister(self, event: str, callback) -> None:
        with self._lock:
            listeners = self._listeners.get(event, [])
            if callback in listeners:
                listeners.remove(callback)

    # Convenience decorators for the well-known events.
    def on_iteration(self, callback):
        return self.register(ON_ITERATION, callback)

    def on_batch(self, callback):
        return self.register(ON_BATCH, callback)

    def on_module_simulated(self, callback):
        return self.register(ON_MODULE_SIMULATED, callback)

    def on_divergence(self, callback):
        return self.register(ON_DIVERGENCE, callback)

    def emit(self, name: str, **kwargs) -> int:
        """Invoke every subscriber of event ``name``; returns the handled count.

        A subscriber may return ``False`` to *decline* the event (e.g. a
        divergence watchdog receiving another trainer's event); any other
        return value — including the usual ``None`` — counts as handled.
        Emitters that need a recovery guarantee check for a zero return
        (see :meth:`repro.nerf.trainer.Trainer._diverge`).

        The subscriber list is snapshotted first, so a callback that
        (un)registers during dispatch affects the *next* emit only.
        (The parameter is ``name``, not ``event``, so payloads are free
        to carry an ``event=...`` keyword — ``on_divergence`` does.)
        """
        listeners = self._listeners.get(name)
        if not listeners:
            return 0
        handled = 0
        for callback in tuple(listeners):
            if callback(**kwargs) is not False:
                handled += 1
        return handled

    def listeners(self, event: str) -> list:
        return list(self._listeners.get(event, []))

    def clear(self) -> None:
        with self._lock:
            self._listeners.clear()
