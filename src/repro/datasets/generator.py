"""Procedural analytic scenes: the stand-in for the NeRF image datasets.

We do not ship NeRF-Synthetic / NeRF-360 images (no network, no assets),
so each scene is an *analytic radiance field* — a union of soft-edged
primitives with spatially varying color.  Ground-truth images are rendered
by densely marching the analytic field with the exact same compositing
math the model uses, which gives perfectly multi-view-consistent
supervision a NeRF can actually fit.  What the hardware experiments need
from a dataset is its *workload statistics* (occupancy sparsity, samples
per ray), and those are directly controlled by the primitive layouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nerf.aabb import SceneNormalizer
from ..nerf.camera import Camera, look_at
from ..nerf.rays import generate_rays
from ..nerf.volume_rendering import composite


@dataclass(frozen=True)
class Primitive:
    """A soft-edged density primitive with its own base color.

    ``kind`` is ``"sphere"`` (radius = ``size[0]``), ``"box"`` (half
    extents = ``size``), or ``"shell"`` (hollow sphere of thickness
    ``size[1]``).  Density falls off over ``edge`` world units outside the
    surface, so renders are anti-aliased and densities are smooth enough
    for a NeRF to learn.
    """

    kind: str
    center: tuple
    size: tuple
    color: tuple
    density: float = 40.0
    edge: float = 0.02

    def signed_distance(self, points: np.ndarray) -> np.ndarray:
        p = np.atleast_2d(points) - np.asarray(self.center)
        if self.kind == "sphere":
            return np.linalg.norm(p, axis=-1) - self.size[0]
        if self.kind == "box":
            q = np.abs(p) - np.asarray(self.size)
            outside = np.linalg.norm(np.maximum(q, 0.0), axis=-1)
            inside = np.minimum(q.max(axis=-1), 0.0)
            return outside + inside
        if self.kind == "shell":
            return np.abs(np.linalg.norm(p, axis=-1) - self.size[0]) - self.size[1]
        raise ValueError(f"unknown primitive kind {self.kind!r}")

    def density_at(self, points: np.ndarray) -> np.ndarray:
        sd = self.signed_distance(points)
        # Smooth step from full density inside to zero past the edge band.
        t = np.clip(-sd / self.edge, -1.0, 1.0)
        return self.density * 0.5 * (1.0 + t)


@dataclass
class AnalyticScene:
    """A named analytic radiance field over a world-space AABB."""

    name: str
    primitives: list
    world_min: np.ndarray
    world_max: np.ndarray
    background: float = 1.0
    #: Mild spatial color modulation so color is non-trivial to learn.
    color_frequency: float = 4.0

    def __post_init__(self):
        self.world_min = np.asarray(self.world_min, dtype=np.float64)
        self.world_max = np.asarray(self.world_max, dtype=np.float64)
        if np.any(self.world_max <= self.world_min):
            raise ValueError("world_max must exceed world_min")

    def normalizer(self) -> SceneNormalizer:
        return SceneNormalizer.from_aabb(self.world_min, self.world_max)

    def density(self, points: np.ndarray) -> np.ndarray:
        """World-space density: max over primitives (solid union)."""
        points = np.atleast_2d(points)
        total = np.zeros(points.shape[0])
        for prim in self.primitives:
            np.maximum(total, prim.density_at(points), out=total)
        return total

    def color(self, points: np.ndarray) -> np.ndarray:
        """World-space albedo: density-weighted blend of primitive colors
        with a smooth positional modulation."""
        points = np.atleast_2d(points)
        n = points.shape[0]
        weighted = np.zeros((n, 3))
        weight = np.zeros(n)
        for prim in self.primitives:
            d = prim.density_at(points)
            weighted += d[:, None] * np.asarray(prim.color)
            weight += d
        base = np.where(weight[:, None] > 1e-9, weighted / np.maximum(weight, 1e-9)[:, None], 0.5)
        mod = 0.15 * np.sin(self.color_frequency * np.pi * points).sum(axis=-1, keepdims=True)
        return np.clip(base + mod, 0.0, 1.0)

    def density_unit(self, unit_points: np.ndarray) -> np.ndarray:
        """Density sampled at normalized unit-cube coordinates."""
        return self.density(self.normalizer().from_unit(unit_points))

    def occupancy_fraction(self, resolution: int = 32, threshold: float = 0.5) -> float:
        """Fraction of unit-cube cells containing matter (workload knob)."""
        r = resolution
        grid = (
            np.stack(np.meshgrid(*([np.arange(r)] * 3), indexing="ij"), axis=-1)
            .reshape(-1, 3)
            + 0.5
        ) / r
        return float((self.density_unit(grid) > threshold).mean())

    def render(self, camera: Camera, n_steps: int = 192) -> np.ndarray:
        """Ground-truth render by dense marching of the analytic field."""
        from ..nerf.aabb import intersect_unit_cube

        normalizer = self.normalizer()
        rays = generate_rays(camera)
        origins, directions = normalizer.rays_to_unit(rays.origins, rays.directions)
        n_rays = len(rays)
        t0, t1, hit = intersect_unit_cube(origins, directions)
        spans = np.where(hit, t1 - t0, 0.0)
        # Fractional march positions shared by all rays; per-ray t values
        # stretch them over each ray's own entry/exit segment.
        fracs = (np.arange(n_steps) + 0.5) / n_steps
        image = np.empty((n_rays, 3))
        chunk = 4096
        for start in range(0, n_rays, chunk):
            stop = min(start + chunk, n_rays)
            o = origins[start:stop]
            d = directions[start:stop]
            ts = t0[start:stop, None] + fracs[None, :] * spans[start:stop, None]
            pts = o[:, None, :] + ts[..., None] * d[:, None, :]
            flat = np.clip(pts.reshape(-1, 3), 0.0, 1.0)
            world = normalizer.from_unit(flat)
            sigma = self.density(world)
            rgb = self.color(world)
            m = stop - start
            ray_idx = np.repeat(np.arange(m), n_steps)
            deltas = np.repeat(spans[start:stop] / n_steps, n_steps)
            result = composite(
                sigma,
                rgb,
                deltas,
                ts.reshape(-1),
                ray_idx,
                m,
                background=self.background,
            )
            image[start:stop] = result.colors
        return np.clip(image, 0.0, 1.0).reshape(camera.height, camera.width, 3)


@dataclass
class SceneDataset:
    """A posed multi-view dataset rendered from an analytic scene."""

    scene: AnalyticScene
    cameras: list
    images: np.ndarray
    normalizer: SceneNormalizer = field(default=None)

    def __post_init__(self):
        if self.normalizer is None:
            self.normalizer = self.scene.normalizer()

    @property
    def name(self) -> str:
        return self.scene.name

    def split(self, n_train: int) -> tuple:
        """(train_cameras, train_images, test_cameras, test_images)."""
        if not 0 < n_train <= len(self.cameras):
            raise ValueError("invalid split size")
        return (
            self.cameras[:n_train],
            self.images[:n_train],
            self.cameras[n_train:],
            self.images[n_train:],
        )


def camera_on_sphere_poses(
    n_views: int,
    radius: float,
    rng: np.random.Generator,
    center=(0.0, 0.0, 0.0),
    elevation_range=(0.15, 1.2),
) -> list:
    """Seeded random views on a sphere cap (BlenderNeRF's COS idiom).

    Unlike :func:`~repro.nerf.camera.sphere_poses` (a deterministic
    golden-angle sweep), every view here is an independent draw — azimuth
    uniform over the full circle, elevation uniform over
    ``elevation_range`` radians above the horizon — which is what a
    handheld capture walking around an object actually produces.  The
    stream is a pure function of ``rng``, so a capture session replays
    bit-exactly from its seed.
    """
    if n_views < 1:
        raise ValueError("need at least one view")
    center = np.asarray(center, dtype=np.float64)
    poses = []
    for _ in range(n_views):
        azimuth = rng.uniform(0.0, 2.0 * np.pi)
        elevation = rng.uniform(*elevation_range)
        eye = center + radius * np.array(
            [
                np.cos(elevation) * np.cos(azimuth),
                np.cos(elevation) * np.sin(azimuth),
                np.sin(elevation),
            ]
        )
        poses.append(look_at(eye, center))
    return poses


def spherical_trajectory_poses(
    n_views: int,
    radius: float,
    center=(0.0, 0.0, 0.0),
    turns: float = 1.0,
    elevation_range=(0.2, 1.0),
) -> list:
    """A smooth spherical orbit trajectory (BlenderNeRF's SOF idiom).

    Cameras advance along one continuous spiral — ``turns`` full
    azimuthal revolutions while elevation sweeps ``elevation_range`` —
    so consecutive frames overlap heavily, the way a turntable or
    drone-orbit capture does.  Deterministic: no RNG involved.
    """
    if n_views < 1:
        raise ValueError("need at least one view")
    center = np.asarray(center, dtype=np.float64)
    poses = []
    for i in range(n_views):
        frac = i / max(n_views - 1, 1)
        azimuth = 2.0 * np.pi * turns * frac
        elevation = elevation_range[0] + frac * (
            elevation_range[1] - elevation_range[0]
        )
        eye = center + radius * np.array(
            [
                np.cos(elevation) * np.cos(azimuth),
                np.cos(elevation) * np.sin(azimuth),
                np.sin(elevation),
            ]
        )
        poses.append(look_at(eye, center))
    return poses


#: Named trajectory generators of the streaming capture API.  ``"cos"``
#: (camera-on-sphere) draws seeded random views; ``"sof"`` (spherical
#: orbit of frames) is the deterministic spiral sweep.
TRAJECTORIES = ("cos", "sof")


def trajectory_poses(
    kind: str,
    n_views: int,
    radius: float,
    seed: int = 0,
    center=(0.0, 0.0, 0.0),
) -> list:
    """Build a named capture trajectory (see :data:`TRAJECTORIES`).

    The ``"cos"`` trajectory derives its RNG from ``seed`` alone, so the
    same ``(kind, n_views, radius, seed)`` tuple always produces the
    same poses — the replay contract the online reconstruction session
    relies on.
    """
    if kind == "cos":
        return camera_on_sphere_poses(
            n_views, radius, rng=np.random.default_rng(seed), center=center
        )
    if kind == "sof":
        return spherical_trajectory_poses(n_views, radius, center=center)
    raise ValueError(
        f"unknown trajectory {kind!r}; choose from {TRAJECTORIES}"
    )


def build_dataset(
    scene: AnalyticScene,
    poses: list,
    width: int = 64,
    height: int = 64,
    focal: float = None,
    gt_steps: int = 192,
) -> SceneDataset:
    """Render a posed image set from an analytic scene."""
    if focal is None:
        focal = 1.1 * width
    cameras = [
        Camera(width=width, height=height, focal=focal, c2w=pose) for pose in poses
    ]
    images = np.stack([scene.render(camera, n_steps=gt_steps) for camera in cameras])
    return SceneDataset(scene=scene, cameras=cameras, images=images)
