"""The eight "NeRF-Synthetic-like" object scenes.

Scene names follow the original dataset (chair, drums, ficus, hotdog,
lego, materials, mic, ship).  Each procedural layout is tuned to mimic the
*workload character* of its namesake — primarily how much of the bounding
volume is occupied and how samples distribute along rays, the quantities
that drive every hardware result (Table VI's per-scene sampling speedups
span 5.4x on dense ship to 20.2x on sparse mic).
"""

from __future__ import annotations

import numpy as np

from ..nerf.camera import sphere_poses
from .generator import AnalyticScene, Primitive, SceneDataset, build_dataset

_WORLD_MIN = (-1.0, -1.0, -1.0)
_WORLD_MAX = (1.0, 1.0, 1.0)


def _scene(name: str, primitives: list) -> AnalyticScene:
    return AnalyticScene(
        name=name,
        primitives=primitives,
        world_min=_WORLD_MIN,
        world_max=_WORLD_MAX,
    )


def _chair() -> AnalyticScene:
    seat = Primitive("box", (0.0, 0.0, -0.1), (0.30, 0.30, 0.05), (0.55, 0.35, 0.18))
    back = Primitive("box", (0.0, -0.27, 0.25), (0.30, 0.04, 0.35), (0.55, 0.35, 0.18))
    legs = [
        Primitive("box", (sx * 0.25, sy * 0.25, -0.45), (0.04, 0.04, 0.30), (0.35, 0.22, 0.12))
        for sx in (-1, 1)
        for sy in (-1, 1)
    ]
    return _scene("chair", [seat, back] + legs)


def _drums() -> AnalyticScene:
    rng = np.random.default_rng(1)
    prims = []
    for i in range(5):
        angle = 2 * np.pi * i / 5
        center = (0.45 * np.cos(angle), 0.45 * np.sin(angle), -0.25)
        prims.append(
            Primitive("sphere", center, (0.16,), tuple(rng.uniform(0.2, 0.9, 3)))
        )
    prims.append(Primitive("sphere", (0.0, 0.0, 0.1), (0.22,), (0.8, 0.75, 0.6)))
    return _scene("drums", prims)


def _ficus() -> AnalyticScene:
    pot = Primitive("box", (0.0, 0.0, -0.6), (0.14, 0.14, 0.12), (0.45, 0.25, 0.15))
    trunk = Primitive("box", (0.0, 0.0, -0.2), (0.03, 0.03, 0.30), (0.35, 0.22, 0.1))
    rng = np.random.default_rng(2)
    leaves = [
        Primitive(
            "sphere",
            tuple(rng.uniform(-0.35, 0.35, 2)) + (rng.uniform(0.05, 0.55),),
            (rng.uniform(0.045, 0.09),),
            (0.1, rng.uniform(0.4, 0.8), 0.15),
        )
        for _ in range(10)
    ]
    return _scene("ficus", [pot, trunk] + leaves)


def _hotdog() -> AnalyticScene:
    plate = Primitive("box", (0.0, 0.0, -0.45), (0.62, 0.62, 0.05), (0.92, 0.92, 0.95))
    bun = Primitive("box", (0.0, 0.0, -0.25), (0.52, 0.22, 0.13), (0.85, 0.62, 0.3))
    sausage = Primitive("sphere", (0.0, 0.0, -0.08), (0.45,), (0.75, 0.25, 0.12))
    sausage2 = Primitive("box", (0.0, 0.0, -0.05), (0.48, 0.10, 0.10), (0.78, 0.28, 0.12))
    return _scene("hotdog", [plate, bun, sausage, sausage2])


def _lego() -> AnalyticScene:
    base = Primitive("box", (0.0, 0.0, -0.5), (0.5, 0.35, 0.08), (0.75, 0.6, 0.2))
    arm = Primitive("box", (0.1, 0.0, 0.0), (0.10, 0.10, 0.45), (0.85, 0.65, 0.15))
    scoop = Primitive("box", (0.35, 0.0, 0.35), (0.18, 0.14, 0.10), (0.85, 0.65, 0.15))
    cab = Primitive("box", (-0.25, 0.0, -0.2), (0.18, 0.18, 0.20), (0.8, 0.15, 0.1))
    treads = [
        Primitive("box", (0.0, sy * 0.3, -0.42), (0.45, 0.08, 0.10), (0.2, 0.2, 0.22))
        for sy in (-1, 1)
    ]
    return _scene("lego", [base, arm, scoop, cab] + treads)


def _materials() -> AnalyticScene:
    rng = np.random.default_rng(3)
    prims = [
        Primitive(
            "sphere",
            (x, y, -0.45),
            (0.11,),
            tuple(rng.uniform(0.1, 0.95, 3)),
        )
        for x in np.linspace(-0.55, 0.55, 4)
        for y in np.linspace(-0.35, 0.35, 3)
    ]
    return _scene("materials", prims)


def _mic() -> AnalyticScene:
    head = Primitive("sphere", (0.05, 0.0, 0.38), (0.13,), (0.75, 0.78, 0.82))
    stem = Primitive("box", (0.0, 0.0, 0.0), (0.025, 0.025, 0.35), (0.3, 0.3, 0.32))
    base = Primitive("sphere", (0.0, 0.0, -0.42), (0.12,), (0.25, 0.25, 0.28))
    return _scene("mic", [head, stem, base])


def _ship() -> AnalyticScene:
    water = Primitive("box", (0.0, 0.0, -0.55), (0.85, 0.85, 0.07), (0.15, 0.35, 0.5))
    hull = Primitive("box", (0.0, 0.0, -0.32), (0.55, 0.20, 0.14), (0.45, 0.3, 0.2))
    deck = Primitive("box", (0.0, 0.0, -0.1), (0.35, 0.14, 0.10), (0.55, 0.4, 0.25))
    mast = Primitive("box", (0.05, 0.0, 0.25), (0.03, 0.03, 0.38), (0.35, 0.25, 0.15))
    sail = Primitive("box", (0.18, 0.0, 0.3), (0.14, 0.02, 0.26), (0.9, 0.88, 0.8))
    return _scene("ship", [water, hull, deck, mast, sail])


_BUILDERS = {
    "chair": _chair,
    "drums": _drums,
    "ficus": _ficus,
    "hotdog": _hotdog,
    "lego": _lego,
    "materials": _materials,
    "mic": _mic,
    "ship": _ship,
}

#: Canonical scene order used by the paper's per-scene tables.
SYNTHETIC_SCENES = tuple(sorted(_BUILDERS))


def make_scene(name: str) -> AnalyticScene:
    """Build one of the eight object scenes by name."""
    if name not in _BUILDERS:
        raise KeyError(
            f"unknown synthetic scene {name!r}; choose from {SYNTHETIC_SCENES}"
        )
    return _BUILDERS[name]()


def make_dataset(
    name: str,
    n_views: int = 16,
    width: int = 64,
    height: int = 64,
    gt_steps: int = 192,
) -> SceneDataset:
    """Render a posed multi-view dataset for one scene."""
    scene = make_scene(name)
    poses = sphere_poses(n_views, radius=2.6)
    return build_dataset(scene, poses, width=width, height=height, gt_steps=gt_steps)
