"""Procedural datasets standing in for NeRF-Synthetic and NeRF-360.

See DESIGN.md for the substitution argument: the hardware results depend
on workload statistics, which the analytic scenes control directly.
"""

from .generator import (
    Primitive,
    AnalyticScene,
    SceneDataset,
    TRAJECTORIES,
    build_dataset,
    camera_on_sphere_poses,
    spherical_trajectory_poses,
    trajectory_poses,
)
from . import synthetic
from . import nerf360
from .synthetic import SYNTHETIC_SCENES
from .nerf360 import NERF360_SCENES

__all__ = [
    "Primitive",
    "AnalyticScene",
    "SceneDataset",
    "TRAJECTORIES",
    "build_dataset",
    "camera_on_sphere_poses",
    "spherical_trajectory_poses",
    "trajectory_poses",
    "synthetic",
    "nerf360",
    "SYNTHETIC_SCENES",
    "NERF360_SCENES",
]
