"""The seven "NeRF-360-like" large-scale scenes.

Mirrors the Mip-NeRF-360 capture pattern: an inward-facing camera ring in
an unbounded environment, with far more spatial extent than the object
scenes.  Per-scene layouts vary clutter and spatial spread, which controls
the occupancy statistics driving the multi-chip results (Table V's
speedups range from 3.1x on the cluttered garden to 9.2x on the sparse
bicycle scene).
"""

from __future__ import annotations

import numpy as np

from ..nerf.camera import ring_poses
from .generator import AnalyticScene, Primitive, SceneDataset, build_dataset

_WORLD_MIN = (-4.0, -4.0, -0.5)
_WORLD_MAX = (4.0, 4.0, 3.5)


def _ground(color=(0.35, 0.4, 0.3)) -> Primitive:
    return Primitive("box", (0.0, 0.0, -0.35), (3.9, 3.9, 0.15), color, edge=0.06)


def _scatter(
    rng: np.random.Generator,
    n: int,
    radius_range=(0.15, 0.45),
    height_range=(0.0, 1.6),
    spread: float = 3.2,
) -> list:
    prims = []
    for _ in range(n):
        center = (
            rng.uniform(-spread, spread),
            rng.uniform(-spread, spread),
            rng.uniform(*height_range),
        )
        kind = "sphere" if rng.random() < 0.6 else "box"
        size = (
            (rng.uniform(*radius_range),)
            if kind == "sphere"
            else tuple(rng.uniform(radius_range[0], radius_range[1], 3))
        )
        prims.append(Primitive(kind, center, size, tuple(rng.uniform(0.1, 0.9, 3)), edge=0.05))
    return prims


def _scene(name: str, primitives: list) -> AnalyticScene:
    return AnalyticScene(
        name=name,
        primitives=primitives,
        world_min=_WORLD_MIN,
        world_max=_WORLD_MAX,
        color_frequency=1.5,
    )


def _bicycle() -> AnalyticScene:
    rng = np.random.default_rng(10)
    frame = [
        Primitive("shell", (-0.5, 0.0, 0.45), (0.42, 0.05), (0.15, 0.15, 0.18), edge=0.04),
        Primitive("shell", (0.6, 0.0, 0.45), (0.42, 0.05), (0.15, 0.15, 0.18), edge=0.04),
        Primitive("box", (0.05, 0.0, 0.75), (0.5, 0.04, 0.08), (0.7, 0.2, 0.15), edge=0.04),
    ]
    return _scene("bicycle", [_ground()] + frame + _scatter(rng, 3, spread=2.8))


def _bonsai() -> AnalyticScene:
    rng = np.random.default_rng(11)
    pot = Primitive("box", (0.0, 0.0, 0.25), (0.5, 0.5, 0.25), (0.5, 0.3, 0.2), edge=0.05)
    canopy = [
        Primitive(
            "sphere",
            tuple(rng.uniform(-0.7, 0.7, 2)) + (rng.uniform(0.8, 1.6),),
            (rng.uniform(0.2, 0.4),),
            (0.15, rng.uniform(0.4, 0.7), 0.2),
            edge=0.05,
        )
        for _ in range(6)
    ]
    table = Primitive("box", (0.0, 0.0, -0.1), (1.6, 1.6, 0.1), (0.6, 0.5, 0.4), edge=0.05)
    return _scene("bonsai", [_ground((0.45, 0.42, 0.4)), table, pot] + canopy)


def _counter() -> AnalyticScene:
    rng = np.random.default_rng(12)
    counter = Primitive("box", (0.0, 0.0, 0.45), (2.2, 1.0, 0.45), (0.55, 0.5, 0.48), edge=0.06)
    items = _scatter(rng, 8, radius_range=(0.12, 0.3), height_range=(1.0, 1.4), spread=1.8)
    return _scene("counter", [_ground((0.5, 0.48, 0.45)), counter] + items)


def _garden() -> AnalyticScene:
    rng = np.random.default_rng(13)
    table = Primitive("box", (0.0, 0.0, 0.5), (0.8, 0.8, 0.08), (0.5, 0.4, 0.3), edge=0.05)
    plant = Primitive("sphere", (0.0, 0.0, 0.9), (0.35,), (0.2, 0.55, 0.2), edge=0.05)
    # Garden is the paper's hardest scene: heavy peripheral vegetation.
    bushes = _scatter(rng, 26, radius_range=(0.45, 0.9), height_range=(0.0, 1.6), spread=3.4)
    return _scene("garden", [_ground((0.3, 0.45, 0.25)), table, plant] + bushes)


def _kitchen() -> AnalyticScene:
    rng = np.random.default_rng(14)
    island = Primitive("box", (0.0, 0.0, 0.5), (1.4, 0.9, 0.5), (0.65, 0.6, 0.55), edge=0.06)
    cabinets = [
        Primitive("box", (sx * 2.8, 0.0, 1.0), (0.4, 2.2, 1.0), (0.55, 0.45, 0.35), edge=0.06)
        for sx in (-1, 1)
    ]
    items = _scatter(rng, 6, radius_range=(0.12, 0.28), height_range=(1.1, 1.6), spread=1.2)
    return _scene("kitchen", [_ground((0.55, 0.52, 0.5)), island] + cabinets + items)


def _room() -> AnalyticScene:
    rng = np.random.default_rng(15)
    walls = [
        Primitive("box", (0.0, 3.6, 1.5), (3.8, 0.2, 2.0), (0.75, 0.72, 0.68), edge=0.08),
        Primitive("box", (3.6, 0.0, 1.5), (0.2, 3.8, 2.0), (0.72, 0.7, 0.66), edge=0.08),
    ]
    sofa = Primitive("box", (-1.0, 1.5, 0.45), (1.2, 0.5, 0.45), (0.4, 0.25, 0.3), edge=0.06)
    table = Primitive("box", (0.5, -0.5, 0.35), (0.7, 0.7, 0.08), (0.5, 0.38, 0.3), edge=0.05)
    items = _scatter(rng, 5, radius_range=(0.15, 0.3), height_range=(0.5, 1.2), spread=2.0)
    return _scene("room", [_ground((0.5, 0.45, 0.4))] + walls + [sofa, table] + items)


def _stump() -> AnalyticScene:
    rng = np.random.default_rng(16)
    stump = Primitive("box", (0.0, 0.0, 0.35), (0.6, 0.6, 0.35), (0.45, 0.32, 0.2), edge=0.05)
    ring = Primitive("shell", (0.0, 0.0, 0.7), (0.55, 0.06), (0.55, 0.42, 0.28), edge=0.04)
    return _scene("stump", [_ground()] + [stump, ring] + _scatter(rng, 4, spread=3.0))


_BUILDERS = {
    "bicycle": _bicycle,
    "bonsai": _bonsai,
    "counter": _counter,
    "garden": _garden,
    "kitchen": _kitchen,
    "room": _room,
    "stump": _stump,
}

#: Canonical scene order of the paper's Table V.
NERF360_SCENES = ("bicycle", "bonsai", "counter", "garden", "kitchen", "room", "stump")


def make_scene(name: str) -> AnalyticScene:
    """Build one of the seven large-scale scenes by name."""
    if name not in _BUILDERS:
        raise KeyError(
            f"unknown 360 scene {name!r}; choose from {NERF360_SCENES}"
        )
    return _BUILDERS[name]()


def make_dataset(
    name: str,
    n_views: int = 16,
    width: int = 64,
    height: int = 64,
    gt_steps: int = 192,
) -> SceneDataset:
    """Render a posed ring-capture dataset for one scene."""
    scene = make_scene(name)
    poses = ring_poses(n_views, radius=3.2, height=1.6)
    return build_dataset(scene, poses, width=width, height=height, gt_steps=gt_steps)
