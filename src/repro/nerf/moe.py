"""Mixture-of-Experts NeRF: Level-1 tiling of the multi-chip system (T3).

The whole model is split into N complete, smaller models ("experts"), one
per chip.  Each expert runs the full three-stage pipeline on the broadcast
input rays, gated by its own occupancy grid, and the chips' outputs are
fused *by addition* in the I/O module — the property that collapses
chip-to-chip traffic to one partial pixel per ray per chip.

Fusion rule.  Each expert composites its own render with the shared
background ``bg``; since a standard composite returns
``C_e = bg + sum_i w_i (c_i - bg)``, the fused pixel

``C = bg + sum_e (C_e - bg)``

is a plain sum with a constant offset, and ``dC/dC_e = 1`` — the I/O
module is an adder, exactly as Sec. V-A describes, and gradients broadcast
back to each chip unchanged.  Experts specialize automatically during
training (paper Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .aabb import SceneNormalizer
from .hash_encoding import HashEncodingConfig
from .model import InstantNGPModel, ModelConfig
from .occupancy import OccupancyGrid
from .optimizer import Adam, mse_loss
from .rays import sample_training_rays, generate_rays
from .sampling import RayMarcher, SamplerConfig
from .trainer import TrainerConfig, TrainState
from .volume_rendering import composite, composite_backward, psnr


@dataclass(frozen=True)
class MoEConfig:
    """MoE decomposition parameters.

    ``expert_log2_table_size`` is the per-expert hash-table size; the
    paper's headline configuration is four experts of 2^14 entries
    replacing one 2^16 model (same total capacity).
    """

    n_experts: int = 4
    expert_model: ModelConfig = field(
        default_factory=lambda: ModelConfig(
            encoding=HashEncodingConfig(log2_table_size=14)
        )
    )

    def __post_init__(self):
        if self.n_experts < 1:
            raise ValueError("need at least one expert")


class MoENeRF:
    """N independent experts fused by addition at the pixel level."""

    def __init__(self, config: MoEConfig = MoEConfig(), seed: int = 0):
        self.config = config
        self.experts = [
            InstantNGPModel(config.expert_model, seed=seed + i)
            for i in range(config.n_experts)
        ]

    @property
    def n_experts(self) -> int:
        return self.config.n_experts

    @property
    def n_parameters(self) -> int:
        return sum(expert.n_parameters for expert in self.experts)

    def parameters(self) -> dict:
        params = {}
        for i, expert in enumerate(self.experts):
            for name, value in expert.parameters().items():
                params[f"expert{i}.{name}"] = value
        return params

    @staticmethod
    def fuse(expert_colors: list, background: float) -> np.ndarray:
        """The I/O module's adder: ``bg + sum_e (C_e - bg)``."""
        if not expert_colors:
            raise ValueError("no expert outputs to fuse")
        total = np.zeros_like(expert_colors[0])
        for colors in expert_colors:
            total += colors - background
        return total + background


class MoETrainer:
    """Joint training of all experts against the fused render."""

    def __init__(
        self,
        model: MoENeRF,
        cameras: list,
        images: np.ndarray,
        normalizer: SceneNormalizer,
        config: TrainerConfig = TrainerConfig(),
    ):
        self.model = model
        self.cameras = cameras
        self.images = np.asarray(images, dtype=np.float64)
        self.normalizer = normalizer
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.marcher = RayMarcher(
            SamplerConfig(max_samples=config.max_samples_per_ray, jitter=True)
        )
        self.occupancies = [
            OccupancyGrid(
                resolution=config.occupancy_resolution,
                threshold=config.occupancy_threshold,
            )
            for _ in range(model.n_experts)
        ]
        self.optimizers = [
            Adam(expert.parameters(), lr=config.lr) for expert in model.experts
        ]
        self.state = TrainState()
        #: Per-expert sample counts of the last step (workload balance data).
        self.last_expert_samples = [0] * model.n_experts

    def train_step(self) -> float:
        cfg = self.config
        rays, target = sample_training_rays(
            self.cameras, self.images, cfg.batch_rays, self.rng
        )
        origins, directions = self.normalizer.rays_to_unit(
            rays.origins, rays.directions
        )
        forwards = []
        expert_colors = []
        for e, expert in enumerate(self.model.experts):
            batch = self.marcher.sample(
                origins, directions, occupancy=self.occupancies[e], rng=self.rng
            )
            self.last_expert_samples[e] = len(batch)
            if len(batch) == 0:
                forwards.append(None)
                expert_colors.append(
                    np.full((len(target), 3), cfg.background, dtype=np.float64)
                )
                continue
            sigma, rgb, cache = expert.forward(batch.positions, batch.directions)
            result = composite(
                sigma,
                rgb,
                batch.deltas,
                batch.ts,
                batch.ray_idx,
                batch.n_rays,
                background=cfg.background,
            )
            forwards.append((batch, sigma, rgb, cache, result))
            expert_colors.append(result.colors)
        fused = MoENeRF.fuse(expert_colors, cfg.background)
        loss, grad_colors = mse_loss(fused, target)
        for e, expert in enumerate(self.model.experts):
            if forwards[e] is None:
                continue
            batch, sigma, rgb, cache, result = forwards[e]
            grad_sigma, grad_rgb = composite_backward(
                grad_colors,
                result,
                sigma,
                rgb,
                batch.deltas,
                batch.ray_idx,
                batch.n_rays,
                background=cfg.background,
            )
            grads = expert.backward(grad_sigma, grad_rgb, cache)
            self.optimizers[e].step(grads)
        self.state.iteration += 1
        self.state.losses.append(loss)
        if (
            cfg.occupancy_interval
            and self.state.iteration % cfg.occupancy_interval == 0
        ):
            self._refresh_occupancies()
        return loss

    def train(self, n_iterations: int, eval_every: int = 0, eval_views: int = 2) -> TrainState:
        for _ in range(n_iterations):
            self.train_step()
            if eval_every and self.state.iteration % eval_every == 0:
                self.state.psnr_history.append(
                    (self.state.iteration, self.eval_psnr(n_views=eval_views))
                )
        return self.state

    def render_rays(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        """Fused inference render of unit-space rays."""
        expert_colors = []
        for e, expert in enumerate(self.model.experts):
            batch = self.marcher.sample(
                origins, directions, occupancy=self.occupancies[e]
            )
            n = np.atleast_2d(origins).shape[0]
            if len(batch) == 0:
                expert_colors.append(np.full((n, 3), self.config.background))
                continue
            sigma, rgb, _ = expert.forward(batch.positions, batch.directions)
            result = composite(
                sigma,
                rgb,
                batch.deltas,
                batch.ts,
                batch.ray_idx,
                batch.n_rays,
                background=self.config.background,
            )
            expert_colors.append(result.colors)
        return MoENeRF.fuse(expert_colors, self.config.background)

    def eval_psnr(self, cameras: list = None, images: np.ndarray = None, n_views: int = 2) -> float:
        if cameras is None:
            cameras = self.cameras[:n_views]
            images = self.images[:n_views]
        scores = []
        for camera, target in zip(cameras, images):
            rays = generate_rays(camera)
            origins, directions = self.normalizer.rays_to_unit(
                rays.origins, rays.directions
            )
            colors = np.empty((camera.n_pixels, 3))
            chunk = 8192
            for start in range(0, camera.n_pixels, chunk):
                stop = min(start + chunk, camera.n_pixels)
                colors[start:stop] = self.render_rays(
                    origins[start:stop], directions[start:stop]
                )
            rendered = np.clip(colors, 0.0, 1.0).reshape(
                camera.height, camera.width, 3
            )
            scores.append(psnr(rendered, target))
        return float(np.mean(scores))

    def expert_dominance(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        """Which expert contributes most to each ray (paper Fig. 8 view).

        Returns an ``(n_rays,)`` int array of dominating expert indices.
        """
        contributions = []
        for e, expert in enumerate(self.model.experts):
            batch = self.marcher.sample(
                origins, directions, occupancy=self.occupancies[e]
            )
            n = np.atleast_2d(origins).shape[0]
            if len(batch) == 0:
                contributions.append(np.zeros(n))
                continue
            sigma, rgb, _ = expert.forward(batch.positions, batch.directions)
            result = composite(
                sigma, rgb, batch.deltas, batch.ts, batch.ray_idx, batch.n_rays,
                background=0.0,
            )
            contributions.append(np.abs(result.colors).sum(axis=-1))
        return np.argmax(np.stack(contributions, axis=0), axis=0)

    def _refresh_occupancies(self) -> None:
        res = self.config.occupancy_resolution
        base = (
            np.stack(np.meshgrid(*([np.arange(res)] * 3), indexing="ij"), axis=-1)
            .reshape(-1, 3)
            .astype(np.float64)
        )
        for e, expert in enumerate(self.model.experts):
            jitter = self.rng.uniform(0.0, 1.0, size=base.shape)
            points = (base + jitter) / res
            density = expert.density(points)
            self.occupancies[e].update(points, density)
            if not self.occupancies[e].mask.any():
                self.occupancies[e].mask[:] = True


def dominance_map(trainer: MoETrainer, camera, normalizer) -> np.ndarray:
    """Per-pixel dominating-expert image (the paper's Fig. 8 view).

    Returns an ``(h, w)`` integer array of expert indices; render it with
    any categorical palette to reproduce the figure's colored regions.
    """
    from .rays import generate_rays

    rays = generate_rays(camera)
    origins, directions = normalizer.rays_to_unit(rays.origins, rays.directions)
    dominance = trainer.expert_dominance(origins, directions)
    return dominance.reshape(camera.height, camera.width)


def dominance_ascii(dominance: np.ndarray, glyphs: str = ".:+#@%&*") -> str:
    """Render a dominance map as ASCII art (for terminal examples)."""
    dominance = np.asarray(dominance)
    if dominance.max() >= len(glyphs):
        raise ValueError("not enough glyphs for the expert count")
    lines = []
    for row in dominance:
        lines.append("".join(glyphs[int(e)] for e in row))
    return "\n".join(lines)
