"""Ray-marching sampler: the core of NeRF pipeline Stage I.

Given rays in normalized space, the sampler marches fixed-size steps
between each ray's cube entry and exit, drops points in unoccupied cells
(the occupancy grid gating), and emits a flat batch of sample points ready
for Stage II.  It also records the workload statistics the cycle
simulator replays: candidate points tested, points kept, and the per-ray
sample distribution whose skew motivates dynamic scheduling (T1-2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from .aabb import intersect_unit_cube
from .occupancy import OccupancyGrid


@dataclass
class SampleBatch:
    """Flat batch of sampled 3D points grouped by source ray.

    ``ray_idx`` maps each sample back to its ray; samples of one ray are
    contiguous and ordered front-to-back, which the renderer requires.
    """

    positions: np.ndarray  # (n_samples, 3) float32, in unit-cube space
    directions: np.ndarray  # (n_samples, 3) float32 unit view directions
    deltas: np.ndarray  # (n_samples,) marching step of each sample
    ts: np.ndarray  # (n_samples,) distance along the (normalized) ray
    ray_idx: np.ndarray  # (n_samples,) source ray of each sample
    n_rays: int
    #: Points evaluated before occupancy filtering (Stage I work).
    candidates: int = 0

    def __len__(self) -> int:
        return self.positions.shape[0]

    @property
    def samples_per_ray(self) -> np.ndarray:
        return np.bincount(self.ray_idx, minlength=self.n_rays)


@dataclass(frozen=True)
class SamplerConfig:
    """Marching parameters.

    ``max_samples`` bounds the steps taken across the unit cube; the
    actual per-ray count after occupancy gating is usually far smaller
    (the paper quotes 4-5 on sparse scenes up to 128-255 dense).
    """

    max_samples: int = 128
    #: Skip samples whose cell is unoccupied.
    use_occupancy: bool = True
    #: Deterministic mid-step placement (False) or jittered (True).
    jitter: bool = False


class RayMarcher:
    """Fixed-step ray marcher over the normalized unit cube."""

    def __init__(self, config: SamplerConfig = SamplerConfig()):
        self.config = config

    def sample(
        self,
        origins: np.ndarray,
        directions: np.ndarray,
        occupancy: OccupancyGrid = None,
        rng: np.random.Generator = None,
    ) -> SampleBatch:
        """March rays (already in unit space) and return kept samples.

        Directions are re-normalized to unit length first, so ``t`` is a
        spatial distance in unit-cube units and a fixed step of
        ``sqrt(3)/max_samples`` (the cube diagonal over the budget) covers
        any chord with at most ``max_samples`` points.
        """
        tel = telemetry.get_session()
        with tel.tracer.span("sampler.march"):
            origins = np.atleast_2d(np.asarray(origins, dtype=np.float64))
            directions = np.atleast_2d(np.asarray(directions, dtype=np.float64))
            directions = directions / np.linalg.norm(directions, axis=-1, keepdims=True)
            n_rays = origins.shape[0]
            t0, t1, hit = intersect_unit_cube(origins, directions)
            step = np.sqrt(3.0) / self.config.max_samples
            spans = np.where(hit, t1 - t0, 0.0)
            counts = np.minimum(
                np.ceil(spans / step).astype(np.int64), self.config.max_samples
            )
            counts = np.maximum(counts, 0)
            total = int(counts.sum())
            if total == 0:
                empty = np.empty((0, 3), dtype=np.float32)
                batch = SampleBatch(
                    positions=empty,
                    directions=empty.copy(),
                    deltas=np.empty(0, dtype=np.float64),
                    ts=np.empty(0, dtype=np.float64),
                    ray_idx=np.empty(0, dtype=np.int64),
                    n_rays=n_rays,
                    candidates=0,
                )
                self._record_batch(tel, batch)
                return batch
            ray_idx = np.repeat(np.arange(n_rays), counts)
            # Index of each sample within its ray, computed without a loop.
            starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
            within = np.arange(total) - np.repeat(starts, counts)
            if self.config.jitter and rng is not None:
                offsets = rng.uniform(0.0, 1.0, size=total)
            else:
                offsets = 0.5
            t = t0[ray_idx] + (within + offsets) * step
            t = np.minimum(t, t1[ray_idx] - 1e-9)
            positions = origins[ray_idx] + t[:, None] * directions[ray_idx]
            # Stage II consumes float32 (the hash gather + MLP hot path);
            # march in float64 for t precision, then cast once.  Clip in
            # the float32 domain — clipping before the cast could round a
            # near-1 value back up to exactly 1.0.
            positions = np.clip(
                positions.astype(np.float32),
                np.float32(0.0),
                np.nextafter(np.float32(1.0), np.float32(0.0)),
            )
            # deltas/ts stay float64: they feed the float64 compositing
            # accumulators, unlike the float32 position/direction payload.
            deltas = np.full(total, step, dtype=np.float64)
            keep = np.ones(total, dtype=bool)
            if self.config.use_occupancy and occupancy is not None:
                # Query on the cast positions so gating agrees with the
                # coordinates Stage II actually sees.
                keep = occupancy.query(positions)
            directions32 = directions.astype(np.float32)
            batch = SampleBatch(
                positions=positions[keep],
                directions=directions32[ray_idx[keep]],
                deltas=deltas[keep],
                ts=t[keep],
                ray_idx=ray_idx[keep],
                n_rays=n_rays,
                candidates=total,
            )
            self._record_batch(tel, batch)
            return batch

    def sample_chunked(
        self,
        origins: np.ndarray,
        directions: np.ndarray,
        occupancy: OccupancyGrid = None,
        rng: np.random.Generator = None,
        chunk: int = 8192,
        jobs: int = 1,
    ) -> SampleBatch:
        """March a large ray batch in ray-contiguous chunks.

        Semantically identical to :meth:`sample` — every ray's samples
        depend only on that ray, chunks are split and re-assembled in
        ray order, and chunk boundaries never move with ``jobs`` — so
        the returned batch is bit-identical to the one-shot call for
        deterministic sampling.  With ``jobs > 1`` chunks evaluate on a
        thread pool (the NumPy kernels release the GIL), which is how a
        single large experiment uses multiple workers.

        Jittered sampling draws from a *sequential* RNG, so when
        ``jitter`` is on and an ``rng`` is supplied this falls back to
        the one-shot path rather than silently changing the stream.
        """
        origins = np.atleast_2d(np.asarray(origins, dtype=np.float64))
        directions = np.atleast_2d(np.asarray(directions, dtype=np.float64))
        n_rays = origins.shape[0]
        if n_rays <= chunk or (self.config.jitter and rng is not None):
            return self.sample(origins, directions, occupancy=occupancy, rng=rng)
        from ..parallel.chunking import chunk_spans, parallel_map_chunks

        def march(start, stop):
            return self.sample(
                origins[start:stop], directions[start:stop], occupancy=occupancy
            )

        spans = chunk_spans(n_rays, chunk)
        batches = parallel_map_chunks(march, n_rays, chunk, jobs=jobs)
        return SampleBatch(
            positions=np.concatenate([b.positions for b in batches]),
            directions=np.concatenate([b.directions for b in batches]),
            deltas=np.concatenate([b.deltas for b in batches]),
            ts=np.concatenate([b.ts for b in batches]),
            ray_idx=np.concatenate(
                [b.ray_idx + start for b, (start, _) in zip(batches, spans)]
            ),
            n_rays=n_rays,
            candidates=sum(b.candidates for b in batches),
        )

    @staticmethod
    def _record_batch(tel, batch: "SampleBatch") -> None:
        """Stage I workload metrics: gating rate and per-ray skew."""
        if not tel.enabled:
            return
        m = tel.metrics
        kept = len(batch)
        m.counter("sampler.candidates").inc(batch.candidates)
        m.counter("sampler.kept").inc(kept)
        if batch.candidates:
            m.gauge("sampler.early_termination_rate").set(
                1.0 - kept / batch.candidates
            )
        hist = m.histogram("sampler.samples_per_ray")
        values, repeats = np.unique(batch.samples_per_ray, return_counts=True)
        for value, repeat in zip(values.tolist(), repeats.tolist()):
            hist.observe(value, n=repeat)


@dataclass
class SamplingStats:
    """Workload statistics Stage I hands to the cycle simulator."""

    n_rays: int = 0
    candidates: int = 0
    kept: int = 0
    samples_per_ray: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    @classmethod
    def from_batch(cls, batch: SampleBatch) -> "SamplingStats":
        return cls(
            n_rays=batch.n_rays,
            candidates=batch.candidates,
            kept=len(batch),
            samples_per_ray=batch.samples_per_ray,
        )

    @property
    def keep_fraction(self) -> float:
        if self.candidates == 0:
            return 0.0
        return self.kept / self.candidates
