"""Early ray termination (ERT): the standard NeRF inference optimization.

Once a ray's accumulated transmittance falls below a threshold, the
remaining samples cannot visibly change the pixel, so the hardware stops
fetching and evaluating them.  The renderer here applies the same rule to
*workload accounting*: it reports how many samples a hardware pipeline
with ERT actually processes, which the chip simulator consumes to
quantify the inference speedup ERT buys on opaque scenes.

ERT is inference-only (training needs gradients from every sample, and
the paper trains without it), and it composes with the occupancy gating
of Stage I: occupancy removes empty space in front of surfaces, ERT
removes hidden space behind them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sampling import SampleBatch
from .volume_rendering import RenderResult, segment_starts


@dataclass
class TerminationStats:
    """Workload effect of ERT on one rendered batch."""

    total_samples: int
    live_samples: int
    threshold: float

    @property
    def terminated_fraction(self) -> float:
        if self.total_samples == 0:
            return 0.0
        return 1.0 - self.live_samples / self.total_samples

    @property
    def speedup(self) -> float:
        """Stage II/III work reduction factor."""
        if self.live_samples == 0:
            return float("inf")
        return self.total_samples / self.live_samples


def live_sample_mask(
    result: RenderResult,
    ray_idx: np.ndarray,
    n_rays: int,
    threshold: float = 1e-3,
) -> np.ndarray:
    """Samples a hardware ERT unit would actually evaluate.

    A sample is *live* while its ray's transmittance on entry is at least
    ``threshold``; everything after the termination point is skipped.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    return result.transmittance >= threshold


def termination_stats(
    result: RenderResult,
    batch: SampleBatch,
    threshold: float = 1e-3,
) -> TerminationStats:
    """ERT workload statistics for one rendered batch."""
    mask = live_sample_mask(result, batch.ray_idx, batch.n_rays, threshold)
    return TerminationStats(
        total_samples=len(batch),
        live_samples=int(mask.sum()),
        threshold=threshold,
    )


def truncate_batch(
    batch: SampleBatch,
    result: RenderResult,
    threshold: float = 1e-3,
) -> SampleBatch:
    """The batch an ERT-enabled pipeline would have produced.

    Used to re-drive the chip simulator with the reduced workload; the
    per-ray front-to-back ordering is preserved because ERT only removes
    suffixes.
    """
    mask = live_sample_mask(result, batch.ray_idx, batch.n_rays, threshold)
    return SampleBatch(
        positions=batch.positions[mask],
        directions=batch.directions[mask],
        deltas=batch.deltas[mask],
        ts=batch.ts[mask],
        ray_idx=batch.ray_idx[mask],
        n_rays=batch.n_rays,
        candidates=batch.candidates,
    )


def per_ray_live_counts(
    result: RenderResult,
    batch: SampleBatch,
    threshold: float = 1e-3,
) -> np.ndarray:
    """Live samples per ray — the ERT'd samples_per_ray distribution."""
    mask = live_sample_mask(result, batch.ray_idx, batch.n_rays, threshold)
    counts = np.zeros(batch.n_rays, dtype=np.int64)
    np.add.at(counts, batch.ray_idx[mask], 1)
    return counts


def verify_color_preserved(
    result: RenderResult,
    truncated_result: RenderResult,
    threshold: float = 1e-3,
) -> float:
    """Max per-channel color change ERT introduced (bounded by
    ``threshold`` times the color range, by construction)."""
    return float(np.max(np.abs(result.colors - truncated_result.colors)))
