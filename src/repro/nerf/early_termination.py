"""Early ray termination (ERT): the standard NeRF inference optimization.

Once a ray's accumulated transmittance falls below a threshold, the
remaining samples cannot visibly change the pixel, so the hardware stops
fetching and evaluating them.  The renderer here applies the same rule to
*workload accounting*: it reports how many samples a hardware pipeline
with ERT actually processes, which the chip simulator consumes to
quantify the inference speedup ERT buys on opaque scenes.

ERT is inference-only (training needs gradients from every sample, and
the paper trains without it), and it composes with the occupancy gating
of Stage I: occupancy removes empty space in front of surfaces, ERT
removes hidden space behind them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sampling import SampleBatch
from .volume_rendering import (
    RenderResult,
    segment_starts,
    segmented_exclusive_cumsum,
)


@dataclass
class TerminationStats:
    """Workload effect of ERT on one rendered batch."""

    total_samples: int
    live_samples: int
    threshold: float

    @property
    def terminated_fraction(self) -> float:
        if self.total_samples == 0:
            return 0.0
        return 1.0 - self.live_samples / self.total_samples

    @property
    def speedup(self) -> float:
        """Stage II/III work reduction factor."""
        if self.live_samples == 0:
            return float("inf")
        return self.total_samples / self.live_samples


def live_sample_mask(
    result: RenderResult,
    threshold: float = 1e-3,
) -> np.ndarray:
    """Samples a hardware ERT unit would actually evaluate.

    A sample is *live* while its ray's transmittance on entry is at least
    ``threshold``; everything after the termination point is skipped.
    The per-sample transmittance already encodes each ray's prefix, so
    the mask needs only the render result (the former ``ray_idx`` /
    ``n_rays`` parameters were never consulted and are gone).
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    return result.transmittance >= threshold


def termination_stats(
    result: RenderResult,
    batch: SampleBatch,
    threshold: float = 1e-3,
) -> TerminationStats:
    """ERT workload statistics for one rendered batch."""
    mask = live_sample_mask(result, threshold)
    return TerminationStats(
        total_samples=len(batch),
        live_samples=int(mask.sum()),
        threshold=threshold,
    )


def truncate_batch(
    batch: SampleBatch,
    result: RenderResult,
    threshold: float = 1e-3,
) -> SampleBatch:
    """The batch an ERT-enabled pipeline would have produced.

    Used to re-drive the chip simulator with the reduced workload; the
    per-ray front-to-back ordering is preserved because ERT only removes
    suffixes.
    """
    mask = live_sample_mask(result, threshold)
    return SampleBatch(
        positions=batch.positions[mask],
        directions=batch.directions[mask],
        deltas=batch.deltas[mask],
        ts=batch.ts[mask],
        ray_idx=batch.ray_idx[mask],
        n_rays=batch.n_rays,
        candidates=batch.candidates,
    )


def per_ray_live_counts(
    result: RenderResult,
    batch: SampleBatch,
    threshold: float = 1e-3,
) -> np.ndarray:
    """Live samples per ray — the ERT'd samples_per_ray distribution."""
    mask = live_sample_mask(result, threshold)
    return np.bincount(batch.ray_idx[mask], minlength=batch.n_rays)


def render_batch_ert(
    model,
    batch: SampleBatch,
    background: float = 1.0,
    threshold: float = 1e-3,
    round_size: int = 32,
) -> tuple:
    """Render a sample batch with *actual* early ray termination.

    Unlike :func:`live_sample_mask` — which post-hoc accounts for the
    work an ERT unit would have skipped — this evaluates the model the
    way the hardware does: samples are fetched front-to-back in rounds of
    at most ``round_size`` per ray, transmittance accumulates after every
    round, and a ray whose transmittance has fallen below ``threshold``
    fetches no further rounds.  Samples the full render would never have
    evaluated are never handed to the model.

    A sample contributes to its pixel exactly when its entry
    transmittance is at least ``threshold`` — the same prefix rule as
    :func:`live_sample_mask` — so the returned colors equal
    ``composite(truncate_batch(batch, full_result, threshold))`` up to
    float-sum reordering (verified to PSNR 1e-4 by the equivalence
    suite).

    Returns ``(colors, stats)`` where ``colors`` is ``(n_rays, 3)`` and
    ``stats`` counts the samples actually evaluated (round granularity
    means slightly more than the exact live count).
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    if round_size < 1:
        raise ValueError("round_size must be positive")
    n_rays = batch.n_rays
    fences = segment_starts(batch.ray_idx, n_rays)
    counts = np.diff(fences)
    acc_rgb = np.zeros((n_rays, 3), dtype=np.float64)
    acc_opacity = np.zeros(n_rays, dtype=np.float64)
    optical_sum = np.zeros(n_rays, dtype=np.float64)
    offset = np.zeros(n_rays, dtype=np.int64)
    live = np.flatnonzero(counts > 0)
    evaluated = 0
    while live.size:
        take = np.minimum(counts[live] - offset[live], round_size)
        round_fences = np.concatenate([[0], np.cumsum(take)])
        total = int(round_fences[-1])
        # Flat sample index of each (ray, within-round) pair.
        base = np.repeat(fences[live] + offset[live] - round_fences[:-1], take)
        idx = base + np.arange(total)
        seg_id = np.repeat(np.arange(live.size), take)
        sigma, rgb, _ = model.forward(batch.positions[idx], batch.directions[idx])
        evaluated += total
        optical = np.asarray(sigma, dtype=np.float64).reshape(-1) * batch.deltas[idx]
        entry = optical_sum[live][seg_id] + segmented_exclusive_cumsum(
            optical, round_fences
        )
        t_entry = np.exp(-entry)
        live_mask = t_entry >= threshold
        alphas = 1.0 - np.exp(-optical)
        weights = np.where(live_mask, t_entry * alphas, 0.0)
        rgb = np.atleast_2d(np.asarray(rgb, dtype=np.float64))
        rays = live[seg_id]
        for channel in range(3):
            acc_rgb[:, channel] += np.bincount(
                rays, weights=weights * rgb[:, channel], minlength=n_rays
            )
        acc_opacity += np.bincount(rays, weights=weights, minlength=n_rays)
        optical_sum[live] += np.bincount(
            seg_id, weights=np.where(live_mask, optical, 0.0), minlength=live.size
        )
        offset[live] += take
        # A ray keeps marching while it has samples left and its exit
        # transmittance is still above threshold; transmittance is
        # non-increasing, so termination is a pure prefix rule.
        survive = (offset[live] < counts[live]) & (
            np.exp(-optical_sum[live]) >= threshold
        )
        live = live[survive]
    colors = acc_rgb + (1.0 - acc_opacity)[:, None] * background
    stats = TerminationStats(
        total_samples=len(batch), live_samples=evaluated, threshold=threshold
    )
    return colors, stats


@dataclass
class AdaptiveStats:
    """Workload split of one transmittance-adaptive render."""

    total_samples: int
    full_samples: int
    lowp_samples: int
    threshold: float
    switch_threshold: float

    @property
    def evaluated(self) -> int:
        return self.full_samples + self.lowp_samples

    @property
    def lowp_fraction(self) -> float:
        """Fraction of evaluated samples routed to the cheap field."""
        if self.evaluated == 0:
            return 0.0
        return self.lowp_samples / self.evaluated

    @property
    def terminated_fraction(self) -> float:
        if self.total_samples == 0:
            return 0.0
        return 1.0 - self.evaluated / self.total_samples


def render_batch_adaptive(
    model,
    lowp_field,
    batch: SampleBatch,
    background: float = 1.0,
    threshold: float = 1e-3,
    switch_threshold: float = 0.1,
    round_size: int = 32,
) -> tuple:
    """ERT rendering with per-ray transmittance-adaptive precision.

    The round machinery is exactly :func:`render_batch_ert`'s; the new
    part is *which field* evaluates each round.  A ray whose entry
    transmittance at the start of a round has fallen below
    ``switch_threshold`` can no longer contribute more than that
    fraction of the pixel value, so its remaining samples are routed to
    ``lowp_field`` (an fp16/INT8 snapshot of ``model`` — see
    :class:`repro.nerf.precision.LowPrecisionField`); rays still above
    it keep the full-precision ``model``.  ``switch_threshold=0``
    disables switching (pure ERT), values near 1 route almost all
    occluded samples to the cheap field.

    The selection depends only on accumulated optical depth, which is a
    deterministic function of the batch and the fields — re-rendering
    the same rays reproduces the same precision split bit for bit.

    Returns ``(colors, stats)`` with :class:`AdaptiveStats` counting how
    many samples each field evaluated.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    if not 0.0 <= switch_threshold < 1.0:
        raise ValueError("switch_threshold must be in [0, 1)")
    if round_size < 1:
        raise ValueError("round_size must be positive")
    n_rays = batch.n_rays
    fences = segment_starts(batch.ray_idx, n_rays)
    counts = np.diff(fences)
    acc_rgb = np.zeros((n_rays, 3), dtype=np.float64)
    acc_opacity = np.zeros(n_rays, dtype=np.float64)
    optical_sum = np.zeros(n_rays, dtype=np.float64)
    offset = np.zeros(n_rays, dtype=np.int64)
    live = np.flatnonzero(counts > 0)
    full_evaluated = 0
    lowp_evaluated = 0
    while live.size:
        take = np.minimum(counts[live] - offset[live], round_size)
        round_fences = np.concatenate([[0], np.cumsum(take)])
        total = int(round_fences[-1])
        base = np.repeat(fences[live] + offset[live] - round_fences[:-1], take)
        idx = base + np.arange(total)
        seg_id = np.repeat(np.arange(live.size), take)
        # Precision routing: decided once per ray per round from the
        # transmittance on entry to the round.
        low_rays = np.exp(-optical_sum[live]) < switch_threshold
        low_mask = low_rays[seg_id]
        sigma = np.empty(total, dtype=np.float64)
        rgb = np.empty((total, 3), dtype=np.float64)
        full_mask = ~low_mask
        if full_mask.any():
            pick = idx[full_mask]
            s, r, _ = model.forward(batch.positions[pick], batch.directions[pick])
            sigma[full_mask] = np.asarray(s, dtype=np.float64).reshape(-1)
            rgb[full_mask] = np.atleast_2d(np.asarray(r, dtype=np.float64))
            full_evaluated += int(pick.size)
        if low_mask.any():
            pick = idx[low_mask]
            s, r, _ = lowp_field.forward(
                batch.positions[pick], batch.directions[pick]
            )
            sigma[low_mask] = np.asarray(s, dtype=np.float64).reshape(-1)
            rgb[low_mask] = np.atleast_2d(np.asarray(r, dtype=np.float64))
            lowp_evaluated += int(pick.size)
        optical = sigma * batch.deltas[idx]
        entry = optical_sum[live][seg_id] + segmented_exclusive_cumsum(
            optical, round_fences
        )
        t_entry = np.exp(-entry)
        live_mask = t_entry >= threshold
        alphas = 1.0 - np.exp(-optical)
        weights = np.where(live_mask, t_entry * alphas, 0.0)
        rays = live[seg_id]
        for channel in range(3):
            acc_rgb[:, channel] += np.bincount(
                rays, weights=weights * rgb[:, channel], minlength=n_rays
            )
        acc_opacity += np.bincount(rays, weights=weights, minlength=n_rays)
        optical_sum[live] += np.bincount(
            seg_id, weights=np.where(live_mask, optical, 0.0), minlength=live.size
        )
        offset[live] += take
        survive = (offset[live] < counts[live]) & (
            np.exp(-optical_sum[live]) >= threshold
        )
        live = live[survive]
    colors = acc_rgb + (1.0 - acc_opacity)[:, None] * background
    stats = AdaptiveStats(
        total_samples=len(batch),
        full_samples=full_evaluated,
        lowp_samples=lowp_evaluated,
        threshold=threshold,
        switch_threshold=switch_threshold,
    )
    return colors, stats


def verify_color_preserved(
    result: RenderResult,
    truncated_result: RenderResult,
    threshold: float = 1e-3,
) -> float:
    """Max per-channel color change ERT introduced (bounded by
    ``threshold`` times the color range, by construction)."""
    return float(np.max(np.abs(result.colors - truncated_result.colors)))
