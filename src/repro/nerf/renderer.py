"""Full-image rendering: run the three-stage pipeline for every pixel."""

from __future__ import annotations

import numpy as np

from ..robustness import faults
from ..robustness.injection import scrub_colors
from .aabb import SceneNormalizer
from .camera import Camera
from .occupancy import OccupancyGrid
from .rays import generate_rays
from .sampling import RayMarcher, SampleBatch
from .volume_rendering import composite


def scrub_rendered_colors(colors: np.ndarray, background: float) -> np.ndarray:
    """Clamp-and-flag non-finite pixels when fault injection is active.

    A corrupted sample (e.g. an injected SRAM bit flip driving sigma to
    inf) degrades its own pixel to background instead of poisoning the
    whole image and every PSNR after it.  No-op (and zero-cost) outside
    an active fault scope.  Shared by :func:`render_rays` and the staged
    :class:`repro.pipeline.Renderer` so both paths degrade identically.
    """
    if faults.get_active() is None:
        return colors
    colors, n_flagged = scrub_colors(colors, background)
    if n_flagged:
        from .. import telemetry

        log = faults.get_log()
        if log is not None:
            log.record(
                "renderer", f"clamped {n_flagged} non-finite pixel values"
            )
        tel = telemetry.get_session()
        if tel.enabled:
            tel.metrics.counter("robustness.render.nonfinite_clamped").inc(
                n_flagged
            )
    return colors


def validate_ert_threshold(ert_threshold: float | None) -> None:
    """Reject out-of-range ERT thresholds at the rendering entry points.

    ``None`` (ERT off) is always valid; any other value must lie in the
    open interval ``(0, 1)`` — a transmittance cutoff of 0 never fires
    and 1 terminates every ray before its first sample.  Validating here
    gives callers a clear ``ValueError`` instead of a failure deep
    inside :mod:`repro.nerf.early_termination`.
    """
    if ert_threshold is None:
        return
    if not 0.0 < ert_threshold < 1.0:
        raise ValueError(
            f"ert_threshold must be in (0, 1) or None, got {ert_threshold!r}"
        )


def render_rays(
    model,
    origins: np.ndarray,
    directions: np.ndarray,
    marcher: RayMarcher,
    occupancy: OccupancyGrid = None,
    background: float = 1.0,
    ert_threshold: float | None = None,
) -> tuple:
    """Render a ray batch already expressed in unit-cube space.

    Returns ``(colors, batch, result)`` so callers can reuse the sample
    batch (e.g. to extract workload traces for the simulator).

    ``ert_threshold`` enables early ray termination: samples behind the
    point where a ray's transmittance drops below the threshold are never
    evaluated (see :func:`~repro.nerf.early_termination.render_batch_ert`).
    ERT is an inference-only approximation whose color error is bounded
    by the threshold; ``result`` is ``None`` on that path because the
    skipped samples have no per-sample render state.  The default
    (``None``) keeps the exact, bit-reproducible full evaluation.
    """
    validate_ert_threshold(ert_threshold)
    batch = marcher.sample(origins, directions, occupancy=occupancy)
    if len(batch) == 0:
        n = np.atleast_2d(origins).shape[0]
        colors = np.full((n, 3), background, dtype=np.float64)
        return colors, batch, None
    if ert_threshold is not None:
        from .early_termination import render_batch_ert

        colors, _ = render_batch_ert(
            model, batch, background=background, threshold=ert_threshold
        )
        result = None
    else:
        sigma, rgb, _ = model.forward(batch.positions, batch.directions)
        result = composite(
            sigma,
            rgb,
            batch.deltas,
            batch.ts,
            batch.ray_idx,
            batch.n_rays,
            background=background,
        )
        colors = result.colors
    colors = scrub_rendered_colors(colors, background)
    return colors, batch, result


def render_image(
    model,
    camera: Camera,
    normalizer: SceneNormalizer,
    marcher: RayMarcher,
    occupancy: OccupancyGrid = None,
    background: float = 1.0,
    chunk: int = 8192,
    jobs: int = 1,
    ert_threshold: float | None = None,
) -> np.ndarray:
    """Render a full image, chunked to bound peak memory.

    With ``jobs > 1`` the pixel chunks evaluate concurrently on a thread
    pool (``repro.parallel.chunking``): each chunk's pipeline — marcher,
    model forward, compositing — only reads shared state and writes its
    own output slice, and chunk boundaries are fixed by ``chunk`` alone,
    so the image is bit-identical for every ``jobs`` setting.

    ``ert_threshold`` turns on early ray termination per chunk (see
    :func:`render_rays`); the frame buffer is float32, the serving
    pipeline's pixel format.

    Returns an ``(h, w, 3)`` float32 image in [0, 1].
    """
    if chunk < 1:
        raise ValueError("chunk must be positive")
    validate_ert_threshold(ert_threshold)
    from ..parallel.chunking import parallel_map_chunks

    rays = generate_rays(camera)
    origins, directions = normalizer.rays_to_unit(rays.origins, rays.directions)
    out = np.empty((camera.n_pixels, 3), dtype=np.float32)

    def render_chunk(start, stop):
        colors, _, _ = render_rays(
            model,
            origins[start:stop],
            directions[start:stop],
            marcher,
            occupancy=occupancy,
            background=background,
            ert_threshold=ert_threshold,
        )
        out[start:stop] = colors

    parallel_map_chunks(render_chunk, camera.n_pixels, chunk, jobs=jobs)
    return np.clip(out, 0.0, 1.0).reshape(camera.height, camera.width, 3)


def batch_to_stats(batch: SampleBatch) -> dict:
    """Summarize a sample batch for logging or trace extraction."""
    per_ray = batch.samples_per_ray
    return {
        "n_rays": batch.n_rays,
        "n_samples": len(batch),
        "candidates": batch.candidates,
        "mean_samples_per_ray": float(per_ray.mean()) if batch.n_rays else 0.0,
        "max_samples_per_ray": int(per_ray.max()) if batch.n_rays else 0,
    }
