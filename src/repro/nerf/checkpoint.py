"""Model checkpointing: save/load trained radiance fields as ``.npz``.

The paper highlights NeRF's ~10 MB parameter footprint as a deployment
advantage (cheap to ship over the same USB link the accelerator lives
on); this module makes that concrete — a trained
:class:`~repro.nerf.model.InstantNGPModel` or
:class:`~repro.nerf.moe.MoENeRF` round-trips through a single archive
whose size *is* the deployment payload.

A checkpoint can also carry the *deployment state* around the weights:
the trained occupancy grid (so a cold-started scene renders its first
frame bit-identically to the training process, without re-warming the
grid from the density field) and the scene normalizer (so world-space
cameras can be served against the archive alone).  :func:`load_scene`
returns all three; :func:`load_model` keeps its historical
weights-only contract.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np

from .aabb import SceneNormalizer
from .hash_encoding import HashEncodingConfig
from .model import InstantNGPModel, ModelConfig
from .moe import MoEConfig, MoENeRF
from .occupancy import OccupancyGrid
from .tensorf import TensoRFConfig, TensoRFModel

_FORMAT_VERSION = 1

#: Array keys reserved for non-parameter state; ``load_model`` must not
#: feed these to ``load_parameters``.
_OCCUPANCY_EMA_KEY = "__occupancy_ema__"
_OCCUPANCY_MASK_KEY = "__occupancy_mask__"
_STATE_KEYS = ("__meta__", _OCCUPANCY_EMA_KEY, _OCCUPANCY_MASK_KEY)


class CheckpointError(ValueError):
    """A checkpoint archive could not be loaded.

    Raised for truncated/corrupt archives, missing metadata, unknown
    checkpoint kinds, and format-version mismatches — with a message
    naming the file and the specific problem, instead of a raw
    ``zipfile``/``KeyError`` surfacing from ``np.load`` internals.
    """


def _encoding_config_dict(config: HashEncodingConfig) -> dict:
    return {
        "n_levels": config.n_levels,
        "n_features": config.n_features,
        "log2_table_size": config.log2_table_size,
        "base_resolution": config.base_resolution,
        "finest_resolution": config.finest_resolution,
    }


def _model_config_dict(config: ModelConfig) -> dict:
    return {
        "encoding": _encoding_config_dict(config.encoding),
        "hidden_width": config.hidden_width,
        "geo_features": config.geo_features,
        "density_activation": config.density_activation,
        "density_bias": config.density_bias,
    }


def _tensorf_config_dict(config: TensoRFConfig) -> dict:
    return {
        "resolution": config.resolution,
        "n_components": config.n_components,
        "hidden_width": config.hidden_width,
        "geo_features": config.geo_features,
        "density_bias": config.density_bias,
    }


def _model_config_from_dict(data: dict) -> ModelConfig:
    return ModelConfig(
        encoding=HashEncodingConfig(**data["encoding"]),
        hidden_width=data["hidden_width"],
        geo_features=data["geo_features"],
        density_activation=data["density_activation"],
        density_bias=data["density_bias"],
    )


def save_model(model, path, occupancy: OccupancyGrid = None, normalizer: SceneNormalizer = None) -> int:
    """Write a model checkpoint; returns the payload size in bytes.

    Accepts :class:`InstantNGPModel`, :class:`TensoRFModel`, or
    :class:`MoENeRF`.  When
    ``occupancy`` is given, the grid's EMA statistics *and* its binary
    mask are stored verbatim (the mask is not always derivable from the
    EMA — trainers force it full when it empties out), so a load renders
    the exact frames the saving process would — no re-warmup.
    ``normalizer`` adds the world-to-unit-cube map, making the archive a
    self-contained deployable scene for :func:`load_scene`.
    """
    path = Path(path)
    if isinstance(model, MoENeRF):
        meta = {
            "format": _FORMAT_VERSION,
            "kind": "moe",
            "n_experts": model.n_experts,
            "expert_model": _model_config_dict(model.config.expert_model),
        }
    elif isinstance(model, InstantNGPModel):
        meta = {
            "format": _FORMAT_VERSION,
            "kind": "instant-ngp",
            "model": _model_config_dict(model.config),
        }
    elif isinstance(model, TensoRFModel):
        meta = {
            "format": _FORMAT_VERSION,
            "kind": "tensorf",
            "model": _tensorf_config_dict(model.config),
        }
    else:
        raise TypeError(f"cannot checkpoint a {type(model).__name__}")
    arrays = dict(model.parameters())
    if occupancy is not None:
        meta["occupancy"] = {
            "resolution": occupancy.resolution,
            "threshold": occupancy.threshold,
            "ema_decay": occupancy.ema_decay,
        }
        arrays[_OCCUPANCY_EMA_KEY] = occupancy.density_ema
        arrays[_OCCUPANCY_MASK_KEY] = occupancy.mask
    if normalizer is not None:
        meta["normalizer"] = {
            "offset": np.asarray(normalizer.offset, dtype=np.float64).tolist(),
            "scale": float(normalizer.scale),
        }
    np.savez_compressed(path, __meta__=json.dumps(meta), **arrays)
    return path.stat().st_size if path.suffix == ".npz" else Path(
        str(path) + ".npz"
    ).stat().st_size


def _read_archive(path) -> tuple:
    """Load and validate a checkpoint archive: ``(path, meta, arrays)``."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = Path(str(path) + ".npz")
    try:
        with np.load(path) as archive:
            try:
                meta = json.loads(str(archive["__meta__"]))
            except KeyError:
                raise CheckpointError(
                    f"{path} is not a model checkpoint: missing __meta__ entry"
                )
            version = meta.get("format")
            if version != _FORMAT_VERSION:
                hint = (
                    "written by a newer repro version"
                    if isinstance(version, int) and version > _FORMAT_VERSION
                    else "corrupt or not a model checkpoint"
                )
                raise CheckpointError(
                    f"{path}: unsupported checkpoint format {version!r} "
                    f"(this code reads format {_FORMAT_VERSION}; {hint})"
                )
            arrays = {k: archive[k] for k in archive.files if k != "__meta__"}
    except (zipfile.BadZipFile, EOFError, OSError) as exc:
        if isinstance(exc, FileNotFoundError):
            raise
        raise CheckpointError(
            f"{path} is truncated or corrupt: {exc}"
        ) from exc
    return path, meta, arrays


def _build_model(path, meta: dict, params: dict):
    """Instantiate the checkpointed architecture and load its weights."""
    if meta["kind"] == "instant-ngp":
        model = InstantNGPModel(_model_config_from_dict(meta["model"]))
        model.load_parameters(params)
        return model
    if meta["kind"] == "tensorf":
        model = TensoRFModel(TensoRFConfig(**meta["model"]))
        model.load_parameters(params)
        return model
    if meta["kind"] == "moe":
        expert_config = _model_config_from_dict(meta["expert_model"])
        moe = MoENeRF(MoEConfig(n_experts=meta["n_experts"], expert_model=expert_config))
        for i, expert in enumerate(moe.experts):
            prefix = f"expert{i}."
            expert.load_parameters(
                {
                    k[len(prefix):]: v
                    for k, v in params.items()
                    if k.startswith(prefix)
                }
            )
        return moe
    raise CheckpointError(f"{path}: unknown checkpoint kind {meta['kind']!r}")


def load_model(path):
    """Reconstruct the checkpointed model (architecture + weights).

    Raises :class:`CheckpointError` (a ``ValueError``) when the archive
    is truncated or corrupt, carries no metadata, or was written by a
    newer format version than this code understands.
    """
    path, meta, arrays = _read_archive(path)
    params = {k: v for k, v in arrays.items() if k not in _STATE_KEYS}
    return _build_model(path, meta, params)


def load_scene(path) -> tuple:
    """Load a deployable scene: ``(model, occupancy, normalizer)``.

    ``occupancy`` and ``normalizer`` are ``None`` when the archive was
    saved without them (a weights-only checkpoint).  When present, the
    occupancy grid is restored bit-exactly — EMA statistics *and* mask —
    so the first frame rendered after a cold start matches the frame the
    saving process would have rendered, without re-warming the grid.
    """
    path, meta, arrays = _read_archive(path)
    params = {k: v for k, v in arrays.items() if k not in _STATE_KEYS}
    model = _build_model(path, meta, params)
    occupancy = None
    if "occupancy" in meta:
        if _OCCUPANCY_EMA_KEY not in arrays or _OCCUPANCY_MASK_KEY not in arrays:
            raise CheckpointError(
                f"{path}: occupancy metadata present but grid arrays missing"
            )
        spec = meta["occupancy"]
        occupancy = OccupancyGrid(
            resolution=int(spec["resolution"]),
            threshold=float(spec["threshold"]),
            ema_decay=float(spec["ema_decay"]),
        )
        ema = np.asarray(arrays[_OCCUPANCY_EMA_KEY], dtype=np.float32)
        mask = np.asarray(arrays[_OCCUPANCY_MASK_KEY], dtype=bool)
        if ema.shape != occupancy.density_ema.shape or mask.shape != occupancy.mask.shape:
            raise CheckpointError(f"{path}: occupancy grid shape mismatch")
        occupancy.density_ema = ema
        occupancy.mask = mask
    normalizer = None
    if "normalizer" in meta:
        spec = meta["normalizer"]
        normalizer = SceneNormalizer(
            offset=np.asarray(spec["offset"], dtype=np.float64),
            scale=float(spec["scale"]),
        )
    return model, occupancy, normalizer


def deployment_payload_bytes(model) -> int:
    """Uncompressed fp16 parameter payload — what crosses the USB link."""
    return sum(p.size for p in model.parameters().values()) * 2
