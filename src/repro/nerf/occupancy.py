"""Occupancy grid: empty-space skipping and the MoE gating function.

A coarse binary grid over the normalized unit cube marks which cells may
contain matter.  Stage I only emits samples in occupied cells, which both
cuts Stage II/III work and — the paper's key multi-chip insight — acts as
a built-in per-expert gating function: an expert whose grid is empty at a
location contributes nothing there, so expert outputs can be fused by
plain addition.
"""

from __future__ import annotations

import numpy as np


class OccupancyGrid:
    """Binary occupancy over the unit cube with EMA density statistics.

    Mirrors Instant-NGP's maintenance scheme: a per-cell exponential
    moving average of sampled densities, thresholded into a binary mask.
    """

    def __init__(self, resolution: int = 32, threshold: float = 0.01, ema_decay: float = 0.95):
        if resolution < 1:
            raise ValueError("resolution must be positive")
        if not 0.0 <= ema_decay < 1.0:
            raise ValueError("ema_decay must be in [0, 1)")
        self.resolution = resolution
        self.threshold = threshold
        self.ema_decay = ema_decay
        self.density_ema = np.zeros((resolution,) * 3, dtype=np.float32)
        self.mask = np.ones((resolution,) * 3, dtype=bool)

    @property
    def n_cells(self) -> int:
        return self.resolution**3

    @property
    def occupancy_fraction(self) -> float:
        return float(self.mask.mean())

    def cell_indices(self, points: np.ndarray) -> np.ndarray:
        """Map unit-cube points to integer cell coordinates ``(n, 3)``."""
        points = np.atleast_2d(points)
        cells = np.floor(points * self.resolution).astype(np.int64)
        return np.clip(cells, 0, self.resolution - 1)

    def query(self, points: np.ndarray) -> np.ndarray:
        """Boolean occupancy of each point (points outside [0,1]^3 are
        clamped to the boundary cells)."""
        cells = self.cell_indices(points)
        return self.mask[cells[:, 0], cells[:, 1], cells[:, 2]]

    def update(self, points: np.ndarray, densities: np.ndarray) -> None:
        """Fold sampled densities into the EMA and refresh the mask."""
        points = np.atleast_2d(points)
        densities = np.asarray(densities, dtype=np.float32).reshape(-1)
        if points.shape[0] != densities.shape[0]:
            raise ValueError("points and densities must align")
        self.density_ema *= self.ema_decay
        if points.shape[0]:
            cells = self.cell_indices(points)
            flat = np.ravel_multi_index(
                (cells[:, 0], cells[:, 1], cells[:, 2]), self.mask.shape
            )
            # Max-reduce densities into cells (match Instant-NGP: a cell is
            # as occupied as its densest observed sample).  The buffered
            # ``np.maximum.at`` is deliberate: NumPy >= 1.25 gives 1-D
            # integer-indexed ufunc.at a fast path, and the perf harness
            # measured it ~8x faster here than an argsort + ``reduceat``
            # sorted-segment rewrite — vectorizing past it is a
            # regression, not an optimization.
            updates = np.zeros(self.n_cells, dtype=np.float32)
            np.maximum.at(updates, flat, densities)
            ema_flat = self.density_ema.reshape(-1)
            np.maximum(ema_flat, updates, out=ema_flat)
        self.mask = self.density_ema > self.threshold

    def set_from_function(self, density_fn, samples_per_cell: int = 2, rng=None) -> None:
        """Initialize the grid from an analytic density field.

        Used by the procedural datasets (which know their geometry) and by
        tests that need a deterministic grid.
        """
        rng = rng or np.random.default_rng(0)
        r = self.resolution
        base = (np.stack(np.meshgrid(*([np.arange(r)] * 3), indexing="ij"), axis=-1)
                .reshape(-1, 3)
                .astype(np.float64))
        # One draw and one density_fn call for all jitter rounds.  PCG64
        # fills row-major, so a single (S, n, 3) draw consumes the stream
        # in the same order as S sequential (n, 3) draws — the grid is
        # bit-identical to the per-round reference loop
        # (repro.perf.reference.set_from_function_reference).
        jitter = rng.uniform(0.0, 1.0, size=(samples_per_cell,) + base.shape)
        points = (base[None, :, :] + jitter) / r
        density = np.asarray(
            density_fn(points.reshape(-1, 3)), dtype=np.float32
        ).reshape(samples_per_cell, -1)
        best = np.zeros(self.n_cells, dtype=np.float32)
        for round_density in density:
            np.maximum(best, round_density, out=best)
        self.density_ema = best.reshape((r,) * 3)
        self.mask = self.density_ema > self.threshold

    def occupied_aabbs(self) -> tuple:
        """Unit-space bounds of every occupied cell: ``(mins, maxs)``.

        The multi-chip gate uses this to decide which samples an expert
        must process.
        """
        cells = np.argwhere(self.mask)
        mins = cells / self.resolution
        maxs = (cells + 1) / self.resolution
        return mins, maxs


class HierarchicalOccupancy:
    """Two-level occupancy query: coarse reject, fine confirm.

    Wraps an :class:`OccupancyGrid` with a max-pooled coarse mask: a
    coarse cell is occupied iff *any* of its ``factor^3`` fine children
    is.  ``query`` tests the coarse level first and gathers from the
    fine grid only for points whose coarse cell survived — the sparsity
    fast path's memory-traffic saver.  Because pooling is a max, a
    coarse reject implies every fine child rejects, so the result is
    bit-identical to ``fine.query`` for every input.

    The wrapper holds a *view policy*, not a copy of the data: call
    :meth:`refresh` after the fine grid's mask changes (e.g. an EMA
    ``update``).
    """

    def __init__(self, fine: OccupancyGrid, factor: int = 4):
        if factor < 1:
            raise ValueError("factor must be positive")
        if fine.resolution % factor:
            raise ValueError(
                f"factor {factor} must divide the fine resolution "
                f"{fine.resolution}"
            )
        self.fine = fine
        self.factor = factor
        self.coarse_resolution = fine.resolution // factor
        self.coarse_mask = np.ones((self.coarse_resolution,) * 3, dtype=bool)
        self.refresh()

    @property
    def resolution(self) -> int:
        """The fine resolution — callers see the wrapped grid's grain."""
        return self.fine.resolution

    @property
    def occupancy_fraction(self) -> float:
        return self.fine.occupancy_fraction

    @property
    def coarse_occupancy_fraction(self) -> float:
        return float(self.coarse_mask.mean())

    def refresh(self) -> None:
        """Rebuild the coarse mask by max-pooling the fine mask."""
        r, f = self.coarse_resolution, self.factor
        blocks = self.fine.mask.reshape(r, f, r, f, r, f)
        self.coarse_mask = blocks.any(axis=(1, 3, 5))

    def query(self, points: np.ndarray) -> np.ndarray:
        """Boolean occupancy, identical to ``fine.query`` by construction."""
        points = np.atleast_2d(points)
        coarse = np.floor(points * self.coarse_resolution).astype(np.int64)
        coarse = np.clip(coarse, 0, self.coarse_resolution - 1)
        out = self.coarse_mask[coarse[:, 0], coarse[:, 1], coarse[:, 2]].copy()
        survivors = np.flatnonzero(out)
        if survivors.size:
            out[survivors] = self.fine.query(points[survivors])
        return out


def traverse_grid(
    origins: np.ndarray,
    directions: np.ndarray,
    grid: "OccupancyGrid",
    t_starts: np.ndarray,
    t_ends: np.ndarray,
) -> np.ndarray:
    """Amanatides-Woo DDA: cells each ray visits between entry and exit.

    This is the hardware-aware sampling walk the Stage I cores perform:
    instead of testing every fine marching step, a core strides the
    occupancy grid cell by cell and only descends to sample generation
    inside occupied cells.  Returns the per-ray count of grid cells
    visited — the workload statistic behind the sampling cores'
    empty-space-skipping cost.

    Directions must be unit-norm (as the marcher normalizes them) and
    ``t_starts``/``t_ends`` are the unit-cube entry/exit distances.
    """
    origins = np.atleast_2d(origins)
    directions = np.atleast_2d(directions)
    t_starts = np.asarray(t_starts, dtype=np.float64).reshape(-1)
    t_ends = np.asarray(t_ends, dtype=np.float64).reshape(-1)
    n = origins.shape[0]
    if not (directions.shape[0] == t_starts.shape[0] == t_ends.shape[0] == n):
        raise ValueError("per-ray arrays must align")
    res = grid.resolution
    counts = np.zeros(n, dtype=np.int64)
    eps = 1e-9
    # Vectorized over rays, stepping cell boundaries one at a time; the
    # loop bound is the maximum Manhattan cell distance (3 * res).  Live
    # rays are compacted to integer indices so each step touches only the
    # rays still marching — no full-width boolean masks or t copies —
    # while computing exactly the same per-ray t sequence.
    t = np.maximum(t_starts, 0.0) + eps
    safe_dir = np.where(np.abs(directions) < 1e-12, 1e-12, directions)
    live = np.flatnonzero(t < t_ends)
    for _ in range(3 * res + 2):
        if live.size == 0:
            break
        counts[live] += 1
        o = origins[live]
        sd = safe_dir[live]
        pos = o + t[live, None] * directions[live]
        cell = np.clip(np.floor(pos * res), 0, res - 1)
        # Distance to the next cell boundary along each axis.
        next_boundary = np.where(sd > 0, (cell + 1) / res, cell / res)
        t_axis = (next_boundary - o) / sd
        t_next = t_axis.min(axis=1)
        t_new = np.maximum(t_next, t[live]) + eps
        t[live] = t_new
        live = live[t_new < t_ends[live]]
    return counts
