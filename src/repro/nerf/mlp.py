"""Small fully-connected networks with hand-written gradients.

Stage III of the pipeline evaluates two tiny MLPs per sample: a density
network on the hash features and a color network on the density net's
latent output concatenated with a spherical-harmonics direction encoding.
NumPy forward/backward keeps the whole library dependency-light and makes
every gradient testable against finite differences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_ACTIVATIONS = ("none", "relu", "sigmoid", "softplus", "exp")


def spherical_harmonics(directions: np.ndarray) -> np.ndarray:
    """Real SH basis up to degree 2 (9 coefficients) of unit directions."""
    d = np.atleast_2d(directions)
    x, y, z = d[:, 0], d[:, 1], d[:, 2]
    return np.stack(
        [
            np.full_like(x, 0.28209479177387814),
            0.4886025119029199 * y,
            0.4886025119029199 * z,
            0.4886025119029199 * x,
            1.0925484305920792 * x * y,
            1.0925484305920792 * y * z,
            0.31539156525252005 * (3.0 * z * z - 1.0),
            1.0925484305920792 * x * z,
            0.5462742152960396 * (x * x - y * y),
        ],
        axis=-1,
    )


#: Output width of :func:`spherical_harmonics`.
SH_DIM = 9


def _activate(x: np.ndarray, kind: str) -> np.ndarray:
    if kind == "none":
        return x
    if kind == "relu":
        return np.maximum(x, 0.0)
    if kind == "sigmoid":
        return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))
    if kind == "softplus":
        return np.logaddexp(0.0, x)
    if kind == "exp":
        return np.exp(np.clip(x, -15.0, 15.0))
    raise ValueError(f"unknown activation {kind!r}")


def _activate_grad(x: np.ndarray, y: np.ndarray, kind: str) -> np.ndarray:
    """d(activation)/dx given pre-activation x and post-activation y."""
    if kind == "none":
        return np.ones_like(x)
    if kind == "relu":
        return (x > 0.0).astype(x.dtype)
    if kind == "sigmoid":
        return y * (1.0 - y)
    if kind == "softplus":
        return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))
    if kind == "exp":
        return y * (np.abs(x) < 15.0)
    raise ValueError(f"unknown activation {kind!r}")


@dataclass
class LayerCache:
    """Per-layer values saved by forward for backward."""

    inputs: np.ndarray
    pre_activation: np.ndarray
    output: np.ndarray


class MLP:
    """A plain MLP: ``widths[0] -> widths[1] -> ... -> widths[-1]``.

    Activations has one entry per weight layer; the last entry is the
    output activation.
    """

    def __init__(
        self,
        widths: list,
        activations: list = None,
        name: str = "mlp",
        rng: np.random.Generator = None,
    ):
        if len(widths) < 2:
            raise ValueError("need at least input and output widths")
        n_layers = len(widths) - 1
        if activations is None:
            activations = ["relu"] * (n_layers - 1) + ["none"]
        if len(activations) != n_layers:
            raise ValueError("one activation per weight layer required")
        for act in activations:
            if act not in _ACTIVATIONS:
                raise ValueError(f"unknown activation {act!r}")
        self.widths = list(widths)
        self.activations = list(activations)
        self.name = name
        rng = rng or np.random.default_rng(0)
        self.weights = []
        self.biases = []
        for fan_in, fan_out in zip(widths[:-1], widths[1:]):
            # He initialization suits the ReLU hidden layers.
            std = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, std, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    @property
    def n_layers(self) -> int:
        return len(self.weights)

    @property
    def n_parameters(self) -> int:
        return sum(w.size + b.size for w, b in zip(self.weights, self.biases))

    def macs_per_sample(self) -> int:
        """Multiply-accumulates per input row (the simulator's cost unit)."""
        return sum(w.size for w in self.weights)

    def forward(self, x: np.ndarray) -> tuple:
        """Returns ``(output, caches)``; pass caches to :meth:`backward`."""
        x = np.atleast_2d(x)
        if x.shape[1] != self.widths[0]:
            raise ValueError(
                f"{self.name}: expected input width {self.widths[0]}, got {x.shape[1]}"
            )
        caches = []
        out = x
        for w, b, act in zip(self.weights, self.biases, self.activations):
            pre = out @ w + b
            post = _activate(pre, act)
            caches.append(LayerCache(inputs=out, pre_activation=pre, output=post))
            out = post
        return out, caches

    def backward(self, grad_out: np.ndarray, caches: list) -> tuple:
        """Backprop; returns ``(grad_input, param_grads)``.

        ``param_grads`` maps ``"w0"/"b0"...`` to arrays shaped like the
        corresponding parameters.
        """
        grad = np.atleast_2d(grad_out)
        param_grads = {}
        for layer in reversed(range(self.n_layers)):
            cache = caches[layer]
            act = self.activations[layer]
            grad = grad * _activate_grad(cache.pre_activation, cache.output, act)
            param_grads[f"w{layer}"] = cache.inputs.T @ grad
            param_grads[f"b{layer}"] = grad.sum(axis=0)
            grad = grad @ self.weights[layer].T
        return grad, param_grads

    def parameters(self) -> dict:
        params = {}
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            params[f"{self.name}.w{i}"] = w
            params[f"{self.name}.b{i}"] = b
        return params

    def inference_layers(self) -> list:
        """Float32 ``(weight, bias, activation)`` snapshot per layer.

        The raw material of the low-precision inference classes below:
        weights and biases are rounded once to float32 (copies — the
        trainer keeps mutating the float64 masters).
        """
        return [
            (w.astype(np.float32), b.astype(np.float32), act)
            for w, b, act in zip(self.weights, self.biases, self.activations)
        ]

    def load_parameters(self, params: dict) -> None:
        for i in range(self.n_layers):
            w = params[f"{self.name}.w{i}"]
            b = params[f"{self.name}.b{i}"]
            if w.shape != self.weights[i].shape or b.shape != self.biases[i].shape:
                raise ValueError(f"{self.name}: parameter shape mismatch at layer {i}")
            self.weights[i] = w
            self.biases[i] = b


class InferenceMLP:
    """Cache-free float32 forward over a snapshot of an :class:`MLP`.

    The inference half of the low-precision path: weights and biases are
    rounded to float32 once at construction, ``forward`` runs float32
    matmuls and never builds :class:`LayerCache` objects (backward does
    not exist here).  Subclasses override :meth:`_prepare_weight` to
    narrow the storage format further.
    """

    def __init__(self, source: MLP):
        self.widths = list(source.widths)
        self.activations = list(source.activations)
        self.name = source.name
        self.weights = []
        self.biases = []
        for w, b, _ in source.inference_layers():
            self.weights.append(self._prepare_weight(w))
            self.biases.append(b)

    def _prepare_weight(self, weight: np.ndarray) -> np.ndarray:
        """Storage transform of one float32 weight matrix (identity here)."""
        return weight

    @property
    def n_layers(self) -> int:
        return len(self.weights)

    def forward(self, x: np.ndarray) -> tuple:
        """Float32 forward; returns ``(output, None)`` — no backward caches."""
        out = np.atleast_2d(np.asarray(x, dtype=np.float32))
        if out.shape[1] != self.widths[0]:
            raise ValueError(
                f"{self.name}: expected input width {self.widths[0]}, "
                f"got {out.shape[1]}"
            )
        for w, b, act in zip(self.weights, self.biases, self.activations):
            out = _activate(out @ w + b, act)
        return out, None

    def backward(self, grad_out: np.ndarray, caches: list) -> tuple:
        raise NotImplementedError(
            f"{type(self).__name__} is inference-only; train on the "
            "float64 MLP"
        )


class Int8MLP(InferenceMLP):
    """INT8 inference snapshot of an :class:`MLP` with per-layer scales.

    Each weight matrix is quantized symmetrically to INT8 code words
    with its own scale ``s_l = max|W_l| / 127`` (the per-tensor rule of
    :func:`repro.nerf.quantization.quantize_int8`, applied per layer),
    then dequantized once to float32 for the matmul — so ``forward``
    computes with exactly the information an INT8 weight SRAM retains,
    while the accumulation stays float32 (narrow storage, wider
    accumulation).  Biases stay float32: they are added once per output
    channel and the hardware keeps them in the accumulator format.

    The INT8 codes and scales are kept (:attr:`codes`, :attr:`scales`)
    so fault injection can flip real stored bits and tests can assert
    the storage footprint.
    """

    def __init__(self, source: MLP):
        self.codes = []
        self.scales = []
        super().__init__(source)

    def _prepare_weight(self, weight: np.ndarray) -> np.ndarray:
        """Quantize one layer: symmetric INT8 codes + dequantized fp32."""
        max_abs = float(np.abs(weight).max())
        scale = max_abs / 127.0
        if scale == 0.0:  # all-zero layer, or subnormal underflow
            codes = np.zeros(weight.shape, dtype=np.int8)
            scale = 1.0
        else:
            codes = np.clip(
                np.round(weight / scale), -127, 127
            ).astype(np.int8)
        self.codes.append(codes)
        self.scales.append(scale)
        return codes.astype(np.float32) * np.float32(scale)

    @property
    def storage_bytes(self) -> int:
        """INT8 weight-store footprint (codes only; biases are fp32)."""
        return sum(c.nbytes for c in self.codes)
