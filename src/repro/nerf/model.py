"""The full Instant-NGP-style radiance field model.

Composition of the three pipeline stages' learnable parts:

* Stage II — :class:`~repro.nerf.hash_encoding.HashEncoding`;
* Stage III — a density MLP on the encoded features and a color MLP on
  the density latent plus a spherical-harmonics direction encoding.

``forward`` produces per-sample ``(sigma, rgb)``; ``backward`` routes the
renderer's gradients through both MLPs into the hash tables and returns a
flat parameter-gradient dict for the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .hash_encoding import HashEncoding, HashEncodingConfig, EncodingTrace
from .mlp import MLP, spherical_harmonics, SH_DIM


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters of the radiance field."""

    encoding: HashEncodingConfig = field(default_factory=HashEncodingConfig)
    hidden_width: int = 64
    #: Width of the latent the density net hands to the color net (its
    #: first channel is the raw density logit).
    geo_features: int = 16
    density_activation: str = "softplus"
    #: Added to the density logit before activation; a negative bias makes
    #: untrained space read as empty, so the occupancy grid can prune it.
    density_bias: float = -3.0

    @property
    def density_widths(self) -> list:
        return [self.encoding.output_dim, self.hidden_width, self.geo_features]

    @property
    def color_widths(self) -> list:
        return [
            self.geo_features + SH_DIM,
            self.hidden_width,
            self.hidden_width,
            3,
        ]


@dataclass
class ForwardCache:
    """Everything ``forward`` saves for ``backward``."""

    encoding_trace: EncodingTrace
    density_caches: list
    color_caches: list
    density_pre: np.ndarray
    sigma: np.ndarray


class InstantNGPModel:
    """Hash-encoded radiance field with NumPy forward/backward."""

    def __init__(self, config: ModelConfig = ModelConfig(), seed: int = 0):
        self.config = config
        rng = np.random.default_rng(seed)
        self.encoding = HashEncoding(config.encoding, rng=rng)
        self.density_mlp = MLP(
            config.density_widths,
            activations=["relu", "none"],
            name="density",
            rng=rng,
        )
        self.color_mlp = MLP(
            config.color_widths,
            activations=["relu", "relu", "sigmoid"],
            name="color",
            rng=rng,
        )

    def forward(self, positions: np.ndarray, directions: np.ndarray) -> tuple:
        """Per-sample density and color: ``(sigma, rgb, cache)``.

        ``positions`` are unit-cube coordinates; ``directions`` unit
        vectors (used only by the color head, as in the paper's Stage III).
        """
        positions = np.atleast_2d(positions)
        directions = np.atleast_2d(directions)
        if positions.shape[0] != directions.shape[0]:
            raise ValueError("positions and directions must align")
        features, trace = self.encoding.forward(positions)
        latent, density_caches = self.density_mlp.forward(features)
        density_pre = latent[:, 0]
        sigma = self._density_activation(density_pre)
        sh = spherical_harmonics(directions)
        color_in = np.concatenate([latent, sh], axis=-1)
        rgb, color_caches = self.color_mlp.forward(color_in)
        cache = ForwardCache(
            encoding_trace=trace,
            density_caches=density_caches,
            color_caches=color_caches,
            density_pre=density_pre,
            sigma=sigma,
        )
        return sigma, rgb, cache

    def backward(
        self,
        grad_sigma: np.ndarray,
        grad_rgb: np.ndarray,
        cache: ForwardCache,
    ) -> dict:
        """Parameter gradients given per-sample ``d loss / d (sigma, rgb)``."""
        grad_sigma = np.asarray(grad_sigma).reshape(-1)
        grad_rgb = np.atleast_2d(grad_rgb)
        grad_color_in, color_grads = self.color_mlp.backward(
            grad_rgb, cache.color_caches
        )
        geo = self.config.geo_features
        grad_latent = grad_color_in[:, :geo].copy()
        grad_latent[:, 0] += grad_sigma * self._density_activation_grad(
            cache.density_pre, cache.sigma
        )
        grad_features, density_grads = self.density_mlp.backward(
            grad_latent, cache.density_caches
        )
        grad_tables = self.encoding.backward(grad_features, cache.encoding_trace)
        grads = {"hash_tables": grad_tables}
        for key, value in density_grads.items():
            grads[f"density.{key}"] = value
        for key, value in color_grads.items():
            grads[f"color.{key}"] = value
        return grads

    def parameters(self) -> dict:
        params = {}
        params.update(self.encoding.parameters())
        params.update(self.density_mlp.parameters())
        params.update(self.color_mlp.parameters())
        return params

    def load_parameters(self, params: dict) -> None:
        self.encoding.load_parameters(params)
        self.density_mlp.load_parameters(params)
        self.color_mlp.load_parameters(params)

    @property
    def n_parameters(self) -> int:
        return sum(p.size for p in self.parameters().values())

    def density(self, positions: np.ndarray) -> np.ndarray:
        """Density only (used for occupancy-grid refreshes)."""
        features, _ = self.encoding.forward(positions)
        latent, _ = self.density_mlp.forward(features)
        return self._density_activation(latent[:, 0])

    def _density_activation(self, x: np.ndarray) -> np.ndarray:
        x = x + self.config.density_bias
        if self.config.density_activation == "softplus":
            return np.logaddexp(0.0, x)
        if self.config.density_activation == "exp":
            return np.exp(np.clip(x, -15.0, 15.0))
        raise ValueError(
            f"unknown density activation {self.config.density_activation!r}"
        )

    def _density_activation_grad(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = x + self.config.density_bias
        if self.config.density_activation == "softplus":
            return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))
        if self.config.density_activation == "exp":
            return y * (np.abs(x) < 15.0)
        raise ValueError(
            f"unknown density activation {self.config.density_activation!r}"
        )
