"""Quantized-training study utilities (paper Table II).

The paper motivates the mixed-precision datapath (Challenge C2) with an
experiment: quantizing all weights to INT8 every N iterations during
training degrades quality — mild at N=1000, severe at N=200, and
non-convergent when quantizing every iteration.  This module provides the
fake-quantization ops and a trainer hook to reproduce that study.
"""

from __future__ import annotations

import numpy as np


def quantize_int8(values: np.ndarray) -> np.ndarray:
    """Symmetric per-tensor INT8 fake quantization.

    Values are scaled to [-127, 127] by the tensor's max magnitude,
    rounded, and mapped back — exactly the information loss a real INT8
    store/reload of the weights would incur.
    """
    values = np.asarray(values, dtype=np.float64)
    max_abs = np.abs(values).max()
    scale = max_abs / 127.0
    if scale == 0.0:  # all-zero tensor, or subnormal underflow
        return values.copy()
    return np.round(values / scale) * scale


def quantize_int8_fixed(values: np.ndarray, step: float = 1.0 / 16.0) -> np.ndarray:
    """Fixed-point INT8 quantization: the hardware storage format.

    Unlike :func:`quantize_int8`, the scale is a property of the number
    format (Q3.4 by default, step 1/16), not of the tensor — matching
    what an INT8 weight SRAM actually stores.  Two's-complement code
    words make the representable range *asymmetric*:
    ``[-128 * step, 127 * step]``, i.e. ``[-8.0, +7.9375]`` for Q3.4 —
    exactly ``-8.0`` round-trips while ``+8.0`` saturates to the largest
    positive code (``+7.9375``).  Updates smaller than half a step are
    lost entirely, which is what makes quantize-every-iteration training
    non-convergent (paper Table II).
    """
    if step <= 0:
        raise ValueError("step must be positive")
    values = np.asarray(values, dtype=np.float64)
    return np.clip(np.round(values / step), -128, 127) * step


def quantization_error(values: np.ndarray) -> float:
    """RMS error introduced by one INT8 round trip."""
    values = np.asarray(values, dtype=np.float64)
    return float(np.sqrt(np.mean((quantize_int8(values) - values) ** 2)))


def quantize_model_parameters(model, step: float = 1.0 / 16.0) -> None:
    """INT8-round-trip every learnable tensor of the model, in place.

    Uses the fixed-point hardware format (see :func:`quantize_int8_fixed`).
    """
    for value in model.parameters().values():
        value[...] = quantize_int8_fixed(value, step=step)


class PeriodicQuantizationHook:
    """Trainer ``post_step_hook`` that quantizes every ``interval`` steps.

    ``interval=0`` disables quantization (the "Never" column);
    ``interval=1`` reproduces the non-convergent "Every Iter." column.
    """

    def __init__(self, interval: int, step: float = 1.0 / 16.0):
        if interval < 0:
            raise ValueError("interval must be non-negative")
        self.interval = interval
        self.step = step
        self.applications = 0

    def __call__(self, trainer) -> None:
        if self.interval == 0:
            return
        if trainer.state.iteration % self.interval == 0:
            quantize_model_parameters(trainer.model, step=self.step)
            self.applications += 1
