"""Dense-grid (TensoRF-style) radiance field baseline.

RT-NeRF accelerates TensoRF, whose features live in dense voxel grids
rather than hash tables.  Sec. VI-C shows Fusion-3D's sampling /
post-processing modules and MoE scheme transfer to this pipeline, so we
provide a dense-grid field with the same model interface as
:class:`~repro.nerf.model.InstantNGPModel` (forward / backward /
parameters / density), usable standalone and under the MoE wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hash_encoding import CORNER_OFFSETS
from .mlp import MLP, spherical_harmonics, SH_DIM


@dataclass(frozen=True)
class DenseGridConfig:
    """Dense feature-grid hyper-parameters.

    ``resolution ** 3 * n_features`` is the paper's "128^3 parameters"
    accounting when ``n_features`` matches.
    """

    resolution: int = 64
    n_features: int = 8
    hidden_width: int = 64

    @property
    def n_grid_parameters(self) -> int:
        return self.resolution**3 * self.n_features


@dataclass
class DenseForwardCache:
    """Values cached by forward for backward."""

    indices: np.ndarray  # (n, 8) flat grid indices
    weights: np.ndarray  # (n, 8) trilinear weights
    density_caches: list
    color_caches: list
    density_pre: np.ndarray
    sigma: np.ndarray


class DenseGridField:
    """Trainable dense voxel grid + MLP heads."""

    def __init__(self, config: DenseGridConfig = DenseGridConfig(), seed: int = 0):
        self.config = config
        rng = np.random.default_rng(seed)
        r, f = config.resolution, config.n_features
        self.grid = rng.uniform(-1e-2, 1e-2, size=(r**3, f))
        self.density_mlp = MLP(
            [f, config.hidden_width, 16], activations=["relu", "none"],
            name="density", rng=rng,
        )
        self.color_mlp = MLP(
            [16 + SH_DIM, config.hidden_width, 3],
            activations=["relu", "sigmoid"],
            name="color",
            rng=rng,
        )

    @property
    def n_parameters(self) -> int:
        return (
            self.grid.size
            + self.density_mlp.n_parameters
            + self.color_mlp.n_parameters
        )

    def _interp(self, positions: np.ndarray) -> tuple:
        """Trilinear gather: returns ``(features, indices, weights)``."""
        positions = np.atleast_2d(positions)
        r = self.config.resolution
        scaled = positions * (r - 1)
        base = np.clip(np.floor(scaled).astype(np.int64), 0, r - 2)
        frac = scaled - base
        corners = base[:, None, :] + CORNER_OFFSETS[None, :, :]
        flat = (
            corners[..., 0] * r * r + corners[..., 1] * r + corners[..., 2]
        )
        offs = CORNER_OFFSETS[None, :, :]
        terms = np.where(offs == 1, frac[:, None, :], 1.0 - frac[:, None, :])
        weights = terms.prod(axis=-1)
        features = (weights[:, :, None] * self.grid[flat]).sum(axis=1)
        return features, flat, weights

    def forward(self, positions: np.ndarray, directions: np.ndarray) -> tuple:
        """Per-sample ``(sigma, rgb, cache)``, same contract as Instant-NGP."""
        positions = np.atleast_2d(positions)
        directions = np.atleast_2d(directions)
        features, indices, weights = self._interp(positions)
        latent, density_caches = self.density_mlp.forward(features)
        density_pre = latent[:, 0]
        sigma = np.logaddexp(0.0, density_pre - 3.0)
        sh = spherical_harmonics(directions)
        rgb, color_caches = self.color_mlp.forward(
            np.concatenate([latent, sh], axis=-1)
        )
        cache = DenseForwardCache(
            indices=indices,
            weights=weights,
            density_caches=density_caches,
            color_caches=color_caches,
            density_pre=density_pre,
            sigma=sigma,
        )
        return sigma, rgb, cache

    def backward(self, grad_sigma, grad_rgb, cache: DenseForwardCache) -> dict:
        grad_sigma = np.asarray(grad_sigma).reshape(-1)
        grad_color_in, color_grads = self.color_mlp.backward(
            np.atleast_2d(grad_rgb), cache.color_caches
        )
        grad_latent = grad_color_in[:, :16].copy()
        softplus_grad = 1.0 / (1.0 + np.exp(-np.clip(cache.density_pre - 3.0, -30, 30)))
        grad_latent[:, 0] += grad_sigma * softplus_grad
        grad_features, density_grads = self.density_mlp.backward(
            grad_latent, cache.density_caches
        )
        # bincount scatter: accumulates in input order like the np.add.at
        # it replaces, so gradients are bit-identical on duplicate cells.
        contrib = (cache.weights[:, :, None] * grad_features[:, None, :]).reshape(
            -1, self.config.n_features
        )
        flat_idx = cache.indices.reshape(-1)
        grad_grid = np.empty_like(self.grid)
        for feature in range(self.config.n_features):
            grad_grid[:, feature] = np.bincount(
                flat_idx, weights=contrib[:, feature], minlength=self.grid.shape[0]
            )
        grads = {"grid": grad_grid}
        for key, value in density_grads.items():
            grads[f"density.{key}"] = value
        for key, value in color_grads.items():
            grads[f"color.{key}"] = value
        return grads

    def parameters(self) -> dict:
        params = {"grid": self.grid}
        params.update(self.density_mlp.parameters())
        params.update(self.color_mlp.parameters())
        return params

    def density(self, positions: np.ndarray) -> np.ndarray:
        features, _, _ = self._interp(positions)
        latent, _ = self.density_mlp.forward(features)
        return np.logaddexp(0.0, latent[:, 0] - 3.0)
