"""TensoRF-style radiance fields: dense grid and VM plane/line factors.

RT-NeRF accelerates TensoRF, whose features live in dense voxel grids
rather than hash tables.  Sec. VI-C shows Fusion-3D's sampling /
post-processing modules and MoE scheme transfer to this pipeline, so we
provide a dense-grid field with the same model interface as
:class:`~repro.nerf.model.InstantNGPModel` (forward / backward /
parameters / density), usable standalone and under the MoE wrapper.

This module also hosts the *first-class* ``tensorf`` renderer of
:mod:`repro.pipeline`: :class:`PlaneLineEncoding` implements TensoRF's
vector-matrix (VM) decomposition — three factor planes and three factor
lines whose products reconstruct the feature volume at a fraction of a
dense grid's footprint — and :class:`TensoRFModel` composes it with the
standard density/color MLP heads behind the exact model contract the
renderer, trainer, serving, and checkpoint layers already speak.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hash_encoding import CORNER_OFFSETS
from .mlp import MLP, spherical_harmonics, SH_DIM

#: VM decomposition layout: component ``k`` pairs a plane over
#: ``PLANE_AXES[k]`` with a line along ``LINE_AXES[k]``.
PLANE_AXES = ((1, 2), (0, 2), (0, 1))
LINE_AXES = (0, 1, 2)


@dataclass(frozen=True)
class DenseGridConfig:
    """Dense feature-grid hyper-parameters.

    ``resolution ** 3 * n_features`` is the paper's "128^3 parameters"
    accounting when ``n_features`` matches.
    """

    resolution: int = 64
    n_features: int = 8
    hidden_width: int = 64

    @property
    def n_grid_parameters(self) -> int:
        return self.resolution**3 * self.n_features


@dataclass
class DenseForwardCache:
    """Values cached by forward for backward."""

    indices: np.ndarray  # (n, 8) flat grid indices
    weights: np.ndarray  # (n, 8) trilinear weights
    density_caches: list
    color_caches: list
    density_pre: np.ndarray
    sigma: np.ndarray


class DenseGridField:
    """Trainable dense voxel grid + MLP heads."""

    def __init__(self, config: DenseGridConfig = DenseGridConfig(), seed: int = 0):
        self.config = config
        rng = np.random.default_rng(seed)
        r, f = config.resolution, config.n_features
        self.grid = rng.uniform(-1e-2, 1e-2, size=(r**3, f))
        self.density_mlp = MLP(
            [f, config.hidden_width, 16], activations=["relu", "none"],
            name="density", rng=rng,
        )
        self.color_mlp = MLP(
            [16 + SH_DIM, config.hidden_width, 3],
            activations=["relu", "sigmoid"],
            name="color",
            rng=rng,
        )

    @property
    def n_parameters(self) -> int:
        return (
            self.grid.size
            + self.density_mlp.n_parameters
            + self.color_mlp.n_parameters
        )

    def _interp(self, positions: np.ndarray) -> tuple:
        """Trilinear gather: returns ``(features, indices, weights)``."""
        positions = np.atleast_2d(positions)
        r = self.config.resolution
        scaled = positions * (r - 1)
        base = np.clip(np.floor(scaled).astype(np.int64), 0, r - 2)
        frac = scaled - base
        corners = base[:, None, :] + CORNER_OFFSETS[None, :, :]
        flat = (
            corners[..., 0] * r * r + corners[..., 1] * r + corners[..., 2]
        )
        offs = CORNER_OFFSETS[None, :, :]
        terms = np.where(offs == 1, frac[:, None, :], 1.0 - frac[:, None, :])
        weights = terms.prod(axis=-1)
        features = (weights[:, :, None] * self.grid[flat]).sum(axis=1)
        return features, flat, weights

    def forward(self, positions: np.ndarray, directions: np.ndarray) -> tuple:
        """Per-sample ``(sigma, rgb, cache)``, same contract as Instant-NGP."""
        positions = np.atleast_2d(positions)
        directions = np.atleast_2d(directions)
        features, indices, weights = self._interp(positions)
        latent, density_caches = self.density_mlp.forward(features)
        density_pre = latent[:, 0]
        sigma = np.logaddexp(0.0, density_pre - 3.0)
        sh = spherical_harmonics(directions)
        rgb, color_caches = self.color_mlp.forward(
            np.concatenate([latent, sh], axis=-1)
        )
        cache = DenseForwardCache(
            indices=indices,
            weights=weights,
            density_caches=density_caches,
            color_caches=color_caches,
            density_pre=density_pre,
            sigma=sigma,
        )
        return sigma, rgb, cache

    def backward(self, grad_sigma, grad_rgb, cache: DenseForwardCache) -> dict:
        grad_sigma = np.asarray(grad_sigma).reshape(-1)
        grad_color_in, color_grads = self.color_mlp.backward(
            np.atleast_2d(grad_rgb), cache.color_caches
        )
        grad_latent = grad_color_in[:, :16].copy()
        softplus_grad = 1.0 / (1.0 + np.exp(-np.clip(cache.density_pre - 3.0, -30, 30)))
        grad_latent[:, 0] += grad_sigma * softplus_grad
        grad_features, density_grads = self.density_mlp.backward(
            grad_latent, cache.density_caches
        )
        # bincount scatter: accumulates in input order like the np.add.at
        # it replaces, so gradients are bit-identical on duplicate cells.
        contrib = (cache.weights[:, :, None] * grad_features[:, None, :]).reshape(
            -1, self.config.n_features
        )
        flat_idx = cache.indices.reshape(-1)
        grad_grid = np.empty_like(self.grid)
        for feature in range(self.config.n_features):
            grad_grid[:, feature] = np.bincount(
                flat_idx, weights=contrib[:, feature], minlength=self.grid.shape[0]
            )
        grads = {"grid": grad_grid}
        for key, value in density_grads.items():
            grads[f"density.{key}"] = value
        for key, value in color_grads.items():
            grads[f"color.{key}"] = value
        return grads

    def parameters(self) -> dict:
        params = {"grid": self.grid}
        params.update(self.density_mlp.parameters())
        params.update(self.color_mlp.parameters())
        return params

    def density(self, positions: np.ndarray) -> np.ndarray:
        features, _, _ = self._interp(positions)
        latent, _ = self.density_mlp.forward(features)
        return np.logaddexp(0.0, latent[:, 0] - 3.0)


@dataclass(frozen=True)
class TensoRFConfig:
    """Hyper-parameters of the VM-decomposed TensoRF field.

    ``n_components`` is the rank ``R`` of the decomposition: each of the
    three axis pairings contributes ``R`` plane x line products, so the
    encoding emits ``3 * R`` features per sample from
    ``3 * R * (resolution**2 + resolution)`` parameters — quadratic in
    resolution where a dense grid is cubic.
    """

    resolution: int = 48
    n_components: int = 8
    hidden_width: int = 64
    #: Width of the latent the density net hands to the color net (its
    #: first channel is the raw density logit).
    geo_features: int = 16
    #: Added to the density logit before softplus; negative so untrained
    #: space reads as empty (same convention as Instant-NGP).
    density_bias: float = -3.0

    @property
    def output_dim(self) -> int:
        """Feature width the encoding hands the density MLP."""
        return 3 * self.n_components

    @property
    def n_factor_parameters(self) -> int:
        """Parameter count of the plane + line factor stores."""
        return 3 * self.n_components * (self.resolution**2 + self.resolution)


@dataclass
class PlaneLineTrace:
    """Values :meth:`PlaneLineEncoding.forward` caches for backward."""

    base: np.ndarray  # (n, 3) int64 lower cell corner per axis
    frac: np.ndarray  # (n, 3) float64 in-cell offset per axis
    plane_vals: list  # 3 x (n, R) interpolated plane factors
    line_vals: list  # 3 x (n, R) interpolated line factors
    n_points: int


class PlaneLineEncoding:
    """TensoRF vector-matrix (VM) factor encoding.

    Component ``k`` stores an ``(res, res, R)`` factor plane over the
    axis pair ``PLANE_AXES[k]`` and an ``(res, R)`` factor line along
    ``LINE_AXES[k]``; a sample's feature is the bilinear plane value
    times the linear line value, concatenated over the three components
    into a ``(n, 3R)`` row.  Forward/backward follow the repo's kernel
    idioms: fused gathers with an explicit corner accumulation order
    (``w00*v00 + w01*v01 + w10*v10 + w11*v11`` — bit-identical to the
    looped reference in :mod:`repro.perf.reference`) and flat
    ``np.bincount`` scatters with the component folded into the index.
    """

    def __init__(self, resolution: int = 48, n_components: int = 8, rng=None):
        if resolution < 2:
            raise ValueError("resolution must be at least 2")
        if n_components < 1:
            raise ValueError("n_components must be positive")
        self.resolution = resolution
        self.n_components = n_components
        rng = rng or np.random.default_rng(0)
        self.factor_planes = rng.normal(
            0.0, 0.1, size=(3, resolution, resolution, n_components)
        )
        self.factor_lines = rng.normal(
            0.0, 0.1, size=(3, resolution, n_components)
        )

    @property
    def output_dim(self) -> int:
        """Feature width per sample: ``3 * n_components``."""
        return 3 * self.n_components

    def forward(self, positions: np.ndarray) -> tuple:
        """Encode unit-cube positions: ``(features, trace)``.

        ``features`` is ``(n, 3R)`` float64; pass ``trace`` to
        :meth:`backward`.
        """
        positions = np.atleast_2d(positions)
        n = positions.shape[0]
        res = self.resolution
        scaled = positions.astype(np.float64) * (res - 1)
        base = np.clip(np.floor(scaled).astype(np.int64), 0, res - 2)
        frac = scaled - base
        feats, plane_vals, line_vals = [], [], []
        for k in range(3):
            a, b = PLANE_AXES[k]
            ia, ib = base[:, a], base[:, b]
            fa, fb = frac[:, a], frac[:, b]
            plane = self.factor_planes[k]
            v00 = plane[ia, ib]
            v01 = plane[ia, ib + 1]
            v10 = plane[ia + 1, ib]
            v11 = plane[ia + 1, ib + 1]
            # Explicit corner order: the looped reference accumulates in
            # exactly this order, so the fused path is bit-identical.
            pv = (
                ((1.0 - fa) * (1.0 - fb))[:, None] * v00
                + ((1.0 - fa) * fb)[:, None] * v01
                + (fa * (1.0 - fb))[:, None] * v10
                + (fa * fb)[:, None] * v11
            )
            axis = LINE_AXES[k]
            il, fl = base[:, axis], frac[:, axis]
            line = self.factor_lines[k]
            lv = (1.0 - fl)[:, None] * line[il] + fl[:, None] * line[il + 1]
            plane_vals.append(pv)
            line_vals.append(lv)
            feats.append(pv * lv)
        features = np.concatenate(feats, axis=-1)
        trace = PlaneLineTrace(
            base=base,
            frac=frac,
            plane_vals=plane_vals,
            line_vals=line_vals,
            n_points=n,
        )
        return features, trace

    def backward(self, grad_features: np.ndarray, trace: PlaneLineTrace) -> dict:
        """Factor-store gradients: ``{"factor_planes", "factor_lines"}``.

        Scatters corner contributions with one flat ``np.bincount`` per
        corner (component folded into the index) — the same add.at-free
        idiom as the hash-table backward, bit-identical on duplicate
        cells because bincount accumulates in input order.
        """
        grad_features = np.atleast_2d(grad_features)
        if grad_features.shape != (trace.n_points, self.output_dim):
            raise ValueError("grad_features shape mismatch with trace")
        res, n_comp = self.resolution, self.n_components
        comp = np.arange(n_comp, dtype=np.int64)
        grad_planes = np.zeros_like(self.factor_planes)
        grad_lines = np.zeros_like(self.factor_lines)
        for k in range(3):
            a, b = PLANE_AXES[k]
            g = grad_features[:, k * n_comp : (k + 1) * n_comp]
            grad_plane_val = g * trace.line_vals[k]
            grad_line_val = g * trace.plane_vals[k]
            ia, ib = trace.base[:, a], trace.base[:, b]
            fa, fb = trace.frac[:, a], trace.frac[:, b]
            corners = (
                ((0, 0), (1.0 - fa) * (1.0 - fb)),
                ((0, 1), (1.0 - fa) * fb),
                ((1, 0), fa * (1.0 - fb)),
                ((1, 1), fa * fb),
            )
            for (da, db), w in corners:
                flat = ((ia + da) * res + (ib + db))[:, None] * n_comp + comp
                grad_planes[k] += np.bincount(
                    flat.ravel(),
                    weights=(w[:, None] * grad_plane_val).ravel(),
                    minlength=res * res * n_comp,
                ).reshape(res, res, n_comp)
            axis = LINE_AXES[k]
            il, fl = trace.base[:, axis], trace.frac[:, axis]
            for d, w in ((0, 1.0 - fl), (1, fl)):
                flat = (il + d)[:, None] * n_comp + comp
                grad_lines[k] += np.bincount(
                    flat.ravel(),
                    weights=(w[:, None] * grad_line_val).ravel(),
                    minlength=res * n_comp,
                ).reshape(res, n_comp)
        return {"factor_planes": grad_planes, "factor_lines": grad_lines}

    def parameters(self) -> dict:
        """The factor stores, named for the optimizer and fault injector."""
        return {
            "factor_planes": self.factor_planes,
            "factor_lines": self.factor_lines,
        }

    def load_parameters(self, params: dict) -> None:
        """Install factor stores from a parameter dict (shape-checked)."""
        if "factor_planes" not in params or "factor_lines" not in params:
            raise ValueError("params must contain factor_planes and factor_lines")
        planes = params["factor_planes"]
        lines = params["factor_lines"]
        if (
            planes.shape != self.factor_planes.shape
            or lines.shape != self.factor_lines.shape
        ):
            raise ValueError("factor parameter shape mismatch")
        self.factor_planes = planes
        self.factor_lines = lines


@dataclass
class TensoRFForwardCache:
    """Everything :meth:`TensoRFModel.forward` saves for backward."""

    encoding_trace: PlaneLineTrace
    density_caches: list
    color_caches: list
    density_pre: np.ndarray


class TensoRFModel:
    """VM-decomposed radiance field behind the standard model contract.

    Drop-in peer of :class:`~repro.nerf.model.InstantNGPModel`: the
    trainer, renderer, serving registry, and checkpoint layers only call
    ``forward`` / ``backward`` / ``parameters`` / ``load_parameters`` /
    ``density``, so this model trains and serves through all of them
    unchanged — it is the field stage of the ``tensorf`` renderer in
    :mod:`repro.pipeline`.
    """

    def __init__(self, config: TensoRFConfig = TensoRFConfig(), seed: int = 0):
        self.config = config
        rng = np.random.default_rng(seed)
        self.encoding = PlaneLineEncoding(
            config.resolution, config.n_components, rng=rng
        )
        self.density_mlp = MLP(
            [config.output_dim, config.hidden_width, config.geo_features],
            activations=["relu", "none"],
            name="density",
            rng=rng,
        )
        self.color_mlp = MLP(
            [config.geo_features + SH_DIM, config.hidden_width, 3],
            activations=["relu", "sigmoid"],
            name="color",
            rng=rng,
        )

    def forward(self, positions: np.ndarray, directions: np.ndarray) -> tuple:
        """Per-sample ``(sigma, rgb, cache)`` — the standard contract."""
        positions = np.atleast_2d(positions)
        directions = np.atleast_2d(directions)
        if positions.shape[0] != directions.shape[0]:
            raise ValueError("positions and directions must align")
        features, trace = self.encoding.forward(positions)
        latent, density_caches = self.density_mlp.forward(features)
        density_pre = latent[:, 0]
        sigma = np.logaddexp(0.0, density_pre + self.config.density_bias)
        sh = spherical_harmonics(directions)
        rgb, color_caches = self.color_mlp.forward(
            np.concatenate([latent, sh], axis=-1)
        )
        cache = TensoRFForwardCache(
            encoding_trace=trace,
            density_caches=density_caches,
            color_caches=color_caches,
            density_pre=density_pre,
        )
        return sigma, rgb, cache

    def backward(
        self,
        grad_sigma: np.ndarray,
        grad_rgb: np.ndarray,
        cache: TensoRFForwardCache,
    ) -> dict:
        """Parameter gradients given per-sample ``d loss / d (sigma, rgb)``."""
        grad_sigma = np.asarray(grad_sigma).reshape(-1)
        grad_color_in, color_grads = self.color_mlp.backward(
            np.atleast_2d(grad_rgb), cache.color_caches
        )
        geo = self.config.geo_features
        grad_latent = grad_color_in[:, :geo].copy()
        pre = cache.density_pre + self.config.density_bias
        softplus_grad = 1.0 / (1.0 + np.exp(-np.clip(pre, -30.0, 30.0)))
        grad_latent[:, 0] += grad_sigma * softplus_grad
        grad_features, density_grads = self.density_mlp.backward(
            grad_latent, cache.density_caches
        )
        grads = self.encoding.backward(grad_features, cache.encoding_trace)
        for key, value in density_grads.items():
            grads[f"density.{key}"] = value
        for key, value in color_grads.items():
            grads[f"color.{key}"] = value
        return grads

    def parameters(self) -> dict:
        """Flat name -> array dict of every learnable parameter."""
        params = dict(self.encoding.parameters())
        params.update(self.density_mlp.parameters())
        params.update(self.color_mlp.parameters())
        return params

    def load_parameters(self, params: dict) -> None:
        """Install parameters saved by :meth:`parameters`."""
        self.encoding.load_parameters(params)
        self.density_mlp.load_parameters(params)
        self.color_mlp.load_parameters(params)

    @property
    def n_parameters(self) -> int:
        """Total learnable parameter count."""
        return sum(p.size for p in self.parameters().values())

    def density(self, positions: np.ndarray) -> np.ndarray:
        """Density only (used for occupancy-grid refreshes)."""
        features, _ = self.encoding.forward(positions)
        latent, _ = self.density_mlp.forward(features)
        return np.logaddexp(0.0, latent[:, 0] + self.config.density_bias)
