"""Multiresolution hash-grid encoding (Instant-NGP), with hand gradients.

Stage II of the pipeline: every sampled 3D point gathers features from the
eight grid vertices surrounding it at each of L resolution levels; the
features are trilinearly interpolated and concatenated into the MLP input.
Training scatters gradients back into the same eight vertices per level.

The spatial hash follows Mueller et al.:
``h(x, y, z) = (x * 1) xor (y * 2654435761) xor (z * 805459861) mod T``.
Two properties of this function matter to the hardware (Sec. V-B):

* the Y/Z primes are large, so vertices that differ in their Y/Z offset
  land far apart in the table (Level-2 "interpolation level" tiling);
* the X factor is 1, so vertices that differ by one in X always have
  opposite index parity when ``T`` is even (Level-3 "parity" tiling).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Instant-NGP hash primes.  PRIMES[0] == 1 is load-bearing: see module doc.
PRIMES = np.array([1, 2654435761, 805459861], dtype=np.uint64)

#: Corner offsets of a unit cell, ordered x-fastest; corner ``c`` has
#: offsets ``((c >> 0) & 1, (c >> 1) & 1, (c >> 2) & 1)``.
CORNER_OFFSETS = np.stack(
    [(np.arange(8) >> k) & 1 for k in range(3)], axis=-1
).astype(np.int64)


@dataclass(frozen=True)
class HashEncodingConfig:
    """Hyper-parameters of the encoding.

    The per-level resolution follows the geometric schedule
    ``R_l = floor(base * growth^l)`` with growth chosen so level L-1 hits
    ``finest_resolution``.
    """

    n_levels: int = 8
    n_features: int = 2
    log2_table_size: int = 14
    base_resolution: int = 16
    finest_resolution: int = 256

    def __post_init__(self):
        if self.n_levels < 1:
            raise ValueError("need at least one level")
        if self.finest_resolution < self.base_resolution:
            raise ValueError("finest_resolution must be >= base_resolution")

    @property
    def table_size(self) -> int:
        return 1 << self.log2_table_size

    @property
    def growth_factor(self) -> float:
        if self.n_levels == 1:
            return 1.0
        return np.exp(
            (np.log(self.finest_resolution) - np.log(self.base_resolution))
            / (self.n_levels - 1)
        )

    @property
    def level_resolutions(self) -> np.ndarray:
        levels = np.arange(self.n_levels)
        res = np.floor(self.base_resolution * self.growth_factor**levels)
        return res.astype(np.int64)

    @property
    def output_dim(self) -> int:
        return self.n_levels * self.n_features

    @property
    def n_parameters(self) -> int:
        return self.n_levels * self.table_size * self.n_features

    @property
    def table_bytes_fp16(self) -> int:
        """On-chip footprint of the feature tables at fp16."""
        return self.n_parameters * 2


def hash_vertices(coords: np.ndarray, table_size: int) -> np.ndarray:
    """Spatial-hash integer vertex coordinates into table indices.

    ``coords`` is ``(..., 3)`` non-negative integers; returns ``(...,)``
    indices in ``[0, table_size)``.
    """
    coords = np.asarray(coords)
    if coords.shape[-1] != 3:
        raise ValueError("coords must have a trailing dimension of 3")
    c = coords.astype(np.uint64)
    h = (c[..., 0] * PRIMES[0]) ^ (c[..., 1] * PRIMES[1]) ^ (c[..., 2] * PRIMES[2])
    if table_size & (table_size - 1) == 0:
        # Power-of-two table: mask instead of 64-bit division (identical
        # result for unsigned operands, several times faster).
        return (h & np.uint64(table_size - 1)).astype(np.int64)
    return (h % np.uint64(table_size)).astype(np.int64)


class _LazyCorners:
    """List-like view deferring corner materialization.

    The fused forward no longer needs the ``(L, n, 8, 3)`` integer corner
    array (the hash is computed from per-axis terms), but the
    :class:`EncodingTrace` contract exposes ``corners[level]`` for the
    hash-tiling simulator and tests.  This sequence rebuilds a level's
    corners from the cached ``(L, n, 3)`` base coordinates only when
    asked, keeping the training hot path free of the allocation.
    """

    def __init__(self, base: np.ndarray):
        self._base = base

    def __len__(self) -> int:
        return self._base.shape[0]

    def __getitem__(self, level):
        return self._base[level][:, None, :] + CORNER_OFFSETS[None, :, :]

    def __iter__(self):
        for level in range(len(self)):
            yield self[level]


@dataclass
class EncodingTrace:
    """Per-level access records cached for backward and for the simulator.

    ``indices[l]`` is ``(n, 8)`` table indices; ``weights[l]`` the matching
    trilinear weights; ``corners[l]`` the integer vertex coordinates (the
    hash-tiling simulation derives bank ids from these).

    When produced by the fused forward, the per-level entries are views
    into level-stacked arrays also carried here (``indices_lnk`` /
    ``weights_lnk``, shaped ``(L, n, 8)``) so backward can scatter all
    levels in one pass without re-stacking.
    """

    indices: list
    weights: list
    corners: list
    n_points: int
    #: Optional ``(L, n, 8)`` stacked table indices (fused-forward cache).
    indices_lnk: np.ndarray = None
    #: Optional ``(L, n, 8)`` stacked trilinear weights.
    weights_lnk: np.ndarray = None
    #: Optional ``(L, n, 8)`` level-offset indices into the flattened
    #: ``(L*T, F)`` table view, shared by the forward gather and the
    #: backward scatter.
    flat_indices: np.ndarray = None


class HashEncoding:
    """The trainable multiresolution hash table."""

    def __init__(self, config: HashEncodingConfig, rng: np.random.Generator = None):
        self.config = config
        rng = rng or np.random.default_rng(0)
        # Instant-NGP initializes tables uniformly in [-1e-4, 1e-4].
        self.tables = rng.uniform(
            -1e-4,
            1e-4,
            size=(config.n_levels, config.table_size, config.n_features),
        ).astype(np.float64)
        #: Flat offset of each level's slab in the level-stacked table
        #: view; the fused kernels gather/scatter through ``offset + idx``.
        self._level_offsets = (
            np.arange(config.n_levels, dtype=np.int64) * config.table_size
        )

    def level_lookup(self, points: np.ndarray, level: int) -> tuple:
        """Corner coordinates, table indices and weights for one level.

        Returns ``(corners, indices, weights)`` with shapes
        ``(n, 8, 3)``, ``(n, 8)`` and ``(n, 8)``.
        """
        points = np.atleast_2d(points)
        resolution = int(self.config.level_resolutions[level])
        scaled = points * resolution
        base = np.floor(scaled).astype(np.int64)
        base = np.clip(base, 0, resolution - 1)
        # Subtract in the points dtype: an int64 operand would silently
        # upcast float32 sample buffers to float64.
        frac = scaled - base.astype(points.dtype)
        corners = base[:, None, :] + CORNER_OFFSETS[None, :, :]
        indices = hash_vertices(corners, self.config.table_size)
        # Trilinear weights: product over axes of f or (1 - f).
        offs = CORNER_OFFSETS[None, :, :]
        terms = np.where(offs == 1, frac[:, None, :], 1.0 - frac[:, None, :])
        weights = terms.prod(axis=-1)
        return corners, indices, weights

    def _fused_lookup(self, points: np.ndarray) -> tuple:
        """Fused Stage II address path over all levels at once.

        Returns ``(base, indices, weights)`` with shapes ``(L, n, 3)``,
        ``(L, n, 8)`` and ``(L, n, 8)``; every per-level slice is
        bit-identical to :meth:`level_lookup` at that level.  Two fusions
        do the work of the retired per-level loop:

        * the spatial hash is decomposed per axis — ``x*P0`` and
          ``(x+1)*P0`` (and likewise for y, z) are computed once per
          point, and the eight corner hashes are XOR combinations of
          those six terms, so the hot multiply runs on ``(L, n)`` instead
          of ``(L, n, 8)``;
        * the trilinear corner weights come from per-axis ``{1-f, f}``
          tables indexed by the corner bit pattern — two multiplies per
          corner with association order ``(x*y)*z`` matching the
          reference ``prod`` exactly.

        Weight precision follows the ``points`` dtype (float32 sample
        buffers keep float32 weights, matching the fp16 interpolation
        hardware; nothing silently upcasts to float64).
        """
        points = np.atleast_2d(points)
        resolutions = self.config.level_resolutions  # (L,) int64
        scaled = points[None, :, :] * resolutions[:, None, None].astype(points.dtype)
        base = np.floor(scaled).astype(np.int64)
        np.clip(base, 0, resolutions[:, None, None] - 1, out=base)
        frac = scaled - base.astype(points.dtype)
        ox, oy, oz = CORNER_OFFSETS[:, 0], CORNER_OFFSETS[:, 1], CORNER_OFFSETS[:, 2]
        base_u = base.astype(np.uint64)
        lo = base_u * PRIMES  # (L, n, 3): x*P0, y*P1, z*P2
        hi = (base_u + np.uint64(1)) * PRIMES
        hashes = (
            np.stack([lo[..., 0], hi[..., 0]], axis=-1)[..., ox]
            ^ np.stack([lo[..., 1], hi[..., 1]], axis=-1)[..., oy]
            ^ np.stack([lo[..., 2], hi[..., 2]], axis=-1)[..., oz]
        )
        table_size = self.config.table_size
        if table_size & (table_size - 1) == 0:
            # Power-of-two tables (always, by construction): the modulo
            # reduces to a mask, sparing a 64-bit division per vertex.
            indices = (hashes & np.uint64(table_size - 1)).astype(np.int64)
        else:
            indices = (hashes % np.uint64(table_size)).astype(np.int64)
        axis_terms = np.stack([1.0 - frac, frac], axis=-1)  # (L, n, 3, 2)
        weights = (
            axis_terms[:, :, 0, ox] * axis_terms[:, :, 1, oy]
        ) * axis_terms[:, :, 2, oz]
        return base, indices, weights

    def multilevel_lookup(self, points: np.ndarray) -> tuple:
        """Corner coordinates, table indices and weights for *all* levels.

        Batched equivalent of calling :meth:`level_lookup` per level:
        returns ``(corners, indices, weights)`` with shapes
        ``(L, n, 8, 3)``, ``(L, n, 8)`` and ``(L, n, 8)``, every slice
        bit-identical to the single-level call.
        """
        base, indices, weights = self._fused_lookup(points)
        corners = base[:, :, None, :] + CORNER_OFFSETS[None, None, :, :]
        return corners, indices, weights

    def forward(self, points: np.ndarray) -> tuple:
        """Encode points; returns ``(features, trace)``.

        ``features`` is ``(n, n_levels * n_features)`` with level-major
        layout; ``trace`` feeds :meth:`backward` and the hash-tiling
        simulator.  All levels are gathered in one fused kernel (see
        :meth:`multilevel_lookup`); the result is bit-identical to the
        per-level reference in :mod:`repro.perf.reference`.
        """
        points = np.atleast_2d(points)
        n = points.shape[0]
        cfg = self.config
        base, indices, weights = self._fused_lookup(points)
        flat_tables = self.tables.reshape(-1, cfg.n_features)  # (L*T, F)
        flat_indices = indices + self._level_offsets[:, None, None]
        # einsum fuses the corner-weighted reduction without the
        # (L, n, 8, F) product temporary; its per-corner accumulation
        # order matches ``(w[..., None] * g).sum(axis=2)`` bit-for-bit.
        level_features = np.einsum(
            "lnc,lncf->lnf", weights, flat_tables[flat_indices]
        )
        features = np.ascontiguousarray(level_features.transpose(1, 0, 2)).reshape(
            n, cfg.output_dim
        )
        trace = EncodingTrace(
            indices=list(indices),
            weights=list(weights),
            corners=_LazyCorners(base),
            n_points=n,
            indices_lnk=indices,
            weights_lnk=weights,
            flat_indices=flat_indices,
        )
        return features, trace

    def backward(self, grad_features: np.ndarray, trace: EncodingTrace) -> np.ndarray:
        """Gradient of the loss w.r.t. the tables.

        ``grad_features`` is ``(n, n_levels * n_features)``; returns an
        array shaped like :attr:`tables`.  This is the scatter-accumulate
        ("inverse adder tree") workload the reconfigurable interpolation
        array executes in training mode.  The scatter runs as one flat
        ``np.bincount`` per feature channel over level-offset indices —
        bit-identical to the per-level ``np.add.at`` reference (bincount
        accumulates in the same input order) but without its
        element-at-a-time buffered-ufunc cost.
        """
        grad_features = np.atleast_2d(grad_features)
        if grad_features.shape != (trace.n_points, self.config.output_dim):
            raise ValueError("grad_features shape mismatch with trace")
        cfg = self.config
        n_levels, n_features = cfg.n_levels, cfg.n_features
        weights = trace.weights_lnk
        flat_indices = trace.flat_indices
        if weights is None or flat_indices is None:
            # Hand-built traces (tests, external tooling) carry only the
            # per-level lists; stack them once.
            weights = np.stack([np.asarray(w) for w in trace.weights])
            indices = np.stack([np.asarray(i) for i in trace.indices])
            flat_indices = indices + self._level_offsets[:, None, None]
        # (n, L*F) level-major -> (L, n, F)
        g = grad_features.reshape(trace.n_points, n_levels, n_features)
        g = g.transpose(1, 0, 2)
        contrib = (weights[:, :, :, None] * g[:, :, None, :]).reshape(-1, n_features)
        flat_idx = flat_indices.reshape(-1)
        n_bins = n_levels * cfg.table_size
        grad_flat = np.empty((n_bins, n_features), dtype=np.float64)
        for feature in range(n_features):
            grad_flat[:, feature] = np.bincount(
                flat_idx, weights=contrib[:, feature], minlength=n_bins
            )
        return grad_flat.reshape(self.tables.shape)

    def parameters(self) -> dict:
        return {"hash_tables": self.tables}

    def load_parameters(self, params: dict) -> None:
        tables = params["hash_tables"]
        if tables.shape != self.tables.shape:
            raise ValueError("hash table shape mismatch")
        self.tables = tables


class Fp16HashEncoding(HashEncoding):
    """Half-precision inference snapshot of a :class:`HashEncoding`.

    The feature tables are stored as ``np.float16`` — the on-chip
    feature-SRAM format the fault injector already models
    (:func:`repro.robustness.injection.flip_fp16_bits`) and the layout
    :attr:`HashEncodingConfig.table_bytes_fp16` prices — at half the
    gather traffic of the float64 training tables.  The forward gather
    *accumulates in fp32* (the paper's mixed-precision rule: narrow
    storage, wider accumulation), skips the :class:`EncodingTrace`
    entirely, and returns float32 features ready for the float32 MLP
    hot path.

    Inference-only: :meth:`backward` raises.  The snapshot copies the
    source tables, so the trainer may keep mutating them; call
    :meth:`refresh` to re-round after an update.
    """

    def __init__(self, source: HashEncoding):
        self.config = source.config
        self.tables = np.asarray(source.tables, dtype=np.float16)
        # Dequantize-on-load mirror: fp16 -> fp32 is exact, so gathering
        # from the widened copy is numerically identical to widening each
        # gathered corner — without paying a per-forward (L, n, 8, F)
        # half-to-single conversion (measured ~1.5x slower than the
        # fp16 gather it follows).  ``tables`` stays the storage truth:
        # ``parameters()`` exposes it, fault injection flips its bits.
        self._tables_f32 = self.tables.astype(np.float32)
        self._level_offsets = (
            np.arange(self.config.n_levels, dtype=np.int64)
            * self.config.table_size
        )

    def refresh(self, source: HashEncoding = None) -> None:
        """Re-round the fp16 tables from a (possibly updated) source.

        With no ``source``, rebuilds only the fp32 gather mirror — call
        after mutating :attr:`tables` in place (e.g. fault injection).
        """
        if source is not None:
            if source.config != self.config:
                raise ValueError("source config mismatch")
            self.tables = np.asarray(source.tables, dtype=np.float16)
        self._tables_f32 = self.tables.astype(np.float32)

    def forward(self, points: np.ndarray) -> tuple:
        """Encode points at inference precision: ``(features, None)``.

        Same address path as :meth:`HashEncoding.forward` — the fused
        lookup runs on float32 points, so table indices match the
        training gather for every float32 sample buffer the render
        pipeline produces — but the gather reads the fp16-rounded
        feature values, accumulates the trilinear blend in fp32, and
        builds no trace: the ``(L, n, 8)`` caches exist only to serve
        backward and the tiling simulator, neither of which runs at
        inference.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float32))
        n = points.shape[0]
        cfg = self.config
        _, indices, weights = self._fused_lookup(points)
        flat_tables = self._tables_f32.reshape(-1, cfg.n_features)
        flat_indices = indices + self._level_offsets[:, None, None]
        level_features = np.einsum(
            "lnc,lncf->lnf", weights, flat_tables[flat_indices]
        )
        features = np.ascontiguousarray(
            level_features.transpose(1, 0, 2)
        ).reshape(n, cfg.output_dim)
        return features, None

    def backward(self, grad_features: np.ndarray, trace) -> np.ndarray:
        raise NotImplementedError(
            "Fp16HashEncoding is inference-only; train on the float64 "
            "HashEncoding and refresh() the snapshot"
        )
