"""Multiresolution hash-grid encoding (Instant-NGP), with hand gradients.

Stage II of the pipeline: every sampled 3D point gathers features from the
eight grid vertices surrounding it at each of L resolution levels; the
features are trilinearly interpolated and concatenated into the MLP input.
Training scatters gradients back into the same eight vertices per level.

The spatial hash follows Mueller et al.:
``h(x, y, z) = (x * 1) xor (y * 2654435761) xor (z * 805459861) mod T``.
Two properties of this function matter to the hardware (Sec. V-B):

* the Y/Z primes are large, so vertices that differ in their Y/Z offset
  land far apart in the table (Level-2 "interpolation level" tiling);
* the X factor is 1, so vertices that differ by one in X always have
  opposite index parity when ``T`` is even (Level-3 "parity" tiling).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Instant-NGP hash primes.  PRIMES[0] == 1 is load-bearing: see module doc.
PRIMES = np.array([1, 2654435761, 805459861], dtype=np.uint64)

#: Corner offsets of a unit cell, ordered x-fastest; corner ``c`` has
#: offsets ``((c >> 0) & 1, (c >> 1) & 1, (c >> 2) & 1)``.
CORNER_OFFSETS = np.stack(
    [(np.arange(8) >> k) & 1 for k in range(3)], axis=-1
).astype(np.int64)


@dataclass(frozen=True)
class HashEncodingConfig:
    """Hyper-parameters of the encoding.

    The per-level resolution follows the geometric schedule
    ``R_l = floor(base * growth^l)`` with growth chosen so level L-1 hits
    ``finest_resolution``.
    """

    n_levels: int = 8
    n_features: int = 2
    log2_table_size: int = 14
    base_resolution: int = 16
    finest_resolution: int = 256

    def __post_init__(self):
        if self.n_levels < 1:
            raise ValueError("need at least one level")
        if self.finest_resolution < self.base_resolution:
            raise ValueError("finest_resolution must be >= base_resolution")

    @property
    def table_size(self) -> int:
        return 1 << self.log2_table_size

    @property
    def growth_factor(self) -> float:
        if self.n_levels == 1:
            return 1.0
        return np.exp(
            (np.log(self.finest_resolution) - np.log(self.base_resolution))
            / (self.n_levels - 1)
        )

    @property
    def level_resolutions(self) -> np.ndarray:
        levels = np.arange(self.n_levels)
        res = np.floor(self.base_resolution * self.growth_factor**levels)
        return res.astype(np.int64)

    @property
    def output_dim(self) -> int:
        return self.n_levels * self.n_features

    @property
    def n_parameters(self) -> int:
        return self.n_levels * self.table_size * self.n_features

    @property
    def table_bytes_fp16(self) -> int:
        """On-chip footprint of the feature tables at fp16."""
        return self.n_parameters * 2


def hash_vertices(coords: np.ndarray, table_size: int) -> np.ndarray:
    """Spatial-hash integer vertex coordinates into table indices.

    ``coords`` is ``(..., 3)`` non-negative integers; returns ``(...,)``
    indices in ``[0, table_size)``.
    """
    coords = np.asarray(coords)
    if coords.shape[-1] != 3:
        raise ValueError("coords must have a trailing dimension of 3")
    c = coords.astype(np.uint64)
    h = (c[..., 0] * PRIMES[0]) ^ (c[..., 1] * PRIMES[1]) ^ (c[..., 2] * PRIMES[2])
    return (h % np.uint64(table_size)).astype(np.int64)


@dataclass
class EncodingTrace:
    """Per-level access records cached for backward and for the simulator.

    ``indices[l]`` is ``(n, 8)`` table indices; ``weights[l]`` the matching
    trilinear weights; ``corners[l]`` the integer vertex coordinates (the
    hash-tiling simulation derives bank ids from these).
    """

    indices: list
    weights: list
    corners: list
    n_points: int


class HashEncoding:
    """The trainable multiresolution hash table."""

    def __init__(self, config: HashEncodingConfig, rng: np.random.Generator = None):
        self.config = config
        rng = rng or np.random.default_rng(0)
        # Instant-NGP initializes tables uniformly in [-1e-4, 1e-4].
        self.tables = rng.uniform(
            -1e-4,
            1e-4,
            size=(config.n_levels, config.table_size, config.n_features),
        ).astype(np.float64)

    def level_lookup(self, points: np.ndarray, level: int) -> tuple:
        """Corner coordinates, table indices and weights for one level.

        Returns ``(corners, indices, weights)`` with shapes
        ``(n, 8, 3)``, ``(n, 8)`` and ``(n, 8)``.
        """
        points = np.atleast_2d(points)
        resolution = int(self.config.level_resolutions[level])
        scaled = points * resolution
        base = np.floor(scaled).astype(np.int64)
        base = np.clip(base, 0, resolution - 1)
        frac = scaled - base
        corners = base[:, None, :] + CORNER_OFFSETS[None, :, :]
        indices = hash_vertices(corners, self.config.table_size)
        # Trilinear weights: product over axes of f or (1 - f).
        offs = CORNER_OFFSETS[None, :, :]
        terms = np.where(offs == 1, frac[:, None, :], 1.0 - frac[:, None, :])
        weights = terms.prod(axis=-1)
        return corners, indices, weights

    def forward(self, points: np.ndarray) -> tuple:
        """Encode points; returns ``(features, trace)``.

        ``features`` is ``(n, n_levels * n_features)`` with level-major
        layout; ``trace`` feeds :meth:`backward` and the hash-tiling
        simulator.
        """
        points = np.atleast_2d(points)
        n = points.shape[0]
        cfg = self.config
        features = np.empty((n, cfg.output_dim))
        all_indices, all_weights, all_corners = [], [], []
        for level in range(cfg.n_levels):
            corners, indices, weights = self.level_lookup(points, level)
            gathered = self.tables[level][indices]  # (n, 8, F)
            features[:, level * cfg.n_features : (level + 1) * cfg.n_features] = (
                weights[:, :, None] * gathered
            ).sum(axis=1)
            all_indices.append(indices)
            all_weights.append(weights)
            all_corners.append(corners)
        trace = EncodingTrace(
            indices=all_indices, weights=all_weights, corners=all_corners, n_points=n
        )
        return features, trace

    def backward(self, grad_features: np.ndarray, trace: EncodingTrace) -> np.ndarray:
        """Gradient of the loss w.r.t. the tables.

        ``grad_features`` is ``(n, n_levels * n_features)``; returns an
        array shaped like :attr:`tables`.  This is the scatter-accumulate
        ("inverse adder tree") workload the reconfigurable interpolation
        array executes in training mode.
        """
        grad_features = np.atleast_2d(grad_features)
        if grad_features.shape != (trace.n_points, self.config.output_dim):
            raise ValueError("grad_features shape mismatch with trace")
        cfg = self.config
        grad_tables = np.zeros_like(self.tables)
        for level in range(cfg.n_levels):
            g = grad_features[:, level * cfg.n_features : (level + 1) * cfg.n_features]
            contrib = trace.weights[level][:, :, None] * g[:, None, :]  # (n, 8, F)
            flat_idx = trace.indices[level].reshape(-1)
            np.add.at(
                grad_tables[level],
                flat_idx,
                contrib.reshape(-1, cfg.n_features),
            )
        return grad_tables

    def parameters(self) -> dict:
        return {"hash_tables": self.tables}

    def load_parameters(self, params: dict) -> None:
        tables = params["hash_tables"]
        if tables.shape != self.tables.shape:
            raise ValueError("hash table shape mismatch")
        self.tables = tables
