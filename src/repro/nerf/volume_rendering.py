"""Volumetric rendering: alpha compositing along each ray, with gradients.

Stage III's renderer integrates per-sample density and color into pixels:
``alpha_i = 1 - exp(-sigma_i * delta_i)``,
``T_i = prod_{j<i} (1 - alpha_j)``, ``w_i = T_i * alpha_i``,
``C = sum_i w_i * c_i + (1 - sum_i w_i) * background``.

Samples are stored flat with a ``ray_idx`` map; all per-ray scans are
vectorized with segmented prefix operations so the same code path handles
4-sample sparse rays and 255-sample dense rays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def segment_starts(ray_idx: np.ndarray, n_rays: int) -> np.ndarray:
    """First flat index of each ray's samples (n_rays+1 fence-post array).

    ``ray_idx`` must be sorted ascending (the sampler guarantees this).
    """
    ray_idx = np.asarray(ray_idx)
    if ray_idx.size and np.any(np.diff(ray_idx) < 0):
        raise ValueError("ray_idx must be sorted ascending")
    counts = np.bincount(ray_idx, minlength=n_rays)
    return np.concatenate([[0], np.cumsum(counts)])


def segmented_exclusive_cumsum(values: np.ndarray, fences: np.ndarray) -> np.ndarray:
    """Per-segment exclusive prefix sum of a flat value array."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return values.copy()
    total = np.concatenate([[0.0], np.cumsum(values)[:-1]])
    counts = np.diff(fences)
    # Empty segments contribute nothing after the repeat; clip their start
    # index so it stays a valid read.
    seg_base = total[np.minimum(fences[:-1], values.size - 1)]
    return total - np.repeat(seg_base, counts)


def segment_sum(values: np.ndarray, ray_idx: np.ndarray, n_rays: int) -> np.ndarray:
    """Sum flat per-sample values into per-ray totals (vector-valued ok).

    Implemented as one ``np.bincount`` per trailing column rather than the
    element-at-a-time ``np.add.at`` buffered scatter.  ``bincount``
    accumulates its weights in input order, exactly like ``add.at``, so
    the sums are bit-identical (see
    :func:`repro.perf.reference.scatter_add_reference`) — including on
    duplicate indices — while running an order of magnitude faster.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim == 1:
        return np.bincount(ray_idx, weights=values, minlength=n_rays)
    flat = values.reshape(values.shape[0], -1)
    out = np.empty((n_rays, flat.shape[1]), dtype=np.float64)
    for column in range(flat.shape[1]):
        out[:, column] = np.bincount(
            ray_idx, weights=flat[:, column], minlength=n_rays
        )
    return out.reshape((n_rays,) + values.shape[1:])


@dataclass
class RenderResult:
    """Output of :func:`composite` plus the cache backward needs."""

    colors: np.ndarray  # (n_rays, 3)
    opacity: np.ndarray  # (n_rays,)
    depth: np.ndarray  # (n_rays,) expected termination distance
    weights: np.ndarray  # (n_samples,)
    transmittance: np.ndarray  # (n_samples,)
    alphas: np.ndarray  # (n_samples,)


def composite(
    sigmas: np.ndarray,
    rgbs: np.ndarray,
    deltas: np.ndarray,
    ts: np.ndarray,
    ray_idx: np.ndarray,
    n_rays: int,
    background: float = 1.0,
) -> RenderResult:
    """Front-to-back alpha compositing of flat samples into ray colors."""
    sigmas = np.asarray(sigmas, dtype=np.float64).reshape(-1)
    rgbs = np.atleast_2d(np.asarray(rgbs, dtype=np.float64))
    deltas = np.asarray(deltas, dtype=np.float64).reshape(-1)
    ts = np.asarray(ts, dtype=np.float64).reshape(-1)
    if not (len(sigmas) == len(rgbs) == len(deltas) == len(ts) == len(ray_idx)):
        raise ValueError("all per-sample arrays must have the same length")
    fences = segment_starts(ray_idx, n_rays)
    optical = sigmas * deltas
    alphas = 1.0 - np.exp(-optical)
    transmittance = np.exp(-segmented_exclusive_cumsum(optical, fences))
    weights = transmittance * alphas
    colors = segment_sum(weights[:, None] * rgbs, ray_idx, n_rays)
    opacity = segment_sum(weights, ray_idx, n_rays)
    depth = segment_sum(weights * ts, ray_idx, n_rays)
    colors = colors + (1.0 - opacity)[:, None] * background
    return RenderResult(
        colors=colors,
        opacity=opacity,
        depth=depth,
        weights=weights,
        transmittance=transmittance,
        alphas=alphas,
    )


def composite_backward(
    grad_colors: np.ndarray,
    result: RenderResult,
    sigmas: np.ndarray,
    rgbs: np.ndarray,
    deltas: np.ndarray,
    ray_idx: np.ndarray,
    n_rays: int,
    background: float = 1.0,
) -> tuple:
    """Gradients of the composited colors w.r.t. sigma and rgb.

    Derivation (per ray, with ``s_i = sigma_i * delta_i`` and upstream
    gradient ``g``): ``dC/dc_i = w_i`` and, writing
    ``u_i = g . (c_i - bg)``,
    ``dC/ds_i = u_i * T_i * (1 - a_i) - sum_{j > i} u_j * w_j``.
    The trailing suffix sum is computed with a reversed segmented scan.
    """
    grad_colors = np.atleast_2d(grad_colors)
    rgbs = np.atleast_2d(rgbs)
    deltas = np.asarray(deltas, dtype=np.float64).reshape(-1)
    fences = segment_starts(ray_idx, n_rays)
    grad_rgb = result.weights[:, None] * grad_colors[ray_idx]
    u = ((rgbs - background) * grad_colors[ray_idx]).sum(axis=-1)
    own_term = u * result.transmittance * (1.0 - result.alphas)
    uw = u * result.weights
    # Suffix sum (exclusive) of uw within each ray.
    counts = np.diff(fences)
    seg_totals = segment_sum(uw, ray_idx, n_rays)
    inclusive_prefix = segmented_exclusive_cumsum(uw, fences) + uw
    suffix = np.repeat(seg_totals, counts) - inclusive_prefix
    grad_optical = own_term - suffix
    grad_sigma = grad_optical * deltas
    return grad_sigma, grad_rgb


def psnr(pred: np.ndarray, target: np.ndarray, max_value: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB, the paper's quality metric."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError("pred and target must have the same shape")
    mse = float(np.mean((pred - target) ** 2))
    if mse <= 0.0:
        return float("inf")
    return 10.0 * np.log10(max_value**2 / mse)
