"""Adam optimizer over named parameter dicts.

Instant-NGP trains with Adam; gradients arrive as a flat
``{name: array}`` dict matching :meth:`InstantNGPModel.parameters`.
"""

from __future__ import annotations

import numpy as np


class Adam:
    """Adam with per-parameter state, operating in place on a param dict."""

    def __init__(
        self,
        params: dict,
        lr: float = 1e-2,
        betas: tuple = (0.9, 0.99),
        eps: float = 1e-10,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = params
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.step_count = 0
        self._m = {k: np.zeros_like(v) for k, v in params.items()}
        self._v = {k: np.zeros_like(v) for k, v in params.items()}

    def step(self, grads: dict) -> None:
        """Apply one update; missing grads leave their parameter untouched."""
        self.step_count += 1
        bias1 = 1.0 - self.beta1**self.step_count
        bias2 = 1.0 - self.beta2**self.step_count
        for name, grad in grads.items():
            if name not in self.params:
                raise KeyError(f"gradient for unknown parameter {name!r}")
            p = self.params[name]
            if grad.shape != p.shape:
                raise ValueError(f"gradient shape mismatch for {name!r}")
            if self.weight_decay:
                grad = grad + self.weight_decay * p
            m = self._m[name]
            v = self._v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def set_lr(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple:
    """Mean-squared error and its gradient w.r.t. ``pred``."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError("pred and target must have the same shape")
    diff = pred - target
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad
