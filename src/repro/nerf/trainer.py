"""Training loop: instant reconstruction in software.

Reproduces the Instant-NGP training recipe the accelerator executes:
random ray batches, occupancy-gated marching, MSE on composited pixels,
Adam on hash tables + MLPs, periodic occupancy refresh.  Hooks let the
experiments capture workload traces (for the cycle simulator) and apply
quantization (for the Table II study).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..robustness.errors import DivergenceError, DivergenceEvent
from .aabb import SceneNormalizer
from .occupancy import OccupancyGrid
from .optimizer import Adam, mse_loss
from .rays import sample_training_rays
from .renderer import render_image
from .sampling import RayMarcher, SamplerConfig
from .volume_rendering import composite, composite_backward, psnr


@dataclass(frozen=True)
class TrainerConfig:
    """Training hyper-parameters."""

    batch_rays: int = 1024
    lr: float = 1e-2
    background: float = 1.0
    #: Refresh the occupancy grid every this many iterations (0 = never).
    occupancy_interval: int = 16
    occupancy_resolution: int = 32
    occupancy_threshold: float = 0.05
    max_samples_per_ray: int = 64
    seed: int = 0


@dataclass
class TrainState:
    """Mutable bookkeeping of one training run."""

    iteration: int = 0
    losses: list = field(default_factory=list)
    psnr_history: list = field(default_factory=list)
    #: Structured record of every skipped step (see DivergenceEvent).
    divergence_events: list = field(default_factory=list)


class Trainer:
    """Trains a radiance-field model against a posed image set."""

    def __init__(
        self,
        model,
        cameras: list,
        images: np.ndarray,
        normalizer: SceneNormalizer,
        config: TrainerConfig = TrainerConfig(),
    ):
        if len(cameras) == 0:
            raise ValueError("need at least one training view")
        self.model = model
        self.cameras = cameras
        self.images = np.asarray(images, dtype=np.float64)
        self.normalizer = normalizer
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.marcher = RayMarcher(
            SamplerConfig(max_samples=config.max_samples_per_ray, jitter=True)
        )
        self.occupancy = OccupancyGrid(
            resolution=config.occupancy_resolution,
            threshold=config.occupancy_threshold,
        )
        self.optimizer = Adam(model.parameters(), lr=config.lr)
        self.state = TrainState()
        #: Set by experiments to intercept each step (e.g. quantization).
        self.post_step_hook = None
        #: Last sample batch, for workload-trace extraction.
        self.last_batch = None
        #: Gradient-norm divergence threshold; 0 disables the check.
        #: Typically set by a robustness watchdog on attach.
        self.grad_norm_threshold = 0.0

    def train_step(self) -> float:
        """One optimization step; returns the batch loss."""
        cfg = self.config
        tel = telemetry.get_session()
        step_start = time.perf_counter() if tel.enabled else 0.0
        with tel.tracer.span("trainer.train_step"):
            with tel.tracer.span("trainer.sample_rays"):
                rays, target = sample_training_rays(
                    self.cameras, self.images, cfg.batch_rays, self.rng
                )
                origins, directions = self.normalizer.rays_to_unit(
                    rays.origins, rays.directions
                )
                batch = self.marcher.sample(
                    origins, directions, occupancy=self.occupancy, rng=self.rng
                )
            self.last_batch = batch
            tel.hooks.emit(telemetry.ON_BATCH, trainer=self, batch=batch)
            if len(batch) == 0:
                # Degenerate batch (all empty space): skip the step entirely.
                # Benign — nothing was poisoned — but no longer silent: the
                # skip is recorded as a structured event so a long run of
                # them can be diagnosed instead of read back as NaN losses.
                self.state.iteration += 1
                self.state.losses.append(float("nan"))
                event = DivergenceEvent(
                    iteration=self.state.iteration,
                    reason="degenerate_batch",
                    detail="ray marching produced zero samples",
                )
                self.state.divergence_events.append(event)
                tel.hooks.emit(telemetry.ON_DIVERGENCE, trainer=self, event=event)
                tel.hooks.emit(
                    telemetry.ON_ITERATION, trainer=self, loss=float("nan")
                )
                return float("nan")
            with tel.tracer.span("trainer.forward"):
                sigma, rgb, cache = self.model.forward(
                    batch.positions, batch.directions
                )
            with tel.tracer.span("trainer.composite"):
                result = composite(
                    sigma,
                    rgb,
                    batch.deltas,
                    batch.ts,
                    batch.ray_idx,
                    batch.n_rays,
                    background=cfg.background,
                )
                loss, grad_colors = mse_loss(result.colors, target)
            if not np.isfinite(loss):
                # The step never reaches the optimizer: the model the
                # caller holds is still the last good one.
                return self._diverge(
                    tel, reason="non_finite_loss", loss=float(loss)
                )
            with tel.tracer.span("trainer.backward"):
                grad_sigma, grad_rgb = composite_backward(
                    grad_colors,
                    result,
                    sigma,
                    rgb,
                    batch.deltas,
                    batch.ray_idx,
                    batch.n_rays,
                    background=cfg.background,
                )
                grads = self.model.backward(grad_sigma, grad_rgb, cache)
            if self.grad_norm_threshold > 0:
                grad_norm = float(
                    np.sqrt(
                        sum(float(np.sum(np.square(g))) for g in grads.values())
                    )
                )
                if not np.isfinite(grad_norm) or grad_norm > self.grad_norm_threshold:
                    return self._diverge(
                        tel,
                        reason="gradient_explosion",
                        loss=float(loss),
                        grad_norm=grad_norm,
                    )
            with tel.tracer.span("trainer.optimizer_step"):
                self.optimizer.step(grads)
            self.state.iteration += 1
            self.state.losses.append(loss)
            if (
                cfg.occupancy_interval
                and self.state.iteration % cfg.occupancy_interval == 0
            ):
                refresh_start = time.perf_counter() if tel.enabled else 0.0
                with tel.tracer.span("trainer.occupancy_refresh"):
                    self._refresh_occupancy()
                if tel.enabled:
                    tel.metrics.histogram("trainer.occupancy_refresh_s").observe(
                        time.perf_counter() - refresh_start
                    )
            if self.post_step_hook is not None:
                self.post_step_hook(self)
        if tel.enabled:
            step_s = time.perf_counter() - step_start
            m = tel.metrics
            m.counter("trainer.iterations").inc()
            m.counter("trainer.rays").inc(cfg.batch_rays)
            m.counter("trainer.samples").inc(len(batch))
            m.gauge("trainer.loss").set(loss)
            m.histogram("trainer.step_s").observe(step_s)
            if step_s > 0:
                m.gauge("trainer.rays_per_s").set(cfg.batch_rays / step_s)
            if tel.publisher is not None:
                tel.publisher.maybe_publish()
        tel.hooks.emit(telemetry.ON_ITERATION, trainer=self, loss=loss)
        return loss

    def _diverge(
        self, tel, reason: str, loss: float = float("nan"), grad_norm=None
    ) -> float:
        """Record a skipped (diverged) step and dispatch it for recovery.

        Emits ``on_divergence``; if nobody is subscribed, raises
        :class:`~repro.robustness.errors.DivergenceError` — divergence is
        never silent.  A subscriber (e.g. a
        :class:`~repro.robustness.watchdog.DivergenceWatchdog`) claims
        responsibility, so the step is recorded as NaN and training can
        continue from whatever state the subscriber restored.
        """
        self.state.iteration += 1
        self.state.losses.append(float("nan"))
        event = DivergenceEvent(
            iteration=self.state.iteration,
            reason=reason,
            loss=loss,
            grad_norm=grad_norm,
        )
        self.state.divergence_events.append(event)
        if tel.enabled:
            tel.metrics.counter("trainer.divergence_events").inc()
        handled = tel.hooks.emit(telemetry.ON_DIVERGENCE, trainer=self, event=event)
        if handled == 0:
            raise DivergenceError(event)
        tel.hooks.emit(telemetry.ON_ITERATION, trainer=self, loss=float("nan"))
        return float("nan")

    def train(self, n_iterations: int, eval_every: int = 0, eval_views: int = 2) -> TrainState:
        """Run ``n_iterations`` steps, optionally tracking test PSNR."""
        for _ in range(n_iterations):
            self.train_step()
            if eval_every and self.state.iteration % eval_every == 0:
                self.state.psnr_history.append(
                    (self.state.iteration, self.eval_psnr(n_views=eval_views))
                )
        return self.state

    def train_steps(self, n_steps: int) -> TrainState:
        """Run a budgeted training increment of exactly ``n_steps`` steps.

        The incremental API the online reconstruction loop schedules
        around: N calls of ``train_steps(k)`` are *bit-identical* to one
        ``train(N * k)`` — same RNG stream, Adam moments, and occupancy
        EMA — because a step consumes nothing outside :meth:`train_step`
        and nothing here draws from the trainer RNG between increments.
        (Evaluation via :meth:`eval_psnr` is also stream-neutral: it
        renders with deterministic mid-step sampling.)
        """
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        for _ in range(n_steps):
            self.train_step()
        return self.state

    def add_view(self, camera, image: np.ndarray) -> int:
        """Append one posed frame to the training set; returns the view count.

        The streaming-ingest hook: subsequent ray batches draw uniformly
        over the grown set.  The image must match the existing
        ``(h, w, 3)`` resolution — mixed-resolution captures are not
        supported by the flat pixel sampler.
        """
        image = np.asarray(image, dtype=np.float64)
        if image.shape != self.images.shape[1:]:
            raise ValueError(
                f"view shape {image.shape} does not match the training set "
                f"{self.images.shape[1:]}"
            )
        self.cameras = list(self.cameras) + [camera]
        self.images = np.concatenate([self.images, image[None]], axis=0)
        return len(self.cameras)

    def eval_psnr(self, cameras: list = None, images: np.ndarray = None, n_views: int = 2) -> float:
        """Average PSNR over held-out (or the first ``n_views`` training) views."""
        if cameras is None:
            cameras = self.cameras[:n_views]
            images = self.images[:n_views]
        tel = telemetry.get_session()
        scores = []
        with tel.tracer.span("trainer.eval_psnr"):
            for camera, target in zip(cameras, images):
                rendered = render_image(
                    self.model,
                    camera,
                    self.normalizer,
                    self.marcher,
                    occupancy=self.occupancy,
                    background=self.config.background,
                )
                scores.append(psnr(rendered, target))
        score = float(np.mean(scores))
        tel.metrics.gauge("trainer.psnr").set(score)
        return score

    def _refresh_occupancy(self) -> None:
        """Re-estimate occupancy from the current density field."""
        res = self.occupancy.resolution
        base = (
            np.stack(np.meshgrid(*([np.arange(res)] * 3), indexing="ij"), axis=-1)
            .reshape(-1, 3)
            .astype(np.float64)
        )
        jitter = self.rng.uniform(0.0, 1.0, size=base.shape)
        points = (base + jitter) / res
        density = self.model.density(points)
        self.occupancy.update(points, density)
        # Never let the grid collapse to fully-empty early in training.
        if not self.occupancy.mask.any():
            self.occupancy.mask[:] = True
