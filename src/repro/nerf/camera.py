"""Pinhole cameras and pose generation.

NeRF datasets provide camera-to-world poses for each training image; our
procedural datasets generate the same thing: cameras distributed on a
sphere (object scenes) or a ring (360-style unbounded scenes), all looking
at the scene center.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Camera:
    """A pinhole camera with a camera-to-world pose.

    Attributes
    ----------
    width, height:
        Image resolution in pixels.
    focal:
        Focal length in pixels (square pixels, principal point centered).
    c2w:
        4x4 camera-to-world matrix; camera looks down its -Z axis,
        +X right, +Y up (OpenGL/NeRF convention).
    """

    width: int
    height: int
    focal: float
    c2w: np.ndarray

    def __post_init__(self):
        c2w = np.asarray(self.c2w, dtype=np.float64)
        if c2w.shape != (4, 4):
            raise ValueError("c2w must be a 4x4 matrix")
        object.__setattr__(self, "c2w", c2w)

    @property
    def origin(self) -> np.ndarray:
        """Camera center in world coordinates."""
        return self.c2w[:3, 3]

    @property
    def n_pixels(self) -> int:
        return self.width * self.height


def look_at(eye: np.ndarray, target: np.ndarray, up=(0.0, 0.0, 1.0)) -> np.ndarray:
    """Build a camera-to-world matrix looking from ``eye`` toward ``target``."""
    eye = np.asarray(eye, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    up = np.asarray(up, dtype=np.float64)
    forward = target - eye
    norm = np.linalg.norm(forward)
    if norm < 1e-12:
        raise ValueError("eye and target coincide")
    forward = forward / norm
    right = np.cross(forward, up)
    right_norm = np.linalg.norm(right)
    if right_norm < 1e-9:
        # Looking straight along `up`; pick another reference axis.
        right = np.cross(forward, np.array([1.0, 0.0, 0.0]))
        right_norm = np.linalg.norm(right)
    right = right / right_norm
    true_up = np.cross(right, forward)
    c2w = np.eye(4)
    c2w[:3, 0] = right
    c2w[:3, 1] = true_up
    c2w[:3, 2] = -forward  # camera looks down -Z
    c2w[:3, 3] = eye
    return c2w


def sphere_poses(
    n_views: int,
    radius: float,
    center=(0.0, 0.0, 0.0),
    elevation_range=(0.2, 1.1),
    rng: np.random.Generator = None,
) -> list:
    """Camera-to-world poses spread over a sphere cap around the scene.

    Views are placed at golden-angle azimuths with elevations swept over
    ``elevation_range`` (radians above the horizon), matching the capture
    pattern of object-centric NeRF datasets.
    """
    if n_views < 1:
        raise ValueError("need at least one view")
    center = np.asarray(center, dtype=np.float64)
    golden = np.pi * (3.0 - np.sqrt(5.0))
    poses = []
    for i in range(n_views):
        azimuth = i * golden
        frac = i / max(n_views - 1, 1)
        elevation = elevation_range[0] + frac * (elevation_range[1] - elevation_range[0])
        if rng is not None:
            azimuth += rng.uniform(-0.05, 0.05)
            elevation += rng.uniform(-0.02, 0.02)
        eye = center + radius * np.array(
            [
                np.cos(elevation) * np.cos(azimuth),
                np.cos(elevation) * np.sin(azimuth),
                np.sin(elevation),
            ]
        )
        poses.append(look_at(eye, center))
    return poses


def ring_poses(
    n_views: int,
    radius: float,
    height: float,
    center=(0.0, 0.0, 0.0),
) -> list:
    """Inward-facing ring of cameras, the NeRF-360 capture pattern."""
    center = np.asarray(center, dtype=np.float64)
    poses = []
    for i in range(n_views):
        azimuth = 2.0 * np.pi * i / n_views
        eye = center + np.array(
            [radius * np.cos(azimuth), radius * np.sin(azimuth), height]
        )
        poses.append(look_at(eye, center))
    return poses
