"""Low-precision inference snapshots of the radiance field.

The paper's mixed-precision datapath (Challenge C2) stores hash-table
features in fp16 and MLP weights in INT8 while accumulating in wider
formats.  This module builds that inference configuration out of a
trained :class:`~repro.nerf.model.InstantNGPModel`:

* :class:`LowPrecisionField` — an inference-only field whose hash tables
  are fp16 (:class:`~repro.nerf.hash_encoding.Fp16HashEncoding`) and
  whose MLPs run either float32 (mode ``"fp16"``) or dequantized INT8
  with per-layer symmetric scales (mode ``"fp16-int8"``).  It satisfies
  the pipeline ``Field`` contract — ``forward(positions, directions)``
  returning ``(sigma, rgb, cache)`` — so every renderer, the serving
  plane, and the bench harness can evaluate it without special cases.
* :class:`PrecisionGate` — the PSNR-delta budget that decides whether a
  low-precision configuration is allowed to replace the full-precision
  path for a scene.

Training always happens on the float64 masters; a snapshot is refreshed
from its source model after each training burst (``refresh``), exactly
like re-flashing an accelerator's weight SRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hash_encoding import Fp16HashEncoding
from .mlp import InferenceMLP, Int8MLP, spherical_harmonics
from .volume_rendering import psnr

#: Precision modes a snapshot can run in, cheapest last.
PRECISION_MODES = ("fp16", "fp16-int8")

#: The pipeline's name for the unquantized float64 path.
FULL_PRECISION = "full"


class LowPrecisionField:
    """Inference-only fp16/INT8 snapshot of an ``InstantNGPModel``.

    ``mode="fp16"`` narrows only the hash tables (fp16 storage, float32
    accumulation); ``mode="fp16-int8"`` additionally quantizes both MLPs
    to INT8 weights with per-layer scales.  Activations, compositing
    inputs, and outputs are float32 throughout — the accumulator width
    of the paper's datapath.
    """

    def __init__(self, source, mode: str = "fp16-int8"):
        if mode not in PRECISION_MODES:
            raise ValueError(
                f"mode must be one of {PRECISION_MODES}, got {mode!r}"
            )
        for attr in ("encoding", "density_mlp", "color_mlp"):
            if not hasattr(source, attr):
                raise TypeError(
                    f"{type(source).__name__} has no {attr!r}; low-precision "
                    "snapshots need a hash-encoded NGP-shaped field"
                )
        if not hasattr(source.encoding, "tables"):
            raise TypeError(
                f"{type(source.encoding).__name__} has no hash tables; "
                "low-precision snapshots narrow the fp16 feature SRAM of "
                "a hash encoding (VM factor stores are not supported)"
            )
        self.source = source
        self.mode = mode
        self.config = source.config
        self.encoding = Fp16HashEncoding(source.encoding)
        mlp_cls = Int8MLP if mode == "fp16-int8" else InferenceMLP
        self.density_mlp = mlp_cls(source.density_mlp)
        self.color_mlp = mlp_cls(source.color_mlp)
        self._density_bias = np.float32(source.config.density_bias)

    @property
    def precision(self) -> str:
        """The pipeline precision tag this field implements."""
        return self.mode

    def refresh(self) -> None:
        """Re-snapshot from the source model (after a training burst)."""
        self.encoding.refresh(self.source.encoding)
        mlp_cls = type(self.density_mlp)
        self.density_mlp = mlp_cls(self.source.density_mlp)
        self.color_mlp = mlp_cls(self.source.color_mlp)

    def forward(self, positions: np.ndarray, directions: np.ndarray) -> tuple:
        """Per-sample ``(sigma, rgb, None)`` at inference precision.

        Mirrors ``InstantNGPModel.forward`` with float32 arithmetic and
        no backward caches — the cache slot is always ``None``.
        """
        positions = np.atleast_2d(positions)
        directions = np.atleast_2d(directions)
        if positions.shape[0] != directions.shape[0]:
            raise ValueError("positions and directions must align")
        features, _ = self.encoding.forward(positions)
        latent, _ = self.density_mlp.forward(features)
        sigma = self._density_activation(latent[:, 0])
        sh = spherical_harmonics(directions.astype(np.float32))
        color_in = np.concatenate([latent, sh.astype(np.float32)], axis=-1)
        rgb, _ = self.color_mlp.forward(color_in)
        return sigma, rgb, None

    def density(self, positions: np.ndarray) -> np.ndarray:
        """Density only (occupancy refreshes at inference precision)."""
        features, _ = self.encoding.forward(positions)
        latent, _ = self.density_mlp.forward(features)
        return self._density_activation(latent[:, 0])

    def _density_activation(self, x: np.ndarray) -> np.ndarray:
        x = x + self._density_bias
        if self.config.density_activation == "softplus":
            return np.logaddexp(np.float32(0.0), x)
        if self.config.density_activation == "exp":
            return np.exp(np.clip(x, np.float32(-15.0), np.float32(15.0)))
        raise ValueError(
            f"unknown density activation {self.config.density_activation!r}"
        )

    def parameters(self) -> dict:
        """The stored (narrow) tensors, named like the source model's.

        Keeping the source names means the robustness fault injector
        classifies them the same way: ``hash_tables`` takes fp16 bit
        flips, MLP weights take quantized-code flips.
        """
        params = {"hash_tables": self.encoding.tables}
        for mlp in (self.density_mlp, self.color_mlp):
            for i, (w, b) in enumerate(zip(mlp.weights, mlp.biases)):
                params[f"{mlp.name}.w{i}"] = w
                params[f"{mlp.name}.b{i}"] = b
        return params

    @property
    def storage_bytes(self) -> int:
        """Bytes the narrow parameter store occupies.

        fp16 tables plus, per MLP, either the INT8 code words (mode
        ``"fp16-int8"``) or the float32 weights, and float32 biases.
        """
        total = self.encoding.tables.nbytes
        for mlp in (self.density_mlp, self.color_mlp):
            if isinstance(mlp, Int8MLP):
                total += mlp.storage_bytes
            else:
                total += sum(w.nbytes for w in mlp.weights)
            total += sum(b.nbytes for b in mlp.biases)
        return total


@dataclass(frozen=True)
class PrecisionGate:
    """PSNR-delta budget for admitting a low-precision configuration.

    A mode passes when its render agrees with the full-precision render
    to at least ``min_agreement_db`` PSNR *and* — when a ground-truth
    image is supplied — its quality drop against ground truth stays
    within ``max_delta_db``.  The two checks catch different failures:
    agreement catches numerical blow-ups even on scenes the model fits
    poorly; the delta keeps a mode from hiding quality loss behind an
    already-low baseline PSNR.
    """

    max_delta_db: float = 1.0
    min_agreement_db: float = 30.0

    def __post_init__(self):
        if self.max_delta_db < 0.0:
            raise ValueError("max_delta_db must be non-negative")
        if self.min_agreement_db <= 0.0:
            raise ValueError("min_agreement_db must be positive")

    def evaluate(
        self,
        full_image: np.ndarray,
        lowp_image: np.ndarray,
        ground_truth: np.ndarray = None,
    ) -> "PrecisionReport":
        """Measure one mode against the budget; never raises."""
        agreement_db = psnr(lowp_image, full_image)
        delta_db = 0.0
        if ground_truth is not None:
            delta_db = psnr(full_image, ground_truth) - psnr(
                lowp_image, ground_truth
            )
        passed = agreement_db >= self.min_agreement_db and (
            delta_db <= self.max_delta_db
        )
        return PrecisionReport(
            agreement_db=float(agreement_db),
            psnr_delta_db=float(delta_db),
            passed=bool(passed),
        )

    def check(
        self,
        full_image: np.ndarray,
        lowp_image: np.ndarray,
        ground_truth: np.ndarray = None,
        mode: str = "low-precision",
    ) -> "PrecisionReport":
        """Like :meth:`evaluate` but raises ``PrecisionBudgetError`` on
        failure — the form serving and deployment call."""
        report = self.evaluate(full_image, lowp_image, ground_truth)
        if not report.passed:
            raise PrecisionBudgetError(
                f"{mode}: agreement {report.agreement_db:.2f} dB "
                f"(floor {self.min_agreement_db}), PSNR delta "
                f"{report.psnr_delta_db:.2f} dB (budget {self.max_delta_db})"
            )
        return report


@dataclass(frozen=True)
class PrecisionReport:
    """Outcome of one :class:`PrecisionGate` measurement."""

    agreement_db: float
    psnr_delta_db: float
    passed: bool


class PrecisionBudgetError(ValueError):
    """A low-precision mode exceeded its PSNR budget."""
