"""Functional NeRF substrate: the algorithms the accelerator executes.

Pure-NumPy Instant-NGP (hash encoding, occupancy-gated ray marching,
MLPs, volumetric rendering) with hand-written gradients, plus the MoE
decomposition of the multi-chip system, the INT8 quantized-training study,
and a dense-grid (TensoRF-style) baseline.
"""

from .camera import Camera, look_at, sphere_poses, ring_poses
from .rays import RayBundle, generate_rays, sample_training_rays, pixel_directions
from .aabb import (
    GENERAL_INTERSECT_COST,
    NORMALIZED_INTERSECT_COST,
    intersect_aabb_general,
    intersect_unit_cube,
    intersect_octants,
    octant_bounds,
    SceneNormalizer,
    RayCubePairs,
)
from .occupancy import HierarchicalOccupancy, OccupancyGrid, traverse_grid
from .sampling import RayMarcher, SamplerConfig, SampleBatch, SamplingStats
from .hash_encoding import (
    Fp16HashEncoding,
    HashEncoding,
    HashEncodingConfig,
    EncodingTrace,
    hash_vertices,
    PRIMES,
    CORNER_OFFSETS,
)
from .mlp import MLP, InferenceMLP, Int8MLP, spherical_harmonics, SH_DIM
from .volume_rendering import (
    composite,
    composite_backward,
    RenderResult,
    psnr,
    segment_starts,
    segment_sum,
    segmented_exclusive_cumsum,
)
from .model import InstantNGPModel, ModelConfig, ForwardCache
from .optimizer import Adam, mse_loss
from .trainer import Trainer, TrainerConfig, TrainState
from .renderer import render_image, render_rays, batch_to_stats
from .quantization import (
    quantize_int8,
    quantize_int8_fixed,
    quantization_error,
    quantize_model_parameters,
    PeriodicQuantizationHook,
)
from .early_termination import (
    AdaptiveStats,
    TerminationStats,
    live_sample_mask,
    render_batch_adaptive,
    render_batch_ert,
    termination_stats,
    truncate_batch,
    per_ray_live_counts,
    verify_color_preserved,
)
from .precision import (
    FULL_PRECISION,
    PRECISION_MODES,
    LowPrecisionField,
    PrecisionBudgetError,
    PrecisionGate,
    PrecisionReport,
)
from .checkpoint import save_model, load_model, deployment_payload_bytes
from .gradcheck import check_model_gradients, GradCheckReport
from .moe import MoENeRF, MoEConfig, MoETrainer, dominance_map, dominance_ascii
from .tensorf import (
    DenseGridField,
    DenseGridConfig,
    PlaneLineEncoding,
    PlaneLineTrace,
    TensoRFConfig,
    TensoRFModel,
)

__all__ = [
    "Camera",
    "look_at",
    "sphere_poses",
    "ring_poses",
    "RayBundle",
    "generate_rays",
    "sample_training_rays",
    "pixel_directions",
    "GENERAL_INTERSECT_COST",
    "NORMALIZED_INTERSECT_COST",
    "intersect_aabb_general",
    "intersect_unit_cube",
    "intersect_octants",
    "octant_bounds",
    "SceneNormalizer",
    "RayCubePairs",
    "OccupancyGrid",
    "HierarchicalOccupancy",
    "traverse_grid",
    "RayMarcher",
    "SamplerConfig",
    "SampleBatch",
    "SamplingStats",
    "HashEncoding",
    "Fp16HashEncoding",
    "HashEncodingConfig",
    "EncodingTrace",
    "hash_vertices",
    "PRIMES",
    "CORNER_OFFSETS",
    "MLP",
    "InferenceMLP",
    "Int8MLP",
    "spherical_harmonics",
    "SH_DIM",
    "composite",
    "composite_backward",
    "RenderResult",
    "psnr",
    "segment_starts",
    "segment_sum",
    "segmented_exclusive_cumsum",
    "InstantNGPModel",
    "ModelConfig",
    "ForwardCache",
    "Adam",
    "mse_loss",
    "Trainer",
    "TrainerConfig",
    "TrainState",
    "render_image",
    "render_rays",
    "batch_to_stats",
    "quantize_int8",
    "quantize_int8_fixed",
    "quantization_error",
    "quantize_model_parameters",
    "PeriodicQuantizationHook",
    "TerminationStats",
    "AdaptiveStats",
    "render_batch_ert",
    "render_batch_adaptive",
    "live_sample_mask",
    "termination_stats",
    "truncate_batch",
    "per_ray_live_counts",
    "verify_color_preserved",
    "FULL_PRECISION",
    "PRECISION_MODES",
    "LowPrecisionField",
    "PrecisionBudgetError",
    "PrecisionGate",
    "PrecisionReport",
    "save_model",
    "load_model",
    "deployment_payload_bytes",
    "check_model_gradients",
    "GradCheckReport",
    "MoENeRF",
    "MoEConfig",
    "MoETrainer",
    "dominance_map",
    "dominance_ascii",
    "DenseGridField",
    "DenseGridConfig",
    "PlaneLineEncoding",
    "PlaneLineTrace",
    "TensoRFConfig",
    "TensoRFModel",
]
