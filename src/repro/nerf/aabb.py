"""Ray-box intersection: the entry computation of Stage I.

Two implementations are provided, mirroring the paper's Technique T1-1:

* :func:`intersect_aabb_general` — the baseline slab test against an
  arbitrary axis-aligned box.  The paper counts this as solving six linear
  equations: 18 divisions, 54 multiplications, 54 additions per ray.
* :func:`intersect_unit_cube` — after *model normalization* maps the scene
  into the unit cube, the per-axis entry/exit parameters collapse to
  ``t = -o * inv_d`` and ``t = inv_d - o * inv_d``: 3 multiplications and
  3 multiply-accumulates per ray (``inv_d`` is produced once at ray
  generation and shared by all eight partition cubes).

*Model partitioning* splits the unit cube into eight octants; only the
ray-octant pairs with a real intersection are forwarded to the sampling
cores, giving the parallelism the dynamic scheduler (T1-2) exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Per-ray arithmetic cost of the general intersection (paper, Sec. IV-A1).
GENERAL_INTERSECT_COST = {"div": 18, "mul": 54, "add": 54}
#: Per-ray-cube cost after model normalization (paper, Sec. IV-A1).
NORMALIZED_INTERSECT_COST = {"mul": 3, "mac": 3}

_EPS = 1e-12


def _safe_inverse(directions: np.ndarray) -> np.ndarray:
    """Per-component 1/d with zeros nudged off the axis."""
    d = np.asarray(directions, dtype=np.float64)
    return 1.0 / np.where(np.abs(d) < _EPS, np.copysign(_EPS, d + _EPS), d)


def intersect_aabb_general(
    origins: np.ndarray,
    directions: np.ndarray,
    box_min: np.ndarray,
    box_max: np.ndarray,
) -> tuple:
    """Slab-test a ray batch against an arbitrary AABB.

    Returns ``(t0, t1, hit)`` where ``hit`` marks rays with a non-empty
    intersection in front of the origin (``t1 > max(t0, 0)``).
    """
    origins = np.atleast_2d(origins)
    directions = np.atleast_2d(directions)
    box_min = np.asarray(box_min, dtype=np.float64)
    box_max = np.asarray(box_max, dtype=np.float64)
    if np.any(box_max <= box_min):
        raise ValueError("box_max must exceed box_min on every axis")
    inv_d = _safe_inverse(directions)
    t_low = (box_min - origins) * inv_d
    t_high = (box_max - origins) * inv_d
    t_near = np.minimum(t_low, t_high).max(axis=-1)
    t_far = np.maximum(t_low, t_high).min(axis=-1)
    t0 = np.maximum(t_near, 0.0)
    hit = t_far > t0
    return t0, t_far, hit


@dataclass(frozen=True)
class SceneNormalizer:
    """Affine map between world space and the normalized unit cube.

    ``unit = (world - offset) * scale`` with a single isotropic ``scale``
    so ray directions stay directions (lengths change uniformly, which the
    sampler's step size absorbs).
    """

    offset: np.ndarray
    scale: float

    @classmethod
    def from_aabb(cls, box_min, box_max, margin: float = 0.0) -> "SceneNormalizer":
        box_min = np.asarray(box_min, dtype=np.float64)
        box_max = np.asarray(box_max, dtype=np.float64)
        if np.any(box_max <= box_min):
            raise ValueError("box_max must exceed box_min on every axis")
        span = (box_max - box_min).max() * (1.0 + margin)
        center = (box_min + box_max) / 2.0
        offset = center - span / 2.0
        return cls(offset=offset, scale=1.0 / span)

    def to_unit(self, points: np.ndarray) -> np.ndarray:
        return (np.asarray(points, dtype=np.float64) - self.offset) * self.scale

    def from_unit(self, points: np.ndarray) -> np.ndarray:
        return np.asarray(points, dtype=np.float64) / self.scale + self.offset

    def rays_to_unit(self, origins: np.ndarray, directions: np.ndarray) -> tuple:
        """Map rays into unit-cube space (directions are not re-normalized,
        so ``t`` parameters remain comparable across rays)."""
        return self.to_unit(origins), np.asarray(directions) * self.scale


def intersect_unit_cube(
    origins: np.ndarray,
    directions: np.ndarray,
    inv_d: np.ndarray = None,
    cube_min: np.ndarray = None,
    cube_max: np.ndarray = None,
) -> tuple:
    """Normalized-cube intersection (Technique T1-1 fast path).

    With bounds fixed at 0 and 1 the slab parameters are
    ``t_low = -o * inv_d`` (3 muls) and ``t_high = inv_d - o * inv_d``
    (3 MACs).  ``cube_min``/``cube_max`` select one of the eight partition
    octants; they default to the full unit cube.
    """
    origins = np.atleast_2d(origins)
    directions = np.atleast_2d(directions)
    if inv_d is None:
        inv_d = _safe_inverse(directions)
    if cube_min is None:
        prod = origins * inv_d  # the 3 multiplications
        t_low = -prod
        t_high = inv_d - prod  # the 3 MACs
    else:
        cube_min = np.asarray(cube_min, dtype=np.float64)
        cube_max = np.asarray(cube_max, dtype=np.float64)
        t_low = (cube_min - origins) * inv_d
        t_high = (cube_max - origins) * inv_d
    t_near = np.minimum(t_low, t_high).max(axis=-1)
    t_far = np.maximum(t_low, t_high).min(axis=-1)
    t0 = np.maximum(t_near, 0.0)
    hit = t_far > t0
    return t0, t_far, hit


def octant_bounds() -> tuple:
    """Bounds of the eight partition cubes of the unit cube.

    Returns ``(mins, maxs)``, each ``(8, 3)``, ordered by octant index
    ``(x_bit | y_bit << 1 | z_bit << 2)``.
    """
    bits = np.arange(8)
    mins = 0.5 * np.stack(
        [(bits >> 0) & 1, (bits >> 1) & 1, (bits >> 2) & 1], axis=-1
    ).astype(np.float64)
    return mins, mins + 0.5


@dataclass
class RayCubePairs:
    """Valid ray-octant intersections: Stage I's unit of scheduling work.

    ``ray_idx[k]``/``cube_idx[k]`` identify pair *k*; ``t0``/``t1`` bound
    its marching segment in normalized space.  ``pairs_per_ray`` gives the
    per-ray fan-out the dynamic scheduler balances (1-3 typically).
    """

    ray_idx: np.ndarray
    cube_idx: np.ndarray
    t0: np.ndarray
    t1: np.ndarray
    n_rays: int

    def __len__(self) -> int:
        return self.ray_idx.shape[0]

    @property
    def pairs_per_ray(self) -> np.ndarray:
        return np.bincount(self.ray_idx, minlength=self.n_rays)


def intersect_octants(origins: np.ndarray, directions: np.ndarray) -> RayCubePairs:
    """Intersect rays (already in unit-cube space) with all eight octants."""
    origins = np.atleast_2d(origins)
    directions = np.atleast_2d(directions)
    n = origins.shape[0]
    inv_d = _safe_inverse(directions)
    mins, maxs = octant_bounds()
    # Broadcast to (n_rays, 8, 3): one slab test per ray-octant pair.
    t_low = (mins[None] - origins[:, None]) * inv_d[:, None]
    t_high = (maxs[None] - origins[:, None]) * inv_d[:, None]
    t_near = np.minimum(t_low, t_high).max(axis=-1)
    t_far = np.maximum(t_low, t_high).min(axis=-1)
    t0 = np.maximum(t_near, 0.0)
    hit = t_far > t0 + _EPS
    ray_idx, cube_idx = np.nonzero(hit)
    return RayCubePairs(
        ray_idx=ray_idx,
        cube_idx=cube_idx,
        t0=t0[ray_idx, cube_idx],
        t1=t_far[ray_idx, cube_idx],
        n_rays=n,
    )
