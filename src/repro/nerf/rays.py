"""Ray generation: the front of NeRF pipeline Stage I.

For each target pixel, a ray is cast from the camera center through the
pixel; Stage I then intersects the ray with the (normalized) model
bounding box and marches samples along it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .camera import Camera


@dataclass
class RayBundle:
    """A batch of rays.

    Attributes
    ----------
    origins:
        ``(n, 3)`` world-space ray origins.
    directions:
        ``(n, 3)`` unit-norm world-space directions.
    pixel_ids:
        ``(n,)`` flat pixel index of each ray in its source image, or -1
        when the bundle was not generated from an image grid.
    """

    origins: np.ndarray
    directions: np.ndarray
    pixel_ids: np.ndarray

    def __post_init__(self):
        self.origins = np.atleast_2d(np.asarray(self.origins, dtype=np.float64))
        self.directions = np.atleast_2d(np.asarray(self.directions, dtype=np.float64))
        self.pixel_ids = np.atleast_1d(np.asarray(self.pixel_ids, dtype=np.int64))
        if self.origins.shape != self.directions.shape:
            raise ValueError("origins and directions must have matching shapes")
        if self.origins.shape[0] != self.pixel_ids.shape[0]:
            raise ValueError("pixel_ids length must match ray count")

    def __len__(self) -> int:
        return self.origins.shape[0]

    def select(self, mask_or_idx) -> "RayBundle":
        """Sub-bundle selected by boolean mask or index array."""
        return RayBundle(
            origins=self.origins[mask_or_idx],
            directions=self.directions[mask_or_idx],
            pixel_ids=self.pixel_ids[mask_or_idx],
        )


def pixel_directions(camera: Camera, pixel_ids: np.ndarray) -> np.ndarray:
    """Unit world-space directions through the given flat pixel indices."""
    pixel_ids = np.asarray(pixel_ids, dtype=np.int64)
    if pixel_ids.size and (pixel_ids.min() < 0 or pixel_ids.max() >= camera.n_pixels):
        raise ValueError("pixel id out of range")
    ys, xs = np.divmod(pixel_ids, camera.width)
    # Camera-space direction through the pixel center (NeRF convention:
    # x right, y up, looking down -z).
    cam_dirs = np.stack(
        [
            (xs + 0.5 - camera.width / 2.0) / camera.focal,
            -(ys + 0.5 - camera.height / 2.0) / camera.focal,
            -np.ones_like(xs, dtype=np.float64),
        ],
        axis=-1,
    )
    world_dirs = cam_dirs @ camera.c2w[:3, :3].T
    world_dirs /= np.linalg.norm(world_dirs, axis=-1, keepdims=True)
    return world_dirs


def generate_rays(camera: Camera, pixel_ids: np.ndarray = None) -> RayBundle:
    """Rays for the given pixels (default: every pixel, row-major)."""
    if pixel_ids is None:
        pixel_ids = np.arange(camera.n_pixels, dtype=np.int64)
    else:
        pixel_ids = np.asarray(pixel_ids, dtype=np.int64)
    directions = pixel_directions(camera, pixel_ids)
    origins = np.broadcast_to(camera.origin, directions.shape).copy()
    return RayBundle(origins=origins, directions=directions, pixel_ids=pixel_ids)


def sample_training_rays(
    cameras: list,
    images: np.ndarray,
    batch_size: int,
    rng: np.random.Generator,
) -> tuple:
    """Random training rays plus their ground-truth colors.

    Parameters
    ----------
    cameras:
        List of :class:`Camera`, one per training image.
    images:
        ``(n_views, h, w, 3)`` float array in [0, 1].
    batch_size:
        Number of rays to draw (uniform over all pixels of all views).

    Returns
    -------
    (RayBundle, colors):
        The rays and their ``(batch_size, 3)`` supervision colors.
    """
    if len(cameras) != images.shape[0]:
        raise ValueError("one camera per image required")
    n_views = len(cameras)
    h, w = images.shape[1], images.shape[2]
    view_ids = rng.integers(0, n_views, size=batch_size)
    pixel_ids = rng.integers(0, h * w, size=batch_size)
    origins = np.empty((batch_size, 3))
    directions = np.empty((batch_size, 3))
    colors = np.empty((batch_size, 3))
    for view in np.unique(view_ids):
        mask = view_ids == view
        pix = pixel_ids[mask]
        bundle = generate_rays(cameras[view], pix)
        origins[mask] = bundle.origins
        directions[mask] = bundle.directions
        colors[mask] = images[view].reshape(-1, 3)[pix]
    rays = RayBundle(origins=origins, directions=directions, pixel_ids=pixel_ids)
    return rays, colors
