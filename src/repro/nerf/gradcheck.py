"""Gradient verification utilities.

Everything in :mod:`repro.nerf` backpropagates by hand, so this module
provides the finite-difference checker the test suite uses — exposed as
public API so downstream users extending the field (new encodings, new
heads) can validate their gradients the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class GradCheckReport:
    """Outcome of one finite-difference sweep.

    A check fails when ``|analytic - numeric| > atol + rtol * scale``
    with ``scale = max(|analytic|, |numeric|)`` — the usual allclose
    criterion, robust across gradient magnitudes.
    """

    checked: int
    failures: int
    max_abs_error: float
    max_rel_error: float
    worst_parameter: str

    @property
    def passed(self) -> bool:
        return self.failures == 0


def check_model_gradients(
    model,
    n_points: int = 6,
    entries_per_parameter: int = 2,
    eps: float = 1e-6,
    atol: float = 1e-6,
    rtol: float = 1e-3,
    seed: int = 0,
) -> GradCheckReport:
    """Finite-difference check of a radiance-field model's backward pass.

    Works with any object exposing the
    :class:`~repro.nerf.model.InstantNGPModel` contract:
    ``forward(positions, directions) -> (sigma, rgb, cache)``,
    ``backward(grad_sigma, grad_rgb, cache) -> {name: grad}``, and
    ``parameters() -> {name: array}``.
    """
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.05, 0.95, (n_points, 3))
    dirs = rng.normal(size=(n_points, 3))
    dirs /= np.linalg.norm(dirs, axis=-1, keepdims=True)
    sigma, rgb, cache = model.forward(points, dirs)
    g_sigma = rng.normal(size=sigma.shape)
    g_rgb = rng.normal(size=rgb.shape)
    grads = model.backward(g_sigma, g_rgb, cache)

    def loss() -> float:
        s, c, _ = model.forward(points, dirs)
        return float((s * g_sigma).sum() + (c * g_rgb).sum())

    params = model.parameters()
    checked = 0
    failures = 0
    max_abs = 0.0
    max_rel = 0.0
    worst = ""
    for name, grad in grads.items():
        p = params[name]
        flat_grad = np.asarray(grad).reshape(-1)
        flat_p = p.reshape(-1)
        # Prefer entries with non-trivial analytic gradient; fall back to
        # arbitrary ones for all-zero gradients (still a valid check).
        order = np.argsort(-np.abs(flat_grad))
        picks = order[:entries_per_parameter]
        for idx in picks:
            original = flat_p[idx]
            flat_p[idx] = original + eps
            up = loss()
            flat_p[idx] = original - eps
            down = loss()
            flat_p[idx] = original
            numeric = (up - down) / (2 * eps)
            analytic = flat_grad[idx]
            abs_err = abs(analytic - numeric)
            scale = max(abs(numeric), abs(analytic))
            rel_err = abs_err / max(scale, 1e-8)
            checked += 1
            if abs_err > atol + rtol * scale:
                failures += 1
                worst = name
            max_abs = max(max_abs, abs_err)
            if abs_err > 1e-7:
                max_rel = max(max_rel, rel_err)
    return GradCheckReport(
        checked=checked,
        failures=failures,
        max_abs_error=max_abs,
        max_rel_error=max_rel,
        worst_parameter=worst,
    )
