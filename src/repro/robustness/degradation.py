"""Graceful-degradation scheduling and reporting.

When a chiplet dies, the Level-1 (MoE) tiling makes recovery a pure
scheduling problem: every expert is a *complete* pipeline gated by its
own occupancy grid, so a surviving chip can run a dead chip's expert
serially after its own — no weights are resident anywhere else, and the
I/O module's fusion adder is indifferent to which link a partial pixel
arrived on.  :func:`plan_remap` implements the greedy least-loaded
assignment :class:`repro.sim.multichip.MultiChipSystem` uses, and
:func:`format_degradation` renders the ``robustness.*`` telemetry
metrics a fault run records into the degradation report the
``--faults`` runner prints.
"""

from __future__ import annotations


def plan_remap(n_chips: int, dead_chips, loads) -> dict:
    """Assign every expert to a surviving chip: ``{chip: [expert, ...]}``.

    Each surviving chip keeps its own expert; dead chips' experts are
    handed to the least-loaded survivor, heaviest orphan first (greedy
    LPT, the same policy the paper's dispatch scheduler uses for ray
    jobs).  ``loads[i]`` is expert *i*'s workload proxy (kept samples).
    Raises :class:`ValueError` when no chip survives or a dead index is
    out of range.
    """
    dead = sorted(set(int(c) for c in dead_chips))
    if any(c < 0 or c >= n_chips for c in dead):
        raise ValueError(f"dead chip index out of range for {n_chips} chips: {dead}")
    survivors = [c for c in range(n_chips) if c not in dead]
    if not survivors:
        raise ValueError("all chiplets dead: nothing left to remap onto")
    if len(loads) != n_chips:
        raise ValueError("one load entry per expert required")
    assignment = {c: [c] for c in survivors}
    total = {c: float(loads[c]) for c in survivors}
    for expert in sorted(dead, key=lambda c: float(loads[c]), reverse=True):
        target = min(survivors, key=lambda c: (total[c], c))
        assignment[target].append(expert)
        total[target] += float(loads[expert])
    return assignment


#: Metric names the degradation report knows how to narrate, in display
#: order: (metric key, kind, human template).
_REPORT_LINES = (
    ("robustness.chiplets.dead", "gauge", "dead chiplets: {v:.0f}"),
    ("robustness.chiplets.survivors", "gauge", "surviving chiplets: {v:.0f}"),
    (
        "robustness.chiplets.remapped_experts",
        "gauge",
        "experts remapped onto survivors: {v:.0f}",
    ),
    (
        "robustness.chiplets.dropped_experts",
        "gauge",
        "experts dropped from the fused render: {v:.0f}",
    ),
    (
        "robustness.remap.latency_cost",
        "gauge",
        "latency cost vs healthy board: {v:.2f}x",
    ),
    (
        "robustness.degraded.psnr_drop_db",
        "gauge",
        "PSNR cost of degraded render: {v:.2f} dB",
    ),
    (
        "robustness.trace.corrupted_entries",
        "counter",
        "workload-trace entries corrupted: {v:.0f}",
    ),
    (
        "robustness.trace.scrubbed_entries",
        "counter",
        "corrupted trace entries scrubbed before simulation: {v:.0f}",
    ),
    (
        "robustness.render.nonfinite_clamped",
        "counter",
        "non-finite pixels clamped to background: {v:.0f}",
    ),
    (
        "robustness.sram.hash_table_flips",
        "counter",
        "SRAM bit flips injected into hash tables: {v:.0f}",
    ),
    (
        "robustness.sram.mlp_flips",
        "counter",
        "SRAM bit flips injected into MLP weights: {v:.0f}",
    ),
    ("robustness.watchdog.rollbacks", "counter", "watchdog rollbacks: {v:.0f}"),
)


def format_degradation(snapshot: dict) -> str:
    """Render a metrics snapshot's ``robustness.*`` entries as a report.

    ``snapshot`` is :meth:`repro.telemetry.metrics.MetricsRegistry.snapshot`
    output.  Produces the ``degradation report`` block the ``--faults``
    runner prints (and CI greps for); says so explicitly when the active
    plan fired no fault.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    lines = ["degradation report", "-" * len("degradation report")]
    found = False
    for name, kind, template in _REPORT_LINES:
        source = counters if kind == "counter" else gauges
        if name not in source:
            continue
        lines.append("  " + template.format(v=float(source[name])))
        found = True
    leftovers = sorted(
        set(n for n in list(counters) + list(gauges) if n.startswith("robustness."))
        - {name for name, _, _ in _REPORT_LINES}
    )
    for name in leftovers:
        value = counters.get(name, gauges.get(name))
        lines.append(f"  {name} = {float(value):g}")
        found = True
    if not found:
        lines.append("  no faults fired (plan active, but nothing was injected)")
    return "\n".join(lines)
