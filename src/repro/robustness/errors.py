"""Structured divergence reporting shared by the trainer and the watchdog.

This module is imported from the ``repro.nerf`` hot paths, so it must
stay dependency-free (stdlib only): the trainer raises
:class:`DivergenceError` when a training step goes non-finite and nobody
is subscribed to handle it, and :class:`DivergenceEvent` is the payload
both the exception and the ``on_divergence`` telemetry hook carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DivergenceEvent:
    """One detected training anomaly.

    ``reason`` is one of:

    * ``"non_finite_loss"`` — the batch loss came out NaN/inf; the
      optimizer step was *skipped*, so the model is exactly as it was
      before the step (nothing was poisoned).
    * ``"gradient_explosion"`` — the gradient norm exceeded the
      configured threshold (or went non-finite); the step was skipped.
    * ``"degenerate_batch"`` — ray marching produced zero samples (all
      empty space); the step was skipped.  Benign, but surfaced so a
      long run of them can be diagnosed instead of silently recorded
      as NaN losses.
    """

    iteration: int
    reason: str
    loss: float = float("nan")
    grad_norm: float = None
    detail: str = ""

    def describe(self) -> str:
        """Human-readable one-liner for logs and exception messages."""
        parts = [f"iteration {self.iteration}: {self.reason}"]
        if self.loss == self.loss:  # finite or inf, not NaN
            parts.append(f"loss={self.loss!r}")
        if self.grad_norm is not None:
            parts.append(f"grad_norm={self.grad_norm!r}")
        if self.detail:
            parts.append(self.detail)
        return ", ".join(parts)


class DivergenceError(RuntimeError):
    """A training step diverged and no recovery handler was installed.

    Raised by :meth:`repro.nerf.trainer.Trainer.train_step` when the loss
    or gradients go non-finite and no ``on_divergence`` subscriber (for
    example a :class:`repro.robustness.watchdog.DivergenceWatchdog`)
    is registered to roll the run back.  The offending step never
    reaches the optimizer, so the model the caller holds is still the
    last good one.
    """

    def __init__(self, event: DivergenceEvent):
        super().__init__(event.describe())
        self.event = event


class FaultConfigError(ValueError):
    """A :class:`repro.robustness.faults.FaultPlan` failed validation."""


@dataclass
class FaultLog:
    """Accumulated record of the faults a plan actually fired.

    Injection sites append human-readable entries; the runner's
    degradation report prints them so a fault run documents itself.
    """

    entries: list = field(default_factory=list)

    def record(self, site: str, description: str) -> None:
        """Append one fired-fault entry."""
        self.entries.append({"site": site, "description": description})

    def __len__(self) -> int:
        return len(self.entries)
