"""Fault plans: deterministic, seedable fault-injection configuration.

A :class:`FaultPlan` bundles every fault model the robustness subsystem
knows how to inject — SRAM soft errors in the model's weight stores,
dead chiplets and degraded inter-chip links in the multi-chip simulator,
corrupted workload-trace entries, and worker churn in the render fleet
(crashes, stalls, slow-degrades, dropped replies) — plus the training
watchdog's recovery policy.  Plans are frozen dataclasses with a canonical JSON
form, so a degradation curve is reproducible from a checked-in
``plan.json`` artifact (``fusion3d-experiments run NAME --faults
plan.json``).

Determinism: every injection site derives its generator from
:meth:`FaultPlan.rng` with a site-specific salt, so two runs of the same
plan flip the same bits in the same entries regardless of experiment
order or process count.

Activation mirrors :mod:`repro.parallel.cache`: a process-global plan is
installed with :func:`activate` / :func:`plan_scope`, and the
instrumented layers consult :func:`get_active`, which returns ``None``
both when no plan is installed *and* when the installed plan is empty.
That single gate is what makes the "faults disabled == bit-identical"
guarantee structural: an empty plan is indistinguishable from no plan at
every injection site.
"""

from __future__ import annotations

import json
import zlib
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, fields

import numpy as np

from .errors import FaultConfigError, FaultLog


@dataclass(frozen=True)
class SramFaultConfig:
    """SRAM soft-error model: bit flips in the on-chip weight stores.

    Hash-table entries live in the fp16 feature SRAM, so their flips are
    applied in the IEEE-754 half-precision bit pattern; MLP weights are
    stored INT8 (the paper's mixed-precision datapath), so their flips
    are applied to the fixed-point code words of
    :func:`repro.nerf.quantization.quantize_int8_fixed`.
    """

    #: Bit flips to inject into hash-table entries (fp16 bit pattern).
    hash_table_bit_flips: int = 0
    #: Bit flips to inject into MLP weights (INT8 fixed-point codes).
    mlp_bit_flips: int = 0
    #: Fixed-point step of the INT8 weight store (Q3.4 by default).
    quant_step: float = 1.0 / 16.0

    def __post_init__(self):
        if self.hash_table_bit_flips < 0 or self.mlp_bit_flips < 0:
            raise FaultConfigError("bit-flip counts must be non-negative")
        if self.quant_step <= 0:
            raise FaultConfigError("quant_step must be positive")

    @property
    def is_empty(self) -> bool:
        """True when this config injects nothing."""
        return self.hash_table_bit_flips == 0 and self.mlp_bit_flips == 0


@dataclass(frozen=True)
class ChipletFaultConfig:
    """Dead chiplets and degraded inter-chip links.

    ``policy`` selects the graceful-degradation response of
    :class:`repro.sim.multichip.MultiChipSystem`:

    * ``"remap"`` — a dead chip's MoE expert is rescheduled onto the
      least-loaded surviving chip (latency cost, no quality cost);
    * ``"drop"`` — the dead chip's expert is simply lost from the fused
      render (quality cost, no latency cost).
    """

    #: Indices of chips that are dead (empty = all healthy).
    dead_chips: tuple = ()
    #: Multiplier on surviving chip-link bandwidth (1.0 = undegraded).
    link_bandwidth_factor: float = 1.0
    #: ``"remap"`` or ``"drop"`` (see class docstring).
    policy: str = "remap"

    def __post_init__(self):
        dead = tuple(int(c) for c in self.dead_chips)
        if len(set(dead)) != len(dead):
            raise FaultConfigError("dead_chips must be unique")
        if any(c < 0 for c in dead):
            raise FaultConfigError("dead_chips must be non-negative indices")
        object.__setattr__(self, "dead_chips", dead)
        if not 0.0 < self.link_bandwidth_factor <= 1.0:
            raise FaultConfigError("link_bandwidth_factor must be in (0, 1]")
        if self.policy not in ("remap", "drop"):
            raise FaultConfigError(f"unknown degradation policy {self.policy!r}")

    @property
    def is_empty(self) -> bool:
        """True when no chiplet or link fault is configured."""
        return not self.dead_chips and self.link_bandwidth_factor == 1.0


@dataclass(frozen=True)
class TraceFaultConfig:
    """Corruption of workload-trace entries.

    ``mode="nan"`` poisons a fraction of pair durations with NaN (the
    clamp-and-flag path must scrub them); ``mode="spike"`` multiplies
    them by ``spike_factor`` (the scheduler must absorb the latency).
    """

    #: Fraction of pair-duration entries to corrupt, in [0, 1].
    corrupt_fraction: float = 0.0
    #: ``"nan"`` or ``"spike"``.
    mode: str = "nan"
    #: Duration multiplier for ``"spike"`` corruption.
    spike_factor: float = 64.0

    def __post_init__(self):
        if not 0.0 <= self.corrupt_fraction <= 1.0:
            raise FaultConfigError("corrupt_fraction must be in [0, 1]")
        if self.mode not in ("nan", "spike"):
            raise FaultConfigError(f"unknown trace corruption mode {self.mode!r}")
        if self.spike_factor <= 0:
            raise FaultConfigError("spike_factor must be positive")

    @property
    def is_empty(self) -> bool:
        """True when no trace corruption is configured."""
        return self.corrupt_fraction == 0.0


@dataclass(frozen=True)
class FleetFaultConfig:
    """Worker-level churn injected into the render fleet.

    These are the fault sites of :mod:`repro.fleet`: a worker can crash
    (permanently dead — triggers shard rebalance), stall (stops
    responding for a window, then recovers), or slow-degrade (service
    times inflate by a factor from some instant on).  Independently, a
    fraction of RPC replies can be dropped — the worker does the work
    but the controller never hears back, exercising the retry/hedge
    path.  All times are virtual fleet-clock seconds; all draws derive
    from :meth:`FaultPlan.rng`, so a churn scenario replays bit-exactly.
    """

    #: ``(worker_index, at_s)`` pairs: worker dies at ``at_s``.
    crashes: tuple = ()
    #: ``(worker_index, at_s, duration_s)``: worker goes silent for a window.
    stalls: tuple = ()
    #: ``(worker_index, at_s, factor)``: service time scales by ``factor``.
    slowdowns: tuple = ()
    #: Fraction of RPC replies silently dropped, in [0, 1].
    drop_reply_fraction: float = 0.0

    def __post_init__(self):
        crashes = tuple(
            (int(w), float(t)) for w, t in (tuple(e) for e in self.crashes)
        )
        stalls = tuple(
            (int(w), float(t), float(d))
            for w, t, d in (tuple(e) for e in self.stalls)
        )
        slowdowns = tuple(
            (int(w), float(t), float(f))
            for w, t, f in (tuple(e) for e in self.slowdowns)
        )
        if any(w < 0 or t < 0 for w, t in crashes):
            raise FaultConfigError("crashes need worker >= 0 and at_s >= 0")
        if len({w for w, _ in crashes}) != len(crashes):
            raise FaultConfigError("at most one crash per worker")
        if any(w < 0 or t < 0 or d <= 0 for w, t, d in stalls):
            raise FaultConfigError(
                "stalls need worker >= 0, at_s >= 0 and duration_s > 0"
            )
        if any(w < 0 or t < 0 or f < 1.0 for w, t, f in slowdowns):
            raise FaultConfigError(
                "slowdowns need worker >= 0, at_s >= 0 and factor >= 1"
            )
        object.__setattr__(self, "crashes", crashes)
        object.__setattr__(self, "stalls", stalls)
        object.__setattr__(self, "slowdowns", slowdowns)
        if not 0.0 <= self.drop_reply_fraction <= 1.0:
            raise FaultConfigError("drop_reply_fraction must be in [0, 1]")

    @property
    def is_empty(self) -> bool:
        """True when no fleet churn is configured."""
        return (
            not self.crashes
            and not self.stalls
            and not self.slowdowns
            and self.drop_reply_fraction == 0.0
        )


@dataclass(frozen=True)
class WatchdogConfig:
    """Recovery policy of the training divergence watchdog.

    This is *recovery* configuration, not an injection, so it does not
    count toward a plan's emptiness — an otherwise-empty plan carrying a
    watchdog config still leaves every numerical result bit-identical.
    """

    #: Take a parameter snapshot every this many finite iterations.
    snapshot_interval: int = 25
    #: Learning-rate multiplier applied at each rollback.
    lr_backoff: float = 0.5
    #: Gradient-norm divergence threshold (0 = loss-based detection only).
    grad_norm_threshold: float = 0.0
    #: Rollbacks allowed before the watchdog gives up and re-raises.
    max_rollbacks: int = 8

    def __post_init__(self):
        if self.snapshot_interval < 1:
            raise FaultConfigError("snapshot_interval must be >= 1")
        if not 0.0 < self.lr_backoff <= 1.0:
            raise FaultConfigError("lr_backoff must be in (0, 1]")
        if self.grad_norm_threshold < 0:
            raise FaultConfigError("grad_norm_threshold must be non-negative")
        if self.max_rollbacks < 0:
            raise FaultConfigError("max_rollbacks must be non-negative")


_SECTION_TYPES = {
    "sram": SramFaultConfig,
    "chiplets": ChipletFaultConfig,
    "trace": TraceFaultConfig,
    "fleet": FleetFaultConfig,
    "watchdog": WatchdogConfig,
}


@dataclass(frozen=True)
class FaultPlan:
    """One composable fault-injection configuration (see module doc)."""

    seed: int = 0
    sram: SramFaultConfig = field(default_factory=SramFaultConfig)
    chiplets: ChipletFaultConfig = field(default_factory=ChipletFaultConfig)
    trace: TraceFaultConfig = field(default_factory=TraceFaultConfig)
    fleet: FleetFaultConfig = field(default_factory=FleetFaultConfig)
    watchdog: WatchdogConfig = field(default_factory=WatchdogConfig)

    @property
    def is_empty(self) -> bool:
        """True when the plan injects no fault at all.

        The watchdog section is recovery policy, not an injection, so it
        is deliberately excluded: see :class:`WatchdogConfig`.
        """
        return (
            self.sram.is_empty
            and self.chiplets.is_empty
            and self.trace.is_empty
            and self.fleet.is_empty
        )

    @classmethod
    def empty(cls) -> "FaultPlan":
        """A plan that injects nothing (bit-identical to no plan)."""
        return cls()

    def rng(self, site: str) -> np.random.Generator:
        """Deterministic per-site generator: seed + CRC32 of ``site``.

        Two runs of the same plan hand the same stream to the same
        injection site, independent of experiment order.
        """
        return np.random.default_rng(
            np.random.SeedSequence([self.seed, zlib.crc32(site.encode("utf-8"))])
        )

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (the JSON schema of ``--faults`` plan files)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Build a plan from a (possibly partial) plain dict.

        Missing sections take their defaults; unknown keys raise
        :class:`~repro.robustness.errors.FaultConfigError` so a typo in a
        plan file cannot silently disable a fault.
        """
        if not isinstance(data, dict):
            raise FaultConfigError("fault plan must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FaultConfigError(f"unknown fault-plan keys {sorted(unknown)}")
        kwargs = {}
        if "seed" in data:
            kwargs["seed"] = int(data["seed"])
        for name, section_cls in _SECTION_TYPES.items():
            if name not in data:
                continue
            section = data[name]
            if not isinstance(section, dict):
                raise FaultConfigError(f"fault-plan section {name!r} must be an object")
            section_known = {f.name for f in fields(section_cls)}
            section_unknown = set(section) - section_known
            if section_unknown:
                raise FaultConfigError(
                    f"unknown keys {sorted(section_unknown)} in fault-plan "
                    f"section {name!r}"
                )
            try:
                kwargs[name] = section_cls(**section)
            except TypeError as exc:
                raise FaultConfigError(f"bad fault-plan section {name!r}: {exc}")
        return cls(**kwargs)

    def to_json(self) -> str:
        """Canonical JSON encoding of the plan."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from its JSON encoding."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultConfigError(f"fault plan is not valid JSON: {exc}")
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        """Load a plan from a ``--faults`` JSON file."""
        with open(path, "r") as fh:
            return cls.from_json(fh.read())

    def to_file(self, path) -> None:
        """Write the plan's canonical JSON to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")


# ----------------------------------------------------------------------
# process-global activation (mirrors repro.parallel.cache)

_active_plan = None
_active_log = None


def activate(plan: FaultPlan) -> None:
    """Install ``plan`` as this process's active fault plan."""
    global _active_plan, _active_log
    if plan is not None and not isinstance(plan, FaultPlan):
        raise FaultConfigError("activate() expects a FaultPlan or None")
    _active_plan = plan
    _active_log = FaultLog() if plan is not None else None


def deactivate() -> None:
    """Remove the active fault plan (faults off — the default)."""
    global _active_plan, _active_log
    _active_plan = None
    _active_log = None


def get_active() -> FaultPlan:
    """The active *non-empty* plan, or ``None``.

    Returns ``None`` for an activated empty plan too: this is the single
    gate every injection site consults, so "empty plan" and "no plan"
    are the same code path by construction — the structural half of the
    bit-identity guarantee.
    """
    if _active_plan is None or _active_plan.is_empty:
        return None
    return _active_plan


def get_plan() -> FaultPlan:
    """The active plan exactly as installed (empty plans included)."""
    return _active_plan


def get_log() -> FaultLog:
    """The active plan's fault log, or ``None`` when no plan is active."""
    return _active_log


@contextmanager
def plan_scope(plan: FaultPlan):
    """Scoped activation: installs ``plan``, restores the previous one.

    Yields the plan, so sweeps can nest scopes to vary one knob at a
    time without clobbering an outer ``--faults`` activation.
    """
    global _active_plan, _active_log
    previous_plan, previous_log = _active_plan, _active_log
    activate(plan)
    try:
        yield plan
    finally:
        _active_plan, _active_log = previous_plan, previous_log
