"""Training divergence watchdog: snapshot, roll back, back off, resume.

Instant-3D-class accelerators train on a device power budget that leaves
no room for wasted runs: a diverged training job is minutes of battery
spent producing NaN.  The watchdog makes divergence a recoverable event
instead of a dead run:

* it subscribes to the trainer's ``on_iteration`` hook and snapshots the
  model (parameters, Adam state, occupancy grid) every
  ``snapshot_interval`` finite iterations — optionally spooling the
  parameters through :mod:`repro.nerf.checkpoint`, so the last good
  state is also a durable on-disk artifact;
* it subscribes to ``on_divergence`` (emitted when a step's loss or
  gradient norm goes non-finite — the step never reaches the optimizer,
  see :mod:`repro.nerf.trainer`); on each event it rolls the trainer
  back to the last good snapshot, multiplies the learning rate by
  ``lr_backoff``, records the event in telemetry metrics
  (``robustness.watchdog.*``), and lets training resume;
* after ``max_rollbacks`` recoveries it gives up and re-raises
  :class:`~repro.robustness.errors.DivergenceError`, so a structurally
  broken run still fails loudly.

Use it scoped::

    with telemetry.session():
        with DivergenceWatchdog(trainer, WatchdogConfig()) as watchdog:
            trainer.train(2000)
        print(watchdog.rollbacks, "rollbacks")

Hooks are registered on the telemetry session active at ``attach()``
time, matching how the trainer emits them.
"""

from __future__ import annotations

import os

from .. import telemetry
from .errors import DivergenceError
from .faults import WatchdogConfig

#: Filename of the durable snapshot inside ``snapshot_dir``.
SNAPSHOT_NAME = "watchdog-snapshot.npz"


class DivergenceWatchdog:
    """Rollback-and-backoff recovery for a :class:`~repro.nerf.trainer.Trainer`."""

    def __init__(self, trainer, config: WatchdogConfig = None, snapshot_dir=None):
        self.trainer = trainer
        self.config = config if config is not None else WatchdogConfig()
        self.snapshot_dir = snapshot_dir
        self.rollbacks = 0
        #: One dict per recovery: iteration, reason, restored iteration, lr.
        self.events = []
        self._snapshot = None
        self._hooks = None
        self._previous_threshold = None

    # -- lifecycle -----------------------------------------------------

    def attach(self) -> "DivergenceWatchdog":
        """Subscribe to the active session's hooks; take the first snapshot."""
        if self._hooks is not None:
            raise RuntimeError("watchdog already attached")
        self._hooks = telemetry.get_session().hooks
        self._hooks.register(telemetry.ON_ITERATION, self._on_iteration)
        self._hooks.register(telemetry.ON_DIVERGENCE, self._on_divergence)
        self._previous_threshold = self.trainer.grad_norm_threshold
        if self.config.grad_norm_threshold > 0:
            self.trainer.grad_norm_threshold = self.config.grad_norm_threshold
        self.take_snapshot()
        return self

    def detach(self) -> None:
        """Unsubscribe; safe to call twice."""
        if self._hooks is None:
            return
        self._hooks.unregister(telemetry.ON_ITERATION, self._on_iteration)
        self._hooks.unregister(telemetry.ON_DIVERGENCE, self._on_divergence)
        self._hooks = None
        self.trainer.grad_norm_threshold = self._previous_threshold

    def __enter__(self) -> "DivergenceWatchdog":
        return self.attach()

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # -- snapshotting --------------------------------------------------

    def take_snapshot(self) -> None:
        """Capture the trainer's recoverable state as the last-good point."""
        trainer = self.trainer
        optimizer = trainer.optimizer
        self._snapshot = {
            "iteration": trainer.state.iteration,
            "params": {k: v.copy() for k, v in trainer.model.parameters().items()},
            "adam_m": {k: v.copy() for k, v in optimizer._m.items()},
            "adam_v": {k: v.copy() for k, v in optimizer._v.items()},
            "adam_steps": optimizer.step_count,
            "occupancy_ema": trainer.occupancy.density_ema.copy(),
            "occupancy_mask": trainer.occupancy.mask.copy(),
        }
        if self.snapshot_dir is not None:
            from ..nerf import checkpoint

            os.makedirs(self.snapshot_dir, exist_ok=True)
            checkpoint.save_model(
                trainer.model, os.path.join(self.snapshot_dir, SNAPSHOT_NAME)
            )

    def rollback(self) -> int:
        """Restore the last snapshot; returns the restored iteration.

        Parameter restoration is *in place* (the optimizer and the model
        alias the same arrays; rebinding them would silently detach the
        optimizer's state from the model).  With a ``snapshot_dir``, the
        parameters are read back through :mod:`repro.nerf.checkpoint` —
        the durable artifact is the source of truth it claims to be.
        """
        if self._snapshot is None:
            raise RuntimeError("no snapshot to roll back to")
        trainer = self.trainer
        snap = self._snapshot
        saved_params = snap["params"]
        if self.snapshot_dir is not None:
            from ..nerf import checkpoint

            restored = checkpoint.load_model(
                os.path.join(self.snapshot_dir, SNAPSHOT_NAME)
            )
            saved_params = restored.parameters()
        live = trainer.model.parameters()
        for name, value in saved_params.items():
            live[name][...] = value
        optimizer = trainer.optimizer
        for name, value in snap["adam_m"].items():
            optimizer._m[name][...] = value
        for name, value in snap["adam_v"].items():
            optimizer._v[name][...] = value
        optimizer.step_count = snap["adam_steps"]
        trainer.occupancy.density_ema[...] = snap["occupancy_ema"]
        trainer.occupancy.mask[...] = snap["occupancy_mask"]
        return snap["iteration"]

    # -- hook handlers -------------------------------------------------

    def _on_iteration(self, trainer=None, loss=None, **_) -> None:
        """Periodic snapshot on finite iterations of *our* trainer."""
        if trainer is not self.trainer:
            return
        if loss is None or loss != loss:  # NaN guard: never snapshot poison
            return
        if trainer.state.iteration % self.config.snapshot_interval == 0:
            self.take_snapshot()

    def _on_divergence(self, trainer=None, event=None, **_):
        """Recover from a divergence event, or give up after the budget.

        Returns ``False`` (explicitly declining the event, see
        :meth:`~repro.telemetry.hooks.HookDispatcher.emit`) for trainers
        this watchdog does not guard, so their unrecovered divergence
        still raises.
        """
        if trainer is not self.trainer:
            return False
        if event is not None and event.reason == "degenerate_batch":
            return  # benign skip: nothing was poisoned, nothing to roll back
        if self.rollbacks >= self.config.max_rollbacks:
            raise DivergenceError(event)
        restored = self.rollback()
        optimizer = self.trainer.optimizer
        optimizer.set_lr(optimizer.lr * self.config.lr_backoff)
        self.rollbacks += 1
        self.events.append(
            {
                "iteration": event.iteration if event is not None else None,
                "reason": event.reason if event is not None else "unknown",
                "restored_iteration": restored,
                "lr_after": optimizer.lr,
            }
        )
        tel = telemetry.get_session()
        if tel.enabled:
            tel.metrics.counter("robustness.watchdog.rollbacks").inc()
            tel.metrics.gauge("robustness.watchdog.lr").set(optimizer.lr)
            tel.metrics.gauge("robustness.watchdog.restored_iteration").set(
                float(restored)
            )
