"""Jittered exponential backoff with a deadline budget.

Every retry loop in the repo wants the same three properties: delays
that grow geometrically (so a persistently failing dependency is not
hammered), jitter (so independent retriers do not synchronize into
retry storms), and a hard budget (so retrying never outlives the
caller's deadline).  :class:`BackoffPolicy` packages them once;
:mod:`repro.parallel.engine` uses it for crashed-experiment retries and
the fleet controller (:mod:`repro.fleet`) for its per-RPC retry
schedule.

Determinism: jitter draws come from a caller-supplied seeded
:class:`numpy.random.Generator`, so a retry schedule is reproducible
bit-for-bit from the seed — the property the fleet's chaos experiments
rely on.  With ``rng=None`` the nominal (un-jittered) delay is used.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BackoffPolicy:
    """Retry schedule: capped exponential delays with symmetric jitter.

    The *k*-th retry (k = 1 for the first) nominally waits
    ``base_s * multiplier**(k - 1)`` seconds, capped at ``max_delay_s``;
    jitter scales that by a uniform draw from
    ``[1 - jitter, 1 + jitter]`` (mean-preserving).  ``max_retries``
    bounds how many retries :meth:`allows` permits; a ``deadline
    budget`` passed to :meth:`delay_s` additionally clips any delay to
    the time remaining.
    """

    #: Nominal delay of the first retry, seconds (0 = retry immediately).
    base_s: float = 0.05
    #: Geometric growth factor per retry.
    multiplier: float = 2.0
    #: Hard cap on one nominal delay, seconds.
    max_delay_s: float = 2.0
    #: Symmetric jitter fraction in [0, 1): delay scales by a uniform
    #: draw from ``[1 - jitter, 1 + jitter]``.
    jitter: float = 0.5
    #: Retries allowed after the initial attempt (0 = never retry).
    max_retries: int = 3

    def __post_init__(self):
        if self.base_s < 0:
            raise ValueError("base_s must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    def allows(self, retry: int) -> bool:
        """Whether retry number ``retry`` (1-based) is within budget."""
        if retry < 1:
            raise ValueError("retry numbers are 1-based")
        return retry <= self.max_retries

    def nominal_delay_s(self, retry: int) -> float:
        """Un-jittered delay of retry ``retry`` (1-based), capped."""
        if retry < 1:
            raise ValueError("retry numbers are 1-based")
        return min(
            self.base_s * self.multiplier ** (retry - 1), self.max_delay_s
        )

    def delay_s(self, retry: int, rng=None, budget_s: float = None) -> float:
        """Actual delay before retry ``retry``: jittered and budget-clipped.

        ``rng`` is a :class:`numpy.random.Generator` for the jitter draw
        (``None`` = no jitter, nominal delay).  ``budget_s`` is the time
        remaining until the caller's deadline; the returned delay never
        exceeds it (and is 0 when the budget is already spent — whether
        retrying at all still makes sense is :meth:`within_budget`'s
        question, not this one's).
        """
        delay = self.nominal_delay_s(retry)
        if rng is not None and self.jitter > 0.0 and delay > 0.0:
            span = 2.0 * self.jitter
            delay *= (1.0 - self.jitter) + span * float(rng.random())
        if budget_s is not None:
            delay = min(delay, max(budget_s, 0.0))
        return delay

    def within_budget(self, retry: int, budget_s: float = None) -> bool:
        """Whether retry ``retry`` is allowed *and* has budget left.

        A retry with zero or negative remaining ``budget_s`` is pointless
        — the work it schedules would land past the deadline — so it is
        refused even when :meth:`allows` would permit it.
        """
        if not self.allows(retry):
            return False
        return budget_s is None or budget_s > 0.0


#: Policy reproducing :mod:`repro.parallel.engine`'s historical behavior:
#: crashed jobs are resubmitted immediately (no sleep) and exactly once.
ENGINE_DEFAULT = BackoffPolicy(
    base_s=0.0, multiplier=1.0, max_delay_s=0.0, jitter=0.0, max_retries=1
)
