"""Deterministic fault injectors and the scrubbers that survive them.

Three fault models, matching the storage formats the hardware actually
uses (Sec. V):

* :func:`flip_fp16_bits` — SRAM soft errors in the fp16 feature SRAM
  (hash-table entries): the value is round-tripped through its IEEE-754
  half-precision bit pattern with ``n`` random bits flipped.
* :func:`flip_quantized_bits` — soft errors in the INT8 weight store:
  the value is quantized to its fixed-point code word
  (:func:`repro.nerf.quantization.quantize_int8_fixed` format), ``n``
  random code bits are flipped, and the code is dequantized.
* :func:`inject_trace_faults` — corrupted workload-trace entries: NaN
  poison or duration spikes in a trace's pair durations.

The matching graceful-degradation half: :func:`scrub_trace` clamps
non-finite/negative durations to zero (flagging the count) before a
corrupted trace reaches the cycle simulator, and :func:`scrub_colors`
clamps non-finite rendered pixels to the background instead of letting
NaN propagate into PSNR.

Every injector takes an explicit :class:`numpy.random.Generator` —
derive it from :meth:`repro.robustness.faults.FaultPlan.rng` with a
site-specific salt so injections are reproducible.
"""

from __future__ import annotations

import numpy as np

from .faults import SramFaultConfig, TraceFaultConfig

#: Leaf parameter names stored in the fp16 feature SRAM (and hence
#: subject to fp16 flips): the ngp hash tables and the TensoRF
#: plane/line factor stores.
_FEATURE_STORE_NAMES = frozenset(
    {"hash_tables", "factor_planes", "factor_lines"}
)


def flip_fp16_bits(
    values: np.ndarray, n_flips: int, rng: np.random.Generator
) -> np.ndarray:
    """Return ``values`` with ``n_flips`` random fp16 bit flips applied.

    The array is first rounded to fp16 (the storage precision whose bits
    are flipped), so the result models exactly what a soft error in the
    feature SRAM would read back.  Flip targets (entry, bit) are drawn
    independently, so two flips can land on the same entry.
    """
    values = np.asarray(values, dtype=np.float64)
    if n_flips < 0:
        raise ValueError("n_flips must be non-negative")
    stored = values.astype(np.float16)
    if n_flips == 0 or stored.size == 0:
        return stored.astype(np.float64)
    bits = stored.reshape(-1).view(np.uint16).copy()
    entries = rng.integers(0, bits.size, size=n_flips)
    positions = rng.integers(0, 16, size=n_flips)
    for entry, position in zip(entries, positions):
        bits[entry] ^= np.uint16(1 << int(position))
    flipped = bits.view(np.float16).astype(np.float64).reshape(values.shape)
    return flipped


def flip_quantized_bits(
    values: np.ndarray,
    n_flips: int,
    rng: np.random.Generator,
    step: float = 1.0 / 16.0,
) -> np.ndarray:
    """Return ``values`` with ``n_flips`` bit flips in INT8 code space.

    Values are quantized to the fixed-point format of
    :func:`repro.nerf.quantization.quantize_int8_fixed` (two's-complement
    code words), random code bits are flipped — a bit-7 flip toggles the
    sign, the large-magnitude error real SRAM upsets produce — and the
    codes are dequantized back.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    if n_flips < 0:
        raise ValueError("n_flips must be non-negative")
    values = np.asarray(values, dtype=np.float64)
    codes = np.clip(np.round(values / step), -128, 127).astype(np.int8)
    if n_flips == 0 or codes.size == 0:
        return codes.astype(np.float64) * step
    raw = codes.reshape(-1).view(np.uint8).copy()
    entries = rng.integers(0, raw.size, size=n_flips)
    positions = rng.integers(0, 8, size=n_flips)
    for entry, position in zip(entries, positions):
        raw[entry] ^= np.uint8(1 << int(position))
    return raw.view(np.int8).astype(np.float64).reshape(values.shape) * step


def inject_model_faults(
    model, config: SramFaultConfig, rng: np.random.Generator
) -> dict:
    """Flip bits in a model's weight stores, in place.

    Feature-store parameters — ``hash_tables`` for the ``ngp`` renderer,
    ``factor_planes``/``factor_lines`` for ``tensorf``, possibly
    expert-prefixed — live in the fp16 feature SRAM and take fp16 flips;
    every other parameter (MLP weights and biases) takes INT8
    fixed-point flips.  The requested flip counts are spread over the
    matching tensors proportionally to their size.
    Returns ``{"hash_table_flips": n, "mlp_flips": n}`` actually applied.
    """
    params = model.parameters()
    hash_names = [
        n for n in params if n.split(".")[-1] in _FEATURE_STORE_NAMES
    ]
    mlp_names = [
        n for n in params if n.split(".")[-1] not in _FEATURE_STORE_NAMES
    ]
    applied = {"hash_table_flips": 0, "mlp_flips": 0}
    for names, total, kind in (
        (hash_names, config.hash_table_bit_flips, "hash"),
        (mlp_names, config.mlp_bit_flips, "mlp"),
    ):
        if total == 0 or not names:
            continue
        sizes = np.array([params[n].size for n in names], dtype=np.float64)
        targets = rng.choice(len(names), size=total, p=sizes / sizes.sum())
        counts = np.bincount(targets, minlength=len(names))
        for name, count in zip(names, counts):
            if count == 0:
                continue
            tensor = params[name]
            if kind == "hash":
                tensor[...] = flip_fp16_bits(tensor, int(count), rng)
                applied["hash_table_flips"] += int(count)
            else:
                tensor[...] = flip_quantized_bits(
                    tensor, int(count), rng, step=config.quant_step
                )
                applied["mlp_flips"] += int(count)
    return applied


def inject_trace_faults(trace, config: TraceFaultConfig, rng: np.random.Generator):
    """Return a corrupted copy of a workload trace.

    A ``corrupt_fraction`` of the trace's pair-duration entries are
    poisoned — NaN for ``mode="nan"``, multiplied by ``spike_factor``
    for ``mode="spike"``.  The input trace is never mutated (it may be
    shared with the on-disk trace cache).
    """
    from ..sim.trace import WorkloadTrace

    if config.corrupt_fraction <= 0:
        return trace
    flat = [d for pairs in trace.pair_durations for d in pairs]
    n_entries = len(flat)
    n_corrupt = int(round(config.corrupt_fraction * n_entries))
    durations = [list(pairs) for pairs in trace.pair_durations]
    if n_corrupt > 0 and n_entries > 0:
        targets = set(
            rng.choice(n_entries, size=min(n_corrupt, n_entries), replace=False)
            .tolist()
        )
        cursor = 0
        for pairs in durations:
            for j in range(len(pairs)):
                if cursor in targets:
                    if config.mode == "nan":
                        pairs[j] = float("nan")
                    else:
                        pairs[j] = pairs[j] * config.spike_factor
                cursor += 1
    return WorkloadTrace(
        n_rays=trace.n_rays,
        pair_durations=durations,
        n_samples=trace.n_samples,
        n_candidates=trace.n_candidates,
        vertex_corners=trace.vertex_corners,
        vertex_indices=trace.vertex_indices,
        samples_per_ray=trace.samples_per_ray,
        n_cells_visited=trace.n_cells_visited,
    )


def scrub_trace(trace):
    """Sanitize a trace for simulation: ``(clean_trace, n_scrubbed)``.

    Non-finite or negative pair durations — the signature of injected
    (or real) SRAM corruption in the trace buffers — are clamped to zero
    and counted.  Finite spikes are deliberately *not* clamped: their
    latency cost is the measurable degradation.  When nothing needs
    scrubbing the input trace is returned unchanged (no copy).
    """
    from ..sim.trace import WorkloadTrace

    n_scrubbed = 0
    durations = []
    for pairs in trace.pair_durations:
        clean = list(pairs)
        for j, duration in enumerate(clean):
            if not np.isfinite(duration) or duration < 0:
                clean[j] = 0.0
                n_scrubbed += 1
        durations.append(clean)
    if n_scrubbed == 0:
        return trace, 0
    per_ray = np.array([sum(p) for p in durations], dtype=np.float64)
    return (
        WorkloadTrace(
            n_rays=trace.n_rays,
            pair_durations=durations,
            n_samples=trace.n_samples,
            n_candidates=trace.n_candidates,
            vertex_corners=trace.vertex_corners,
            vertex_indices=trace.vertex_indices,
            samples_per_ray=per_ray,
            n_cells_visited=trace.n_cells_visited,
        ),
        n_scrubbed,
    )


def scrub_colors(colors: np.ndarray, background: float) -> tuple:
    """Clamp-and-flag non-finite rendered pixels: ``(colors, n_flagged)``.

    Any NaN/inf channel value is replaced by the background color so one
    corrupted sample degrades one pixel instead of poisoning the whole
    image (and every PSNR computed from it).  Returns the input array
    untouched when every value is finite.
    """
    colors = np.asarray(colors)
    bad = ~np.isfinite(colors)
    n_flagged = int(bad.sum())
    if n_flagged == 0:
        return colors, 0
    cleaned = colors.copy()
    cleaned[bad] = background
    return cleaned, n_flagged
