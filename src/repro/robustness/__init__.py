"""Fault injection, graceful degradation, and training recovery.

The robustness subsystem makes the reproduction survive the faults a
real multi-chiplet accelerator ships with: SRAM soft errors in the
weight stores, dead chiplets and degraded inter-chip links, corrupted
workload traces, and diverging training runs.  It has three halves:

* **injection** (:mod:`repro.robustness.faults`,
  :mod:`repro.robustness.injection`) — deterministic, seedable fault
  models behind a :class:`FaultPlan`; activated process-globally so the
  simulator/trainer layers stay fault-model agnostic;
* **degradation** (:mod:`repro.robustness.degradation`) — dead-chip
  expert remapping and the clamp-and-flag scrubbers, plus the
  degradation report the ``--faults`` runner prints;
* **recovery** (:mod:`repro.robustness.watchdog`) — the divergence
  watchdog that rolls training back to the last good snapshot and backs
  the learning rate off.

:mod:`repro.robustness.backoff` is the shared retry-pacing primitive
(jittered exponential backoff under a deadline budget) used by both the
parallel engine and the fleet controller.

With no plan active (or an empty plan), every instrumented code path is
bit-identical to the un-instrumented repo: :func:`get_active` is the
single gate, and it returns ``None`` for both cases.
"""

from .backoff import ENGINE_DEFAULT, BackoffPolicy
from .degradation import format_degradation, plan_remap
from .errors import DivergenceError, DivergenceEvent, FaultConfigError, FaultLog
from .faults import (
    ChipletFaultConfig,
    FaultPlan,
    FleetFaultConfig,
    SramFaultConfig,
    TraceFaultConfig,
    WatchdogConfig,
    activate,
    deactivate,
    get_active,
    get_log,
    get_plan,
    plan_scope,
)
from .injection import (
    flip_fp16_bits,
    flip_quantized_bits,
    inject_model_faults,
    inject_trace_faults,
    scrub_colors,
    scrub_trace,
)
from .watchdog import DivergenceWatchdog

__all__ = [
    "BackoffPolicy",
    "ChipletFaultConfig",
    "ENGINE_DEFAULT",
    "DivergenceError",
    "DivergenceEvent",
    "DivergenceWatchdog",
    "FaultConfigError",
    "FaultLog",
    "FaultPlan",
    "FleetFaultConfig",
    "SramFaultConfig",
    "TraceFaultConfig",
    "WatchdogConfig",
    "activate",
    "deactivate",
    "flip_fp16_bits",
    "flip_quantized_bits",
    "format_degradation",
    "get_active",
    "get_log",
    "get_plan",
    "inject_model_faults",
    "inject_trace_faults",
    "plan_remap",
    "plan_scope",
    "scrub_colors",
    "scrub_trace",
]
