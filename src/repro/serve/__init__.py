"""Real-time rendering service over the simulated Fusion-3D board.

The serve subsystem turns the reproduction into a request-driven
rendering service — the deployment story of the paper's second half
(sustained FPS under a latency budget) made concrete:

* :mod:`~repro.serve.registry` — named multi-scene store with refcounted
  hot-swap, LRU eviction under a memory budget, and checkpoint
  cold-start (occupancy grid restored without re-warmup);
* :mod:`~repro.serve.batching` / :mod:`~repro.serve.scheduler` — render
  requests sliced into fixed ray batches and coalesced across requests
  per scene under a max-batch/max-wait policy;
* :mod:`~repro.serve.admission` / :mod:`~repro.serve.slo` — deadline- and
  backpressure-aware admission with a shed-or-degrade ladder, and
  per-priority-class SLO attainment tracking;
* :mod:`~repro.serve.service` — the discrete-event loop tying them to
  the :class:`~repro.sim.multichip.MultiChipSystem` clock;
* :mod:`~repro.serve.loadgen` — open-loop Poisson and closed-loop
  drivers producing latency–throughput curves.
"""

from .admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    DEGRADE_NONE,
    DEGRADE_RESOLUTION,
    DEGRADE_SAMPLES,
)
from .batching import (
    DispatchBatch,
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    PRIORITY_STANDARD,
    RaySlice,
    RenderRequest,
)
from .loadgen import (
    LoadReport,
    build_demo_registry,
    demo_camera,
    poisson_arrivals,
    run_closed_loop,
    run_open_loop,
)
from .registry import (
    MemoryBudgetError,
    SceneHandle,
    SceneRegistry,
    SceneRegistryError,
    UnknownSceneError,
)
from .scheduler import BatchPolicy, DynamicRayBatchScheduler
from .service import RenderResponse, RenderService, ServiceConfig
from .slo import DEFAULT_TARGETS, SLOTarget, SLOTracker, format_slo_report

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "BatchPolicy",
    "DEFAULT_TARGETS",
    "DEGRADE_NONE",
    "DEGRADE_RESOLUTION",
    "DEGRADE_SAMPLES",
    "DispatchBatch",
    "DynamicRayBatchScheduler",
    "LoadReport",
    "MemoryBudgetError",
    "PRIORITY_BATCH",
    "PRIORITY_INTERACTIVE",
    "PRIORITY_STANDARD",
    "RaySlice",
    "RenderRequest",
    "RenderResponse",
    "RenderService",
    "SLOTarget",
    "SLOTracker",
    "SceneHandle",
    "SceneRegistry",
    "SceneRegistryError",
    "ServiceConfig",
    "UnknownSceneError",
    "build_demo_registry",
    "demo_camera",
    "format_slo_report",
    "poisson_arrivals",
    "run_closed_loop",
    "run_open_loop",
]
