"""Service-level objectives: per-class latency targets and attainment.

Each priority class carries a latency SLO (interactive defaults to the
paper's real-time budget of one 30 FPS frame time).  The tracker records
exact request latencies per class — the populations are small enough at
simulation scale that exact percentiles beat histogram sketches — and
reports p50/p95/p99, attainment against the target, and terminal-status
counts.  ``format_slo_report`` renders the table the CI smoke job greps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .batching import PRIORITY_BATCH, PRIORITY_INTERACTIVE, PRIORITY_STANDARD


@dataclass(frozen=True)
class SLOTarget:
    """Latency objective of one priority class."""

    name: str
    latency_s: float
    #: Fraction of completed requests that must meet ``latency_s``.
    attainment: float = 0.99

    def __post_init__(self):
        if self.latency_s <= 0:
            raise ValueError("latency_s must be positive")
        if not 0.0 < self.attainment <= 1.0:
            raise ValueError("attainment must be in (0, 1]")


#: Default objectives: interactive = one 30 FPS frame, standard = 100 ms,
#: batch = best-effort 1 s.
DEFAULT_TARGETS = {
    PRIORITY_INTERACTIVE: SLOTarget("interactive", latency_s=1.0 / 30.0),
    PRIORITY_STANDARD: SLOTarget("standard", latency_s=0.100),
    PRIORITY_BATCH: SLOTarget("batch", latency_s=1.0, attainment=0.9),
}


def percentile(values, q: float) -> float:
    """Exact percentile of a latency population (``nan`` when empty)."""
    if len(values) == 0:
        return float("nan")
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


class SLOTracker:
    """Exact per-class latency ledger and terminal-status counter."""

    def __init__(self, targets: dict = None):
        self.targets = dict(DEFAULT_TARGETS if targets is None else targets)
        self._latencies = {}
        self._statuses = {}

    def record(self, priority: int, status: str, latency_s: float = None) -> None:
        """Record one terminal request outcome.

        ``latency_s`` (arrival to completion, service clock) is required
        for ``"completed"`` requests and ignored otherwise.
        """
        self._statuses[status] = self._statuses.get(status, 0) + 1
        if status == "completed":
            if latency_s is None:
                raise ValueError("completed requests must report a latency")
            self._latencies.setdefault(priority, []).append(latency_s)

    @property
    def completed(self) -> int:
        """Completed-request count across all classes."""
        return self._statuses.get("completed", 0)

    def status_counts(self) -> dict:
        """Terminal-status histogram (completed, shed, rejected, failed...)."""
        return dict(self._statuses)

    def class_stats(self, priority: int) -> dict:
        """Latency statistics and attainment for one priority class."""
        latencies = self._latencies.get(priority, [])
        target = self.targets.get(priority)
        met = (
            sum(1 for lat in latencies if lat <= target.latency_s)
            if target and latencies
            else 0
        )
        return {
            "priority": priority,
            "name": target.name if target else f"class{priority}",
            "completed": len(latencies),
            "p50_s": percentile(latencies, 50),
            "p95_s": percentile(latencies, 95),
            "p99_s": percentile(latencies, 99),
            "target_s": target.latency_s if target else float("nan"),
            "attained": met / len(latencies) if latencies else float("nan"),
            "required": target.attainment if target else float("nan"),
            "slo_met": (
                bool(latencies) and met / len(latencies) >= target.attainment
                if target
                else False
            ),
        }

    def summary(self) -> dict:
        """Whole-service summary: per-class stats + status counts."""
        classes = sorted(set(self._latencies) | set(self.targets))
        return {
            "completed": self.completed,
            "statuses": self.status_counts(),
            "classes": [self.class_stats(p) for p in classes],
        }

    def to_payload(self) -> dict:
        """Machine-readable JSON form of the attainment report (schema 1).

        Same content as :meth:`summary` plus a ``schema`` version tag,
        with every NaN (empty-class percentiles, undefined attainment)
        replaced by ``None`` so the payload survives ``json.dumps`` and
        downstream consumers (the ops dashboard, ``capacity_study``)
        never have to guard against NaN arithmetic.  The greppable text
        report (:func:`format_slo_report`) is unchanged.
        """
        def _clean(value):
            if isinstance(value, float) and math.isnan(value):
                return None
            return value

        summary = self.summary()
        return {
            "schema": 1,
            "completed": summary["completed"],
            "statuses": dict(summary["statuses"]),
            "classes": [
                {key: _clean(value) for key, value in stats.items()}
                for stats in summary["classes"]
            ],
        }


def format_slo_report(tracker: SLOTracker) -> str:
    """Render the SLO attainment table (greppable by the CI smoke job)."""
    summary = tracker.summary()
    lines = ["SLO attainment report", "=" * 72]
    lines.append(f"completed requests: {summary['completed']}")
    for status, count in sorted(summary["statuses"].items()):
        if status != "completed":
            lines.append(f"{status}: {count}")
    lines.append("-" * 72)
    header = (
        f"{'class':<12} {'done':>6} {'p50 ms':>9} {'p95 ms':>9} "
        f"{'p99 ms':>9} {'target':>9} {'attain':>7} {'slo':>5}"
    )
    lines.append(header)
    for stats in summary["classes"]:
        lines.append(
            f"{stats['name']:<12} {stats['completed']:>6} "
            f"{stats['p50_s'] * 1e3:>9.2f} {stats['p95_s'] * 1e3:>9.2f} "
            f"{stats['p99_s'] * 1e3:>9.2f} {stats['target_s'] * 1e3:>9.2f} "
            f"{stats['attained']:>7.3f} "
            f"{'met' if stats['slo_met'] else 'MISS':>5}"
        )
    return "\n".join(lines)
