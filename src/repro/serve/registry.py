"""Multi-scene registry: named, refcounted, memory-budgeted scene store.

The serving layer multiplexes many trained scenes over one simulated
board (the Uni-Render deployment argument): scenes are *deployed* into
the registry — from a checkpoint archive or from in-memory objects — and
request handling *acquires* a refcounted :class:`SceneHandle` for the
lifetime of each request.  The registry enforces a configurable memory
budget with LRU eviction of idle scenes (a stand-in for the board-side
DRAM the paper's ~10 MB-per-scene payload is shipped into), and
re-deploying a live name hot-swaps it: new acquisitions see the new
generation immediately while in-flight requests keep rendering against
the old weights until their refcount drains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..nerf.checkpoint import load_scene
from ..nerf.occupancy import OccupancyGrid
from ..nerf.sampling import RayMarcher, SamplerConfig
from ..pipeline.registry import renderer_name_for
from ..sim.trace import WorkloadTrace, trace_from_rays

#: Ray grid of the deploy-time representative workload trace (per-scene
#: hardware cost model); workload statistics are resolution-independent,
#: so a small grid suffices (cf. ``repro.experiments.workloads``).
TRACE_GRID = 24


class SceneRegistryError(RuntimeError):
    """Base class for registry failures."""


class UnknownSceneError(SceneRegistryError):
    """The named scene is not deployed."""


class MemoryBudgetError(SceneRegistryError):
    """A deploy cannot fit: the budget is exhausted and nothing is evictable."""


@dataclass
class SceneRecord:
    """One deployed scene generation and its serving state."""

    name: str
    generation: int
    model: object
    occupancy: OccupancyGrid
    normalizer: object
    marcher: RayMarcher
    background: float
    #: Representative workload trace the scheduler bills hardware time
    #: against (scaled by each dispatch's actual kept samples).
    trace: WorkloadTrace
    n_bytes: int
    refcount: int = 0
    retired: bool = False
    last_used: int = 0
    #: Whether the occupancy grid came from trained state (checkpoint /
    #: caller) rather than the permissive keep-everything fallback.
    warmed: bool = True
    #: Renderer family of the deployed model (``repro.pipeline`` name);
    #: the scheduler/admission cost estimates key on
    #: (scene, renderer, precision).
    renderer: str = "ngp"
    #: Inference precision of the deployed model (``"full"``, ``"fp16"``,
    #: ``"fp16-int8"``); the third admission-EWMA key component.
    precision: str = "full"


class SceneHandle:
    """A refcounted view of one scene generation.

    Handles pin their generation in memory: the registry never evicts or
    frees a record while handles to it are live.  ``release()`` is
    idempotent; a force-undeploy invalidates the handle (``valid`` turns
    ``False``) so dispatch can fail the affected requests cleanly.
    """

    __slots__ = ("_registry", "_record", "_released", "valid")

    def __init__(self, registry: "SceneRegistry", record: SceneRecord):
        self._registry = registry
        self._record = record
        self._released = False
        #: Cleared by a force-undeploy; dispatch checks this before rendering.
        self.valid = True

    @property
    def name(self) -> str:
        """Deployed scene name."""
        return self._record.name

    @property
    def generation(self) -> int:
        """Generation counter of the pinned record (bumps on hot-swap)."""
        return self._record.generation

    @property
    def model(self):
        """The pinned radiance-field model."""
        return self._record.model

    @property
    def occupancy(self) -> OccupancyGrid:
        """The pinned occupancy grid."""
        return self._record.occupancy

    @property
    def normalizer(self):
        """World-to-unit-cube map of the pinned scene."""
        return self._record.normalizer

    @property
    def marcher(self) -> RayMarcher:
        """The scene's default (full-quality) ray marcher."""
        return self._record.marcher

    @property
    def background(self) -> float:
        """Background color the scene composites against."""
        return self._record.background

    @property
    def trace(self) -> WorkloadTrace:
        """Representative workload trace for hardware billing."""
        return self._record.trace

    @property
    def renderer(self) -> str:
        """Renderer family of the pinned generation (hot-swaps may
        change it, so in-flight requests read their pinned tag)."""
        return self._record.renderer

    @property
    def precision(self) -> str:
        """Inference precision of the pinned generation."""
        return self._record.precision

    def release(self) -> None:
        """Drop the pin; frees the record when its refcount drains."""
        if self._released:
            return
        self._released = True
        self._registry._release(self._record)


def _representative_trace(
    occupancy: OccupancyGrid, max_samples: int, grid: int = TRACE_GRID
) -> WorkloadTrace:
    """Deterministic unit-space probe trace of a scene's workload shape.

    A ``grid x grid`` bundle of parallel rays enters the unit cube
    through the z = 0 face and exits at z = 1, so every ray crosses the
    full occupancy volume; the per-ray kept-sample skew this produces is
    what the dispatch-time ``workload_scale`` stretches to the size of
    each real batch.
    """
    u = (np.arange(grid, dtype=np.float64) + 0.5) / grid
    xx, yy = np.meshgrid(u, u, indexing="ij")
    origins = np.stack(
        [xx.reshape(-1), yy.reshape(-1), np.full(grid * grid, -0.25)], axis=-1
    )
    directions = np.tile(
        np.array([0.0, 0.0, 1.0]), (grid * grid, 1)
    )
    return trace_from_rays(
        origins, directions, occupancy, max_samples=max_samples
    )


def _scene_bytes(model, occupancy: OccupancyGrid) -> int:
    """Deployment footprint: parameter arrays plus occupancy state."""
    total = sum(p.nbytes for p in model.parameters().values())
    total += occupancy.density_ema.nbytes + occupancy.mask.nbytes
    return int(total)


class SceneRegistry:
    """Named scene store with a memory budget, LRU eviction, and hot-swap."""

    def __init__(
        self,
        memory_budget_bytes: int = None,
        max_samples_per_ray: int = 64,
    ):
        if memory_budget_bytes is not None and memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive (or None)")
        self.memory_budget_bytes = memory_budget_bytes
        self.max_samples_per_ray = max_samples_per_ray
        self._records = {}
        #: Hot-swapped-out generations still pinned by live handles.
        self._retiring = []
        self._clock = 0
        self.evictions = 0
        self.hot_swaps = 0
        #: Callbacks fired after each deploy (see :meth:`add_deploy_listener`).
        self._deploy_listeners = []

    def add_deploy_listener(self, callback) -> None:
        """Subscribe ``callback(name, generation, renderer)`` to deploys.

        Fired after every successful :meth:`deploy`, including hot-swaps
        (``generation > 1``).  The serving layer uses this to re-blend
        stale per-(scene, renderer) cost estimates when a retrained
        generation replaces the weights they were measured against.
        """
        self._deploy_listeners.append(callback)

    # -- introspection ---------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        """Bytes pinned by every live generation (current + retiring)."""
        return sum(r.n_bytes for r in self._records.values()) + sum(
            r.n_bytes for r in self._retiring
        )

    def __contains__(self, name: str) -> bool:
        return name in self._records

    def __len__(self) -> int:
        return len(self._records)

    def scenes(self) -> list:
        """Summaries of every deployed scene, LRU-oldest first."""
        records = sorted(self._records.values(), key=lambda r: r.last_used)
        return [
            {
                "name": r.name,
                "generation": r.generation,
                "renderer": r.renderer,
                "precision": r.precision,
                "bytes": r.n_bytes,
                "refcount": r.refcount,
                "warmed": r.warmed,
                "mean_samples_per_ray": r.trace.mean_samples_per_ray,
            }
            for r in records
        ]

    # -- deployment ------------------------------------------------------

    def deploy(
        self,
        name: str,
        model=None,
        occupancy: OccupancyGrid = None,
        normalizer=None,
        checkpoint=None,
        background: float = 1.0,
        max_samples_per_ray: int = None,
        renderer: str = None,
        precision: str = None,
    ) -> dict:
        """Deploy (or hot-swap) a scene; returns its summary dict.

        Either ``checkpoint`` (a path readable by
        :func:`~repro.nerf.checkpoint.load_scene`) or ``model`` +
        ``normalizer`` must be given.  A checkpoint saved with its
        occupancy grid cold-starts without re-warmup; without one, the
        registry falls back to a permissive keep-everything grid
        (correct, but ungated — ``warmed`` is ``False`` in the summary).
        Re-deploying a live name installs a new generation: in-flight
        requests keep their pinned handles, new acquisitions get the new
        weights, and the old generation is freed when its refcount
        drains.

        ``renderer`` tags the generation with its renderer family;
        when omitted it is inferred from the model type via
        :func:`repro.pipeline.registry.renderer_name_for`.  A hot-swap
        may change the tag (e.g. redeploying an ``ngp`` scene as
        ``tensorf``); per-(scene, renderer, precision) cost estimates
        downstream key on it.  ``precision`` likewise defaults to the
        model's own tag (``model.precision`` when present, else
        ``"full"``) — deploy a
        :class:`~repro.nerf.precision.LowPrecisionField` and the record
        is tagged ``"fp16"`` / ``"fp16-int8"`` automatically.
        """
        if checkpoint is not None:
            loaded_model, loaded_occupancy, loaded_normalizer = load_scene(checkpoint)
            model = model if model is not None else loaded_model
            occupancy = occupancy if occupancy is not None else loaded_occupancy
            normalizer = normalizer if normalizer is not None else loaded_normalizer
        if model is None:
            raise SceneRegistryError(
                f"deploy({name!r}) needs a model or a checkpoint"
            )
        if normalizer is None:
            raise SceneRegistryError(
                f"deploy({name!r}) needs a normalizer (in-memory or stored "
                "in the checkpoint)"
            )
        warmed = occupancy is not None
        if occupancy is None:
            occupancy = OccupancyGrid(resolution=16)
        max_samples = max_samples_per_ray or self.max_samples_per_ray
        record = SceneRecord(
            name=name,
            generation=1,
            model=model,
            occupancy=occupancy,
            normalizer=normalizer,
            marcher=RayMarcher(SamplerConfig(max_samples=max_samples)),
            background=background,
            trace=_representative_trace(occupancy, max_samples),
            n_bytes=_scene_bytes(model, occupancy),
            warmed=warmed,
            renderer=renderer or renderer_name_for(model),
            precision=precision or getattr(model, "precision", "full"),
        )
        previous = self._records.get(name)
        if previous is not None:
            record.generation = previous.generation + 1
            self.hot_swaps += 1
            if previous.refcount > 0:
                previous.retired = True
                self._retiring.append(previous)
        self._clock += 1
        record.last_used = self._clock
        self._records[name] = record
        self._enforce_budget(keep=record)
        self._record_metrics()
        for listener in self._deploy_listeners:
            listener(name, record.generation, record.renderer)
        return self.scenes()[-1] if len(self._records) == 1 else next(
            s for s in self.scenes() if s["name"] == name
        )

    def undeploy(self, name: str, force: bool = False) -> None:
        """Remove a scene from the registry.

        With ``force=False`` (default) live handles keep their pinned
        generation until released.  ``force=True`` additionally
        *invalidates* outstanding handles — in-flight requests observe
        ``handle.valid == False`` at dispatch and fail cleanly (the
        "scene evicted mid-request" path).
        """
        record = self._records.pop(name, None)
        if record is None:
            raise UnknownSceneError(f"scene {name!r} is not deployed")
        if record.refcount > 0:
            record.retired = True
            self._retiring.append(record)
            if force:
                self._invalidate(record)
        self._record_metrics()

    def _invalidate(self, record: SceneRecord) -> None:
        """Mark a record dead for its live handles (force-undeploy)."""
        for handle in list(getattr(record, "_handles", [])):
            handle.valid = False

    # -- acquisition -----------------------------------------------------

    def acquire(self, name: str) -> SceneHandle:
        """Pin the current generation of ``name`` and return its handle."""
        record = self._records.get(name)
        if record is None:
            raise UnknownSceneError(f"scene {name!r} is not deployed")
        record.refcount += 1
        self._clock += 1
        record.last_used = self._clock
        handle = SceneHandle(self, record)
        if not hasattr(record, "_handles"):
            record._handles = []
        record._handles.append(handle)
        return handle

    def _release(self, record: SceneRecord) -> None:
        if record.refcount <= 0:
            raise SceneRegistryError(
                f"refcount underflow on scene {record.name!r}"
            )
        record.refcount -= 1
        if record.refcount == 0 and record.retired:
            # Last in-flight request against a hot-swapped-out or
            # undeployed generation: free it now.
            if record in self._retiring:
                self._retiring.remove(record)
            self._record_metrics()

    # -- memory budget ---------------------------------------------------

    def _enforce_budget(self, keep: SceneRecord) -> None:
        """Evict idle LRU scenes until the budget holds (or raise)."""
        if self.memory_budget_bytes is None:
            return
        while self.memory_bytes > self.memory_budget_bytes:
            victims = [
                r
                for r in self._records.values()
                if r.refcount == 0 and r is not keep
            ]
            if not victims:
                raise MemoryBudgetError(
                    f"cannot fit scene {keep.name!r} "
                    f"({keep.n_bytes} B) within the "
                    f"{self.memory_budget_bytes} B budget: "
                    f"{self.memory_bytes} B pinned and nothing evictable"
                )
            victim = min(victims, key=lambda r: r.last_used)
            del self._records[victim.name]
            self.evictions += 1
            tel = telemetry.get_session()
            if tel.enabled:
                tel.metrics.counter("serve.registry.evictions").inc()

    def _record_metrics(self) -> None:
        tel = telemetry.get_session()
        if not tel.enabled:
            return
        tel.metrics.gauge("serve.registry.scenes").set(float(len(self._records)))
        tel.metrics.gauge("serve.registry.bytes").set(float(self.memory_bytes))
        tel.metrics.gauge("serve.registry.retiring").set(float(len(self._retiring)))
