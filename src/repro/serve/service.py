"""The rendering service: admission, scheduling, and hardware billing.

:class:`RenderService` ties the serve subsystem together as a
discrete-event simulation over a *service clock* (virtual seconds).
Clients :meth:`~RenderService.submit` timestamped
:class:`~repro.serve.batching.RenderRequest`\\ s;
:meth:`~RenderService.run` then replays the timeline: arrivals pass
through admission control, admitted requests are sliced and pooled by
the dynamic batch scheduler, and each dispatched batch renders its
slices through the real NeRF pipeline while the simulated
:class:`~repro.sim.multichip.MultiChipSystem` board is charged the
hardware time (the board is serial: one batch occupies it at a time, so
queueing delay is real).

Pixels are exact, time is simulated: every slice renders through its own
``render_rays`` call with boundaries fixed at admission, so a request
served alone is bit-identical to a direct
:func:`~repro.nerf.renderer.render_image` call at ``chunk=slice_rays`` —
coalescing and billing affect *when* work happens, never what it
computes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..nerf.renderer import render_rays
from ..nerf.sampling import RayMarcher, SamplerConfig
from ..sim.multichip import MultiChipSystem
from .admission import AdmissionController, AdmissionPolicy
from .batching import ActiveRequest, RenderRequest, activate_request, slice_request
from .registry import SceneRegistry, UnknownSceneError
from .scheduler import (
    ACTION_DISPATCH,
    ACTION_WAIT,
    BatchPolicy,
    DynamicRayBatchScheduler,
)
from .slo import SLOTracker, format_slo_report

#: Terminal status for a request whose scene is not deployed.
FAILED_UNKNOWN_SCENE = "failed_unknown_scene"
#: Terminal status for a request whose scene was force-undeployed mid-flight.
FAILED_SCENE_EVICTED = "failed_scene_evicted"


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide policies and bookkeeping knobs."""

    batch: BatchPolicy = field(default_factory=BatchPolicy)
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    #: Optional per-priority :class:`~repro.serve.slo.SLOTarget` overrides.
    slo_targets: dict = None
    #: Keep completed frames on the response objects (tests / single
    #: clients); load generation leaves this off to bound memory.
    keep_frames: bool = False
    #: EWMA smoothing of the delivered seconds-per-ray estimate feeding
    #: deadline-feasibility checks.
    ewma_alpha: float = 0.2


@dataclass
class RenderResponse:
    """Terminal outcome of one request, as seen by the client."""

    request_id: int
    scene: str
    status: str
    priority: int
    degrade_level: int = 0
    #: Arrival-to-completion latency on the service clock (``None``
    #: unless completed).
    latency_s: float = None
    #: The rendered frame — populated for completed requests when the
    #: service keeps frames or a completion callback is registered.
    frame: np.ndarray = None

    @property
    def completed(self) -> bool:
        """Whether the request rendered to completion."""
        return self.status == "completed"


class RenderService:
    """Discrete-event rendering service over a simulated accelerator."""

    def __init__(
        self,
        registry: SceneRegistry,
        system: MultiChipSystem = None,
        config: ServiceConfig = None,
        cost_models: dict = None,
    ):
        self.registry = registry
        self.system = system or MultiChipSystem()
        self.config = config or ServiceConfig()
        #: Optional ``{scene: SceneCostModel}`` priors (see
        #: :mod:`repro.obs.costmodel`) that seed the per-(scene,
        #: renderer, precision) EWMA before its first measurement lands.
        self._cost_models = dict(cost_models or {})
        self.scheduler = DynamicRayBatchScheduler(self.config.batch)
        self.admission = AdmissionController(self.config.admission)
        self.slo = SLOTracker(self.config.slo_targets)
        #: Service clock, virtual seconds.
        self.now_s = 0.0
        self._arrivals = []  # heap of (arrival_s, seq, request, on_complete)
        self._seq = 0
        self._callbacks = {}
        #: request_id -> RenderResponse once terminal.
        self.responses = {}
        #: EWMA of delivered seconds per queued ray, keyed per
        #: (scene, renderer, precision).  Renderer families differ in
        #: cost by orders of magnitude — and a low-precision deploy of
        #: the same scene renders materially faster than its full
        #: sibling — so a shared estimate would let a slow datapath
        #: poison a fast one's deadline-feasibility checks; each key
        #: starts fresh (None -> feasibility check skipped) until its
        #: own first dispatched batch.
        self._s_per_ray = {}
        #: Keys whose EWMA was measured against a generation that has
        #: since been hot-swapped out.  A stale estimate still serves
        #: admission (better than skipping feasibility entirely), but the
        #: first post-swap observation *replaces* it rather than EWMA-
        #: blending — a retrained 2x-cost model would otherwise keep
        #: admitting doomed deadline work for ~1/alpha dispatches.
        self._stale_s_per_ray = set()
        self.ewma_reblends = 0
        self.batches_dispatched = 0
        self.hardware_busy_s = 0.0
        registry.add_deploy_listener(self._on_scene_deployed)

    # -- client surface --------------------------------------------------

    def submit(self, request: RenderRequest, on_complete=None) -> int:
        """Queue a request for its ``arrival_s``; returns the request id.

        ``on_complete(response)`` fires when the request reaches a
        terminal status (completed, shed, rejected, or failed) — the
        closed-loop hook load generators chain their next arrival on.
        """
        heapq.heappush(
            self._arrivals, (request.arrival_s, self._seq, request)
        )
        self._seq += 1
        if on_complete is not None:
            self._callbacks[request.request_id] = on_complete
        return request.request_id

    def run(self, max_batches: int = None) -> SLOTracker:
        """Replay the timeline until all submitted work is terminal.

        Closed-loop clients may submit new requests from completion
        callbacks; the loop keeps draining until both the arrival heap
        and the scheduler are empty (or ``max_batches`` dispatches have
        run — a safety valve for open-ended closed loops).
        """
        while True:
            next_arrival = self._arrivals[0][0] if self._arrivals else None
            if next_arrival is not None and next_arrival <= self.now_s:
                _, _, request = heapq.heappop(self._arrivals)
                self._admit(request)
                continue
            action, payload = self.scheduler.next_action(
                self.now_s, next_arrival
            )
            if action == ACTION_DISPATCH:
                self._execute(payload)
                if (
                    max_batches is not None
                    and self.batches_dispatched >= max_batches
                ):
                    break
            elif action == ACTION_WAIT:
                self.now_s = max(self.now_s, payload)
            else:
                break
        return self.slo

    # -- admission -------------------------------------------------------

    def _admit(self, request: RenderRequest) -> None:
        """Run one arrival through the admission ladder at ``now_s``."""
        tel = telemetry.get_session()
        with tel.tracer.span(
            "serve.admit", request=request.request_id, scene=request.scene
        ):
            try:
                handle = self.registry.acquire(request.scene)
            except UnknownSceneError:
                self._reject(request, FAILED_UNKNOWN_SCENE)
                return
            full_spr = handle.marcher.config.max_samples
            key = (request.scene, handle.renderer, handle.precision)
            est_s_per_ray = self._s_per_ray.get(key)
            if est_s_per_ray is None:
                est_s_per_ray = self._seed_s_per_ray(key)
            decision = self.admission.decide(
                request,
                self.now_s,
                self.scheduler.queued_rays(),
                full_spr,
                est_s_per_ray=est_s_per_ray,
            )
            if not decision.admitted:
                handle.release()
                self._reject(request, decision.status)
                return
            if decision.samples_per_ray == full_spr:
                marcher = handle.marcher
            else:
                marcher = RayMarcher(
                    SamplerConfig(max_samples=decision.samples_per_ray)
                )
            active = activate_request(
                request,
                handle,
                marcher,
                decision.samples_per_ray,
                decision.resolution_scale,
                decision.degrade_level,
                self.now_s,
            )
            self.scheduler.enqueue(
                request.scene,
                slice_request(active, self.config.batch.slice_rays),
                self.now_s,
            )
        if tel.enabled:
            tel.metrics.gauge("serve.queue.rays").set(
                float(self.scheduler.queued_rays())
            )
            if decision.degrade_level:
                tel.metrics.counter("serve.requests.degraded").inc()

    def _on_scene_deployed(self, name: str, generation: int, renderer: str) -> None:
        """Registry deploy hook: mark the scene's cost estimates stale.

        A hot-swap (``generation > 1``) replaces the weights every
        existing per-(scene, renderer, precision) s/ray estimate was
        measured against.  The estimates are kept as admission priors but flagged
        stale, so the first dispatch against the new generation replaces
        them outright (see :meth:`_execute`) instead of EWMA-crawling
        toward the new cost while deadline admission runs on the old one.
        """
        if generation <= 1:
            return
        for key in self._s_per_ray:
            if key[0] == name:
                self._stale_s_per_ray.add(key)

    def _seed_s_per_ray(self, key: tuple) -> float:
        """Cold-start prior for one (scene, renderer, precision) EWMA key.

        Without a prior the feasibility check is skipped until the first
        dispatched batch, so a freshly deployed scene briefly admits
        doomed deadline work *and* cannot be mis-rejected; with a fitted
        cost model available the estimate starts at the profiled
        ``sim_s_per_ray`` instead.  Models fitted under a different
        renderer family are ignored — their costs do not transfer — and
        so are non-full precision keys: cost models are profiled on the
        full-precision datapath, and seeding a fast low-precision deploy
        with a slow full-precision estimate would mis-reject feasible
        deadline work until the first real measurement lands.
        """
        scene, renderer, precision = key
        model = self._cost_models.get(scene)
        if model is None or model.renderer != renderer or precision != "full":
            return None
        seed = float(model.sim_s_per_ray.mean)
        if seed <= 0.0:
            return None
        self._s_per_ray[key] = seed
        return seed

    def _reject(self, request: RenderRequest, status: str) -> None:
        """Record a terminal pre-queue outcome and notify the client."""
        self.slo.record(request.priority, status)
        response = RenderResponse(
            request_id=request.request_id,
            scene=request.scene,
            status=status,
            priority=request.priority,
        )
        self.responses[request.request_id] = response
        tel = telemetry.get_session()
        if tel.enabled:
            tel.metrics.counter(f"serve.requests.{status}").inc()
        callback = self._callbacks.pop(request.request_id, None)
        if callback is not None:
            callback(response)

    # -- dispatch --------------------------------------------------------

    def _execute(self, batch) -> None:
        """Render a dispatched batch and charge the board its time."""
        tel = telemetry.get_session()
        billed_samples = 0.0
        finished = []
        trace = None
        renderer = None
        precision = None
        with tel.tracer.span(
            "serve.dispatch",
            scene=batch.scene,
            rays=batch.n_rays,
            requests=batch.n_requests,
        ):
            for item in batch.slices:
                active = item.active
                if active.status is not None:
                    continue
                if not active.handle.valid:
                    self._finish(active, FAILED_SCENE_EVICTED)
                    continue
                trace = active.handle.trace
                renderer = active.handle.renderer
                precision = active.handle.precision
                colors, samples, _ = render_rays(
                    active.handle.model,
                    active.origins[item.start : item.stop],
                    active.directions[item.start : item.stop],
                    active.marcher,
                    occupancy=active.handle.occupancy,
                    background=active.handle.background,
                )
                active.out[item.start : item.stop] = colors
                billed_samples += len(samples) * active.request.hw_scale
                active.slices_remaining -= 1
                if active.slices_remaining == 0:
                    finished.append(active)
            runtime_s = self._charge_hardware(batch.scene, trace, billed_samples)
        self.now_s += runtime_s
        self.hardware_busy_s += runtime_s
        self.batches_dispatched += 1
        if runtime_s > 0 and batch.n_rays > 0 and renderer is not None:
            observed = runtime_s / batch.n_rays
            key = (batch.scene, renderer, precision)
            previous = self._s_per_ray.get(key)
            if previous is None or key in self._stale_s_per_ray:
                # First observation for the key, or first observation of
                # a freshly hot-swapped generation: the old generation's
                # estimate carries no information about the new weights,
                # so snap instead of blending.
                if key in self._stale_s_per_ray:
                    self._stale_s_per_ray.discard(key)
                    self.ewma_reblends += 1
                self._s_per_ray[key] = observed
            else:
                alpha = self.config.ewma_alpha
                self._s_per_ray[key] = alpha * observed + (1 - alpha) * previous
        for active in finished:
            self._finish(active, "completed")
        if tel.enabled:
            tel.metrics.histogram("serve.batch.rays").observe(batch.n_rays)
            tel.metrics.histogram("serve.batch.requests").observe(
                batch.n_requests
            )
            tel.metrics.gauge("serve.queue.rays").set(
                float(self.scheduler.queued_rays())
            )
            tel.metrics.gauge("serve.queue.slices").set(
                float(self.scheduler.queued_slices())
            )
            tel.metrics.gauge("serve.utilization").set(
                self.hardware_busy_s / self.now_s if self.now_s > 0 else 0.0
            )
            if tel.publisher is not None:
                # The ops plane samples on the *service* clock, so queue
                # and rate dynamics line up with simulated time.
                tel.publisher.maybe_publish(self.now_s)

    def _charge_hardware(self, scene: str, trace, billed_samples: float) -> float:
        """Simulated board time for one dispatch.

        ``billed_samples`` is the kept-sample total scaled by each
        request's ``hw_scale``; the scene's representative trace is
        stretched to that volume (the standard ``workload_scale`` linear
        extrapolation).  An all-background batch (zero kept samples)
        still pays the camera-broadcast round trip.
        """
        n = self.system.config.n_chips
        if trace is None:
            return 0.0  # every slice was dead: nothing reached the board
        if billed_samples <= 0 or trace.n_samples == 0:
            comm = self.system.communication([trace] * n, workload_scale=0.0)
            return comm.transfer_s
        report = self.system.simulate_batch(
            scene,
            [trace] * n,
            workload_scale=billed_samples / trace.n_samples,
        )
        return report.runtime_s

    def _finish(self, active: ActiveRequest, status: str) -> None:
        """Terminally resolve an in-flight request at the current clock."""
        active.finish(status, self.now_s)
        active.handle.release()
        request = active.request
        latency = self.now_s - request.arrival_s
        completed = status == "completed"
        self.slo.record(
            request.priority, status, latency if completed else None
        )
        callback = self._callbacks.pop(request.request_id, None)
        response = RenderResponse(
            request_id=request.request_id,
            scene=request.scene,
            status=status,
            priority=request.priority,
            degrade_level=active.degrade_level,
            latency_s=latency if completed else None,
            frame=(
                active.frame
                if completed and (self.config.keep_frames or callback)
                else None
            ),
        )
        if not self.config.keep_frames:
            stored = RenderResponse(**{**response.__dict__, "frame": None})
        else:
            stored = response
        self.responses[request.request_id] = stored
        tel = telemetry.get_session()
        if tel.enabled:
            tel.metrics.counter(f"serve.requests.{status}").inc()
            if completed:
                tel.metrics.histogram(
                    "serve.latency_s", min_bound=1e-9
                ).observe(latency)
        if callback is not None:
            callback(response)

    # -- reporting -------------------------------------------------------

    def stats(self) -> dict:
        """Operational counters for experiment tables and smoke checks."""
        return {
            "now_s": self.now_s,
            "completed": self.slo.completed,
            "statuses": self.slo.status_counts(),
            "batches_dispatched": self.batches_dispatched,
            "hardware_busy_s": self.hardware_busy_s,
            "utilization": (
                self.hardware_busy_s / self.now_s if self.now_s > 0 else 0.0
            ),
            "admitted": self.admission.admitted,
            "ewma_reblends": self.ewma_reblends,
            "degraded": self.admission.degraded,
            "shed": self.admission.shed,
            "rejected_deadline": self.admission.rejected_deadline,
            # Aggregate kept for backward compatibility; the per-key
            # detail is what admission actually consults.
            "ewma_s_per_ray": (
                sum(self._s_per_ray.values()) / len(self._s_per_ray)
                if self._s_per_ray
                else None
            ),
            "ewma_s_per_ray_by_key": {
                f"{scene}/{renderer}/{precision}": value
                for (scene, renderer, precision), value in sorted(
                    self._s_per_ray.items()
                )
            },
        }

    def report(self) -> str:
        """The greppable SLO attainment report for this service run."""
        return format_slo_report(self.slo)
