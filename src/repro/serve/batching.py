"""Render requests, ray slicing, and frame assembly for the service.

A :class:`RenderRequest` names a deployed scene and a camera view (a full
frame or a tile crop of one).  At admission the service expands it into
an :class:`ActiveRequest` — the request's rays mapped into the scene's
unit cube, a pixel buffer, and a list of fixed-size :class:`RaySlice`
work items.  Slices are the scheduler's currency: they are small enough
to coalesce across requests into one hardware dispatch, and their
boundaries depend only on the request itself (never on what else is
queued), which is what keeps served pixels bit-identical to a direct
:func:`~repro.nerf.renderer.render_image` call at the same chunk size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nerf.camera import Camera
from ..nerf.rays import generate_rays

#: Request priority classes, best first.  The admission controller sheds
#: from the bottom of this ladder under overload.
PRIORITY_INTERACTIVE = 0
PRIORITY_STANDARD = 1
PRIORITY_BATCH = 2


@dataclass(frozen=True)
class RenderRequest:
    """One client render call: a scene, a view, and its QoS envelope.

    ``tile`` crops the camera frame to the half-open pixel rectangle
    ``(x0, y0, x1, y1)``; ``None`` renders the full frame.  ``deadline_s``
    is an absolute service-clock deadline (``None`` = best effort).
    ``hw_scale`` multiplies the *billed* hardware work without changing
    the rendered probe pixels — the standard linear-extrapolation hook
    (cf. ``workload_scale`` in the chip simulators) that lets a small
    probe frame stand in for a full-resolution one in the latency model.
    """

    request_id: int
    scene: str
    camera: Camera
    arrival_s: float = 0.0
    priority: int = PRIORITY_STANDARD
    deadline_s: float = None
    tile: tuple = None
    hw_scale: float = 1.0

    def __post_init__(self):
        if self.priority < 0:
            raise ValueError("priority must be non-negative")
        if self.hw_scale <= 0:
            raise ValueError("hw_scale must be positive")
        if self.tile is not None:
            x0, y0, x1, y1 = self.tile
            if not (0 <= x0 < x1 <= self.camera.width):
                raise ValueError("tile x-range out of camera bounds")
            if not (0 <= y0 < y1 <= self.camera.height):
                raise ValueError("tile y-range out of camera bounds")

    @property
    def frame_shape(self) -> tuple:
        """``(height, width)`` of the pixels this request produces."""
        if self.tile is None:
            return (self.camera.height, self.camera.width)
        x0, y0, x1, y1 = self.tile
        return (y1 - y0, x1 - x0)

    @property
    def n_rays(self) -> int:
        """Ray count of the request (tile-cropped when applicable)."""
        h, w = self.frame_shape
        return h * w

    def pixel_ids(self) -> np.ndarray:
        """Row-major pixel indices into the camera frame this request covers."""
        if self.tile is None:
            return np.arange(self.camera.n_pixels, dtype=np.int64)
        x0, y0, x1, y1 = self.tile
        rows = np.arange(y0, y1, dtype=np.int64)
        cols = np.arange(x0, x1, dtype=np.int64)
        return (rows[:, None] * self.camera.width + cols[None, :]).reshape(-1)


@dataclass
class ActiveRequest:
    """An admitted request's in-flight state.

    Holds the unit-space rays, the output pixel buffer, and completion
    bookkeeping.  ``status`` stays ``None`` while in flight and becomes a
    terminal string (``"completed"``, ``"failed_scene_evicted"``, ...)
    exactly once.
    """

    request: RenderRequest
    handle: object  # repro.serve.registry.SceneHandle
    origins: np.ndarray
    directions: np.ndarray
    marcher: object  # repro.nerf.sampling.RayMarcher (possibly degraded)
    #: Degradation applied at admission: 0 = full quality.
    degrade_level: int = 0
    #: Effective samples-per-ray budget after degradation.
    samples_per_ray: int = 0
    #: Effective output resolution scale after degradation (1.0 = asked-for).
    resolution_scale: float = 1.0
    out: np.ndarray = None
    slices_remaining: int = 0
    admitted_s: float = 0.0
    completed_s: float = None
    status: str = None
    #: ``(height, width)`` of the (possibly degraded) output frame.
    frame_shape: tuple = None

    @property
    def n_rays(self) -> int:
        """Rays this request actually marches (after degradation)."""
        return self.origins.shape[0]

    def finish(self, status: str, now: float) -> None:
        """Terminally mark the request; idempotent for the first status."""
        if self.status is None:
            self.status = status
            self.completed_s = now

    @property
    def frame(self) -> np.ndarray:
        """The assembled ``(h, w, 3)`` frame (``None`` until completed)."""
        if self.status != "completed":
            return None
        h, w = self.frame_shape
        return np.clip(self.out, 0.0, 1.0).reshape(h, w, 3)


@dataclass(frozen=True)
class RaySlice:
    """A contiguous ray range of one request: the scheduler's work unit."""

    active: ActiveRequest
    start: int
    stop: int

    @property
    def n_rays(self) -> int:
        """Rays in this slice."""
        return self.stop - self.start


@dataclass
class DispatchBatch:
    """Slices coalesced into one hardware dispatch for a single scene."""

    scene: str
    slices: list
    formed_s: float

    @property
    def n_rays(self) -> int:
        """Total rays across every slice of the batch."""
        return sum(s.n_rays for s in self.slices)

    @property
    def n_requests(self) -> int:
        """Distinct requests contributing slices to this batch."""
        return len({id(s.active) for s in self.slices})


def degraded_camera(camera: Camera, resolution_scale: float) -> Camera:
    """The camera a resolution-degraded request renders through.

    Width, height, and focal all scale together, so the field of view is
    preserved and the smaller frame is a genuine downsampled render of
    the same view.  Every dimension is floored at one pixel.
    """
    if resolution_scale >= 1.0:
        return camera
    width = max(int(camera.width * resolution_scale), 1)
    height = max(int(camera.height * resolution_scale), 1)
    focal = camera.focal * (width / camera.width)
    return Camera(width=width, height=height, focal=focal, c2w=camera.c2w)


def activate_request(
    request: RenderRequest,
    handle,
    marcher,
    samples_per_ray: int,
    resolution_scale: float,
    degrade_level: int,
    now: float,
) -> ActiveRequest:
    """Expand an admitted request into its in-flight state.

    Generates the request's rays (full frame, tile crop, or degraded
    resolution), maps them through the scene normalizer into unit-cube
    space, and allocates the output pixel buffer.  Ray order is row-major
    over the requested pixels — identical to
    :func:`~repro.nerf.renderer.render_image`'s ordering.
    """
    camera = request.camera
    tile = request.tile
    if resolution_scale < 1.0 and tile is None:
        camera = degraded_camera(camera, resolution_scale)
    if tile is None:
        rays = generate_rays(camera)
        frame_shape = (camera.height, camera.width)
    else:
        rays = generate_rays(camera, pixel_ids=request.pixel_ids())
        frame_shape = request.frame_shape
    origins, directions = handle.normalizer.rays_to_unit(
        rays.origins, rays.directions
    )
    n = origins.shape[0]
    return ActiveRequest(
        request=request,
        handle=handle,
        origins=origins,
        directions=directions,
        marcher=marcher,
        degrade_level=degrade_level,
        samples_per_ray=samples_per_ray,
        resolution_scale=resolution_scale,
        # float32: the pixel format of the rendering pipeline — the old
        # float64 buffer silently doubled the frame-memory footprint and
        # upcast every slice store (repro.nerf.renderer keeps its frame
        # buffer float32 for the same reason).
        out=np.empty((n, 3), dtype=np.float32),
        slices_remaining=0,
        admitted_s=now,
        frame_shape=frame_shape,
    )


def slice_request(active: ActiveRequest, slice_rays: int) -> list:
    """Cut an active request into fixed-size :class:`RaySlice` items.

    Boundaries are multiples of ``slice_rays`` from the request's own ray
    0 — independent of queue state, so the per-slice renders are
    bit-identical to a direct chunked render of the same request.
    """
    if slice_rays < 1:
        raise ValueError("slice_rays must be positive")
    n = active.n_rays
    slices = [
        RaySlice(active=active, start=start, stop=min(start + slice_rays, n))
        for start in range(0, n, slice_rays)
    ]
    active.slices_remaining = len(slices)
    return slices
