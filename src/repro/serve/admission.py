"""Deadline- and backpressure-aware admission control.

Every arriving request passes through :class:`AdmissionController` before
touching a queue.  The controller rejects work that is already doomed
(deadline in the past, or infeasible under the current service-time
estimate) and converts overload into *graceful degradation* before it
becomes *shedding*: as queue depth climbs, new requests are admitted at
half the samples-per-ray budget, then additionally at half resolution,
and only past the hard queue cap are they shed — lowest priority class
first.  This is the serving-side twin of the robustness layer's
degrade-before-fail ladder (``repro.robustness.degradation``).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Degrade ladder levels applied at admission.
DEGRADE_NONE = 0
DEGRADE_SAMPLES = 1  # halve samples-per-ray
DEGRADE_RESOLUTION = 2  # halve samples-per-ray AND render at half resolution

#: Terminal admission verdicts.
REJECT_DEADLINE_EXPIRED = "rejected_deadline_expired"
REJECT_DEADLINE_INFEASIBLE = "rejected_deadline_infeasible"
REJECT_SHED = "shed_overload"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Queue-depth thresholds of the shed-or-degrade ladder (in rays).

    ``degrade_rays`` starts level-1 degradation, ``heavy_degrade_rays``
    starts level-2, and ``max_queue_rays`` is the hard cap past which
    requests are shed; ``shed_spares_priority`` classes at or below that
    priority value are degraded (never shed) until the queue exceeds
    ``max_queue_rays`` times ``priority_headroom``.
    """

    max_queue_rays: int = 1 << 18
    degrade_rays: int = 1 << 16
    heavy_degrade_rays: int = 1 << 17
    min_samples_per_ray: int = 4
    shed_spares_priority: int = 0
    priority_headroom: float = 1.5

    def __post_init__(self):
        if not 0 < self.degrade_rays <= self.heavy_degrade_rays <= self.max_queue_rays:
            raise ValueError(
                "need 0 < degrade_rays <= heavy_degrade_rays <= max_queue_rays"
            )
        if self.min_samples_per_ray < 1:
            raise ValueError("min_samples_per_ray must be positive")
        if self.priority_headroom < 1.0:
            raise ValueError("priority_headroom must be >= 1.0")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    ``admitted`` requests carry the (possibly degraded) render budget;
    rejected ones carry a terminal ``status`` string explaining why.
    """

    admitted: bool
    status: str = None
    degrade_level: int = DEGRADE_NONE
    samples_per_ray: int = 0
    resolution_scale: float = 1.0


class AdmissionController:
    """Stateless ladder decisions over live queue depth and EWMA speed."""

    def __init__(self, policy: AdmissionPolicy = None):
        self.policy = policy or AdmissionPolicy()
        self.admitted = 0
        self.degraded = 0
        self.shed = 0
        self.rejected_deadline = 0

    def decide(
        self,
        request,
        now: float,
        queued_rays: int,
        full_samples_per_ray: int,
        est_s_per_ray: float = None,
    ) -> AdmissionDecision:
        """Admit, degrade, or reject one request at service-clock ``now``.

        ``est_s_per_ray`` is the service's EWMA estimate of delivered
        seconds per ray (``None`` before the first completion — then the
        feasibility check is skipped and only already-expired deadlines
        reject).
        """
        policy = self.policy
        deadline = request.deadline_s
        if deadline is not None and deadline <= now:
            self.rejected_deadline += 1
            return AdmissionDecision(
                admitted=False, status=REJECT_DEADLINE_EXPIRED
            )
        over_cap = queued_rays > policy.max_queue_rays
        if over_cap:
            spared = (
                request.priority <= policy.shed_spares_priority
                and queued_rays
                <= policy.max_queue_rays * policy.priority_headroom
            )
            if not spared:
                self.shed += 1
                return AdmissionDecision(admitted=False, status=REJECT_SHED)
        if over_cap or queued_rays > policy.heavy_degrade_rays:
            level = DEGRADE_RESOLUTION
        elif queued_rays > policy.degrade_rays:
            level = DEGRADE_SAMPLES
        else:
            level = DEGRADE_NONE
        samples = full_samples_per_ray
        resolution_scale = 1.0
        if level >= DEGRADE_SAMPLES:
            samples = max(samples // 2, policy.min_samples_per_ray)
        if level >= DEGRADE_RESOLUTION:
            resolution_scale = 0.5
        if deadline is not None and est_s_per_ray is not None:
            # Feasibility at the degraded budget: admitting work that
            # cannot finish by its deadline only burns board time that a
            # feasible request behind it needed.
            est_rays = request.n_rays * resolution_scale**2
            backlog_rays = queued_rays + est_rays
            est_finish = now + backlog_rays * est_s_per_ray * (
                samples / max(full_samples_per_ray, 1)
            )
            if est_finish > deadline:
                self.rejected_deadline += 1
                return AdmissionDecision(
                    admitted=False, status=REJECT_DEADLINE_INFEASIBLE
                )
        self.admitted += 1
        if level != DEGRADE_NONE:
            self.degraded += 1
        return AdmissionDecision(
            admitted=True,
            status=None,
            degrade_level=level,
            samples_per_ray=samples,
            resolution_scale=resolution_scale,
        )
