"""Load generation: replay arrival traces against a :class:`RenderService`.

Two standard drivers from the serving-systems literature:

* **open loop** — arrivals are a Poisson process at a fixed offered rate,
  independent of service progress.  Sweeping the rate produces the
  latency–throughput curve and exposes the admission ladder under
  overload.
* **closed loop** — each client submits its next frame only when the
  previous one resolves (one outstanding request per client), the
  pattern of an interactive viewer.  A single closed-loop client is also
  the bit-identity harness: with no competing traffic, the served frame
  must match a direct ``render_image`` call exactly.

The module also builds the demo multi-scene registry the smoke tests and
``runner serve`` use: analytic object scenes with exact occupancy grids
and small untrained radiance fields (serving measures scheduling and
hardware time, not reconstruction quality).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets import synthetic
from ..nerf.camera import Camera, sphere_poses
from ..nerf.hash_encoding import HashEncodingConfig
from ..nerf.model import InstantNGPModel, ModelConfig
from ..nerf.occupancy import OccupancyGrid
from .batching import PRIORITY_BATCH, PRIORITY_INTERACTIVE, PRIORITY_STANDARD, RenderRequest
from .registry import SceneRegistry
from .service import RenderService

#: Default priority mix of the open-loop driver (interactive-heavy, as a
#: viewer-facing deployment would see).
DEFAULT_PRIORITY_MIX = (
    (PRIORITY_INTERACTIVE, 0.5),
    (PRIORITY_STANDARD, 0.3),
    (PRIORITY_BATCH, 0.2),
)


def poisson_arrivals(
    rate_hz: float, duration_s: float, rng: np.random.Generator
) -> np.ndarray:
    """Arrival times of a Poisson process over ``[0, duration_s)``.

    Exponential inter-arrival gaps at the offered rate, truncated at the
    horizon — the standard open-loop workload model.
    """
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    # Draw enough gaps to overshoot the horizon with high probability,
    # topping up in the (rare) tail case.
    times = []
    t = 0.0
    while True:
        gaps = rng.exponential(1.0 / rate_hz, size=max(int(rate_hz * duration_s * 1.5) + 16, 16))
        for gap in gaps:
            t += gap
            if t >= duration_s:
                return np.array(times)
            times.append(t)


def demo_model(seed: int = 0) -> InstantNGPModel:
    """A small untrained radiance field for serving demos and smokes."""
    config = ModelConfig(
        encoding=HashEncodingConfig(
            n_levels=4, log2_table_size=10, finest_resolution=64
        ),
        hidden_width=16,
        geo_features=8,
    )
    return InstantNGPModel(config, seed=seed)


def demo_camera(width: int = 32, height: int = 32) -> Camera:
    """A fixed object-scene viewpoint at the requested probe resolution."""
    pose = sphere_poses(1, radius=2.6)[0]
    return Camera(width=width, height=height, focal=1.1 * width, c2w=pose)


def build_demo_registry(
    scenes=None,
    n_scenes: int = 2,
    occupancy_resolution: int = 24,
    max_samples_per_ray: int = 32,
    memory_budget_bytes: int = None,
    seed: int = 0,
) -> SceneRegistry:
    """Deploy analytic object scenes into a fresh registry.

    Occupancy grids come straight from each scene's analytic density
    field (exact geometry, no training), so the serving workload shape —
    occupancy-gated samples per ray — is realistic even though the
    radiance fields are untrained.
    """
    names = tuple(scenes) if scenes else synthetic.SYNTHETIC_SCENES[:n_scenes]
    registry = SceneRegistry(
        memory_budget_bytes=memory_budget_bytes,
        max_samples_per_ray=max_samples_per_ray,
    )
    for i, name in enumerate(names):
        scene = synthetic.make_scene(name)
        occupancy = OccupancyGrid(resolution=occupancy_resolution, threshold=0.5)
        occupancy.set_from_function(
            scene.density_unit, rng=np.random.default_rng(seed + i)
        )
        registry.deploy(
            name,
            model=demo_model(seed=seed + i),
            occupancy=occupancy,
            normalizer=scene.normalizer(),
            background=scene.background,
        )
    return registry


@dataclass
class LoadReport:
    """Outcome of one load-generation run against a service."""

    driver: str
    offered_rate_hz: float
    duration_s: float
    n_offered: int
    stats: dict
    slo: dict
    responses: list = field(default_factory=list, repr=False)

    @property
    def completed(self) -> int:
        """Requests that rendered to completion."""
        return self.stats["completed"]

    @property
    def achieved_fps(self) -> float:
        """Completed frames per simulated second of service time."""
        elapsed = self.stats["now_s"]
        return self.completed / elapsed if elapsed > 0 else 0.0

    def row(self) -> dict:
        """Flat table row for the serving-study sweep."""
        overall = [
            c for c in self.slo["classes"] if c["completed"] > 0
        ]
        def _pct(key):
            values = [c[key] for c in overall]
            return max(values) if values else float("nan")

        statuses = self.slo["statuses"]
        return {
            "driver": self.driver,
            "offered_hz": self.offered_rate_hz,
            "offered": self.n_offered,
            "completed": self.completed,
            "shed": statuses.get("shed_overload", 0),
            "rejected": sum(
                n for s, n in statuses.items() if s.startswith("rejected")
            ),
            "degraded": self.stats["degraded"],
            "achieved_fps": self.achieved_fps,
            "utilization": self.stats["utilization"],
            "p50_ms": _pct("p50_s") * 1e3,
            "p95_ms": _pct("p95_s") * 1e3,
            "p99_ms": _pct("p99_s") * 1e3,
            "slo_met": all(c["slo_met"] for c in overall) if overall else False,
        }


def run_open_loop(
    service: RenderService,
    scene_names,
    rate_hz: float,
    duration_s: float,
    camera: Camera = None,
    rng: np.random.Generator = None,
    priority_mix=DEFAULT_PRIORITY_MIX,
    hw_scale: float = 1.0,
    deadline_slack_s: float = None,
    id_start: int = 0,
) -> LoadReport:
    """Drive a Poisson arrival trace through the service and drain it.

    Scenes and priority classes are drawn independently per request;
    ``deadline_slack_s`` (when given) sets each request's deadline that
    far past its arrival.  ``hw_scale`` bills each probe frame as that
    many full frames (see :class:`~repro.serve.batching.RenderRequest`).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    camera = camera or demo_camera()
    scene_names = list(scene_names)
    priorities = [p for p, _ in priority_mix]
    weights = np.array([w for _, w in priority_mix], dtype=np.float64)
    weights = weights / weights.sum()
    arrivals = poisson_arrivals(rate_hz, duration_s, rng)
    for i, arrival_s in enumerate(arrivals):
        scene = scene_names[int(rng.integers(len(scene_names)))]
        priority = priorities[int(rng.choice(len(priorities), p=weights))]
        deadline = (
            float(arrival_s) + deadline_slack_s
            if deadline_slack_s is not None
            else None
        )
        service.submit(
            RenderRequest(
                request_id=id_start + i,
                scene=scene,
                camera=camera,
                arrival_s=float(arrival_s),
                priority=priority,
                deadline_s=deadline,
                hw_scale=hw_scale,
            )
        )
    service.run()
    return LoadReport(
        driver="open-loop",
        offered_rate_hz=rate_hz,
        duration_s=duration_s,
        n_offered=len(arrivals),
        stats=service.stats(),
        slo=service.slo.summary(),
    )


def run_closed_loop(
    service: RenderService,
    scene: str,
    n_frames: int,
    camera: Camera = None,
    priority: int = PRIORITY_INTERACTIVE,
    hw_scale: float = 1.0,
    think_s: float = 0.0,
    id_start: int = 0,
) -> LoadReport:
    """One interactive client: submit, await the frame, submit the next.

    Returns the report with per-frame :class:`RenderResponse` objects
    (frames included), which is what the bit-identity checks compare
    against direct renders.
    """
    if n_frames < 1:
        raise ValueError("n_frames must be positive")
    camera = camera or demo_camera()
    responses = []

    def on_complete(response):
        responses.append(response)
        done = len(responses)
        if done < n_frames:
            service.submit(
                RenderRequest(
                    request_id=id_start + done,
                    scene=scene,
                    camera=camera,
                    arrival_s=service.now_s + think_s,
                    priority=priority,
                    hw_scale=hw_scale,
                ),
                on_complete=on_complete,
            )

    service.submit(
        RenderRequest(
            request_id=id_start,
            scene=scene,
            camera=camera,
            arrival_s=service.now_s,
            priority=priority,
            hw_scale=hw_scale,
        ),
        on_complete=on_complete,
    )
    service.run()
    duration = service.now_s
    return LoadReport(
        driver="closed-loop",
        offered_rate_hz=(
            len(responses) / duration if duration > 0 else float("inf")
        ),
        duration_s=duration,
        n_offered=len(responses),
        stats=service.stats(),
        slo=service.slo.summary(),
        responses=responses,
    )
