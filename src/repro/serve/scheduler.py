"""Dynamic ray-batch scheduler: coalesce request slices per scene.

Requests for the same scene rarely arrive aligned: one client wants a
full frame while another wants a 16x16 tile.  The scheduler keeps one
FIFO of :class:`~repro.serve.batching.RaySlice` work items per scene and
forms a hardware dispatch when either enough rays have pooled
(``max_batch_rays``) or the oldest slice has waited ``max_wait_s`` —
FlexNeRFer's adaptive batch-shape argument in queueing form.  Slices are
never split, so each one still renders through its own
``render_rays`` call and the coalescing affects only *when* hardware
time is charged, never the pixels produced.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .batching import DispatchBatch

#: Scheduler verdicts returned by :meth:`DynamicRayBatchScheduler.next_action`.
ACTION_DISPATCH = "dispatch"
ACTION_WAIT = "wait"
ACTION_IDLE = "idle"


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the coalescing policy.

    ``slice_rays`` is the fixed slice granularity (and therefore the
    ``chunk`` a bit-identical direct render must use); ``max_batch_rays``
    caps one dispatch; ``max_wait_s`` bounds how long a lone slice can
    sit waiting for company before it is flushed anyway.
    """

    slice_rays: int = 4096
    max_batch_rays: int = 16384
    max_wait_s: float = 4e-3

    def __post_init__(self):
        if self.slice_rays < 1:
            raise ValueError("slice_rays must be positive")
        if self.max_batch_rays < self.slice_rays:
            raise ValueError("max_batch_rays must be >= slice_rays")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")


class DynamicRayBatchScheduler:
    """Per-scene slice queues with max-batch / max-wait dispatch."""

    def __init__(self, policy: BatchPolicy = None):
        self.policy = policy or BatchPolicy()
        #: scene name -> deque of ``(RaySlice, enqueue_s)``.
        self._queues = {}
        self.batches_formed = 0
        self.slices_dropped = 0

    # -- enqueue ---------------------------------------------------------

    def enqueue(self, scene: str, slices: list, now: float) -> None:
        """Append a request's slices to its scene queue."""
        queue = self._queues.setdefault(scene, deque())
        for item in slices:
            queue.append((item, now))

    # -- introspection ---------------------------------------------------

    def queued_rays(self, scene: str = None) -> int:
        """Rays waiting in one scene's queue (or across all scenes)."""
        if scene is not None:
            return sum(s.n_rays for s, _ in self._queues.get(scene, ()))
        return sum(
            s.n_rays for queue in self._queues.values() for s, _ in queue
        )

    def queued_slices(self) -> int:
        """Slices waiting across all scenes."""
        return sum(len(queue) for queue in self._queues.values())

    @property
    def has_work(self) -> bool:
        """Whether any live slice is queued."""
        return any(self._queues.values())

    # -- decision --------------------------------------------------------

    def _purge_dead(self) -> None:
        """Drop slices whose request already reached a terminal status.

        A force-undeployed scene (or an expired request) terminates its
        :class:`ActiveRequest` while slices are still queued; those
        slices must not reach the hardware.
        """
        for scene in list(self._queues):
            queue = self._queues[scene]
            live = deque(
                (s, t) for s, t in queue if s.active.status is None
            )
            self.slices_dropped += len(queue) - len(live)
            if live:
                self._queues[scene] = live
            else:
                del self._queues[scene]

    def _scene_ready_s(self, queue) -> float:
        """Service-clock time at which this queue's dispatch is due."""
        rays = sum(s.n_rays for s, _ in queue)
        oldest = min(t for _, t in queue)
        if rays >= self.policy.max_batch_rays:
            return oldest  # already over the batch cap: due immediately
        return oldest + self.policy.max_wait_s

    def next_action(self, now: float, next_arrival_s: float = None) -> tuple:
        """Decide the service's next move at service-clock ``now``.

        Returns one of::

            ("dispatch", DispatchBatch)  # render this batch now
            ("wait", t)                  # nothing due before absolute time t
            ("idle", None)               # no queued work and no known arrival

        A max-wait expiry with an empty queue is *not* a dispatch — the
        flush timer only ever fires on behalf of queued slices, so no
        zero-ray batch can reach the hardware.
        """
        self._purge_dead()
        if not self._queues:
            if next_arrival_s is not None:
                return (ACTION_WAIT, next_arrival_s)
            return (ACTION_IDLE, None)
        ready = {
            scene: self._scene_ready_s(queue)
            for scene, queue in self._queues.items()
        }
        due = [scene for scene, t in ready.items() if t <= now]
        if not due:
            wake = min(ready.values())
            if next_arrival_s is not None:
                wake = min(wake, next_arrival_s)
            return (ACTION_WAIT, wake)
        # Among due scenes, serve the one whose head-of-line slice has the
        # best (lowest) priority class; break ties by oldest enqueue.
        def _rank(scene):
            head_slice, head_t = self._queues[scene][0]
            return (head_slice.active.request.priority, head_t)

        return (ACTION_DISPATCH, self._form_batch(min(due, key=_rank), now))

    def _form_batch(self, scene: str, now: float) -> DispatchBatch:
        """Pop FIFO slices of one scene up to the max-batch cap."""
        queue = self._queues[scene]
        slices = []
        rays = 0
        while queue:
            head, _ = queue[0]
            if slices and rays + head.n_rays > self.policy.max_batch_rays:
                break
            queue.popleft()
            slices.append(head)
            rays += head.n_rays
        if not queue:
            del self._queues[scene]
        self.batches_formed += 1
        return DispatchBatch(scene=scene, slices=slices, formed_s=now)
