"""Table VI: sampling-module ablation — speedup from Technique T1.

Runs Stage I with and without model normalization & partitioning plus
dynamic scheduling on each object scene's trace.  The paper reports
5.4x (ship, densest) through 20.2x (mic, sparsest).
"""

from __future__ import annotations

import numpy as np

from ..sim.sampling_module import SamplingModule
from .base import ExperimentResult
from .workloads import synthetic_workloads

PAPER_SPEEDUP = {
    "ship": 5.4,
    "mic": 20.2,
    "materials": 10.6,
    "lego": 7.8,
    "hotdog": 7.3,
    "ficus": 18.8,
    "drums": 14.4,
    "chair": 9.0,
}


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Table VI: sampling ablation (T1) (see the module docstring)."""
    scenes = ("mic", "lego", "ship") if quick else None
    workloads = synthetic_workloads(scenes=scenes)
    module = SamplingModule()
    rows = []
    speedups = {}
    for w in workloads:
        naive = module.simulate(w.trace, optimized=False)
        opt = module.simulate(w.trace, optimized=True)
        speedup = naive.cycles / opt.cycles
        speedups[w.name] = speedup
        rows.append(
            {
                "scene": w.name,
                "samples_per_ray": round(w.mean_samples_per_ray, 2),
                "naive_cycles": round(naive.cycles),
                "optimized_cycles": round(opt.cycles),
                "optimized_utilization": round(opt.utilization, 3),
                "speedup": round(speedup, 1),
                "paper_speedup": PAPER_SPEEDUP[w.name],
            }
        )
    ordered = sorted(workloads, key=lambda w: w.mean_samples_per_ray)
    return ExperimentResult(
        experiment="sampling module ablation (Technique T1)",
        paper_ref="Table VI",
        rows=rows,
        summary={
            "min_speedup": float(np.min(list(speedups.values()))),
            "max_speedup": float(np.max(list(speedups.values()))),
            "paper_range": "5.4x - 20.2x",
            # Density anti-correlation: the sparsest scene must beat the
            # densest, as in the paper.
            "sparsest_beats_densest": speedups[ordered[0].name]
            > speedups[ordered[-1].name],
        },
    )
