"""Table II: rendering quality of INT8-quantized training.

Trains the functional NeRF with weights INT8-round-tripped every N
iterations.  The paper reports (NeRF-Synthetic, 5000 iterations,
scene-averaged): never 31.7, every 1000 it 30.1 (-1.6), every 200 it
26.0 (-5.7), every iteration non-convergent.  Our procedural scenes and
small models shift the absolute PSNR, but the monotone degradation and
the every-iteration collapse reproduce.
"""

from __future__ import annotations

import numpy as np

from ..datasets import synthetic
from ..nerf.hash_encoding import HashEncodingConfig
from ..nerf.model import InstantNGPModel, ModelConfig
from ..nerf.quantization import PeriodicQuantizationHook
from ..nerf.trainer import Trainer, TrainerConfig
from .base import ExperimentResult

#: Quantization intervals of the paper's columns; 0 = never.
INTERVALS = (0, 1000, 200, 1)
PAPER_PSNR = {0: 31.7, 1000: 30.1, 200: 26.0, 1: float("nan")}


def _train_with_quantization(
    dataset, interval: int, iterations: int, seed: int = 0
) -> float:
    model = InstantNGPModel(
        ModelConfig(
            encoding=HashEncodingConfig(
                n_levels=6, log2_table_size=12, base_resolution=8, finest_resolution=96
            ),
            hidden_width=32,
        ),
        seed=seed,
    )
    trainer = Trainer(
        model,
        dataset.cameras,
        dataset.images,
        dataset.normalizer,
        TrainerConfig(
            batch_rays=512,
            lr=5e-3,
            max_samples_per_ray=48,
            occupancy_resolution=24,
            seed=seed,
        ),
    )
    # Scale the interval to the shortened schedule: the paper quantizes
    # every {1000, 200, 1} of 5000 iterations; we keep the same fractions.
    scaled = max(1, round(interval * iterations / 5000)) if interval else 0
    trainer.post_step_hook = PeriodicQuantizationHook(scaled)
    trainer.train(iterations)
    return trainer.eval_psnr(n_views=2)


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Table II: INT8 quantized-training quality (see the module docstring)."""
    scenes = ("mic", "lego") if quick else synthetic.SYNTHETIC_SCENES
    iterations = 250 if quick else 1000
    datasets = [
        synthetic.make_dataset(name, n_views=8, width=32, height=32, gt_steps=96)
        for name in scenes
    ]
    rows = []
    measured = {}
    for interval in INTERVALS:
        scores = [
            _train_with_quantization(ds, interval, iterations) for ds in datasets
        ]
        psnr = float(np.mean(scores))
        measured[interval] = psnr
        label = {0: "never", 1: "every iter"}.get(interval, f"every {interval} iter")
        rows.append(
            {
                "quantization": label,
                "psnr": round(psnr, 2),
                "paper_psnr": PAPER_PSNR[interval],
                "drop_vs_never": None,
            }
        )
    for row, interval in zip(rows, INTERVALS):
        row["drop_vs_never"] = round(measured[0] - measured[interval], 2)
    return ExperimentResult(
        experiment="INT8 quantized-training quality",
        paper_ref="Table II",
        rows=rows,
        summary={
            "monotone_degradation": measured[0] >= measured[1000] >= measured[200],
            "every_iter_drop_db": measured[0] - measured[1],
            "scenes": ",".join(scenes),
            "iterations": iterations,
        },
    )
