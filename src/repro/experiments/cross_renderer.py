"""Cross-renderer study: ``ngp`` vs ``tensorf`` through one pipeline.

The headline experiment of the :mod:`repro.pipeline` abstraction: both
renderers are constructed *by name* from the renderer registry, trained
by the same :class:`~repro.nerf.trainer.Trainer` on the same synthetic
scene, evaluated through the same staged
:class:`~repro.pipeline.renderer.Renderer`, and served by the same
:class:`~repro.serve.service.RenderService` — only the renderer name
differs.  Each row reports quality (PSNR), offline speed (seconds per
ray from the admission EWMA, keyed per (scene, renderer)), and the
service-level outcome (interactive SLO attainment), with a served-frame
bit-identity check against each renderer's own offline
``render_image`` as the correctness anchor.

The summary carries one greppable ``renderer: <name>`` line per
renderer so CI and log tooling can pull per-renderer results without
parsing the table.
"""

from __future__ import annotations

import numpy as np

from .. import pipeline
from ..datasets import synthetic
from ..nerf.sampling import RayMarcher, SamplerConfig
from ..nerf.trainer import Trainer, TrainerConfig
from ..nerf.volume_rendering import psnr
from ..serve import (
    RenderService,
    SceneRegistry,
    ServiceConfig,
    run_closed_loop,
)
from .base import ExperimentResult

#: Training/eval seed — fixed so rows are run-to-run reproducible.
SEED = 0

#: Per-renderer registry configs, sized for the quick/full modes.  Keys
#: are renderer names resolved through :func:`repro.pipeline.create`.
RENDERER_CONFIGS = {
    "ngp": {
        True: {
            "encoding": {
                "n_levels": 4,
                "n_features": 2,
                "log2_table_size": 12,
                "base_resolution": 8,
                "finest_resolution": 64,
            },
            "hidden_width": 32,
            "geo_features": 15,
        },
        False: {
            "encoding": {
                "n_levels": 8,
                "n_features": 2,
                "log2_table_size": 14,
                "base_resolution": 8,
                "finest_resolution": 128,
            },
            "hidden_width": 32,
            "geo_features": 15,
        },
    },
    "tensorf": {
        True: {
            "resolution": 24,
            "n_components": 4,
            "hidden_width": 32,
            "geo_features": 16,
        },
        False: {
            "resolution": 48,
            "n_components": 8,
            "hidden_width": 32,
            "geo_features": 16,
        },
    },
}

#: Samples-per-ray budget shared by training, offline eval, and serving
#: (the registry's marcher) so the bit-identity anchor holds.
MAX_SAMPLES = 32


def _train_renderer(name: str, dataset, quick: bool):
    """Train one renderer family; returns ``(eval_renderer, trainer)``.

    The model comes out of the renderer registry by name; after
    training, the trained field plus the trainer's warmed occupancy grid
    are re-wrapped into a staged renderer with a jitter-free eval
    marcher (the same sampling config the serving registry uses).
    """
    staged = pipeline.create(name, config=RENDERER_CONFIGS[name][quick], seed=SEED)
    config = TrainerConfig(
        batch_rays=256 if quick else 1024,
        lr=5e-3,
        max_samples_per_ray=MAX_SAMPLES,
        occupancy_resolution=32,
        occupancy_interval=8,
        seed=SEED,
    )
    trainer = Trainer(
        staged.field, dataset.cameras, dataset.images, dataset.normalizer, config
    )
    for _ in range(80 if quick else 400):
        trainer.train_step()
    eval_renderer = pipeline.wrap_model(
        trainer.model,
        marcher=RayMarcher(SamplerConfig(max_samples=MAX_SAMPLES)),
        occupancy=trainer.occupancy,
    )
    return eval_renderer, trainer


def _serve_renderer(name: str, renderer, dataset, camera, n_frames: int) -> dict:
    """Deploy one trained renderer and drive a closed-loop burst.

    Returns the serving-side cells of the row: the per-(scene, renderer)
    EWMA seconds-per-ray, interactive SLO attainment, p50 latency, and
    whether every served frame is bit-identical to the renderer's own
    offline :meth:`~repro.pipeline.renderer.Renderer.render_image`.
    """
    scene = f"{name}-scene"
    registry = SceneRegistry(max_samples_per_ray=MAX_SAMPLES)
    registry.deploy(
        scene,
        model=renderer.field,
        occupancy=renderer.occupancy,
        normalizer=dataset.normalizer,
    )
    service = RenderService(registry, config=ServiceConfig(keep_frames=True))
    report = run_closed_loop(service, scene, n_frames=n_frames, camera=camera)
    direct = renderer.render_image(
        camera, dataset.normalizer, chunk=service.config.batch.slice_rays
    )
    bit_identical = all(
        r.completed and np.array_equal(r.frame, direct)
        for r in report.responses
    )
    interactive = [c for c in report.slo["classes"] if c["completed"] > 0]
    attained = interactive[0]["attained"] if interactive else float("nan")
    return {
        "s_per_ray": service.stats()["ewma_s_per_ray_by_key"].get(
            f"{scene}/{name}/full"
        ),
        "slo_attained": attained,
        "p50_ms": report.row()["p50_ms"],
        "served_bit_identical": bool(bit_identical),
    }


def run(quick: bool = True) -> ExperimentResult:
    """Train, evaluate, and serve both stock renderers on one scene."""
    dataset = synthetic.make_dataset(
        "mic",
        n_views=4 if quick else 8,
        width=16 if quick else 32,
        height=16 if quick else 32,
        gt_steps=32 if quick else 96,
    )
    camera = dataset.cameras[-1]
    target = dataset.images[-1]
    n_frames = 3 if quick else 6

    rows, summary = [], {}
    quality = {}
    for name in sorted(pipeline.available()):
        renderer, _ = _train_renderer(name, dataset, quick)
        image = renderer.render_image(camera, dataset.normalizer)
        quality[name] = psnr(image.astype(np.float64), target)
        served = _serve_renderer(name, renderer, dataset, camera, n_frames)
        rows.append(
            {
                "renderer": name,
                "parameters": renderer.n_parameters,
                "psnr_db": round(quality[name], 2),
                "s_per_ray": served["s_per_ray"],
                "slo_attained": served["slo_attained"],
                "p50_ms": served["p50_ms"],
                "bit_identical": served["served_bit_identical"],
            }
        )
        summary[f"renderer: {name}"] = (
            f"psnr_db={quality[name]:.2f} "
            f"s_per_ray={served['s_per_ray']:.3g} "
            f"slo_attained={served['slo_attained']:.2f}"
        )
    summary["served_bit_identical"] = all(r["bit_identical"] for r in rows)
    summary["psnr_gap_db"] = quality["ngp"] - quality["tensorf"]
    # Both stock renderers should beat an untrained field by a wide
    # margin on this scene; ~10 dB is the flat-background floor.
    summary["both_renderers_trained"] = all(
        q > 12.0 for q in quality.values()
    )
    return ExperimentResult(
        experiment="cross_renderer",
        paper_ref="pipeline: cross-renderer quality/speed/SLO comparison",
        rows=rows,
        summary=summary,
    )
