"""Image-warping baseline vs end-to-end rendering under head motion.

Quantifies Table III's footnote on MetaVRain: a warp-then-patch renderer
is only real-time while >97% of pixels carry over between frames.  As
head motion grows, the re-render residual explodes and its frame rate
collapses to the raw pipeline rate, while Fusion-3D's full re-render is
motion-invariant.  The crossover tells an AR/VR integrator how much head
motion each design tolerates.
"""

from __future__ import annotations

import numpy as np

from ..baselines import ImageWarpingModel, METAVRAIN
from ..core.metrics import fps_from_throughput
from ..sim.chip import ChipConfig, SingleChipAccelerator
from .base import ExperimentResult
from .workloads import synthetic_workloads

#: Typical head angular velocities, degrees/second (slow scan to rapid
#: saccade-following turns).
ANGULAR_VELOCITIES = (0.0, 15.0, 30.0, 60.0, 120.0, 240.0, 480.0)


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Table III fn. 1: warping vs motion (see the module docstring)."""
    workload = synthetic_workloads(scenes=("lego",))[0]
    chip = SingleChipAccelerator(ChipConfig.scaled())
    ours_fps = fps_from_throughput(
        chip.simulate(workload.trace).samples_per_second
    )
    metavrain_raw_fps = fps_from_throughput(METAVRAIN.inference_mps * 1e6)
    warping = ImageWarpingModel(raw_fps=metavrain_raw_fps)
    rows = []
    for velocity in ANGULAR_VELOCITIES:
        overlap = warping.overlap_fraction(velocity)
        warped_fps = warping.effective_fps(velocity)
        rows.append(
            {
                "head_motion_deg_s": velocity,
                "frame_overlap": round(overlap, 4),
                "metavrain_warped_fps": round(min(warped_fps, 999.0), 1),
                "metavrain_realtime": "yes" if warped_fps >= 30.0 else "no",
                "fusion3d_fps": round(ours_fps, 1),
                "fusion3d_realtime": "yes" if ours_fps >= 30.0 else "no",
            }
        )
    headroom = warping.realtime_headroom_deg_s()
    overlap_at_limit = warping.overlap_fraction(headroom)
    return ExperimentResult(
        experiment="image-warping reuse vs full re-render under motion",
        paper_ref="Table III footnote 1 (MetaVRain)",
        rows=rows,
        summary={
            "metavrain_raw_fps": metavrain_raw_fps,
            "warping_headroom_deg_s": headroom,
            "overlap_needed_for_realtime": overlap_at_limit,
            "paper_overlap_threshold": 0.97,
            "fusion3d_motion_invariant": all(
                r["fusion3d_realtime"] == "yes" for r in rows
            ),
        },
    )
