"""Dataset workload statistics: the substitution-argument audit.

The procedural scenes stand in for NeRF-Synthetic / NeRF-360 because the
hardware results depend on workload *statistics*, not image content.
This experiment tabulates those statistics for all fifteen scenes —
occupancy fraction, kept samples per ray, cube-pair fan-out, DDA cells
visited — so the substitution can be inspected (and re-tuned) directly.
"""

from __future__ import annotations

import numpy as np

from .base import ExperimentResult
from .workloads import nerf360_workloads, synthetic_workloads


def _rows_for(workloads, suite: str) -> list:
    rows = []
    for w in workloads:
        trace = w.trace
        pairs = [len(p) for p in trace.pair_durations if p]
        rows.append(
            {
                "suite": suite,
                "scene": w.name,
                "occupancy_frac": round(w.occupancy_fraction, 4),
                "samples_per_ray": round(trace.mean_samples_per_ray, 2),
                "keep_fraction": round(trace.occupancy_fraction, 3),
                "mean_pairs_per_ray": round(float(np.mean(pairs)), 2) if pairs else 0.0,
                "cells_visited_per_ray": round(
                    trace.n_cells_visited / max(trace.n_rays, 1), 1
                ),
            }
        )
    return rows


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce DESIGN.md: substitution statistics (see the module docstring)."""
    synth = synthetic_workloads(
        scenes=("mic", "lego", "ship") if quick else None
    )
    large = nerf360_workloads(scenes=("bicycle", "garden") if quick else None)
    rows = _rows_for(synth, "synthetic-8") + _rows_for(large, "nerf-360")
    synth_spr = [r["samples_per_ray"] for r in rows if r["suite"] == "synthetic-8"]
    large_spr = [r["samples_per_ray"] for r in rows if r["suite"] == "nerf-360"]
    return ExperimentResult(
        experiment="procedural dataset workload statistics",
        paper_ref="DESIGN.md substitution table",
        rows=rows,
        summary={
            "synthetic_spr_range": f"{min(synth_spr)} - {max(synth_spr)}",
            "nerf360_spr_range": f"{min(large_spr)} - {max(large_spr)}",
            "large_scenes_denser": min(large_spr) > min(synth_spr),
        },
    )
