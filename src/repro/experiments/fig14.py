"""Fig. 14: chiplet-based scaling — I/O-module area vs model size.

Sec. VIII's discussion: in-package chiplet links are fast enough that a
buffer in the I/O module can cache the model working set, keeping the
*off-package* bandwidth at 0.6 GB/s while the computing chips are
temporally reused for larger models.  The cost is I/O-module area, which
grows with the buffered model — the figure's rising curve.

The area model is shared with :mod:`repro.sim.chiplet`, which simulates
the runtime side of the same trade (see the ``chiplet_scaling``
experiment).
"""

from __future__ import annotations

from ..core.bandwidth import BandwidthModel
from ..hw.interconnect import CHIPLET_LINK, USB_3_2_GEN1
from ..sim.chiplet import ChipletConfig, ChipletSystem
from .base import ExperimentResult


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Fig. 14: chiplet I/O area (see the module docstring)."""
    model = BandwidthModel()
    system = ChipletSystem(ChipletConfig())
    rows = []
    base = system.io_module_area_mm2(model.table_bytes(12))
    for log2_table in range(14, 22):
        table_bytes = model.table_bytes(log2_table)
        area = system.io_module_area_mm2(table_bytes)
        # The chiplet link must sustain streaming the buffered working set
        # to the compute chips once per training iteration burst.
        stream_gbps = table_bytes * 3072 / 2.0 / 1e9
        rows.append(
            {
                "log2_table": log2_table,
                "table_mb": round(table_bytes / 1e6, 2),
                "io_module_mm2": round(area, 2),
                "area_vs_min": round(area / base, 1),
                "in_package_gbps": round(stream_gbps, 1),
                "chiplet_link_ok": "yes"
                if stream_gbps <= CHIPLET_LINK.bandwidth_gbps * 4
                else "no",
                "off_package_gbps": 0.6,
            }
        )
    return ExperimentResult(
        experiment="chiplet I/O-module area vs model size",
        paper_ref="Fig. 14",
        rows=rows,
        summary={
            "off_package_budget_gbps": USB_3_2_GEN1.bandwidth_gbps,
            "area_at_2^20_vs_2^14": rows[-2]["io_module_mm2"]
            / max(rows[0]["io_module_mm2"], 1e-9),
            "paper_claim": "I/O area must grow significantly with model size",
        },
    )
