"""Table I: off-chip bandwidth of prior accelerators vs edge platforms.

Prior accelerators report DRAM bandwidths far above the 0.625 GB/s USB
budget edge devices actually expose for a plug-in accelerator; the
end-to-end chip's computed requirement fits under it.
"""

from __future__ import annotations

from ..baselines import TABLE1_ACCELERATORS, EDGE_PLATFORM_BANDWIDTH_GBPS
from ..core.bandwidth import BandwidthModel, WorkloadVolume
from ..hw.interconnect import USB_3_2_GEN1
from .base import ExperimentResult


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Table I: off-chip bandwidth comparison (see the module docstring)."""
    model = BandwidthModel()
    workload = WorkloadVolume.instant_training()
    ours = model.required_training_bandwidth_gbps(
        workload, table_bytes=model.table_bytes(14)
    )
    rows = []
    for spec in TABLE1_ACCELERATORS:
        rows.append(
            {
                "platform": spec.name,
                "kind": "prior accelerator",
                "supports_training": "yes" if spec.supports_training else "no",
                "bandwidth_gbps": spec.off_chip_bandwidth_gbps,
                "fits_usb": "yes"
                if spec.off_chip_bandwidth_gbps <= USB_3_2_GEN1.bandwidth_gbps
                else "no",
            }
        )
    for name, bw in EDGE_PLATFORM_BANDWIDTH_GBPS.items():
        rows.append(
            {
                "platform": name,
                "kind": "edge platform budget",
                "supports_training": "-",
                "bandwidth_gbps": bw,
                "fits_usb": "yes",
            }
        )
    rows.append(
        {
            "platform": "This work (Fusion-3D)",
            "kind": "this work",
            "supports_training": "yes (instant)",
            "bandwidth_gbps": round(ours, 3),
            "fits_usb": "yes" if ours <= USB_3_2_GEN1.bandwidth_gbps else "no",
        }
    )
    return ExperimentResult(
        experiment="off-chip bandwidth comparison",
        paper_ref="Table I",
        rows=rows,
        summary={
            "our_requirement_gbps": ours,
            "usb_budget_gbps": USB_3_2_GEN1.bandwidth_gbps,
            "paper_claim_gbps": 0.6,
            "min_prior_accelerator_gbps": min(
                s.off_chip_bandwidth_gbps for s in TABLE1_ACCELERATORS
            ),
        },
    )
