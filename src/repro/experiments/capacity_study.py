"""Capacity study: fit cost models, plan capacity, validate empirically.

The paper's provisioning claim — N chips sustain a workload at a latency
SLO — is only credible if the planning math survives contact with the
(simulated) service.  This experiment closes that loop for two scene
scales:

1. **profile**: fit a :class:`~repro.obs.costmodel.SceneCostModel` from
   repeated telemetry-recorded serving runs (s/ray with 95% CI,
   cycles/sample per module, samples/ray distribution);
2. **plan**: derive the max admission rate and board count for a latency
   SLO at 90% attainment (:func:`~repro.obs.planner.plan_capacity`);
3. **validate**: drive the Poisson load generator at exactly the planned
   rate (goodput attainment must land within 0.10 of the target) and at
   1.5x the planned rate (goodput must measurably degrade) —
   :func:`~repro.obs.planner.validate_plan`.

The study services run with immediate dispatch
(``BatchPolicy(max_wait_s=0)``) so the queueing model's assumptions hold
exactly; the planner's handling of a non-zero coalescing wait is
exercised separately by the cost model's ``overhead_s`` unit tests.

``plan: PASS`` in the summary is the token the CI ops job greps.
"""

from __future__ import annotations

from ..obs import PlanTarget, plan_capacity, profile_demo_scene, validate_plan
from ..serve import BatchPolicy
from .base import ExperimentResult

#: Billing multiplier per probe frame (see serving_study.HW_SCALE).
HW_SCALE = 200.0

#: SLO budget as a multiple of the modeled per-frame board time.  Large
#: enough that the tail term leaves headroom (lambda_max ~ 0.86 mu at
#: 90% attainment), small enough that 1.5x overload visibly blows it.
SLO_FRAME_FACTOR = 16.0

#: Required attainment the plans are made (and validated) against.
TARGET_ATTAINMENT = 0.9

#: Validation acceptance: goodput at the planned rate must land within
#: this absolute distance of the target attainment (overshoot is fine —
#: the plan is conservative by construction).
VALIDATION_BAND = 0.10

#: 1.5x overload must cost at least this much goodput vs the 1.0x run.
MIN_DEGRADATION = 0.10

#: Scene scales studied: (scene, probe resolution, max samples per ray).
SCALES = (
    ("chair", 12, 16),
    ("lego", 20, 32),
)


def _study_scale(scene, probe, max_samples, runs, frames, min_frames, seed):
    """Profile -> plan -> validate one scene scale; returns result rows."""
    policy = BatchPolicy(max_wait_s=0.0)
    model = profile_demo_scene(
        scene,
        runs=runs,
        probe=probe,
        max_samples=max_samples,
        hw_scale=HW_SCALE,
        frames=frames,
        seed=seed,
        batch_policy=policy,
    )
    s_frame = model.sim_s_per_frame()
    overhead = model.overhead_s.mean if model.overhead_s is not None else 0.0
    target = PlanTarget(
        rate_hz=2000.0,
        rays_per_frame=model.rays_per_frame,
        slo_s=overhead + SLO_FRAME_FACTOR * s_frame,
        attainment=TARGET_ATTAINMENT,
        max_utilization=0.95,
    )
    plan = plan_capacity(model, target)
    rows = []
    goodputs = {}
    for rate_scale in (1.0, 1.5):
        check = validate_plan(
            model,
            target,
            plan,
            rate_scale=rate_scale,
            min_frames=min_frames,
            seed=seed + 17,
            batch_policy=policy,
        )
        goodputs[rate_scale] = check["goodput_attainment"]
        rows.append(
            {
                "scene": scene,
                "rays_per_frame": target.rays_per_frame,
                "s_frame_ms": s_frame * 1e3,
                "slo_ms": target.slo_s * 1e3,
                "planned_hz": plan.max_admission_hz,
                "boards": plan.boards,
                "rate_scale": rate_scale,
                "offered": check["offered"],
                "completed": check["completed"],
                "goodput": check["goodput_attainment"],
                "p99_ms": check["p99_ms"],
                "utilization": check["utilization"],
            }
        )
    within_band = goodputs[1.0] >= TARGET_ATTAINMENT - VALIDATION_BAND
    degrades = goodputs[1.0] - goodputs[1.5] >= MIN_DEGRADATION
    return rows, plan, within_band, degrades


def run(quick: bool = True) -> ExperimentResult:
    """Run the profile -> plan -> validate loop over both scene scales."""
    if quick:
        runs, frames, min_frames = 2, 6, 100
    else:
        runs, frames, min_frames = 3, 10, 200
    rows = []
    checks = []
    for i, (scene, probe, max_samples) in enumerate(SCALES):
        scale_rows, plan, within_band, degrades = _study_scale(
            scene, probe, max_samples, runs, frames, min_frames, seed=11 * i
        )
        rows.extend(scale_rows)
        checks.append(
            {
                "scene": scene,
                "feasible": plan.feasible,
                "within_band": within_band,
                "degrades": degrades,
            }
        )
    ok = all(c["feasible"] and c["within_band"] and c["degrades"] for c in checks)
    summary = {
        "scales": len(SCALES),
        "all_plans_feasible": all(c["feasible"] for c in checks),
        "all_within_band": all(c["within_band"] for c in checks),
        "all_overloads_degrade": all(c["degrades"] for c in checks),
        "validation_band": VALIDATION_BAND,
        "target_attainment": TARGET_ATTAINMENT,
        "plan": "PASS" if ok else "FAIL",
    }
    return ExperimentResult(
        experiment="capacity_study",
        paper_ref="extension: capacity planning from fitted cost models",
        rows=rows,
        summary=summary,
    )
