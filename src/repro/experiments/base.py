"""Common result type and formatting for the experiment runners.

Every experiment module exposes ``run(quick=True) -> ExperimentResult``.
``quick`` trades statistical depth (training iterations, dataset size)
for runtime; the reproduced *shape* is the same in both modes.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass
class ExperimentResult:
    """One table's/figure's reproduced data."""

    experiment: str
    #: The paper artefact this reproduces, e.g. "Table III".
    paper_ref: str
    #: List of dict rows; keys are column names.
    rows: list
    #: Headline scalars worth asserting on (paper-vs-measured pairs).
    summary: dict = field(default_factory=dict)
    #: Optional observability digest (metrics snapshot + span aggregates)
    #: attached by the runner when telemetry was enabled for the run.
    telemetry: dict = None

    def to_json(self) -> str:
        """Machine-readable dump (rows + summary + telemetry) for tooling."""
        payload = self.to_payload()
        if self.telemetry is None:
            payload.pop("telemetry")
        return json.dumps(payload, indent=2)

    def to_payload(self) -> dict:
        """JSON-safe dict for caching and cross-process shipping.

        Normalizes rows/summary/telemetry through :func:`_clean` (numpy
        scalars -> python, NaN -> None, tuples -> lists), so a result
        that round-trips through the cache or a pool worker is
        *bit-identical* to one built in-process from the same payload —
        the invariant behind the ``--jobs 1`` vs ``--jobs 4`` and
        warm-vs-cold cache equality tests.
        """
        payload = asdict(self)
        payload["rows"] = _clean(self.rows)
        payload["summary"] = _clean(self.summary)
        payload["telemetry"] = _clean(self.telemetry)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "ExperimentResult":
        """Rebuild a result from a :meth:`to_payload` dict (cache load)."""
        return cls(
            experiment=payload["experiment"],
            paper_ref=payload["paper_ref"],
            rows=payload["rows"],
            summary=payload.get("summary") or {},
            telemetry=payload.get("telemetry"),
        )

    def to_text(self) -> str:
        """Render as an aligned text table."""
        lines = [f"{self.experiment}  ({self.paper_ref})", ""]
        if self.rows:
            columns = list(self.rows[0].keys())
            widths = {
                c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in self.rows))
                for c in columns
            }
            header = "  ".join(str(c).ljust(widths[c]) for c in columns)
            lines.append(header)
            lines.append("-" * len(header))
            for row in self.rows:
                lines.append(
                    "  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns)
                )
        if self.summary:
            lines.append("")
            for key, value in self.summary.items():
                lines.append(f"{key}: {_fmt(value)}")
        return "\n".join(lines)


def _clean(value):
    """Recursively make ``value`` JSON-safe: NaN -> None, +/-inf -> str,
    numpy scalars -> python scalars.  Applied to rows, summary *and*
    telemetry alike, at any nesting depth (a NaN hiding inside a summary
    list used to survive into ``json.dumps`` and emit invalid JSON)."""
    if isinstance(value, dict):
        return {k: _clean(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    if hasattr(value, "item"):
        value = value.item()
    if isinstance(value, float):
        if value != value:  # NaN
            return None
        if value in (float("inf"), float("-inf")):
            return str(value)
    return value


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
