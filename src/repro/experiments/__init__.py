"""Experiment runners: one module per table/figure of the paper.

See :data:`repro.experiments.runner.REGISTRY` for the full index and
DESIGN.md for the per-experiment mapping to library modules.
"""

from .base import ExperimentResult
from .workloads import (
    SceneWorkload,
    scene_workload,
    synthetic_workloads,
    nerf360_workloads,
)

__all__ = [
    "ExperimentResult",
    "SceneWorkload",
    "scene_workload",
    "synthetic_workloads",
    "nerf360_workloads",
]
