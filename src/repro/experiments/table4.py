"""Table IV: the multi-chip system vs cloud GPU and server accelerators.

Simulates the four-chip board on the NeRF-360 workload mix; the headline
metric is throughput per watt, the fair comparison under AR/VR power
budgets (~8 W).
"""

from __future__ import annotations

import numpy as np

from ..baselines import TABLE4_BASELINES, RTX_2080TI, NEUREX_SERVER
from ..sim.multichip import MultiChipConfig, MultiChipSystem
from .base import ExperimentResult
from .workloads import nerf360_workloads

PAPER = {
    "inference_mps_per_watt": 98.5,
    "training_mps_per_watt": 33.2,
    "die_mm2": 35.0,
    "sram_kb": 4500.0,
    "power_w": 6.0,
    "bandwidth_gbps": 0.6,
}


def simulate_this_work(quick: bool = True) -> dict:
    """Simulate the 4-chip system on the NeRF-360 suite; headline rates."""
    scenes = ("bicycle", "garden") if quick else None
    workloads = nerf360_workloads(scenes=scenes)
    system = MultiChipSystem(MultiChipConfig())
    inf_tpw, trn_tpw, powers = [], [], []
    for w in workloads:
        traces = [w.trace] * system.config.n_chips
        inf = system.simulate(traces, training=False)
        trn = system.simulate(traces, training=True)
        inf_tpw.append(inf.throughput_per_watt / 1e6)
        trn_tpw.append(trn.throughput_per_watt / 1e6)
        powers.append(inf.power_w)
    return {
        "inference_mps_per_watt": float(np.mean(inf_tpw)),
        "training_mps_per_watt": float(np.mean(trn_tpw)),
        "power_w": float(np.mean(powers)),
        "die_mm2": system.die_area_mm2(),
        "sram_kb": system.sram_kb(),
    }


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Table IV: multi-chip vs cloud platforms (see the module docstring)."""
    ours = simulate_this_work(quick)
    rows = []
    for spec in TABLE4_BASELINES:
        rows.append(
            {
                "platform": spec.name,
                "die_mm2": spec.die_mm2,
                "sram_kb": spec.sram_kb,
                "power_w": spec.typical_power_w,
                "inference_mps_per_watt": spec.inference_mps_per_watt,
                "training_mps_per_watt": spec.training_mps_per_watt,
                "bandwidth_gbps": spec.off_chip_bandwidth_gbps,
            }
        )
    rows.append(
        {
            "platform": "This work (4 chips, simulated)",
            "die_mm2": round(ours["die_mm2"], 1),
            "sram_kb": round(ours["sram_kb"]),
            "power_w": round(ours["power_w"], 2),
            "inference_mps_per_watt": round(ours["inference_mps_per_watt"], 1),
            "training_mps_per_watt": round(ours["training_mps_per_watt"], 1),
            "bandwidth_gbps": 0.6,
        }
    )
    gpu_train_tpw = RTX_2080TI.training_mps_per_watt
    return ExperimentResult(
        experiment="multi-chip system vs cloud platforms",
        paper_ref="Table IV",
        rows=rows,
        summary={
            "inference_mps_per_watt_paper": PAPER["inference_mps_per_watt"],
            "inference_mps_per_watt_measured": ours["inference_mps_per_watt"],
            "training_mps_per_watt_paper": PAPER["training_mps_per_watt"],
            "training_mps_per_watt_measured": ours["training_mps_per_watt"],
            "inference_tpw_vs_neurex": ours["inference_mps_per_watt"]
            / NEUREX_SERVER.inference_mps_per_watt,
            "training_tpw_vs_2080ti": ours["training_mps_per_watt"] / gpu_train_tpw,
        },
    )
