"""Fleet churn study: SLO attainment through a worker kill, exactly once.

The distributed extension of the serving study: N render workers behind
the :class:`~repro.fleet.FleetController`, driven by the same open-loop
Poisson generator, with a seeded fault plan that kills one worker
mid-run.  Three claims are measured:

* **exactly-once accounting** — every offered request terminates in
  exactly one of {completed, shed, failed}; ``unaccounted`` is 0 even
  while RPCs time out, hedge, and retry across the kill;
* **replica fidelity** — a frame served by a replica (because the
  primary is dead) is bit-identical to the primary-served frame;
* **attainment recovery** — windowed SLO attainment dips between the
  kill and the heartbeat-driven rebalance (requests burn an RPC timeout
  discovering the dead primary), then recovers to within
  ``RECOVERY_TOLERANCE`` of the pre-kill level once replicas are
  promoted.

The kill-1-of-N sweep repeats the scenario across fleet sizes: the
absolute capacity lost shrinks as 1/N, but the detection delay — pure
heartbeat arithmetic — stays constant, which is exactly what the rows
show.
"""

from __future__ import annotations

import numpy as np

from ..fleet import FleetConfig, FleetController, HashRing
from ..robustness.backoff import BackoffPolicy
from ..robustness.faults import FaultPlan, FleetFaultConfig
from ..serve.batching import RenderRequest
from ..serve.loadgen import build_demo_registry, demo_camera, run_open_loop
from .base import ExperimentResult

#: Billing multiplier: each probe frame is charged as this many probe
#: frames of samples (~10 ms of board time per frame), so queueing,
#: timeouts, and the SLO latency targets are all on comparable scales.
HW_SCALE = 5000.0

#: Attainment may recover to at most this far below the pre-kill level
#: (5 points) for the run to count as recovered.
RECOVERY_TOLERANCE = 0.05

#: Completions to skip after the rebalance instant before measuring the
#: recovered window, in RPC-timeout units: hedged stragglers dispatched
#: before the rebalance finish up to a timeout + service later.
SETTLE_TIMEOUTS = 3.0


def churn_fleet_config(n_workers: int = 4) -> FleetConfig:
    """The study's fleet operating point (shared with ``runner fleet``)."""
    return FleetConfig(
        n_workers=n_workers,
        replication=min(2, n_workers),
        rpc_timeout_s=0.04,
        heartbeat_interval_s=0.02,
        heartbeat_miss_limit=3,
        backoff=BackoffPolicy(
            base_s=0.01, multiplier=2.0, max_delay_s=0.08, jitter=0.5,
            max_retries=2,
        ),
    )


def run_churn_scenario(
    n_workers: int = 4,
    kill_at_s: float = 1.0,
    rate_hz: float = 40.0,
    duration_s: float = 3.0,
    probe: int = 16,
    n_scenes: int = 2,
    hw_scale: float = HW_SCALE,
    seed: int = 7,
):
    """One seeded kill-one-worker run; returns ``(controller, report, row)``.

    The victim is the consistent-hash primary of the first demo scene —
    the worker whose death actually moves traffic — so the dip is
    measured, not left to placement luck.
    """
    registry = build_demo_registry(n_scenes=n_scenes)
    scenes = [s["name"] for s in registry.scenes()]
    config = churn_fleet_config(n_workers)
    victim = HashRing(range(n_workers), vnodes=config.vnodes).preference(
        scenes[0], 1
    )[0]
    plan = FaultPlan(
        seed=seed, fleet=FleetFaultConfig(crashes=((victim, kill_at_s),))
    )
    controller = FleetController(registry, config=config, fault_plan=plan)
    report = run_open_loop(
        controller,
        scenes,
        rate_hz=rate_hz,
        duration_s=duration_s,
        camera=demo_camera(probe, probe),
        rng=np.random.default_rng(seed),
        hw_scale=hw_scale,
    )
    accounting = controller.accounting()
    rebalance_t = (
        controller.rebalances[0]["t_s"] if controller.rebalances else None
    )
    pre = controller.attainment_between(0.0, kill_at_s)
    if rebalance_t is not None:
        settle = rebalance_t + SETTLE_TIMEOUTS * config.rpc_timeout_s
        dip = controller.attainment_between(kill_at_s, settle)
        post = controller.attainment_between(settle, controller.now_s + 1.0)
    else:
        dip = post = float("nan")
    recovered = (
        post >= pre - RECOVERY_TOLERANCE if post == post else False
    )
    row = {
        "workers": n_workers,
        "victim": victim,
        "kill_at_s": kill_at_s,
        "offered": accounting["offered"],
        "completed": accounting["completed"],
        "shed": accounting["shed"],
        "failed": accounting["failed"],
        "unaccounted": accounting["unaccounted"],
        "detect_delay_s": (
            rebalance_t - kill_at_s if rebalance_t is not None else float("nan")
        ),
        "scenes_promoted": (
            controller.rebalances[0]["scenes_promoted"]
            if controller.rebalances else 0
        ),
        "attainment_pre": pre,
        "attainment_dip": dip,
        "attainment_post": post,
        "recovered": bool(recovered),
        "hedges": controller.hedges,
        "retries": controller.retries,
    }
    return controller, report, row


def _replica_bit_identity(seed: int = 3, probe: int = 16) -> bool:
    """Serve one frame healthy, then with the primary dead; compare bits."""
    camera = demo_camera(probe, probe)

    def _serve(plan):
        registry = build_demo_registry(n_scenes=1)
        scene = registry.scenes()[0]["name"]
        controller = FleetController(
            registry,
            config=FleetConfig(keep_frames=True),
            fault_plan=plan,
        )
        controller.submit(
            RenderRequest(
                request_id=0, scene=scene, camera=camera, arrival_s=0.0
            )
        )
        controller.run()
        return controller.responses[0]

    primary = _serve(None)
    if not primary.completed:
        return False
    kill_plan = FaultPlan(
        seed=seed,
        fleet=FleetFaultConfig(crashes=((primary.served_by, 0.0),)),
    )
    replica = _serve(kill_plan)
    return bool(
        replica.completed
        and replica.served_by != primary.served_by
        and np.array_equal(replica.frame, primary.frame)
    )


def run(quick: bool = True) -> ExperimentResult:
    """Kill-1-of-N sweep plus the exactly-once and bit-identity anchors."""
    if quick:
        fleet_sizes = (2, 4)
        rate_hz, duration_s, kill_at_s, probe = 40.0, 2.0, 0.7, 12
    else:
        fleet_sizes = (2, 3, 4, 6, 8)
        rate_hz, duration_s, kill_at_s, probe = 40.0, 4.0, 1.2, 16
    rows = []
    anchor_row = None
    for n_workers in fleet_sizes:
        _, _, row = run_churn_scenario(
            n_workers=n_workers,
            kill_at_s=kill_at_s,
            rate_hz=rate_hz,
            duration_s=duration_s,
            probe=probe,
        )
        rows.append(row)
        if n_workers == 4:
            anchor_row = row
    anchor = anchor_row or rows[-1]
    bit_identical = _replica_bit_identity(probe=probe)
    summary = {
        "replica_bit_identical": bool(bit_identical),
        "exactly_once": all(r["unaccounted"] == 0 for r in rows),
        "all_rebalanced": all(r["detect_delay_s"] == r["detect_delay_s"]
                              for r in rows),
        "attainment_pre": anchor["attainment_pre"],
        "attainment_dip": anchor["attainment_dip"],
        "attainment_post": anchor["attainment_post"],
        "recovered_within_tolerance": bool(anchor["recovered"]),
        "detect_delay_s": anchor["detect_delay_s"],
    }
    return ExperimentResult(
        experiment="fleet_churn",
        paper_ref="extension: fault-tolerant distributed render fleet",
        rows=rows,
        summary=summary,
    )
