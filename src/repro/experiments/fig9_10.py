"""Figs. 9-10: prototype chip characterization.

Reproduces the spec table (Fig. 9(b)), the module area/power breakdown
(Fig. 10(c)), the voltage-frequency curve (Fig. 10(d)), the prototype
performance points (36 FPS rendering / 1.8 s training at 600 MHz), and
the Stage II sharing ablation of Sec. IV-B3 (87.4% shared / 12.6%
reused).
"""

from __future__ import annotations

import numpy as np

from ..hw.area import AreaModel, stage2_sharing_ablation
from ..hw.technology import TECH_28NM
from ..core.metrics import fps_from_throughput
from ..sim.chip import ChipConfig, SingleChipAccelerator
from .base import ExperimentResult
from .workloads import synthetic_workloads

PAPER = {
    "fps": 36.0,
    "training_s": 1.8,
    "power_w": 1.21,
    "scaled_die_mm2": 8.7,
    "shared_fraction": 0.874,
}


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Figs. 9-10: chip characterization (see the module docstring)."""
    proto = SingleChipAccelerator(ChipConfig.prototype())
    scaled = SingleChipAccelerator(ChipConfig.scaled())
    workloads = synthetic_workloads(scenes=("lego", "hotdog", "ship"))
    inf_mps = float(
        np.mean(
            [proto.simulate(w.trace).samples_per_second for w in workloads]
        )
    )
    trn_mps = float(
        np.mean(
            [
                proto.simulate(w.trace, training=True).samples_per_second
                for w in workloads
            ]
        )
    )
    power = float(np.mean([proto.simulate(w.trace).power_w for w in workloads]))
    fps = fps_from_throughput(inf_mps)
    # The paper's 1.8 s training point: the prototype trains its own
    # half-size model (5 of 10 feature tables), i.e. half the scaled
    # chip's 398 M-sample budget.
    training_s = 199e6 / trn_mps
    rows = []
    modules = proto.area()
    breakdown = AreaModel.breakdown(modules)
    power = proto.power_breakdown(workloads[0].trace)
    total_power = sum(power.values())
    for module in modules:
        rows.append(
            {
                "module": module.name,
                "logic_mm2": round(module.logic_mm2, 3),
                "sram_mm2": round(module.sram_mm2, 3),
                "area_share": round(breakdown[module.name], 3),
                "power_share": round(power.get(module.name, 0.0) / total_power, 3),
            }
        )
    # Voltage-frequency curve (Fig. 10(d)).
    vf = [
        (v, TECH_28NM.frequency_at_voltage(v) / 1e6)
        for v in (0.6, 0.7, 0.8, 0.9, 0.95, 1.0, 1.05)
    ]
    sharing = stage2_sharing_ablation()
    return ExperimentResult(
        experiment="prototype chip characterization",
        paper_ref="Figs. 9-10 + Sec. IV-B3",
        rows=rows,
        summary={
            "prototype_fps": fps,
            "paper_fps": PAPER["fps"],
            "prototype_training_s": training_s,
            "paper_training_s": PAPER["training_s"],
            "prototype_power_w": power,
            "paper_power_w": PAPER["power_w"],
            "prototype_die_mm2": proto.die_area_mm2(),
            "scaled_die_mm2": scaled.die_area_mm2(),
            "paper_scaled_die_mm2": PAPER["scaled_die_mm2"],
            "scaled_sram_kb": scaled.config.sram_kb,
            "freq_at_0.95v_mhz": TECH_28NM.frequency_at_voltage(0.95) / 1e6,
            "vf_curve_mhz": ", ".join(f"{v:.2f}V:{f:.0f}" for v, f in vf),
            "stage2_shared_fraction": sharing["shared_fraction"],
            "paper_shared_fraction": PAPER["shared_fraction"],
        },
    )
