"""Scheduler-policy study (Fig. 5(c)'s idle-core comparison).

Isolates Technique T1-2 from T1-1: on identical, already-partitioned
workloads, compares three Stage I dispatch disciplines —

* **dynamic** (this work): whole-ray dispatch the moment enough cores
  free up;
* **lockstep**: synchronous batches that wait for the slowest core;
* **ray-by-ray**: one ray owns the whole pool at a time (the worst case
  the paper's figure sketches).

Reported per scene: makespan and core utilization.
"""

from __future__ import annotations

import numpy as np

from ..sim.engine import (
    schedule_dynamic,
    schedule_lockstep_batches,
    schedule_ray_by_ray,
)
from .base import ExperimentResult
from .workloads import synthetic_workloads

N_CORES = 16


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Fig. 5(c): dispatch policies (see the module docstring)."""
    scenes = ("mic", "ship") if quick else None
    workloads = synthetic_workloads(scenes=scenes)
    rows = []
    gains = []
    for w in workloads:
        groups = [
            [0.25 + d for d in pairs] for pairs in w.trace.pair_durations if pairs
        ]
        flat = np.array([d for group in groups for d in group])
        dynamic = schedule_dynamic(groups, N_CORES)
        lockstep = schedule_lockstep_batches(flat, N_CORES)
        serial = schedule_ray_by_ray(groups, N_CORES)
        gains.append(lockstep.makespan / max(dynamic.makespan, 1e-9))
        rows.append(
            {
                "scene": w.name,
                "dynamic_cycles": round(dynamic.makespan),
                "dynamic_util": round(dynamic.utilization, 3),
                "lockstep_cycles": round(lockstep.makespan),
                "lockstep_util": round(lockstep.utilization, 3),
                "ray_by_ray_cycles": round(serial.makespan),
                "gain_vs_lockstep": round(
                    lockstep.makespan / max(dynamic.makespan, 1e-9), 2
                ),
            }
        )
    return ExperimentResult(
        experiment="Stage I dispatch-policy comparison (T1-2 isolated)",
        paper_ref="Fig. 5(c)",
        rows=rows,
        summary={
            "mean_gain_vs_lockstep": float(np.mean(gains)),
            "dynamic_always_best": all(
                r["dynamic_cycles"] <= r["lockstep_cycles"]
                and r["dynamic_cycles"] <= r["ray_by_ray_cycles"]
                for r in rows
            ),
        },
    )
