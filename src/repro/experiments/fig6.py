"""Fig. 6(d): the FP-INT Efficient Multiplier vs INT2FP + FPMUL.

Unit-level comparison: exact functional equivalence plus the area/power
savings (paper: 55% area, 65% power).
"""

from __future__ import annotations

import numpy as np

from ..hw.arith import (
    fiem_cost,
    fiem_multiply,
    fiem_savings,
    int2fp_fpmul_cost,
    reference_multiply,
)
from .base import ExperimentResult

PAPER = {"area_saving": 0.55, "power_saving": 0.65}


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Fig. 6(d): FIEM multiplier (see the module docstring)."""
    rng = np.random.default_rng(0)
    n = 1000 if quick else 100000
    fp = rng.uniform(-8.0, 8.0, size=n).astype(np.float16)
    ints = rng.integers(-128, 128, size=n)
    ours = fiem_multiply(fp, ints)
    reference = reference_multiply(fp, ints)
    max_err = float(np.max(np.abs(ours - reference)))
    savings = fiem_savings()
    base = int2fp_fpmul_cost()
    fiem = fiem_cost()
    rows = [
        {
            "design": "INT2FP + FPMUL (baseline)",
            "gates": base.gates,
            "energy_pj_per_op": round(base.energy_pj, 3),
        },
        {
            "design": "FIEM (this work)",
            "gates": fiem.gates,
            "energy_pj_per_op": round(fiem.energy_pj, 3),
        },
    ]
    return ExperimentResult(
        experiment="FP-INT efficient multiplier",
        paper_ref="Fig. 6(d)",
        rows=rows,
        summary={
            "area_saving_measured": savings["area_saving"],
            "area_saving_paper": PAPER["area_saving"],
            "power_saving_measured": savings["power_saving"],
            "power_saving_paper": PAPER["power_saving"],
            "max_numeric_error": max_err,
            "bit_exact": max_err == 0.0,
        },
    )
