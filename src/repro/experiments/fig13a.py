"""Fig. 13(a): MoE convergence vs a single large model.

Trains (i) one model with a 4x-larger hash table and (ii) a 4-expert MoE
whose experts each have a quarter of that capacity (the paper's
4 x 2^14 vs 2^16 setting, scaled down), on a Room-like scene, tracking
test PSNR against iterations.  The paper's findings: the MoE matches the
large model's convergence, and final PSNR improves with expert count.
"""

from __future__ import annotations

from ..datasets import nerf360
from ..nerf.hash_encoding import HashEncodingConfig
from ..nerf.model import InstantNGPModel, ModelConfig
from ..nerf.moe import MoEConfig, MoENeRF, MoETrainer
from ..nerf.trainer import Trainer, TrainerConfig
from .base import ExperimentResult


def _model_config(log2_table: int) -> ModelConfig:
    return ModelConfig(
        encoding=HashEncodingConfig(
            n_levels=6,
            log2_table_size=log2_table,
            base_resolution=8,
            finest_resolution=96,
        ),
        hidden_width=32,
    )


def _trainer_config(seed: int = 0) -> TrainerConfig:
    return TrainerConfig(
        batch_rays=512,
        lr=5e-3,
        max_samples_per_ray=48,
        occupancy_resolution=24,
        seed=seed,
    )


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Fig. 13(a): MoE convergence (see the module docstring)."""
    iterations = 120 if quick else 600
    eval_every = iterations // 4
    size = 24 if quick else 48
    dataset = nerf360.make_dataset(
        "room", n_views=8, width=size, height=size, gt_steps=96
    )
    large_log2 = 12
    small_log2 = large_log2 - 2  # quarter capacity per expert
    # Single large model.
    large = InstantNGPModel(_model_config(large_log2), seed=0)
    large_trainer = Trainer(
        large, dataset.cameras, dataset.images, dataset.normalizer, _trainer_config()
    )
    large_state = large_trainer.train(iterations, eval_every=eval_every)
    # 4-expert MoE with quarter-size experts (equal total capacity).
    moe = MoENeRF(MoEConfig(n_experts=4, expert_model=_model_config(small_log2)), seed=0)
    moe_trainer = MoETrainer(
        moe, dataset.cameras, dataset.images, dataset.normalizer, _trainer_config()
    )
    moe_state = moe_trainer.train(iterations, eval_every=eval_every)
    rows = []
    for (it, large_psnr), (_, moe_psnr) in zip(
        large_state.psnr_history, moe_state.psnr_history
    ):
        rows.append(
            {
                "iteration": it,
                "large_model_psnr": round(large_psnr, 2),
                "moe_4x_psnr": round(moe_psnr, 2),
                "gap_db": round(moe_psnr - large_psnr, 2),
            }
        )
    final_large = large_state.psnr_history[-1][1]
    final_moe = moe_state.psnr_history[-1][1]
    return ExperimentResult(
        experiment="MoE vs single large model convergence",
        paper_ref="Fig. 13(a)",
        rows=rows,
        summary={
            "final_large_psnr": final_large,
            "final_moe_psnr": final_moe,
            "final_gap_db": final_moe - final_large,
            "paper_claim": "MoE matches the large model's convergence",
            "moe_within_1db": abs(final_moe - final_large) <= 1.5,
        },
    )
