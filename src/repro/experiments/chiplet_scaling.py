"""Chiplet temporal reuse vs PCB spatial scaling (Sec. VIII, with Fig. 14).

For models beyond the chips' combined SRAM, the chiplet package trades
runtime (temporal shard passes) and I/O-module area (the shard buffer)
to hold the off-package bandwidth at the USB budget.  This experiment
sweeps model size and reports both costs, plus whether the in-package
link keeps up.
"""

from __future__ import annotations

import numpy as np

from ..core.bandwidth import BandwidthModel
from ..sim.chiplet import ChipletConfig, ChipletSystem
from .base import ExperimentResult
from .workloads import synthetic_workloads


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Sec. VIII: chiplet temporal reuse (see the module docstring)."""
    workload = synthetic_workloads(scenes=("lego",))[0]
    system = ChipletSystem(ChipletConfig())
    bandwidth = BandwidthModel()
    rows = []
    for log2_table in range(14, 21):
        table_bytes = bandwidth.table_bytes(log2_table)
        report = system.simulate(workload.trace, table_bytes, training=True)
        rows.append(
            {
                "log2_table": log2_table,
                "table_mb": round(table_bytes / 1e6, 2),
                "shard_passes": report.shard_passes,
                "runtime_overhead": round(report.temporal_reuse_overhead, 2),
                "io_module_mm2": round(report.io_module_mm2, 2),
                "stream_bound": "yes" if report.stream_s > report.compute_s else "no",
                "off_package_gbps": report.off_package_gbps,
            }
        )
    overheads = [r["runtime_overhead"] for r in rows]
    areas = [r["io_module_mm2"] for r in rows]
    return ExperimentResult(
        experiment="chiplet temporal reuse vs model size",
        paper_ref="Sec. VIII + Fig. 14",
        rows=rows,
        summary={
            "off_package_fixed_at_gbps": 0.6,
            "overhead_monotone": all(
                b >= a for a, b in zip(overheads, overheads[1:])
            ),
            "area_monotone": all(b >= a for a, b in zip(areas, areas[1:])),
            "max_runtime_overhead": float(np.max(overheads)),
        },
    )
