"""Precision/quality pareto sweep for the mixed-precision fast path.

One trained ``ngp`` field rendered through every precision mode the
stage registry accepts — ``full`` (the float64 training datapath),
``fp16`` (half-width hash tables, float32 MLPs), ``fp16-int8`` (adds
INT8 MLP weights), and ``fp16-int8+adaptive`` (adds transmittance-
adaptive sampling: ERT rounds plus the per-ray precision switch).  Each
row reports quality against ground truth (PSNR delta vs the full
renderer), agreement with the full render (the precision-only error),
wall-clock per frame, and snapshot storage, so the modes form a
quality/speed/size pareto front.

Every low-precision row is checked against the
:class:`~repro.nerf.precision.PrecisionGate` budget; the summary's
``pareto: PASS`` line (greppable by CI) asserts that all modes fit the
budget *and* that the default full-precision stage remains bit-identical
to the offline renderer.  Speed is reported but not gated here — the
bench suite's 20% regression gate owns that contract.
"""

from __future__ import annotations

import numpy as np

from .. import pipeline
from ..datasets import synthetic
from ..nerf.precision import FULL_PRECISION, PRECISION_MODES, PrecisionGate
from ..nerf.renderer import render_image
from ..nerf.sampling import RayMarcher, SamplerConfig
from ..nerf.trainer import Trainer, TrainerConfig
from ..nerf.volume_rendering import psnr
from ..perf.timing import time_callable
from .base import ExperimentResult

#: Training/eval seed — fixed so rows are run-to-run reproducible.
SEED = 0

#: Samples-per-ray budget shared by training and every eval renderer.
MAX_SAMPLES = 32

#: Quality budget every low-precision mode must fit (see the
#: ``precision_pareto`` acceptance line in docs/experiments.md).
GATE = PrecisionGate(max_delta_db=1.0, min_agreement_db=30.0)

#: ERT/adaptive operating point for the ``+adaptive`` row — the same
#: configuration the ``render_frame_precision`` bench times.
ERT_THRESHOLD = 1e-2
SWITCH_THRESHOLD = 0.5
ROUND_SIZE = 4


def _train_field(dataset, quick: bool):
    """Train one ``ngp`` field; returns ``(model, occupancy)``."""
    encoding = {
        "n_levels": 4 if quick else 8,
        "n_features": 2,
        "log2_table_size": 12 if quick else 14,
        "base_resolution": 8,
        "finest_resolution": 64 if quick else 128,
    }
    staged = pipeline.create(
        "ngp",
        config={"encoding": encoding, "hidden_width": 32, "geo_features": 15},
        seed=SEED,
    )
    config = TrainerConfig(
        batch_rays=256 if quick else 1024,
        lr=5e-3,
        max_samples_per_ray=MAX_SAMPLES,
        occupancy_resolution=32,
        occupancy_interval=8,
        seed=SEED,
    )
    trainer = Trainer(
        staged.field, dataset.cameras, dataset.images, dataset.normalizer, config
    )
    for _ in range(80 if quick else 400):
        trainer.train_step()
    return trainer.model, trainer.occupancy


def _mode_renderer(model, occupancy, mode: str):
    """Build the staged renderer for one sweep mode."""
    marcher = RayMarcher(SamplerConfig(max_samples=MAX_SAMPLES))
    if mode == FULL_PRECISION:
        return pipeline.wrap_model(model, marcher=marcher, occupancy=occupancy)
    if mode.endswith("+adaptive"):
        renderer = pipeline.wrap_model(
            model,
            marcher=marcher,
            occupancy=occupancy,
            ert_threshold=ERT_THRESHOLD,
            precision=mode[: -len("+adaptive")],
            switch_threshold=SWITCH_THRESHOLD,
        )
        renderer.compositor.round_size = ROUND_SIZE
        return renderer
    return pipeline.wrap_model(
        model, marcher=marcher, occupancy=occupancy, precision=mode
    )


def run(quick: bool = True) -> ExperimentResult:
    """Sweep every precision mode over one trained scene."""
    dataset = synthetic.make_dataset(
        "mic",
        n_views=4 if quick else 8,
        width=16 if quick else 32,
        height=16 if quick else 32,
        gt_steps=32 if quick else 96,
    )
    camera = dataset.cameras[-1]
    target = dataset.images[-1]
    model, occupancy = _train_field(dataset, quick)

    # The full-precision stage is the quality anchor; it must stay
    # bit-identical to the offline renderer (the tentpole's "default
    # path unchanged" guarantee).
    direct = render_image(
        model,
        camera,
        dataset.normalizer,
        RayMarcher(SamplerConfig(max_samples=MAX_SAMPLES)),
        occupancy=occupancy,
    )

    modes = (FULL_PRECISION,) + PRECISION_MODES + ("fp16-int8+adaptive",)
    rows = []
    reports = {}
    full_image = None
    full_ms = None
    for mode in modes:
        renderer = _mode_renderer(model, occupancy, mode)
        image = renderer.render_image(camera, dataset.normalizer)
        seconds = time_callable(
            lambda: renderer.render_image(camera, dataset.normalizer),
            repeats=1 if quick else 2,
        )
        if mode == FULL_PRECISION:
            full_image, full_ms = image, seconds * 1e3
        report = GATE.evaluate(
            full_image.astype(np.float64),
            image.astype(np.float64),
            ground_truth=target,
        )
        reports[mode] = report
        storage = getattr(
            getattr(renderer.compositor, "lowp_field", None),
            "storage_bytes",
            model.n_parameters * 8,
        )
        rows.append(
            {
                "mode": mode,
                "psnr_db": round(psnr(image.astype(np.float64), target), 2),
                "psnr_delta_db": round(report.psnr_delta_db, 3),
                "agreement_db": round(report.agreement_db, 1),
                "gate": "pass" if report.passed else "FAIL",
                "ms_per_frame": round(seconds * 1e3, 2),
                "speedup": round(full_ms / (seconds * 1e3), 2),
                "storage_mb": round(storage / 1e6, 3),
            }
        )

    bit_identical = np.array_equal(full_image, direct)
    lowp_ok = all(
        reports[m].passed for m in modes if m != FULL_PRECISION
    )
    summary = {
        "pareto": "PASS" if (lowp_ok and bit_identical) else "FAIL",
        "default_bit_identical": bool(bit_identical),
        "max_psnr_delta_db": round(
            max(reports[m].psnr_delta_db for m in modes if m != FULL_PRECISION),
            3,
        ),
        "min_agreement_db": round(
            min(reports[m].agreement_db for m in modes if m != FULL_PRECISION),
            1,
        ),
        "budget_max_delta_db": GATE.max_delta_db,
        "budget_min_agreement_db": GATE.min_agreement_db,
        "storage_ratio": round(
            rows[0]["storage_mb"] / max(rows[-1]["storage_mb"], 1e-9), 2
        ),
    }
    return ExperimentResult(
        experiment="precision_pareto",
        paper_ref="Table II ext: mixed-precision inference quality/speed/size",
        rows=rows,
        summary=summary,
    )
