"""Sec. VI-C speedup breakdown: per-stage speedup vs the Jetson XNX.

The design methodology sizes Stages I and III to match Stage II, so all
three stages speed up by the same factor — the paper quotes 47x
(inference) and 76x (training) over the XNX.
"""

from __future__ import annotations

import numpy as np

from ..baselines import GpuModel, GpuModelConfig, JETSON_XNX
from ..sim.chip import ChipConfig, SingleChipAccelerator
from .base import ExperimentResult
from .workloads import synthetic_workloads

PAPER = {"inference_speedup": 47.0, "training_speedup": 76.0}

#: The GPU's time split across the three stages (Stage II/III dominate on
#: hash-grid NeRFs; Stage I is a minor but non-negligible share).
GPU_STAGE_SHARES = {"sampling": 0.10, "interp": 0.55, "postproc": 0.35}


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Sec. VI-C: per-stage speedup (see the module docstring)."""
    scenes = ("lego", "hotdog") if quick else None
    workloads = synthetic_workloads(scenes=scenes)
    chip = SingleChipAccelerator(ChipConfig.scaled())
    xnx = GpuModel(JETSON_XNX, GpuModelConfig(reference_samples_per_ray=3.6))
    rows = []
    overall = {"inference": [], "training": []}
    for training in (False, True):
        mode = "training" if training else "inference"
        for w in workloads:
            ours = chip.simulate(w.trace, training=training)
            gpu_s = xnx.runtime_s(w.trace, training=training)
            total_speedup = gpu_s / ours.runtime_s
            overall[mode].append(total_speedup)
            stage_cycles = ours.stage_cycles()
            for stage, share in GPU_STAGE_SHARES.items():
                gpu_stage_s = gpu_s * share
                our_stage_s = (
                    stage_cycles[stage] * chip.config.tech.cycle_s
                )
                rows.append(
                    {
                        "mode": mode,
                        "scene": w.name,
                        "stage": stage,
                        "stage_speedup": round(gpu_stage_s / our_stage_s, 1),
                        "end_to_end_speedup": round(total_speedup, 1),
                    }
                )
    return ExperimentResult(
        experiment="per-stage speedup breakdown vs Jetson XNX",
        paper_ref="Sec. VI-C (speedup breakdown)",
        rows=rows,
        summary={
            "inference_speedup_measured": float(np.mean(overall["inference"])),
            "inference_speedup_paper": PAPER["inference_speedup"],
            "training_speedup_measured": float(np.mean(overall["training"])),
            "training_speedup_paper": PAPER["training_speedup"],
        },
    )
