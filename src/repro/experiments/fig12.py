"""Fig. 12: multi-chip tiling ablations (Techniques T3 and T4).

(a) chip-to-chip communication saving of the MoE mapping (paper: 94%);
(b) interconnect area saving of one-to-one wiring vs a crossbar;
(c) feature-access latency saving of the two-level hash tiling;
(d) feature-fetch latency variance (drops to exactly zero when tiled);
(e) the 8-slot x 8-bank access-pattern matrix (diagonal when tiled).
"""

from __future__ import annotations

import numpy as np

from ..hw.noc import crossbar_area_mm2, one_to_one_area_mm2
from ..sim.hash_tiling import compare_tilings
from ..sim.multichip import MultiChipConfig, MultiChipSystem
from .base import ExperimentResult
from .workloads import nerf360_workloads

PAPER = {"comm_saving": 0.94, "tiled_variance": 0.0}


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Fig. 12: tiling ablations (T3/T4) (see the module docstring)."""
    scenes = ("garden",) if quick else None
    workloads = nerf360_workloads(scenes=scenes)
    system = MultiChipSystem(MultiChipConfig())
    comm_savings = []
    latency_savings = []
    base_vars, tiled_vars = [], []
    for w in workloads:
        comm = system.communication([w.trace] * system.config.n_chips)
        comm_savings.append(comm.saving)
        cmp = compare_tilings(w.trace.vertex_corners, w.trace.vertex_indices)
        latency_savings.append(cmp.latency_saving)
        base_vars.append(cmp.baseline_variance)
        tiled_vars.append(cmp.tiled_variance)
    xbar = crossbar_area_mm2(n_ports=8, width_bits=32)
    direct = one_to_one_area_mm2(n_ports=8, width_bits=32)
    # (e): under tiling every 8-fetch group covers all 8 banks exactly
    # once (max bank load 1); the baseline piles up to 8 on one bank.
    last = nerf360_workloads(scenes=("garden",))[0] if quick else workloads[0]
    tiled_stats = compare_tilings(
        last.trace.vertex_corners, last.trace.vertex_indices
    )
    tiled_max_load = int(np.max(tiled_stats.tiled.group_cycles))
    base_max_load = int(np.max(tiled_stats.baseline.group_cycles))
    rows = [
        {
            "metric": "(a) chip-to-chip communication saving",
            "measured": round(float(np.mean(comm_savings)), 3),
            "paper": PAPER["comm_saving"],
        },
        {
            "metric": "(b) interconnect area saving (1-to-1 vs crossbar)",
            "measured": round(1.0 - direct / xbar, 3),
            "paper": "large (crossbar eliminated)",
        },
        {
            "metric": "(c) feature-access latency saving",
            "measured": round(float(np.mean(latency_savings)), 3),
            "paper": "positive (conflicts eliminated)",
        },
        {
            "metric": "(d) fetch-latency variance, baseline",
            "measured": round(float(np.mean(base_vars)), 3),
            "paper": "> 0",
        },
        {
            "metric": "(d) fetch-latency variance, two-level tiling",
            "measured": round(float(np.mean(tiled_vars)), 3),
            "paper": PAPER["tiled_variance"],
        },
        {
            "metric": "(e) worst bank load per 8-fetch group, tiled",
            "measured": tiled_max_load,
            "paper": 1,
        },
        {
            "metric": "(e) worst bank load per 8-fetch group, baseline",
            "measured": base_max_load,
            "paper": "up to 8",
        },
    ]
    return ExperimentResult(
        experiment="multi-chip tiling ablations",
        paper_ref="Fig. 12",
        rows=rows,
        summary={
            "comm_saving": float(np.mean(comm_savings)),
            "paper_comm_saving": PAPER["comm_saving"],
            "tiled_variance": float(np.mean(tiled_vars)),
            "crossbar_mm2": xbar,
            "one_to_one_mm2": direct,
        },
    )
