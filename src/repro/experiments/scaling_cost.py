"""Sec. II-D motivation: die yield and cost of scaling up vs out.

Reproduces the yield argument: growing one die to server-accelerator
sizes (RT-NeRF Cloud: 565 mm^2) collapses yield and roughly doubles cost
per good mm^2, while four small Fusion-3D dies keep near-baseline yield.
The paper quotes 99% -> 72% yield for scaling RT-NeRF under the Chiplet
Actuary model.
"""

from __future__ import annotations

from ..hw.yield_model import compare_scaling, cost_per_good_mm2, die_yield
from .base import ExperimentResult


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Sec. II-D: yield/cost of scaling (see the module docstring)."""
    areas = [
        ("Fusion-3D chip", 8.7),
        ("RT-NeRF edge", 18.85),
        ("MetaVRain", 20.25),
        ("4x Fusion-3D (total silicon)", 35.0),
        ("RT-NeRF scaled (paper's example)", 4 * 18.85),
        ("RT-NeRF cloud", 565.0),
    ]
    small_cost = cost_per_good_mm2(8.7)
    rows = []
    for name, area in areas:
        rows.append(
            {
                "design": name,
                "die_mm2": area,
                "yield": round(die_yield(area), 3),
                "cost_per_good_mm2_vs_8.7mm2": round(
                    cost_per_good_mm2(area) / small_cost, 2
                ),
            }
        )
    comparison = compare_scaling(total_area_mm2=4 * 18.85, n_chips=4)
    return ExperimentResult(
        experiment="yield and cost: one big die vs four small dies",
        paper_ref="Sec. II-D",
        rows=rows,
        summary={
            "monolithic_75mm2_yield": comparison.monolithic_yield,
            "per_chip_yield": comparison.per_chip_yield,
            "multi_chip_cost_saving": comparison.cost_saving,
            "paper_yield_drop": "99% -> 72% for scaled RT-NeRF",
            "scaled_rtnerf_yield": die_yield(4 * 18.85),
        },
    )
