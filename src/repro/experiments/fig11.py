"""Fig. 11: per-scene normalized speedup and energy efficiency of the
single chip vs the SOTA baselines on the eight object scenes.

Normalization follows the paper: everything is relative to the Jetson
XNX.  Instant-3D appears in the training rows, NeuRex in the inference
rows (it reports a single scene, as the paper notes).
"""

from __future__ import annotations

import numpy as np

from ..baselines import (
    AcceleratorModel,
    AcceleratorModelConfig,
    GpuModel,
    GpuModelConfig,
    INSTANT_3D,
    JETSON_NANO,
    JETSON_XNX,
    NEUREX_EDGE,
)

#: Scene-average samples/ray of the synthetic-8 suite; the baselines'
#: reported numbers correspond to this workload mix.
SYNTHETIC_REFERENCE_SPR = 3.6
from ..sim.chip import ChipConfig, SingleChipAccelerator
from .base import ExperimentResult
from .workloads import synthetic_workloads


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Fig. 11: per-scene speedup/energy (see the module docstring)."""
    scenes = ("mic", "lego", "ship") if quick else None
    workloads = synthetic_workloads(scenes=scenes)
    chip = SingleChipAccelerator(ChipConfig.scaled())
    gpu_cfg = GpuModelConfig(reference_samples_per_ray=SYNTHETIC_REFERENCE_SPR)
    acc_cfg = AcceleratorModelConfig(
        reference_samples_per_ray=SYNTHETIC_REFERENCE_SPR
    )
    xnx = GpuModel(JETSON_XNX, gpu_cfg)
    nano = GpuModel(JETSON_NANO, gpu_cfg)
    neurex = AcceleratorModel(NEUREX_EDGE, acc_cfg)
    instant3d = AcceleratorModel(INSTANT_3D, acc_cfg)
    rows = []
    inf_speedups, trn_speedups = [], []
    for w in workloads:
        inf = chip.simulate(w.trace)
        trn = chip.simulate(w.trace, training=True)
        xnx_inf = xnx.runtime_s(w.trace)
        xnx_trn = xnx.runtime_s(w.trace, training=True)
        ours_inf_speed = xnx_inf / inf.runtime_s
        ours_trn_speed = xnx_trn / trn.runtime_s
        inf_speedups.append(ours_inf_speed)
        trn_speedups.append(ours_trn_speed)
        xnx_inf_j = xnx.energy_per_point_j(w.trace) * w.trace.n_samples
        xnx_trn_j = (
            xnx.energy_per_point_j(w.trace, training=True) * w.trace.n_samples
        )
        rows.append(
            {
                "scene": w.name,
                "ours_inf_speedup": round(ours_inf_speed, 1),
                "nano_inf_speedup": round(xnx_inf / nano.runtime_s(w.trace), 2),
                "neurex_inf_speedup": round(
                    xnx_inf / neurex.runtime_s(w.trace), 1
                ),
                "ours_trn_speedup": round(ours_trn_speed, 1),
                "instant3d_trn_speedup": round(
                    xnx_trn / instant3d.runtime_s(w.trace, training=True), 1
                ),
                "ours_inf_energy_eff": round(xnx_inf_j / inf.energy_j, 1),
                "ours_trn_energy_eff": round(xnx_trn_j / trn.energy_j, 1),
            }
        )
    return ExperimentResult(
        experiment="per-scene normalized speedup/energy (vs Jetson XNX)",
        paper_ref="Fig. 11",
        rows=rows,
        summary={
            "mean_inf_speedup_vs_xnx": float(np.mean(inf_speedups)),
            "paper_inf_speedup_vs_xnx": 47.0,
            "mean_trn_speedup_vs_xnx": float(np.mean(trn_speedups)),
            "paper_trn_speedup_vs_xnx": 76.0,
        },
    )
