"""Fig. 3: data volumes of the three pipeline stages during training.

Reproduces the motivation numbers: ~155 GB of intra-stage plus ~25 GB of
inter-stage intermediate data for a 2-second training run to 25 PSNR,
versus only ~0.7 GB of true pipeline I/O — hence 77.5 + 12.5 GB/s of
bandwidth for a partial design vs under 1 GB/s for the end-to-end chip.
"""

from __future__ import annotations

from ..core.bandwidth import BandwidthModel, WorkloadVolume
from .base import ExperimentResult

PAPER = {
    "intra_stage_gb": 155.0,
    "inter_stage_gbps": 12.5,
    "intra_stage_gbps": 77.5,
    "io_mb": 700.0,
}


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Fig. 3: stage data volumes (see the module docstring)."""
    model = BandwidthModel()
    workload = WorkloadVolume.instant_training()
    volume = model.training_volume(workload)
    rates = volume.rates_gbps(workload.deadline_s)
    boundaries = [
        ("partial pipeline (prior accelerators)", False),
        ("end-to-end (this work)", True),
    ]
    rows = [
        {
            "quantity": "inter-stage data",
            "volume_gb": round(volume.inter_stage_bytes / 1e9, 1),
            "rate_gbps": round(rates["inter_stage"], 1),
            "paper": f"{PAPER['inter_stage_gbps']} GB/s",
        },
        {
            "quantity": "intra-stage data",
            "volume_gb": round(volume.intra_stage_bytes / 1e9, 1),
            "rate_gbps": round(rates["intra_stage"], 1),
            "paper": f"{PAPER['intra_stage_gbps']} GB/s",
        },
        {
            "quantity": "pipeline I/O",
            "volume_gb": round(volume.io_bytes / 1e9, 2),
            "rate_gbps": round(rates["io"], 2),
            "paper": f"{PAPER['io_mb']} MB total",
        },
    ]
    for name, end_to_end in boundaries:
        bw = model.required_training_bandwidth_gbps(
            workload, table_bytes=model.table_bytes(14), end_to_end=end_to_end
        )
        rows.append(
            {
                "quantity": f"off-chip BW, {name}",
                "volume_gb": None,
                "rate_gbps": round(bw, 2),
                "paper": "0.6 GB/s" if end_to_end else ">= 17 GB/s",
            }
        )
    return ExperimentResult(
        experiment="training data volumes by pipeline stage",
        paper_ref="Fig. 3",
        rows=rows,
        summary={
            "total_intermediate_gb": volume.total_intermediate_bytes / 1e9,
            "paper_total_gb": PAPER["intra_stage_gb"] + 25.0,
            "io_mb": volume.io_bytes / 1e6,
            "paper_io_mb": PAPER["io_mb"],
        },
    )
