"""Time-to-quality study: how fast a live capture becomes a served scene.

The paper's "instant reconstruction" claim, measured the way an online
service experiences it: a :class:`~repro.online.ReconstructionSession`
streams frames, trains incrementally, and hot-swaps quality-gated
generations into serving — and the study reports, per scene scale,

* **time to target** — the capture-clock instant the first generation at
  or above the target PSNR goes live (the user-visible "my scene is
  ready" latency);
* **SLO attainment during training** — windowed interactive attainment
  of the concurrent viewer workload, which must not collapse while the
  board also absorbs the training session's hot-swaps;
* **swap safety** — every hot-swap's in-flight proof request must come
  back bit-identical to its pinned generation's offline reference.

Scales vary capture resolution, frame count, and scene density
together (a denser scene at a higher resolution is strictly more work
per step *and* per served ray), so the time-to-target trend across rows
is the reproduction of the paper's reconstruction-latency scaling.
"""

from __future__ import annotations

from ..online import (
    CaptureConfig,
    OnlineConfig,
    QualityGate,
    ReconstructionSession,
)
from .base import ExperimentResult

#: The "acceptable quality" bar every scale must reach (held-out PSNR).
TARGET_PSNR_DB = 16.0

#: Per-mode scene scales: quick keeps CI under control, full adds a
#: third, denser scale.  ``px`` is the capture edge length.
SCALES = {
    True: (
        {"label": "small", "scene": "mic", "frames": 12, "px": 16},
        {"label": "medium", "scene": "lego", "frames": 16, "px": 20},
    ),
    False: (
        {"label": "small", "scene": "mic", "frames": 16, "px": 16},
        {"label": "medium", "scene": "lego", "frames": 24, "px": 24},
        {"label": "large", "scene": "ship", "frames": 32, "px": 32},
    ),
}


def session_config(spec: dict, seed: int = 0) -> OnlineConfig:
    """The study's session operating point for one scale."""
    return OnlineConfig(
        capture=CaptureConfig(
            scene=spec["scene"],
            n_frames=spec["frames"],
            width=spec["px"],
            height=spec["px"],
        ),
        gate=QualityGate(target_psnr_db=TARGET_PSNR_DB),
        eval_every_frames=2,
        seed=seed,
    )


def run_scale(spec: dict, seed: int = 0) -> dict:
    """One scale's session, reduced to a study row."""
    result = ReconstructionSession(session_config(spec, seed=seed)).run()
    live = [w for w in result.windows if w["attainment"] is not None]
    attainments = [w["attainment"] for w in live]
    proofs = result.swap_proofs
    return {
        "scale": spec["label"],
        "scene": result.scene,
        "frames": spec["frames"],
        "px": spec["px"],
        "horizon_s": result.horizon_s,
        "generations": result.generations,
        "time_to_target_s": result.time_to_target_s,
        "final_psnr_db": (
            result.psnr_history[-1]["psnr_db"] if result.psnr_history else None
        ),
        "steps_per_s": result.steps_total / result.horizon_s,
        "live_windows": len(live),
        "attainment_mean": (
            sum(attainments) / len(attainments) if attainments else None
        ),
        "attainment_min": min(attainments) if attainments else None,
        "swap_proofs": len(proofs),
        "swap_proofs_ok": all(
            p["spanned_swap"] and p["bit_identical"] for p in proofs
        ),
        "unaccounted": (
            result.accounting["frames"]["unaccounted"]
            + result.accounting["requests"]["unaccounted"]
        ),
    }


def run(quick: bool = True) -> ExperimentResult:
    """Time-to-target and serving attainment across scene scales."""
    rows = [run_scale(spec) for spec in SCALES[quick]]
    reached = [r for r in rows if r["time_to_target_s"] is not None]
    summary = {
        "target_psnr_db": TARGET_PSNR_DB,
        "all_reached_target": len(reached) == len(rows),
        "max_time_to_target_s": (
            max(r["time_to_target_s"] for r in reached) if reached else None
        ),
        "all_swap_proofs_ok": all(r["swap_proofs_ok"] for r in rows),
        "exactly_once": all(r["unaccounted"] == 0 for r in rows),
        "min_attainment": min(
            (r["attainment_min"] for r in rows if r["attainment_min"] is not None),
            default=None,
        ),
    }
    for row in rows:
        t = row["time_to_target_s"]
        summary[f"scale {row['scale']}"] = (
            f"time_to_target={t:.3f}s" if t is not None else "target not reached"
        ) + f" generations={row['generations']}"
    return ExperimentResult(
        experiment="time_to_quality",
        paper_ref="extension: instant reconstruction under live serving",
        rows=rows,
        summary=summary,
    )
