"""Voltage-frequency operating points (extends Fig. 10(d)).

The paper measures the prototype's V-f curve; this experiment runs the
scaled chip across supply voltages and reports the throughput/power/
efficiency trade — the DVFS envelope an AR/VR integrator would use to
hit a power budget.
"""

from __future__ import annotations

import numpy as np

from ..hw.technology import TECH_28NM, technology_at_voltage
from ..sim.chip import ChipConfig, SingleChipAccelerator
from .base import ExperimentResult
from .workloads import synthetic_workloads

VOLTAGES = (0.6, 0.7, 0.8, 0.9, 0.95, 1.0, 1.05)


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Fig. 10(d) ext: DVFS operating points (see the module docstring)."""
    workload = synthetic_workloads(scenes=("lego",))[0]
    rows = []
    efficiencies = []
    for voltage in VOLTAGES:
        tech = technology_at_voltage(TECH_28NM, voltage)
        from dataclasses import replace

        chip = SingleChipAccelerator(replace(ChipConfig.scaled(), tech=tech))
        report = chip.simulate(workload.trace)
        mps = report.samples_per_second / 1e6
        nj = report.energy_per_sample_j * 1e9
        efficiencies.append(mps / max(report.power_w, 1e-9))
        rows.append(
            {
                "voltage_v": voltage,
                "clock_mhz": round(tech.clock_hz / 1e6),
                "inference_mps": round(mps, 1),
                "power_w": round(report.power_w, 3),
                "nj_per_sample": round(nj, 2),
                "mps_per_watt": round(mps / max(report.power_w, 1e-9), 1),
            }
        )
    nominal = next(r for r in rows if r["voltage_v"] == 0.95)
    return ExperimentResult(
        experiment="voltage-frequency scaling of the scaled chip",
        paper_ref="Fig. 10(d) (extended)",
        rows=rows,
        summary={
            "clock_at_0.95v_mhz": nominal["clock_mhz"],
            "paper_clock_mhz": 600,
            "best_efficiency_voltage": VOLTAGES[int(np.argmax(efficiencies))],
            "throughput_monotone_in_voltage": all(
                b["inference_mps"] >= a["inference_mps"]
                for a, b in zip(rows, rows[1:])
            ),
        },
    )
