"""Sec. VI-C adaptability: the MoE scheme applied to a TensoRF pipeline.

The paper reports that four small dense-grid models (128^3 parameters
each) under the MoE fusion lose only 0.5 dB PSNR against one large model
with 4 x 128^3 parameters, showing the Level-1 tiling is not specific to
hash-grid NeRFs.  We reproduce the comparison at reduced scale with the
dense-grid field of :mod:`repro.nerf.tensorf`.

It also quantifies the module-reuse claim: swapping our sampling and
post-processing cost models into a TensoRF-style pipeline (keeping its
own feature interpolation) reduces Stage I+III power/area versus the
RT-NeRF-style baseline units.
"""

from __future__ import annotations

import numpy as np

from ..datasets import synthetic
from ..nerf.moe import MoENeRF
from ..nerf.optimizer import Adam, mse_loss
from ..nerf.rays import sample_training_rays
from ..nerf.sampling import RayMarcher, SamplerConfig
from ..nerf.tensorf import DenseGridConfig, DenseGridField
from ..nerf.volume_rendering import composite, composite_backward, psnr
from .base import ExperimentResult

PAPER = {"psnr_gap_db": -0.5}


def _train_dense(models, dataset, iterations: int, seed: int = 0) -> float:
    """Train one or more dense-grid fields against the fused render."""
    rng = np.random.default_rng(seed)
    marcher = RayMarcher(SamplerConfig(max_samples=48, jitter=True))
    optimizers = [Adam(m.parameters(), lr=2e-2) for m in models]
    background = 1.0
    for _ in range(iterations):
        rays, target = sample_training_rays(
            dataset.cameras, dataset.images, 512, rng
        )
        origins, directions = dataset.normalizer.rays_to_unit(
            rays.origins, rays.directions
        )
        batch = marcher.sample(origins, directions, rng=rng)
        if len(batch) == 0:
            continue
        forwards = []
        expert_colors = []
        for m in models:
            sigma, rgb, cache = m.forward(batch.positions, batch.directions)
            result = composite(
                sigma, rgb, batch.deltas, batch.ts, batch.ray_idx, batch.n_rays,
                background=background,
            )
            forwards.append((sigma, rgb, cache, result))
            expert_colors.append(result.colors)
        fused = MoENeRF.fuse(expert_colors, background)
        _, grad_colors = mse_loss(fused, target)
        for m, opt, (sigma, rgb, cache, result) in zip(models, optimizers, forwards):
            grad_sigma, grad_rgb = composite_backward(
                grad_colors, result, sigma, rgb, batch.deltas, batch.ray_idx,
                batch.n_rays, background=background,
            )
            opt.step(m.backward(grad_sigma, grad_rgb, cache))
    # Evaluate the fused render on a held-out view.
    camera = dataset.cameras[-1]
    target = dataset.images[-1]
    from ..nerf.rays import generate_rays

    rays = generate_rays(camera)
    origins, directions = dataset.normalizer.rays_to_unit(
        rays.origins, rays.directions
    )
    batch = marcher.sample(origins, directions)
    colors = []
    for m in models:
        sigma, rgb, _ = m.forward(batch.positions, batch.directions)
        result = composite(
            sigma, rgb, batch.deltas, batch.ts, batch.ray_idx, batch.n_rays,
            background=background,
        )
        colors.append(result.colors)
    fused = np.clip(MoENeRF.fuse(colors, background), 0.0, 1.0)
    image = fused.reshape(camera.height, camera.width, 3)
    return psnr(image, target)


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Sec. VI-C: TensoRF adaptation (see the module docstring)."""
    iterations = 150 if quick else 500
    resolution = 16 if quick else 32
    dataset = synthetic.make_dataset(
        "hotdog", n_views=8, width=32, height=32, gt_steps=96
    )
    # One large dense grid with 4x the parameters of each small expert.
    large_res = int(round(resolution * 4 ** (1 / 3)))
    large = DenseGridField(DenseGridConfig(resolution=large_res, n_features=4), seed=0)
    large_psnr = _train_dense([large], dataset, iterations)
    experts = [
        DenseGridField(DenseGridConfig(resolution=resolution, n_features=4), seed=i)
        for i in range(4)
    ]
    moe_psnr = _train_dense(experts, dataset, iterations)
    gap = moe_psnr - large_psnr
    rows = [
        {
            "model": f"single large grid ({large_res}^3 x 4 feats)",
            "parameters": large.n_parameters,
            "psnr": round(large_psnr, 2),
        },
        {
            "model": f"4-expert MoE ({resolution}^3 x 4 feats each)",
            "parameters": sum(e.n_parameters for e in experts),
            "psnr": round(moe_psnr, 2),
        },
    ]
    return ExperimentResult(
        experiment="MoE applied to a TensoRF-style dense-grid pipeline",
        paper_ref="Sec. VI-C (adaptability)",
        rows=rows,
        summary={
            "psnr_gap_db": gap,
            "paper_gap_db": PAPER["psnr_gap_db"],
            # The claim under test: MoE decomposition does not meaningfully
            # degrade a dense-grid pipeline (paper: -0.5 dB; small-scale
            # runs land within a couple of dB either side).
            "moe_preserves_quality": gap >= PAPER["psnr_gap_db"] - 1.5,
        },
    )
