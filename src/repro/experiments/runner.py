"""Experiment registry and command-line entry point.

``fusion3d-experiments list`` shows every reproducible table/figure;
``fusion3d-experiments run table3`` regenerates one; ``run all`` walks
the whole evaluation section serially.  ``run-all --jobs N`` fans the
sweep out over a process pool with result caching (see
:mod:`repro.parallel`); ``cache info`` / ``cache clear`` manage the
on-disk cache.  ``--full`` switches off quick mode (more scenes, more
training iterations).

Observability: ``run --trace-out trace.json`` records a Chrome-trace
(open in ``chrome://tracing`` or https://ui.perfetto.dev), ``run
--metrics`` appends the metrics snapshot, and ``report NAME`` runs one
experiment under telemetry and pretty-prints the per-module cycle +
wall-clock breakdown.  All CLI output goes through the ``repro``
logger (stdout handler; ``--quiet`` suppresses it); the package itself
ships a ``NullHandler`` so library users see nothing by default.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys

from .. import telemetry
from . import (
    capacity_study,
    chiplet_scaling,
    cross_renderer,
    dataset_stats,
    ert_study,
    fault_sweep,
    fleet_churn,
    fig3,
    fig6,
    fig9_10,
    fig11,
    fig12,
    fig13a,
    fig13b,
    fig14,
    moe_scaling,
    precision_pareto,
    scaling_cost,
    scheduler_study,
    serving_study,
    speedup_breakdown,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    tensorf_adaptation,
    time_to_quality,
    vf_scaling,
    warping_study,
)
from .base import ExperimentResult, _fmt

logger = logging.getLogger("repro.experiments")

#: name -> (module, paper reference) registry of every experiment.
REGISTRY = {
    "table1": (table1, "Table I: off-chip bandwidth comparison"),
    "table2": (table2, "Table II: INT8 quantized-training quality"),
    "table3": (table3, "Table III: single chip vs SOTA"),
    "table4": (table4, "Table IV: multi-chip vs cloud platforms"),
    "table5": (table5, "Table V: per-scene NeRF-360 vs 2080 Ti"),
    "table6": (table6, "Table VI: sampling ablation (T1)"),
    "fig3": (fig3, "Fig. 3: stage data volumes"),
    "fig6": (fig6, "Fig. 6(d): FIEM multiplier"),
    "fig9_10": (fig9_10, "Figs. 9-10: chip characterization"),
    "fig11": (fig11, "Fig. 11: per-scene speedup/energy"),
    "fig12": (fig12, "Fig. 12: tiling ablations (T3/T4)"),
    "fig13a": (fig13a, "Fig. 13(a): MoE convergence"),
    "fig13b": (fig13b, "Fig. 13(b): bandwidth vs model size"),
    "fig14": (fig14, "Fig. 14: chiplet I/O area"),
    "speedup_breakdown": (speedup_breakdown, "Sec. VI-C: per-stage speedup"),
    "tensorf_adaptation": (tensorf_adaptation, "Sec. VI-C: TensoRF adaptation"),
    "scaling_cost": (scaling_cost, "Sec. II-D: yield/cost of scaling"),
    "vf_scaling": (vf_scaling, "Fig. 10(d) ext: DVFS operating points"),
    "scheduler_study": (scheduler_study, "Fig. 5(c): dispatch policies"),
    "chiplet_scaling": (chiplet_scaling, "Sec. VIII: chiplet temporal reuse"),
    "moe_scaling": (moe_scaling, "Fig. 13(a) obs. 2: PSNR vs expert count"),
    "ert_study": (ert_study, "extension: early ray termination"),
    "precision_pareto": (
        precision_pareto,
        "Table II ext: mixed-precision quality/speed/size pareto",
    ),
    "fault_sweep": (fault_sweep, "robustness: faults & graceful degradation"),
    "fleet_churn": (fleet_churn, "fleet: SLO attainment through worker churn"),
    "serving_study": (serving_study, "serving: latency-throughput & SLO attainment"),
    "cross_renderer": (cross_renderer, "pipeline: ngp vs tensorf quality/speed/SLO"),
    "capacity_study": (capacity_study, "ops: cost models -> capacity plans, validated"),
    "time_to_quality": (time_to_quality, "online: time-to-quality under live serving"),
    "warping_study": (warping_study, "Table III fn. 1: warping vs motion"),
    "dataset_stats": (dataset_stats, "DESIGN.md: substitution statistics"),
}


def run_experiment(name: str, quick: bool = True) -> ExperimentResult:
    """Run one registered experiment by name."""
    if name not in REGISTRY:
        raise KeyError(f"unknown experiment {name!r}; see REGISTRY")
    module, _ = REGISTRY[name]
    return module.run(quick=quick)


def format_breakdown(summary: dict) -> str:
    """Render a telemetry digest as the per-module breakdown table.

    ``summary`` is :meth:`repro.telemetry.TelemetrySession.summary`
    output: simulated cycles come from the ``sim.<module>.cycles``
    counters, wall-clock seconds from the matching span aggregates.
    """
    counters = summary.get("metrics", {}).get("counters", {})
    gauges = summary.get("metrics", {}).get("gauges", {})
    spans = summary.get("spans", {})
    modules = []
    for name, cycles in sorted(counters.items()):
        if name.startswith("sim.") and name.endswith(".cycles"):
            module = name[len("sim."):-len(".cycles")]
            if module == "total":
                continue
            modules.append((module, cycles))
    lines = ["per-module breakdown", ""]
    header = f"{'module':16s}  {'sim cycles':>12s}  {'wall s':>10s}  {'spans':>6s}"
    lines.append(header)
    lines.append("-" * len(header))
    for module, cycles in modules:
        span = spans.get(module, {})
        lines.append(
            f"{module:16s}  {_fmt(float(cycles)):>12s}  "
            f"{_fmt(span.get('total_s', 0.0)):>10s}  "
            f"{span.get('count', 0):>6d}"
        )
    total = counters.get("sim.total_cycles")
    if total is not None:
        lines.append("")
        lines.append(f"pipelined total cycles: {_fmt(float(total))}")
    overlap = gauges.get("sim.stage_overlap_efficiency")
    if overlap is not None:
        lines.append(f"stage-overlap efficiency: {_fmt(float(overlap))}")
    top_level = [
        (name, entry)
        for name, entry in sorted(spans.items())
        if "." in name  # qualified spans: trainer.*, chip.*, multichip.*
    ]
    if top_level:
        lines.append("")
        lines.append(f"{'span':28s}  {'count':>6s}  {'total s':>10s}  {'mean s':>10s}")
        for name, entry in top_level:
            lines.append(
                f"{name:28s}  {entry['count']:>6d}  "
                f"{_fmt(entry['total_s']):>10s}  {_fmt(entry['mean_s']):>10s}"
            )
    return "\n".join(lines)


def format_metrics(snapshot: dict) -> str:
    """Flat text rendering of a metrics-registry snapshot."""
    lines = ["metrics"]
    for name, value in snapshot.get("counters", {}).items():
        lines.append(f"  counter   {name} = {_fmt(float(value))}")
    for name, value in snapshot.get("gauges", {}).items():
        lines.append(f"  gauge     {name} = {_fmt(float(value))}")
    for name, summ in snapshot.get("histograms", {}).items():
        lines.append(
            f"  histogram {name}: n={summ.get('count', 0)} "
            f"mean={_fmt(summ.get('mean', 0.0))} p50={_fmt(summ.get('p50', 0.0))} "
            f"p95={_fmt(summ.get('p95', 0.0))} p99={_fmt(summ.get('p99', 0.0))}"
        )
    return "\n".join(lines)


_cli_handler = None


def _configure_cli_logging(quiet: bool) -> None:
    """Attach (or refresh) the CLI's stdout handler on the package logger.

    The previous handler is detached first, so repeated ``main()`` calls
    (tests, embedding) never stack duplicates, and the handler always
    binds the *current* ``sys.stdout`` (pytest and notebooks swap it).
    ``--quiet`` raises the threshold to WARNING instead of detaching, so
    errors still surface.
    """
    global _cli_handler
    root = logging.getLogger("repro")
    if _cli_handler is not None:
        root.removeHandler(_cli_handler)
    _cli_handler = logging.StreamHandler(stream=sys.stdout)
    _cli_handler.setFormatter(logging.Formatter("%(message)s"))
    root.addHandler(_cli_handler)
    root.setLevel(logging.WARNING if quiet else logging.INFO)


def _cmd_list() -> int:
    for name, (_, description) in REGISTRY.items():
        logger.info("%-20s %s", name, description)
    return 0


def _cmd_run(args) -> int:
    from ..robustness import faults as fault_plans
    from ..robustness.degradation import format_degradation

    names = list(REGISTRY) if args.name == "all" else [args.name]
    plan = None
    if getattr(args, "faults", None):
        plan = fault_plans.FaultPlan.from_file(args.faults)
        logger.info("fault plan loaded from %s (seed=%d)", args.faults, plan.seed)
    # A fault run always records telemetry: the degradation report is
    # rendered from the robustness.* metrics the injection sites emit.
    want_telemetry = bool(args.trace_out or args.metrics or plan is not None)
    tel = telemetry.enable() if want_telemetry else None
    if plan is not None:
        fault_plans.activate(plan)
    try:
        for name in names:
            result = run_experiment(name, quick=not args.full)
            if tel is not None:
                result.telemetry = tel.summary()
            logger.info("%s\n", result.to_json() if args.json else result.to_text())
        if plan is not None:
            logger.info("%s", format_degradation(tel.metrics.snapshot()))
            log = fault_plans.get_log()
            if log is not None and len(log):
                logger.info("faults fired:")
                for entry in log.entries:
                    logger.info("  [%s] %s", entry["site"], entry["description"])
        if tel is not None and args.trace_out:
            tel.tracer.write_chrome_trace(args.trace_out)
            logger.info("wrote Chrome trace to %s", args.trace_out)
        if tel is not None and args.metrics:
            logger.info("%s", format_metrics(tel.metrics.snapshot()))
    finally:
        if plan is not None:
            fault_plans.deactivate()
        if tel is not None:
            telemetry.disable()
    return 0


def _cmd_run_all(args) -> int:
    """The parallel sweep: cache lookup, process-pool fan-out, report."""
    from .. import parallel

    cache = None if args.no_cache else parallel.ResultCache(args.cache_dir)
    collect = bool(args.metrics or args.trace_out)
    report = parallel.run_experiments(
        names=args.names or None,
        jobs=args.jobs,
        quick=not args.full,
        timeout_s=args.timeout or None,
        retries=0 if args.no_retry else 1,
        cache=cache,
        collect_telemetry=collect,
    )
    if args.json:
        payload = {
            "report": report.summary(),
            "results": {
                o.name: o.result.to_payload()
                for o in report.outcomes
                if o.result is not None
            },
        }
        logger.info("%s", json.dumps(payload, indent=2))
    else:
        for outcome in report.outcomes:
            if outcome.result is not None:
                logger.info("%s\n", outcome.result.to_text())
        logger.info("%s", report.to_text())
    if args.metrics:
        logger.info("%s", format_metrics(report.merged_metrics()))
    if args.trace_out:
        with open(args.trace_out, "w") as fh:
            json.dump(
                {
                    "traceEvents": report.merged_trace_events(),
                    "displayTimeUnit": "ms",
                },
                fh,
            )
        logger.info("wrote merged Chrome trace to %s", args.trace_out)
    return 1 if report.failures else 0


def _cmd_cache(args) -> int:
    """Inspect (``info``) or wipe (``clear``) the on-disk result cache."""
    from .. import parallel

    cache = parallel.ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        logger.info("removed %d cache entries under %s", removed, cache.root)
        return 0
    stats = cache.stats()
    logger.info("cache root: %s", stats["root"])
    for section in ("results", "traces"):
        entry = stats[section]
        logger.info(
            "  %-8s %5d entries  %s", section, entry["entries"],
            _fmt(entry["bytes"] / 1e6) + " MB",
        )
    return 0


def _cmd_serve(args) -> int:
    """Drive the rendering service under a load generator.

    ``--smoke`` is the CI preset: a short open-loop Poisson burst over a
    2-second simulated horizon against the demo registry, printing the
    SLO attainment report (whose ``completed requests: N`` line the CI
    job greps).  Without ``--smoke``, ``--rate``/``--duration``/
    ``--scenes`` pick the operating point, and ``--closed-loop N`` runs a
    single interactive client for N frames instead.
    """
    import numpy as np

    from ..serve import (
        RenderService,
        ServiceConfig,
        build_demo_registry,
        demo_camera,
        run_closed_loop,
        run_open_loop,
    )

    if args.smoke:
        rate, duration, n_scenes, probe = 300.0, 2.0, 2, 16
    else:
        rate, duration = args.rate, args.duration
        n_scenes, probe = args.scenes, args.probe
    registry = build_demo_registry(n_scenes=n_scenes)
    scene_names = [s["name"] for s in registry.scenes()]
    camera = demo_camera(probe, probe)
    service = RenderService(registry)
    if args.closed_loop:
        report = run_closed_loop(
            service, scene_names[0], n_frames=args.closed_loop, camera=camera
        )
    else:
        report = run_open_loop(
            service,
            scene_names,
            rate_hz=rate,
            duration_s=duration,
            camera=camera,
            rng=np.random.default_rng(args.seed),
            hw_scale=args.hw_scale,
        )
    if args.json:
        logger.info(
            "%s",
            json.dumps(
                {"row": report.row(), "stats": report.stats, "slo": report.slo},
                indent=2,
                default=str,
            ),
        )
    else:
        row = report.row()
        logger.info(
            "%s: offered %d requests (%.0f Hz) over %.2f simulated s",
            report.driver,
            report.n_offered,
            report.offered_rate_hz,
            report.duration_s,
        )
        logger.info(
            "achieved %.1f FPS at %.0f%% board utilization\n",
            row["achieved_fps"],
            100 * row["utilization"],
        )
        logger.info("%s", service.report())
    return 0 if report.completed > 0 else 1


def _cmd_fleet(args) -> int:
    """Drive the distributed render fleet through a churn scenario.

    ``--smoke`` is the CI chaos preset: 4 workers, one killed mid-run by
    a seeded fault plan, printing the fleet report whose
    ``fleet rebalance:`` and ``unaccounted requests: 0`` lines the CI
    job greps.  ``--faults FILE`` replaces the built-in kill with an
    arbitrary fleet fault plan (crashes, stalls, slowdowns, reply
    drops); ``--kill-at -1`` disables the built-in kill entirely.
    """
    import numpy as np

    from ..experiments.fleet_churn import (
        HW_SCALE,
        RECOVERY_TOLERANCE,
        churn_fleet_config,
        run_churn_scenario,
    )
    from ..fleet import FleetController
    from ..robustness.faults import FaultPlan
    from ..serve import build_demo_registry, demo_camera, run_open_loop

    if args.smoke:
        workers, rate, duration, kill_at, probe = 4, 40.0, 2.0, 0.7, 12
    else:
        workers, rate, duration = args.workers, args.rate, args.duration
        kill_at, probe = args.kill_at, args.probe
    if args.faults:
        plan = FaultPlan.from_file(args.faults)
        logger.info(
            "fault plan loaded from %s (seed=%d)", args.faults, plan.seed
        )
        registry = build_demo_registry(n_scenes=args.scenes)
        controller = FleetController(
            registry, config=churn_fleet_config(workers), fault_plan=plan
        )
        run_open_loop(
            controller,
            [s["name"] for s in registry.scenes()],
            rate_hz=rate,
            duration_s=duration,
            camera=demo_camera(probe, probe),
            rng=np.random.default_rng(args.seed),
            hw_scale=args.hw_scale,
        )
        row = None
    else:
        controller, _, row = run_churn_scenario(
            n_workers=workers,
            kill_at_s=kill_at if kill_at > 0 else duration * 10,
            rate_hz=rate,
            duration_s=duration,
            probe=probe,
            n_scenes=args.scenes,
            hw_scale=args.hw_scale,
            seed=args.seed,
        )
    accounting = controller.accounting()
    if args.json:
        payload = {
            "stats": controller.stats(),
            "accounting": accounting,
            "churn": row,
        }
        logger.info("%s", json.dumps(payload, indent=2, default=str))
    else:
        logger.info("%s", controller.report())
        if row is not None and row["detect_delay_s"] == row["detect_delay_s"]:
            logger.info(
                "fleet churn: killed worker %d at t=%.2fs, detected +%.0fms; "
                "attainment pre=%.3f dip=%.3f post=%.3f (%s)",
                row["victim"], row["kill_at_s"],
                row["detect_delay_s"] * 1e3,
                row["attainment_pre"], row["attainment_dip"],
                row["attainment_post"],
                "recovered" if row["recovered"]
                else f"NOT recovered within {RECOVERY_TOLERANCE:.0%}",
            )
    ok = accounting["completed"] > 0 and accounting["unaccounted"] == 0
    if row is not None and not row["recovered"]:
        ok = False
    return 0 if ok else 1


def _cmd_online(args) -> int:
    """Run one live reconstruction session and print its report.

    ``--smoke`` is the CI preset: a short seeded capture whose report
    carries the ``online: deployed generation`` and ``unaccounted: 0``
    lines the CI job greps.  The exit code is non-zero if no generation
    went live, a swap proof failed, or any frame/request went
    unaccounted.
    """
    from ..online import (
        CaptureConfig,
        OnlineConfig,
        QualityGate,
        ReconstructionSession,
    )

    if args.smoke:
        frames, px, eval_every = 12, 16, 2
    else:
        frames, px, eval_every = args.frames, args.probe, args.eval_every
    config = OnlineConfig(
        capture=CaptureConfig(
            scene=args.scene,
            n_frames=frames,
            rate_hz=args.capture_rate,
            width=px,
            height=px,
            seed=args.seed,
        ),
        gate=QualityGate(target_psnr_db=args.target_psnr),
        eval_every_frames=eval_every,
        seed=args.seed,
    )
    result = ReconstructionSession(config).run()
    if args.json:
        payload = {
            "deployments": result.deployments,
            "psnr_history": result.psnr_history,
            "time_to_target_s": result.time_to_target_s,
            "swap_proofs": result.swap_proofs,
            "windows": result.windows,
            "accounting": result.accounting,
            "ops": result.ops_panel(),
        }
        logger.info("%s", json.dumps(payload, indent=2, default=str))
    else:
        logger.info("%s", result.report())
    proofs_ok = all(
        p["spanned_swap"] and p["bit_identical"] for p in result.swap_proofs
    )
    accounted = (
        result.accounting["frames"]["unaccounted"] == 0
        and result.accounting["requests"]["unaccounted"] == 0
    )
    return 0 if result.generations > 0 and proofs_ok and accounted else 1


def _cmd_bench(args) -> int:
    """Run the perf benches; optionally gate against the baseline."""
    from .. import perf

    payload = perf.run_benches(smoke=args.smoke, kernels_only=args.smoke)
    logger.info("%s", perf.format_report(payload))
    if args.out:
        perf.write_payload(payload, args.out)
        logger.info("wrote bench payload to %s", args.out)
    if not args.check:
        return 0
    baseline_path = args.baseline or perf.DEFAULT_BASELINE
    try:
        baseline = perf.load_baseline(baseline_path)
    except (OSError, ValueError) as exc:
        logger.error("cannot load baseline %s: %s", baseline_path, exc)
        logger.info("bench: FAIL")
        return 1
    tolerance = (
        perf.DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    )
    passed, lines = perf.compare_to_baseline(payload, baseline, tolerance)
    for line in lines:
        logger.info("%s", line)
    return 0 if passed else 1


def _cmd_plan(args) -> int:
    """Fit (or load) a cost model and print the capacity plan.

    With ``--model FILE`` the plan is computed from a previously saved
    cost model; otherwise the scene is profiled through the real serving
    stack first (``--runs`` repeated telemetry-recorded runs).
    ``--save-model FILE`` persists the fitted model for later planning
    without re-profiling.  Exit code 0 = feasible, 1 = infeasible.
    """
    from ..obs import (
        PlanTarget,
        SceneCostModel,
        format_fleet_plan,
        format_plan,
        plan_capacity,
        plan_fleet,
        profile_demo_scene,
    )

    if args.model:
        model = SceneCostModel.load(args.model)
        logger.info("loaded cost model for %r from %s", model.scene, args.model)
    else:
        model = profile_demo_scene(
            args.scene,
            runs=args.runs,
            probe=args.probe,
            max_samples=args.spr,
            hw_scale=args.hw_scale,
        )
    if args.save_model:
        model.save(args.save_model)
        logger.info("saved cost model to %s", args.save_model)
    target = PlanTarget(
        rate_hz=args.rate,
        rays_per_frame=model.rays_per_frame or args.probe * args.probe,
        slo_s=args.slo_ms / 1e3,
        attainment=args.attainment,
    )
    if args.spare_workers is not None:
        fleet = plan_fleet(
            model,
            target,
            replication=args.replication,
            spare_workers=args.spare_workers,
        )
        if args.json:
            logger.info(
                "%s",
                json.dumps(
                    {"model": model.to_payload(), "fleet": fleet.to_payload()},
                    indent=2,
                ),
            )
        else:
            logger.info("%s", format_fleet_plan(fleet, model))
        return 0 if fleet.feasible else 1
    plan = plan_capacity(model, target)
    if args.json:
        logger.info(
            "%s",
            json.dumps(
                {"model": model.to_payload(), "plan": plan.to_payload()},
                indent=2,
            ),
        )
    else:
        logger.info("%s", format_plan(plan, model))
    return 0 if plan.feasible else 1


def _cmd_top(args) -> int:
    """Render the live ops dashboard over a demo serving burst.

    Drives the demo registry under a recording telemetry session with a
    periodic snapshot publisher, then renders the terminal dashboard:
    per-module throughput, queue depths, shed/degrade/eviction rates,
    SLO attainment, and bench trends from the committed history log.
    ``--snapshot`` (the CI mode) prints only the final frame; the
    default replays a few evenly spaced frames of the run's evolution.
    """
    from ..obs import (
        load_history,
        render_dashboard,
        run_demo_ops,
        trend_rows,
    )

    history, slo, _ = run_demo_ops(
        rate_hz=args.rate,
        duration_s=args.duration,
        n_scenes=args.scenes,
        probe=args.probe,
        hw_scale=args.hw_scale,
        interval_s=args.interval,
        seed=args.seed,
    )
    bench_rows = trend_rows(
        load_history(args.bench_history), mode=args.bench_mode
    )
    if args.snapshot or len(history) <= 1:
        frames = [len(history)]
    else:
        # Replay: ~5 evenly spaced prefixes, always ending at the full
        # window, so the run's evolution is visible without scrollback.
        step = max(1, len(history) // 5)
        frames = list(range(step, len(history), step)) + [len(history)]
    for i, end in enumerate(frames):
        # Intermediate frames show the evolving window; the final frame
        # includes the SLO table and bench trends.
        last = end == len(history)
        logger.info(
            "%s%s",
            "" if i == 0 else "\n",
            render_dashboard(
                history[:end],
                slo=slo if last else None,
                bench_rows=bench_rows if last else None,
                bench_mode=args.bench_mode,
            ),
        )
    return 0


def _cmd_report(args) -> int:
    with telemetry.session() as tel:
        result = run_experiment(args.name, quick=not args.full)
        summary = tel.summary()
    logger.info("%s  (%s)\n", result.experiment, result.paper_ref)
    logger.info("%s", format_breakdown(summary))
    if args.trace_out:
        tel.tracer.write_chrome_trace(args.trace_out)
        logger.info("wrote Chrome trace to %s", args.trace_out)
    return 0


def main(argv: list = None) -> int:
    """CLI entry point (``fusion3d-experiments``); returns an exit code."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--quiet",
        action="store_true",
        help="suppress informational output (warnings still shown)",
    )
    parser = argparse.ArgumentParser(
        prog="fusion3d-experiments",
        description="Regenerate the tables and figures of the Fusion-3D paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", parents=[common], help="list available experiments")
    run_parser = sub.add_parser(
        "run", parents=[common], help="run one experiment (or 'all')"
    )
    run_parser.add_argument("name", help="experiment name or 'all'")
    run_parser.add_argument(
        "--full",
        action="store_true",
        help="full scenes/iterations instead of the quick subset",
    )
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of text tables",
    )
    run_parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="record spans and write a Chrome-trace JSON to FILE",
    )
    run_parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect and print the telemetry metrics snapshot",
    )
    run_parser.add_argument(
        "--faults",
        metavar="FILE",
        default=None,
        help="activate the fault plan in FILE (JSON) for the run and "
        "print the degradation report",
    )
    run_all_parser = sub.add_parser(
        "run-all",
        parents=[common],
        help="run many experiments on a process pool, with result caching",
    )
    run_all_parser.add_argument(
        "names",
        nargs="*",
        help="experiment names (default: every registered experiment)",
    )
    run_all_parser.add_argument(
        "--jobs",
        type=int,
        default=os.cpu_count() or 1,
        metavar="N",
        help="worker processes (default: CPU count; 1 = run inline)",
    )
    run_all_parser.add_argument(
        "--full",
        action="store_true",
        help="full scenes/iterations instead of the quick subset",
    )
    run_all_parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document (report + per-experiment payloads)",
    )
    run_all_parser.add_argument(
        "--timeout",
        type=float,
        default=0.0,
        metavar="S",
        help="per-experiment time budget in seconds (0 = unlimited)",
    )
    run_all_parser.add_argument(
        "--no-retry",
        action="store_true",
        help="fail crashed experiments immediately instead of retrying once",
    )
    run_all_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute everything; neither read nor write the cache",
    )
    run_all_parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache location (default: $FUSION3D_CACHE_DIR or ~/.cache/fusion3d)",
    )
    run_all_parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the merged cross-worker metrics snapshot",
    )
    run_all_parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write a merged Chrome trace (one pid track per worker)",
    )
    cache_parser = sub.add_parser(
        "cache",
        parents=[common],
        help="inspect or clear the on-disk result/trace cache",
    )
    cache_parser.add_argument(
        "action", choices=("info", "clear"), help="what to do with the cache"
    )
    cache_parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache location (default: $FUSION3D_CACHE_DIR or ~/.cache/fusion3d)",
    )
    serve_parser = sub.add_parser(
        "serve",
        parents=[common],
        help="drive the rendering service under a load generator and "
        "print the SLO attainment report",
    )
    serve_parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI preset: 2-second simulated open-loop burst on the demo registry",
    )
    serve_parser.add_argument(
        "--rate", type=float, default=300.0, metavar="HZ",
        help="open-loop offered arrival rate (default: 300)",
    )
    serve_parser.add_argument(
        "--duration", type=float, default=2.0, metavar="S",
        help="simulated arrival horizon in seconds (default: 2.0)",
    )
    serve_parser.add_argument(
        "--scenes", type=int, default=2, metavar="N",
        help="demo scenes to deploy (default: 2)",
    )
    serve_parser.add_argument(
        "--probe", type=int, default=16, metavar="PX",
        help="probe frame edge length in pixels (default: 16)",
    )
    serve_parser.add_argument(
        "--hw-scale", type=float, default=400.0, metavar="X",
        help="bill each probe frame as X frames of hardware work (default: 400)",
    )
    serve_parser.add_argument(
        "--closed-loop", type=int, default=0, metavar="N",
        help="run one closed-loop client for N frames instead of open loop",
    )
    serve_parser.add_argument(
        "--seed", type=int, default=0, help="arrival-trace RNG seed"
    )
    serve_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the load report as JSON instead of text",
    )
    bench_parser = sub.add_parser(
        "bench",
        parents=[common],
        help="run the perf benches (kernel + end-to-end) and optionally "
        "gate against the committed BENCH_nerf.json baseline",
    )
    bench_parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI preset: shrunken workloads, kernel benches only",
    )
    bench_parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the bench payload as JSON to FILE (e.g. BENCH_nerf.json)",
    )
    bench_parser.add_argument(
        "--check",
        action="store_true",
        help="compare speedups against the baseline and exit non-zero on "
        "a regression (greppable PERF OK / PERF REGRESSION lines)",
    )
    bench_parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline payload for --check (default: BENCH_nerf.json)",
    )
    bench_parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help="allowed relative speedup drop before failing (default: 0.2)",
    )
    plan_parser = sub.add_parser(
        "plan",
        parents=[common],
        help="fit a per-scene cost model from telemetry and print the "
        "capacity plan for a target load and latency SLO",
    )
    plan_parser.add_argument(
        "--scene", default="chair", help="demo scene to profile (default: chair)"
    )
    plan_parser.add_argument(
        "--rate", type=float, default=2000.0, metavar="HZ",
        help="target offered frame rate across the fleet (default: 2000)",
    )
    plan_parser.add_argument(
        "--slo-ms", type=float, default=5.0, metavar="MS",
        help="per-frame latency budget in simulated ms (default: 5.0)",
    )
    plan_parser.add_argument(
        "--attainment", type=float, default=0.9, metavar="FRAC",
        help="required fraction of frames within the budget (default: 0.9)",
    )
    plan_parser.add_argument(
        "--probe", type=int, default=16, metavar="PX",
        help="probe frame edge length in pixels (default: 16)",
    )
    plan_parser.add_argument(
        "--spr", type=int, default=32, metavar="N",
        help="max samples per ray for the profiled scene (default: 32)",
    )
    plan_parser.add_argument(
        "--hw-scale", type=float, default=400.0, metavar="X",
        help="bill each probe frame as X frames of hardware work (default: 400)",
    )
    plan_parser.add_argument(
        "--runs", type=int, default=3, metavar="N",
        help="profiling runs behind the confidence intervals (default: 3)",
    )
    plan_parser.add_argument(
        "--model", metavar="FILE", default=None,
        help="plan from a saved cost model instead of profiling",
    )
    plan_parser.add_argument(
        "--save-model", metavar="FILE", default=None,
        help="write the fitted cost model as JSON to FILE",
    )
    plan_parser.add_argument(
        "--spare-workers", type=int, default=None, metavar="N",
        help="size a churn-tolerant fleet instead: boards + N live "
        "spares (prints the 'fleet plan:' line)",
    )
    plan_parser.add_argument(
        "--replication", type=int, default=2, metavar="R",
        help="scene copies the fleet keeps, for --spare-workers "
        "(default: 2)",
    )
    plan_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the model + plan as JSON instead of the text report",
    )
    fleet_parser = sub.add_parser(
        "fleet",
        parents=[common],
        help="drive the distributed render fleet through a churn "
        "scenario and print the fleet report",
    )
    fleet_parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI chaos preset: 4 workers, one killed mid-run, seeded",
    )
    fleet_parser.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="fleet size (default: 4)",
    )
    fleet_parser.add_argument(
        "--rate", type=float, default=40.0, metavar="HZ",
        help="open-loop offered arrival rate (default: 40)",
    )
    fleet_parser.add_argument(
        "--duration", type=float, default=3.0, metavar="S",
        help="simulated arrival horizon in seconds (default: 3.0)",
    )
    fleet_parser.add_argument(
        "--kill-at", type=float, default=1.0, metavar="S",
        help="kill one worker at this instant; negative disables "
        "(default: 1.0)",
    )
    fleet_parser.add_argument(
        "--scenes", type=int, default=2, metavar="N",
        help="demo scenes to deploy (default: 2)",
    )
    fleet_parser.add_argument(
        "--probe", type=int, default=16, metavar="PX",
        help="probe frame edge length in pixels (default: 16)",
    )
    fleet_parser.add_argument(
        "--hw-scale", type=float, default=5000.0, metavar="X",
        help="bill each probe frame as X frames of hardware work "
        "(default: 5000)",
    )
    fleet_parser.add_argument(
        "--faults", metavar="FILE", default=None,
        help="fleet fault plan JSON (crashes/stalls/slowdowns/drops) "
        "replacing the built-in kill",
    )
    fleet_parser.add_argument(
        "--seed", type=int, default=7, help="scenario RNG seed"
    )
    fleet_parser.add_argument(
        "--json",
        action="store_true",
        help="emit fleet stats + accounting as JSON instead of text",
    )
    online_parser = sub.add_parser(
        "online",
        parents=[common],
        help="run a live reconstruction session (capture -> incremental "
        "train -> hot-swap deploy under SLO) and print its report",
    )
    online_parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI preset: 12 frames at 16 px, seeded, ~5 s wall",
    )
    online_parser.add_argument(
        "--scene", default="mic",
        help="analytic capture scene (default: mic)",
    )
    online_parser.add_argument(
        "--frames", type=int, default=16, metavar="N",
        help="captured frames (default: 16)",
    )
    online_parser.add_argument(
        "--capture-rate", type=float, default=8.0, metavar="HZ",
        help="capture frame rate on the virtual clock (default: 8)",
    )
    online_parser.add_argument(
        "--target-psnr", type=float, default=16.0, metavar="DB",
        help="held-out PSNR defining 'acceptable quality' (default: 16)",
    )
    online_parser.add_argument(
        "--probe", type=int, default=16, metavar="PX",
        help="capture edge length in pixels (default: 16)",
    )
    online_parser.add_argument(
        "--eval-every", type=int, default=4, metavar="N",
        help="evaluate/maybe-deploy every N frames (default: 4)",
    )
    online_parser.add_argument(
        "--seed", type=int, default=0, help="capture/training/arrival seed"
    )
    online_parser.add_argument(
        "--json",
        action="store_true",
        help="emit deployments, proofs, and windows as JSON instead of text",
    )
    top_parser = sub.add_parser(
        "top",
        parents=[common],
        help="render the terminal ops dashboard over a demo serving burst "
        "(throughput, queues, SLO attainment, bench trends)",
    )
    top_parser.add_argument(
        "--snapshot",
        action="store_true",
        help="CI mode: print only the final dashboard frame",
    )
    top_parser.add_argument(
        "--rate", type=float, default=300.0, metavar="HZ",
        help="open-loop offered arrival rate (default: 300)",
    )
    top_parser.add_argument(
        "--duration", type=float, default=2.0, metavar="S",
        help="simulated arrival horizon in seconds (default: 2.0)",
    )
    top_parser.add_argument(
        "--scenes", type=int, default=2, metavar="N",
        help="demo scenes to deploy (default: 2)",
    )
    top_parser.add_argument(
        "--probe", type=int, default=16, metavar="PX",
        help="probe frame edge length in pixels (default: 16)",
    )
    top_parser.add_argument(
        "--hw-scale", type=float, default=400.0, metavar="X",
        help="bill each probe frame as X frames of hardware work (default: 400)",
    )
    top_parser.add_argument(
        "--interval", type=float, default=0.05, metavar="S",
        help="snapshot publisher period on the service clock (default: 0.05)",
    )
    top_parser.add_argument(
        "--seed", type=int, default=0, help="arrival-trace RNG seed"
    )
    top_parser.add_argument(
        "--bench-history", metavar="FILE", default="BENCH_history.jsonl",
        help="bench history log for the trends section "
        "(default: BENCH_history.jsonl)",
    )
    top_parser.add_argument(
        "--bench-mode", default="full", choices=("full", "smoke"),
        help="bench mode whose speedups to trend (default: full)",
    )
    report_parser = sub.add_parser(
        "report",
        parents=[common],
        help="run one experiment under telemetry; print the per-module "
        "cycle + wall-clock breakdown",
    )
    report_parser.add_argument(
        "name", nargs="?", default="table3", help="experiment name (default: table3)"
    )
    report_parser.add_argument(
        "--full",
        action="store_true",
        help="full scenes/iterations instead of the quick subset",
    )
    report_parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="also write the recorded Chrome-trace JSON to FILE",
    )
    args = parser.parse_args(argv)
    _configure_cli_logging(args.quiet)
    if args.command == "list":
        return _cmd_list()
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "run-all":
        return _cmd_run_all(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "online":
        return _cmd_online(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "top":
        return _cmd_top(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
