"""Experiment registry and command-line entry point.

``fusion3d-experiments list`` shows every reproducible table/figure;
``fusion3d-experiments run table3`` regenerates one; ``run all`` walks
the whole evaluation section.  ``--full`` switches off quick mode (more
scenes, more training iterations).
"""

from __future__ import annotations

import argparse
import sys

from . import (
    chiplet_scaling,
    dataset_stats,
    ert_study,
    fig3,
    fig6,
    fig9_10,
    fig11,
    fig12,
    fig13a,
    fig13b,
    fig14,
    moe_scaling,
    scaling_cost,
    scheduler_study,
    speedup_breakdown,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    tensorf_adaptation,
    vf_scaling,
    warping_study,
)
from .base import ExperimentResult

#: name -> (module, paper reference) registry of every experiment.
REGISTRY = {
    "table1": (table1, "Table I: off-chip bandwidth comparison"),
    "table2": (table2, "Table II: INT8 quantized-training quality"),
    "table3": (table3, "Table III: single chip vs SOTA"),
    "table4": (table4, "Table IV: multi-chip vs cloud platforms"),
    "table5": (table5, "Table V: per-scene NeRF-360 vs 2080 Ti"),
    "table6": (table6, "Table VI: sampling ablation (T1)"),
    "fig3": (fig3, "Fig. 3: stage data volumes"),
    "fig6": (fig6, "Fig. 6(d): FIEM multiplier"),
    "fig9_10": (fig9_10, "Figs. 9-10: chip characterization"),
    "fig11": (fig11, "Fig. 11: per-scene speedup/energy"),
    "fig12": (fig12, "Fig. 12: tiling ablations (T3/T4)"),
    "fig13a": (fig13a, "Fig. 13(a): MoE convergence"),
    "fig13b": (fig13b, "Fig. 13(b): bandwidth vs model size"),
    "fig14": (fig14, "Fig. 14: chiplet I/O area"),
    "speedup_breakdown": (speedup_breakdown, "Sec. VI-C: per-stage speedup"),
    "tensorf_adaptation": (tensorf_adaptation, "Sec. VI-C: TensoRF adaptation"),
    "scaling_cost": (scaling_cost, "Sec. II-D: yield/cost of scaling"),
    "vf_scaling": (vf_scaling, "Fig. 10(d) ext: DVFS operating points"),
    "scheduler_study": (scheduler_study, "Fig. 5(c): dispatch policies"),
    "chiplet_scaling": (chiplet_scaling, "Sec. VIII: chiplet temporal reuse"),
    "moe_scaling": (moe_scaling, "Fig. 13(a) obs. 2: PSNR vs expert count"),
    "ert_study": (ert_study, "extension: early ray termination"),
    "warping_study": (warping_study, "Table III fn. 1: warping vs motion"),
    "dataset_stats": (dataset_stats, "DESIGN.md: substitution statistics"),
}


def run_experiment(name: str, quick: bool = True) -> ExperimentResult:
    """Run one registered experiment by name."""
    if name not in REGISTRY:
        raise KeyError(f"unknown experiment {name!r}; see REGISTRY")
    module, _ = REGISTRY[name]
    return module.run(quick=quick)


def main(argv: list = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fusion3d-experiments",
        description="Regenerate the tables and figures of the Fusion-3D paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("name", help="experiment name or 'all'")
    run_parser.add_argument(
        "--full",
        action="store_true",
        help="full scenes/iterations instead of the quick subset",
    )
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of text tables",
    )
    args = parser.parse_args(argv)
    if args.command == "list":
        for name, (_, description) in REGISTRY.items():
            print(f"{name:20s} {description}")
        return 0
    names = list(REGISTRY) if args.name == "all" else [args.name]
    for name in names:
        result = run_experiment(name, quick=not args.full)
        print(result.to_json() if args.json else result.to_text())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
