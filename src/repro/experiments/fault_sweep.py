"""Fault-injection sweep: what the board survives, and at what cost.

Four sub-studies, all driven by :mod:`repro.robustness`:

1. **Dead chiplets** — the 4→3→2-chip degradation curve.  With the
   ``remap`` policy a dead chip's MoE expert runs serially on the
   least-loaded survivor (latency cost, no quality cost); with ``drop``
   its partial pixels vanish from the fusion adder (quality cost, no
   latency cost).
2. **SRAM soft errors** — bit flips injected into a model's weight
   stores in their native formats (fp16 hash-table entries, INT8
   fixed-point MLP weights), severity measured as PSNR of the faulted
   render against the clean render; non-finite pixels are clamped to
   background by the renderer's scrub path instead of poisoning PSNR.
3. **Drop-policy quality cost** — a briefly-trained 4-expert MoE with
   one expert removed from the fusion: the PSNR drop is the price of
   "keep rendering with 3 chips, don't reschedule".
4. **Watchdog recovery** — a training run whose parameters are poisoned
   mid-flight: the divergence watchdog rolls back to the last good
   snapshot, backs off the learning rate, and the run finishes with a
   finite loss instead of NaN.

Every injection is deterministic (:meth:`FaultPlan.rng`), so the sweep
is reproducible run to run.
"""

from __future__ import annotations

import numpy as np

from .. import telemetry
from ..datasets import synthetic
from ..nerf.hash_encoding import HashEncodingConfig
from ..nerf.model import InstantNGPModel, ModelConfig
from ..nerf.moe import MoEConfig, MoENeRF, MoETrainer
from ..nerf.occupancy import OccupancyGrid
from ..nerf.renderer import render_image
from ..nerf.sampling import RayMarcher, SamplerConfig
from ..nerf.trainer import Trainer, TrainerConfig
from ..nerf.volume_rendering import composite, psnr
from ..robustness import (
    ChipletFaultConfig,
    DivergenceWatchdog,
    FaultPlan,
    SramFaultConfig,
    WatchdogConfig,
    inject_model_faults,
    plan_scope,
)
from ..sim.multichip import MultiChipConfig, MultiChipSystem
from ..sim.trace import synthetic_trace
from .base import ExperimentResult

#: (hash-table flips, MLP flips) severity ladder for the SRAM study.
SRAM_SEVERITIES = ((4, 4), (32, 32), (256, 256))


def _tiny_model(seed: int = 0) -> InstantNGPModel:
    return InstantNGPModel(
        ModelConfig(
            encoding=HashEncodingConfig(
                n_levels=4, n_features=2, log2_table_size=10,
                base_resolution=4, finest_resolution=32,
            ),
            hidden_width=16,
            geo_features=8,
        ),
        seed=seed,
    )


def dead_chiplet_curve(quick: bool = True) -> list:
    """Latency/feasibility of 4-chip operation with 0, 1, 2 dead chips."""
    rng_traces = [
        synthetic_trace(
            n_rays=512 if quick else 2048,
            mean_samples_per_ray=4.0 + 2.0 * e,
            occupancy_fraction=0.2 + 0.05 * e,
            rng=np.random.default_rng(e),
        )
        for e in range(4)
    ]
    system = MultiChipSystem(MultiChipConfig(n_chips=4))
    rows = []
    for dead, policy in (
        ((), "remap"),
        ((2,), "remap"),
        ((2,), "drop"),
        ((1, 2), "remap"),
        ((1, 2), "drop"),
    ):
        plan = FaultPlan(chiplets=ChipletFaultConfig(dead_chips=dead, policy=policy))
        with plan_scope(plan):
            report = system.simulate(rng_traces)
        rows.append(
            {
                "dead_chips": len(dead),
                "policy": policy if dead else "-",
                "survivors": 4 - len(dead),
                "latency_cost": round(report.latency_cost, 3),
                "runtime_us": round(report.runtime_s * 1e6, 3),
                "experts_rendered": len(
                    {e for v in (report.expert_assignment or {}).values() for e in v}
                )
                if report.degraded
                else 4,
            }
        )
    return rows


def sram_severity(quick: bool = True) -> list:
    """PSNR of a bit-flipped model's render against its clean render."""
    scene = synthetic.make_scene("mic")
    normalizer = scene.normalizer()
    camera = synthetic.make_dataset(
        "mic", n_views=1, width=20 if quick else 32,
        height=20 if quick else 32, gt_steps=16,
    ).cameras[0]
    marcher = RayMarcher(SamplerConfig(max_samples=16, jitter=False))
    occupancy = OccupancyGrid(resolution=8)  # keep everything: worst case
    model = _tiny_model(seed=0)
    clean = render_image(
        model, camera, normalizer, marcher, occupancy=occupancy
    )
    rows = []
    for hash_flips, mlp_flips in SRAM_SEVERITIES:
        plan = FaultPlan(
            seed=11,
            sram=SramFaultConfig(
                hash_table_bit_flips=hash_flips, mlp_bit_flips=mlp_flips
            ),
        )
        faulted = _tiny_model(seed=0)
        with plan_scope(plan):
            applied = inject_model_faults(
                faulted, plan.sram, plan.rng("sram:fault_sweep")
            )
            image = render_image(
                faulted, camera, normalizer, marcher, occupancy=occupancy
            )
        rows.append(
            {
                "hash_flips": applied["hash_table_flips"],
                "mlp_flips": applied["mlp_flips"],
                "psnr_vs_clean_db": round(psnr(image, clean), 2),
            }
        )
    tel = telemetry.get_session()
    if tel.enabled and rows:
        tel.metrics.counter("robustness.sram.hash_table_flips").inc(
            sum(r["hash_flips"] for r in rows)
        )
        tel.metrics.counter("robustness.sram.mlp_flips").inc(
            sum(r["mlp_flips"] for r in rows)
        )
    return rows


def _fused_render(trainer: MoETrainer, camera, skip_expert: int = None) -> np.ndarray:
    """Fused MoE render of one view, optionally dropping one expert."""
    from ..nerf.rays import generate_rays

    rays = generate_rays(camera)
    origins, directions = trainer.normalizer.rays_to_unit(
        rays.origins, rays.directions
    )
    expert_colors = []
    for e, expert in enumerate(trainer.model.experts):
        if e == skip_expert:
            continue
        batch = trainer.marcher.sample(
            origins, directions, occupancy=trainer.occupancies[e]
        )
        if len(batch) == 0:
            expert_colors.append(
                np.full((camera.n_pixels, 3), trainer.config.background)
            )
            continue
        sigma, rgb, _ = expert.forward(batch.positions, batch.directions)
        result = composite(
            sigma, rgb, batch.deltas, batch.ts, batch.ray_idx, batch.n_rays,
            background=trainer.config.background,
        )
        expert_colors.append(result.colors)
    fused = MoENeRF.fuse(expert_colors, trainer.config.background)
    return np.clip(fused, 0.0, 1.0).reshape(camera.height, camera.width, 3)


def drop_policy_cost(quick: bool = True) -> dict:
    """PSNR price of dropping one trained expert from the fusion adder."""
    size = 20 if quick else 32
    dataset = synthetic.make_dataset(
        "mic", n_views=3, width=size, height=size, gt_steps=16
    )
    expert_cfg = ModelConfig(
        encoding=HashEncodingConfig(
            n_levels=4, n_features=2, log2_table_size=10,
            base_resolution=4, finest_resolution=32,
        ),
        hidden_width=16,
        geo_features=8,
    )
    trainer = MoETrainer(
        MoENeRF(MoEConfig(n_experts=4, expert_model=expert_cfg), seed=0),
        dataset.cameras,
        dataset.images,
        dataset.normalizer,
        TrainerConfig(
            batch_rays=64, lr=5e-3, max_samples_per_ray=16,
            occupancy_resolution=16, occupancy_interval=8,
        ),
    )
    trainer.train(48 if quick else 128)
    camera = dataset.cameras[0]
    healthy = _fused_render(trainer, camera)
    degraded = _fused_render(trainer, camera, skip_expert=2)
    target = dataset.images[0]
    healthy_psnr = psnr(healthy, target)
    degraded_psnr = psnr(degraded, target)
    drop_db = healthy_psnr - degraded_psnr
    tel = telemetry.get_session()
    if tel.enabled:
        tel.metrics.gauge("robustness.degraded.psnr_drop_db").set(drop_db)
        tel.metrics.gauge("robustness.chiplets.dropped_experts").set(1.0)
    return {
        "healthy_psnr_db": round(healthy_psnr, 2),
        "degraded_psnr_db": round(degraded_psnr, 2),
        "psnr_drop_db": round(drop_db, 2),
    }


def watchdog_recovery(quick: bool = True) -> dict:
    """Poison a training run mid-flight; the watchdog must recover it."""
    size = 20 if quick else 32
    dataset = synthetic.make_dataset(
        "mic", n_views=3, width=size, height=size, gt_steps=16
    )
    model = _tiny_model(seed=0)
    trainer = Trainer(
        model,
        dataset.cameras,
        dataset.images,
        dataset.normalizer,
        TrainerConfig(
            batch_rays=64, lr=5e-3, max_samples_per_ray=16,
            occupancy_resolution=16, occupancy_interval=8,
        ),
    )
    warmup = 6 if quick else 24
    resume = 3 if quick else 12
    config = WatchdogConfig(snapshot_interval=2, lr_backoff=0.5)
    with DivergenceWatchdog(trainer, config) as watchdog:
        trainer.train(warmup)
        lr_before = trainer.optimizer.lr
        # SRAM upset at the worst possible time: poison the live weights.
        params = model.parameters()
        first = next(iter(params))
        params[first][...] = np.nan
        diverged_loss = trainer.train_step()  # watchdog rolls back here
        resumed = [trainer.train_step() for _ in range(resume)]
    return {
        "rollbacks": watchdog.rollbacks,
        "diverged_loss_is_nan": bool(diverged_loss != diverged_loss),
        "lr_before": lr_before,
        "lr_after": trainer.optimizer.lr,
        "resumed_final_loss": float(resumed[-1]),
        "recovered": bool(np.isfinite(resumed[-1])),
    }


def run(quick: bool = True) -> ExperimentResult:
    """Run the fault-injection sweep (see the module docstring)."""
    chiplet_rows = dead_chiplet_curve(quick)
    sram_rows = sram_severity(quick)
    drop = drop_policy_cost(quick)
    recovery = watchdog_recovery(quick)
    rows = [dict(study="dead-chiplet", **r) for r in chiplet_rows]
    rows += [dict(study="sram", **r) for r in sram_rows]
    # Uniform column set so every study's numbers render in the table.
    columns = {k: None for row in rows for k in row}
    rows = [{**columns, **row} for row in rows]
    one_dead_remap = next(
        r for r in chiplet_rows if r["dead_chips"] == 1 and r["policy"] == "remap"
    )
    return ExperimentResult(
        experiment="fault-injection & graceful-degradation sweep",
        paper_ref="robustness extension (Sec. V/VII context)",
        rows=rows,
        summary={
            "remap_latency_cost_1_dead": one_dead_remap["latency_cost"],
            "sram_psnr_floor_db": min(r["psnr_vs_clean_db"] for r in sram_rows),
            "drop_policy_psnr_cost_db": drop["psnr_drop_db"],
            "watchdog_rollbacks": recovery["rollbacks"],
            "watchdog_recovered": recovery["recovered"],
            "watchdog_lr_backoff": recovery["lr_after"] / recovery["lr_before"],
        },
    )
