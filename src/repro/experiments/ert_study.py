"""Early-ray-termination study (inference optimization on top of T1).

Occupancy gating removes empty space *in front of* surfaces; ERT removes
hidden samples *behind* them.  This experiment evaluates the converged
radiance field (the scene's analytic density, which a fully trained model
approaches) on each object scene, measures how many occupancy-surviving
samples an ERT unit skips, verifies the pixel colors are unchanged within
the termination threshold, and reports the resulting Stage II/III work
reduction for the accelerator.
"""

from __future__ import annotations

import numpy as np

from ..datasets import synthetic
from ..nerf.camera import Camera, sphere_poses
from ..nerf.early_termination import (
    live_sample_mask,
    termination_stats,
    truncate_batch,
    verify_color_preserved,
)
from ..nerf.occupancy import OccupancyGrid
from ..nerf.rays import generate_rays
from ..nerf.sampling import RayMarcher, SamplerConfig
from ..nerf.volume_rendering import composite
from .base import ExperimentResult

THRESHOLD = 1e-2


def _analytic_render(scene, width=64, max_samples=192):
    """Sample + shade one view straight from the analytic field."""
    normalizer = scene.normalizer()
    pose = sphere_poses(1, radius=2.6)[0]
    camera = Camera(width=width, height=width, focal=1.1 * width, c2w=pose)
    occupancy = OccupancyGrid(resolution=32, threshold=0.5)
    occupancy.set_from_function(scene.density_unit, rng=np.random.default_rng(0))
    rays = generate_rays(camera)
    origins, directions = normalizer.rays_to_unit(rays.origins, rays.directions)
    marcher = RayMarcher(SamplerConfig(max_samples=max_samples))
    batch = marcher.sample(origins, directions, occupancy=occupancy)
    world = normalizer.from_unit(batch.positions)
    # Optical depth is length-invariant: unit-space sigma = world sigma
    # divided by the normalization scale.
    sigmas = scene.density(world) / normalizer.scale
    rgbs = scene.color(world)
    result = composite(
        sigmas, rgbs, batch.deltas, batch.ts, batch.ray_idx, batch.n_rays
    )
    return batch, sigmas, rgbs, result


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce extension: early ray termination (see the module docstring)."""
    scenes = ("hotdog", "lego", "ship") if quick else synthetic.SYNTHETIC_SCENES
    rows = []
    speedups = []
    for name in scenes:
        scene = synthetic.make_scene(name)
        batch, sigmas, rgbs, result = _analytic_render(scene)
        stats = termination_stats(result, batch, threshold=THRESHOLD)
        mask = live_sample_mask(result, THRESHOLD)
        truncated = truncate_batch(batch, result, threshold=THRESHOLD)
        result_t = composite(
            sigmas[mask], rgbs[mask], truncated.deltas, truncated.ts,
            truncated.ray_idx, truncated.n_rays,
        )
        color_err = verify_color_preserved(result, result_t)
        speedups.append(stats.speedup)
        rows.append(
            {
                "scene": name,
                "samples_after_occupancy": stats.total_samples,
                "live_after_ert": stats.live_samples,
                "terminated_frac": round(stats.terminated_fraction, 3),
                "stage23_speedup": round(stats.speedup, 2),
                "max_color_error": round(color_err, 4),
            }
        )
    return ExperimentResult(
        experiment="early ray termination on the converged field",
        paper_ref="inference extension (composes with Stage I gating)",
        rows=rows,
        summary={
            "mean_stage23_speedup": float(np.mean(speedups)),
            "threshold": THRESHOLD,
            "color_error_bounded": all(
                r["max_color_error"] <= 2 * THRESHOLD for r in rows
            ),
        },
    )
