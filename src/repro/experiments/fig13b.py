"""Fig. 13(b): required bandwidth (and quality) across model sizes.

Sweeps the per-level hash-table size and reports the off-chip bandwidth a
2-second training run needs, for the end-to-end chip and for the
partial-pipeline baseline boundary.  Key paper points: the end-to-end
curve sits far below the baseline everywhere; at Instant-3D's model size
the gap is 76% (~44 GB/s); at the paper's configuration everything fits
on chip and only ~0.6 GB/s remains.  The quick mode skips the PSNR leg
(functional training); the full mode trains a small model per size to
show quality rising with capacity.
"""

from __future__ import annotations

from ..core.bandwidth import BandwidthModel, WorkloadVolume
from .base import ExperimentResult

#: Instant-3D's table configuration (2^16 + 2^18 entries, Sec. VI-C).
INSTANT3D_TABLE_BYTES = (2**16 + 2**18) * 2 * 2 * 8


def _psnr_for_size(log2_table: int, quick: bool) -> float:
    from ..datasets import synthetic
    from ..nerf.hash_encoding import HashEncodingConfig
    from ..nerf.model import InstantNGPModel, ModelConfig
    from ..nerf.trainer import Trainer, TrainerConfig

    dataset = synthetic.make_dataset(
        "lego", n_views=8, width=32, height=32, gt_steps=96
    )
    model = InstantNGPModel(
        ModelConfig(
            encoding=HashEncodingConfig(
                n_levels=6,
                log2_table_size=log2_table,
                base_resolution=8,
                finest_resolution=96,
            ),
            hidden_width=32,
        ),
        seed=0,
    )
    trainer = Trainer(
        model,
        dataset.cameras,
        dataset.images,
        dataset.normalizer,
        TrainerConfig(batch_rays=512, lr=5e-3, max_samples_per_ray=48,
                      occupancy_resolution=24),
    )
    trainer.train(300)
    return trainer.eval_psnr(n_views=2)


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Fig. 13(b): bandwidth vs model size (see the module docstring)."""
    model = BandwidthModel()
    workload = WorkloadVolume.instant_training()
    sizes = range(12, 20)
    rows = []
    for log2_table in sizes:
        table_bytes = model.table_bytes(log2_table)
        ours = model.required_training_bandwidth_gbps(workload, table_bytes)
        partial = model.required_training_bandwidth_gbps(
            workload,
            table_bytes,
            on_chip_feature_bytes=1536 * 1024,
            end_to_end=False,
        )
        row = {
            "log2_table": log2_table,
            "table_kb": round(table_bytes / 1024),
            "end_to_end_gbps": round(ours, 2),
            "partial_pipeline_gbps": round(partial, 2),
            "fits_on_chip": "yes" if table_bytes <= 640 * 1024 else "no",
        }
        if not quick and log2_table <= 15:
            row["psnr"] = round(_psnr_for_size(log2_table, quick), 2)
        rows.append(row)
    at_i3d = model.end_to_end_reduction(workload, INSTANT3D_TABLE_BYTES)
    return ExperimentResult(
        experiment="bandwidth vs model size",
        paper_ref="Fig. 13(b)",
        rows=rows,
        summary={
            "reduction_at_instant3d_size": at_i3d["reduction"],
            "paper_reduction": 0.76,
            "saved_gbps_at_instant3d_size": at_i3d["saved_gbps"],
            "paper_saved_gbps": 44.0,
            "our_bw_at_paper_config_gbps": model.required_training_bandwidth_gbps(
                workload, model.table_bytes(14)
            ),
            "paper_bw_gbps": 0.6,
        },
    )
