"""Table V: per-scene speedup and energy efficiency vs the RTX 2080 Ti
on the seven NeRF-360 scenes.

The GPU's SIMT efficiency collapses on sparse, irregular scenes while the
multi-chip system's dynamic scheduling keeps it workload-insensitive;
speedups therefore anti-correlate with scene density (paper: 3.1x on the
dense garden up to 9.2x on the sparse bicycle).
"""

from __future__ import annotations

import numpy as np

from ..baselines import GpuModel, GpuModelConfig, RTX_2080TI
from ..sim.multichip import MultiChipConfig, MultiChipSystem
from .base import ExperimentResult
from .workloads import nerf360_workloads

PAPER = {
    "bicycle": {"inf_speed": 9.2, "trn_speed": 8.7, "inf_eff": 380, "trn_eff": 359},
    "bonsai": {"inf_speed": 8.2, "trn_speed": 8.8, "inf_eff": 342, "trn_eff": 365},
    "counter": {"inf_speed": 6.1, "trn_speed": 5.5, "inf_eff": 255, "trn_eff": 229},
    "garden": {"inf_speed": 3.1, "trn_speed": 6.7, "inf_eff": 128, "trn_eff": 279},
    "kitchen": {"inf_speed": 5.9, "trn_speed": 5.7, "inf_eff": 244, "trn_eff": 236},
    "room": {"inf_speed": 7.3, "trn_speed": 7.1, "inf_eff": 302, "trn_eff": 295},
    "stump": {"inf_speed": 5.3, "trn_speed": 8.5, "inf_eff": 221, "trn_eff": 351},
}


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Table V: per-scene NeRF-360 vs 2080 Ti (see the module docstring)."""
    scenes = ("bicycle", "garden", "room") if quick else None
    workloads = nerf360_workloads(scenes=scenes)
    system = MultiChipSystem(MultiChipConfig())
    gpu = GpuModel(RTX_2080TI, GpuModelConfig(reference_samples_per_ray=12.0))
    rows = []
    inf_speedups, trn_speedups = [], []
    for w in workloads:
        traces = [w.trace] * system.config.n_chips
        inf = system.simulate(traces, training=False)
        trn = system.simulate(traces, training=True)
        gpu_inf_s = gpu.runtime_s(w.trace)
        gpu_trn_s = gpu.runtime_s(w.trace, training=True)
        inf_speed = gpu_inf_s / inf.runtime_s
        trn_speed = gpu_trn_s / trn.runtime_s
        # Energy efficiency: GPU joules over system joules for the same work.
        gpu_inf_j = gpu.energy_per_point_j(w.trace) * w.trace.n_samples
        gpu_trn_j = gpu.energy_per_point_j(w.trace, training=True) * w.trace.n_samples
        inf_eff = gpu_inf_j / inf.energy_j
        trn_eff = gpu_trn_j / trn.energy_j
        inf_speedups.append(inf_speed)
        trn_speedups.append(trn_speed)
        paper = PAPER[w.name]
        rows.append(
            {
                "scene": w.name,
                "samples_per_ray": round(w.mean_samples_per_ray, 1),
                "inf_speedup": round(inf_speed, 1),
                "paper_inf": paper["inf_speed"],
                "trn_speedup": round(trn_speed, 1),
                "paper_trn": paper["trn_speed"],
                "inf_energy_eff": round(inf_eff),
                "paper_inf_eff": paper["inf_eff"],
                "trn_energy_eff": round(trn_eff),
                "paper_trn_eff": paper["trn_eff"],
            }
        )
    return ExperimentResult(
        experiment="per-scene speedup & energy efficiency vs 2080 Ti (NeRF-360)",
        paper_ref="Table V",
        rows=rows,
        summary={
            "max_inf_speedup": float(np.max(inf_speedups)),
            "paper_max_inf_speedup": 9.2,
            "min_inf_speedup": float(np.min(inf_speedups)),
            "paper_min_inf_speedup": 3.1,
            "mean_trn_speedup": float(np.mean(trn_speedups)),
        },
    )
