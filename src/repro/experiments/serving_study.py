"""Serving study: latency–throughput curve and SLO attainment under load.

The paper's real-time claim is a *service-level* property: sustained FPS
within a latency budget.  This experiment drives the serve subsystem
(:mod:`repro.serve`) with an open-loop Poisson sweep over offered rates —
each row is one operating point of the latency–throughput curve, with
the admission ladder's shed/degrade counts — plus one single-client
closed-loop run whose frames are checked bit-identical against a direct
:func:`~repro.nerf.renderer.render_image` call (the end-to-end
correctness anchor of the whole request path).

Overload behavior is the point of the top rates: queue growth is bounded
by admission control, p99 stays finite, and the service sheds or
degrades instead of collapsing.
"""

from __future__ import annotations

import math

import numpy as np

from ..nerf.renderer import render_image
from ..serve import (
    AdmissionPolicy,
    RenderService,
    ServiceConfig,
    build_demo_registry,
    demo_camera,
    run_closed_loop,
    run_open_loop,
)
from .base import ExperimentResult

#: Billing multiplier: each probe frame is charged to the board as this
#: many probe frames' worth of samples, standing in for full-resolution
#: frames (the usual workload_scale linear extrapolation).
HW_SCALE = 400.0

#: Admission thresholds for the sweep, in rays — small enough that the
#: top offered rates actually exercise the degrade and shed rungs.
STUDY_ADMISSION = AdmissionPolicy(
    max_queue_rays=1 << 16,
    degrade_rays=1 << 14,
    heavy_degrade_rays=1 << 15,
)


def _open_loop_row(rate_hz: float, duration_s: float, n_scenes: int, camera):
    """One operating point: fresh registry + service at one offered rate."""
    registry = build_demo_registry(n_scenes=n_scenes)
    service = RenderService(
        registry, config=ServiceConfig(admission=STUDY_ADMISSION)
    )
    report = run_open_loop(
        service,
        [s["name"] for s in registry.scenes()],
        rate_hz=rate_hz,
        duration_s=duration_s,
        camera=camera,
        rng=np.random.default_rng(1000 + int(rate_hz)),
        hw_scale=HW_SCALE,
    )
    return report.row()


def run(quick: bool = True) -> ExperimentResult:
    """Sweep offered load and verify the closed-loop bit-identity anchor."""
    if quick:
        rates = (150.0, 400.0, 900.0, 2000.0)
        duration_s = 0.4
        n_scenes = 2
        camera = demo_camera(24, 24)
        n_frames = 3
    else:
        rates = (100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0)
        duration_s = 1.0
        n_scenes = 4
        camera = demo_camera(32, 32)
        n_frames = 6
    rows = [
        _open_loop_row(rate, duration_s, n_scenes, camera) for rate in rates
    ]

    # Single closed-loop client: the latency floor of the curve, and the
    # bit-identity anchor — the served frame must equal a direct chunked
    # render of the same scene and camera exactly.
    registry = build_demo_registry(n_scenes=1)
    service = RenderService(registry, config=ServiceConfig(keep_frames=True))
    scene = registry.scenes()[0]["name"]
    closed = run_closed_loop(service, scene, n_frames=n_frames, camera=camera)
    handle = registry.acquire(scene)
    direct = render_image(
        handle.model,
        camera,
        handle.normalizer,
        handle.marcher,
        occupancy=handle.occupancy,
        background=handle.background,
        chunk=service.config.batch.slice_rays,
    )
    handle.release()
    bit_identical = all(
        r.completed and np.array_equal(r.frame, direct)
        for r in closed.responses
    )
    rows.append(closed.row())

    overload = rows[len(rates) - 1]
    summary = {
        "closed_loop_bit_identical": bool(bit_identical),
        "closed_loop_p50_ms": closed.row()["p50_ms"],
        "peak_achieved_fps": max(r["achieved_fps"] for r in rows[: len(rates)]),
        "overload_offered_hz": overload["offered_hz"],
        "overload_shed_or_degraded": bool(
            overload["shed"] + overload["rejected"] + overload["degraded"] > 0
        ),
        "overload_p99_finite": bool(math.isfinite(overload["p99_ms"])),
        "overload_p99_ms": overload["p99_ms"],
    }
    return ExperimentResult(
        experiment="serving_study",
        paper_ref="extension: serving latency-throughput & SLO attainment",
        rows=rows,
        summary=summary,
    )
