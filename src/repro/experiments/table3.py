"""Table III: the single-chip accelerator vs six SOTA platforms.

Simulates the scaled chip on the NeRF-Synthetic workload mix and compares
throughput (M sampled points/s) and energy per point against the
published baseline numbers the paper tabulates.
"""

from __future__ import annotations

import numpy as np

from ..baselines import TABLE3_BASELINES, RT_NERF_EDGE, INSTANT_3D, NEUREX_EDGE
from ..core.bandwidth import BandwidthModel, WorkloadVolume
from ..sim.chip import ChipConfig, SingleChipAccelerator
from .base import ExperimentResult
from .workloads import synthetic_workloads

PAPER = {
    "inference_mps": 591.0,
    "training_mps": 199.0,
    "inference_nj": 2.5,
    "training_nj": 7.4,
    "bandwidth_gbps": 0.6,
    "die_mm2": 8.7,
    "sram_kb": 1099.0,
}


def simulate_this_work(quick: bool = True) -> dict:
    """Scene-averaged single-chip results on the synthetic-8 workload."""
    scenes = ("mic", "lego", "ship") if quick else None
    workloads = synthetic_workloads(scenes=scenes)
    chip = SingleChipAccelerator(ChipConfig.scaled())
    inf_mps, trn_mps, inf_nj, trn_nj = [], [], [], []
    for w in workloads:
        inf = chip.simulate(w.trace, training=False)
        trn = chip.simulate(w.trace, training=True)
        inf_mps.append(inf.samples_per_second / 1e6)
        trn_mps.append(trn.samples_per_second / 1e6)
        inf_nj.append(inf.energy_per_sample_j * 1e9)
        trn_nj.append(trn.energy_per_sample_j * 1e9)
    bw_model = BandwidthModel()
    bw = bw_model.required_training_bandwidth_gbps(
        WorkloadVolume.instant_training(), table_bytes=bw_model.table_bytes(14)
    )
    return {
        "inference_mps": float(np.mean(inf_mps)),
        "training_mps": float(np.mean(trn_mps)),
        "inference_nj": float(np.mean(inf_nj)),
        "training_nj": float(np.mean(trn_nj)),
        "bandwidth_gbps": bw,
        "die_mm2": chip.die_area_mm2(),
        "sram_kb": chip.config.sram_kb,
    }


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Table III: single chip vs SOTA (see the module docstring)."""
    ours = simulate_this_work(quick)
    rows = []
    for spec in TABLE3_BASELINES:
        rows.append(
            {
                "platform": spec.name,
                "process_nm": spec.process_nm,
                "die_mm2": spec.die_mm2,
                "sram_kb": spec.sram_kb,
                "inference_mps": spec.inference_mps,
                "training_mps": spec.training_mps,
                "inference_nj": spec.inference_nj_per_point,
                "training_nj": spec.training_nj_per_point,
                "bandwidth_gbps": spec.off_chip_bandwidth_gbps,
            }
        )
    rows.append(
        {
            "platform": "This work (simulated)",
            "process_nm": 28,
            "die_mm2": round(ours["die_mm2"], 2),
            "sram_kb": ours["sram_kb"],
            "inference_mps": round(ours["inference_mps"], 1),
            "training_mps": round(ours["training_mps"], 1),
            "inference_nj": round(ours["inference_nj"], 2),
            "training_nj": round(ours["training_nj"], 2),
            "bandwidth_gbps": round(ours["bandwidth_gbps"], 2),
        }
    )
    summary = {
        f"{key}_paper": PAPER[key] for key in ("inference_mps", "training_mps")
    }
    summary.update(
        {
            "inference_mps_measured": ours["inference_mps"],
            "training_mps_measured": ours["training_mps"],
            "inference_speedup_vs_rtnerf": ours["inference_mps"]
            / RT_NERF_EDGE.inference_mps,
            "inference_speedup_vs_neurex": ours["inference_mps"]
            / NEUREX_EDGE.inference_mps,
            "training_speedup_vs_instant3d": ours["training_mps"]
            / INSTANT_3D.training_mps,
            "inference_energy_eff_vs_rtnerf": RT_NERF_EDGE.inference_nj_per_point
            / ours["inference_nj"],
            "training_energy_eff_vs_instant3d": INSTANT_3D.training_nj_per_point
            / ours["training_nj"],
        }
    )
    return ExperimentResult(
        experiment="single-chip accelerator vs SOTA",
        paper_ref="Table III",
        rows=rows,
        summary=summary,
    )
