"""MoE scalability in expert count (Fig. 13(a)'s second observation).

The paper observes that "the convergent PSNR improves as the number of
small models (i.e., the number of chips) increases".  This experiment
trains 1-, 2- and 4-expert MoEs with the *same per-expert capacity* on a
Room-like scene under one schedule and reports the final test PSNR.
"""

from __future__ import annotations

from ..datasets import nerf360
from ..nerf.hash_encoding import HashEncodingConfig
from ..nerf.model import ModelConfig
from ..nerf.moe import MoEConfig, MoENeRF, MoETrainer
from ..nerf.trainer import TrainerConfig
from .base import ExperimentResult

EXPERT_COUNTS = (1, 2, 4)


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Fig. 13(a) obs. 2: PSNR vs expert count (see the module docstring)."""
    iterations = 100 if quick else 500
    size = 24 if quick else 40
    dataset = nerf360.make_dataset(
        "room", n_views=8, width=size, height=size, gt_steps=96
    )
    expert_model = ModelConfig(
        encoding=HashEncodingConfig(
            n_levels=5, log2_table_size=10, base_resolution=8, finest_resolution=64
        ),
        hidden_width=24,
        geo_features=8,
    )
    rows = []
    scores = []
    for n_experts in EXPERT_COUNTS:
        moe = MoENeRF(MoEConfig(n_experts=n_experts, expert_model=expert_model), seed=0)
        trainer = MoETrainer(
            moe,
            dataset.cameras,
            dataset.images,
            dataset.normalizer,
            TrainerConfig(
                batch_rays=384, lr=5e-3, max_samples_per_ray=32,
                occupancy_resolution=16,
            ),
        )
        trainer.train(iterations)
        psnr = trainer.eval_psnr(n_views=2)
        scores.append(psnr)
        rows.append(
            {
                "n_experts": n_experts,
                "total_parameters": moe.n_parameters,
                "final_psnr": round(psnr, 2),
            }
        )
    return ExperimentResult(
        experiment="final PSNR vs number of experts (chips)",
        paper_ref="Fig. 13(a), second observation",
        rows=rows,
        summary={
            "psnr_1_expert": scores[0],
            "psnr_4_experts": scores[-1],
            "more_experts_help": scores[-1] > scores[0],
            "paper_claim": "convergent PSNR improves with the chip count",
        },
    )
