"""Shared workload construction for the experiment runners.

Most hardware experiments need per-scene workload traces but not a
trained network: the trace depends on scene *geometry* (occupancy, ray
coverage), which the procedural datasets expose analytically.  So the
default path builds the occupancy grid straight from the scene's density
field and runs the real Stage I over a camera's rays — exact workload
statistics in milliseconds instead of minutes of training.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from ..datasets import nerf360, synthetic
from ..datasets.generator import AnalyticScene
from ..nerf.camera import Camera, sphere_poses, ring_poses
from ..nerf.hash_encoding import HashEncoding, HashEncodingConfig
from ..nerf.occupancy import OccupancyGrid
from ..nerf.rays import generate_rays
from ..robustness import faults
from ..robustness.injection import inject_trace_faults
from ..sim.trace import WorkloadTrace, trace_from_rays

#: Default camera resolution for trace extraction.  Workload statistics
#: (samples/ray, occupancy) are resolution-independent, so a modest grid
#: of rays suffices.
TRACE_WIDTH = 64
TRACE_HEIGHT = 64


@dataclass
class SceneWorkload:
    """One scene's trace plus the statistics experiments report."""

    name: str
    trace: WorkloadTrace
    occupancy_fraction: float

    @property
    def mean_samples_per_ray(self) -> float:
        """Kept samples per ray after occupancy gating (trace mean)."""
        return self.trace.mean_samples_per_ray


def _scene_signature(scene: AnalyticScene) -> str:
    """Content signature of a scene's analytic geometry.

    Two scenes with the same signature produce the same trace (given
    equal extraction parameters), so the trace cache keys on this rather
    than the name alone — a re-parameterized scene that keeps its name
    still misses.
    """
    return json.dumps(
        {
            "name": scene.name,
            "world_min": scene.world_min.tolist(),
            "world_max": scene.world_max.tolist(),
            "background": scene.background,
            "color_frequency": scene.color_frequency,
            "primitives": [
                [p.kind, list(p.center), list(p.size), list(p.color),
                 p.density, p.edge]
                for p in scene.primitives
            ],
        },
        sort_keys=True,
    )


def _scene_camera(scene: AnalyticScene, large_scale: bool) -> Camera:
    if large_scale:
        pose = ring_poses(1, radius=3.2, height=1.6)[0]
    else:
        pose = sphere_poses(1, radius=2.6)[0]
    return Camera(
        width=TRACE_WIDTH, height=TRACE_HEIGHT, focal=1.1 * TRACE_WIDTH, c2w=pose
    )


def scene_workload(
    scene: AnalyticScene,
    large_scale: bool = False,
    max_samples: int = 96,
    occupancy_resolution: int = 32,
    encoding: HashEncoding = None,
    seed: int = 0,
) -> SceneWorkload:
    """Extract a workload trace from a scene's analytic geometry.

    When a :mod:`repro.parallel.cache` is active (the engine activates
    one in every worker) and the default encoding is in use, the trace
    is served from / stored to the on-disk cache, keyed by the scene's
    content signature, the extraction parameters, and the source
    fingerprint of the packages that determine traces — so identical
    workloads are extracted once per source revision, not once per
    experiment per run.
    """
    # Local import: repro.parallel must stay importable from the nerf hot
    # paths, so the dependency points this way only and stays lazy.
    from ..parallel import cache as parallel_cache
    from ..parallel.fingerprint import TRACE_PACKAGES, source_fingerprint

    active = parallel_cache.get_active()
    key = None
    if active is not None and encoding is None:
        key = parallel_cache.cache_key(
            "scene-workload",
            scene=_scene_signature(scene),
            large_scale=bool(large_scale),
            max_samples=max_samples,
            occupancy_resolution=occupancy_resolution,
            seed=seed,
            fingerprint=source_fingerprint(TRACE_PACKAGES),
        )
        arrays = active.get_trace(key)
        if arrays is not None:
            occupancy_fraction = float(arrays.pop("occupancy_fraction"))
            return _maybe_corrupt(
                SceneWorkload(
                    name=scene.name,
                    trace=WorkloadTrace.from_arrays(arrays),
                    occupancy_fraction=occupancy_fraction,
                )
            )
    camera = _scene_camera(scene, large_scale)
    normalizer = scene.normalizer()
    occupancy = OccupancyGrid(resolution=occupancy_resolution, threshold=0.5)
    occupancy.set_from_function(
        scene.density_unit, rng=np.random.default_rng(seed)
    )
    rays = generate_rays(camera)
    origins, directions = normalizer.rays_to_unit(rays.origins, rays.directions)
    if encoding is None:
        encoding = HashEncoding(
            HashEncodingConfig(n_levels=8, log2_table_size=14),
            rng=np.random.default_rng(seed),
        )
    trace = trace_from_rays(
        origins,
        directions,
        occupancy,
        encoding=encoding,
        max_samples=max_samples,
    )
    if key is not None:
        arrays = trace.to_arrays()
        arrays["occupancy_fraction"] = np.float64(occupancy.occupancy_fraction)
        active.put_trace(key, arrays)
    return _maybe_corrupt(
        SceneWorkload(
            name=scene.name,
            trace=trace,
            occupancy_fraction=occupancy.occupancy_fraction,
        )
    )


def _maybe_corrupt(workload: SceneWorkload) -> SceneWorkload:
    """Apply active trace-corruption faults to a freshly built workload.

    Sits *after* the trace cache on both the hit and miss paths, so the
    cache only ever holds clean traces and a fault run never poisons
    later clean runs.  The corruption is deterministic per scene
    (:meth:`repro.robustness.faults.FaultPlan.rng` salted with the scene
    name); with no active plan this is a no-op returning the input.
    """
    plan = faults.get_active()
    if plan is None or plan.trace.is_empty:
        return workload
    trace = inject_trace_faults(
        workload.trace, plan.trace, plan.rng(f"trace:{workload.name}")
    )
    n_entries = sum(len(p) for p in workload.trace.pair_durations)
    n_corrupt = min(
        int(round(plan.trace.corrupt_fraction * n_entries)), n_entries
    )
    log = faults.get_log()
    if log is not None:
        log.record(
            "workloads",
            f"corrupted {n_corrupt} trace entries of scene "
            f"{workload.name!r} (mode={plan.trace.mode})",
        )
    from .. import telemetry

    tel = telemetry.get_session()
    if tel.enabled and n_corrupt:
        tel.metrics.counter("robustness.trace.corrupted_entries").inc(n_corrupt)
    return SceneWorkload(
        name=workload.name,
        trace=trace,
        occupancy_fraction=workload.occupancy_fraction,
    )


def synthetic_workloads(scenes=None, max_samples: int = 192, **kwargs) -> list:
    """Traces for the eight object scenes (or a subset).

    The default marching budget reproduces Instant-NGP's fine step size on
    object scenes (scene-average ~13 samples per ray after gating).
    """
    names = scenes or synthetic.SYNTHETIC_SCENES
    return [
        scene_workload(
            synthetic.make_scene(name), large_scale=False, max_samples=max_samples, **kwargs
        )
        for name in names
    ]


def nerf360_workloads(scenes=None, **kwargs) -> list:
    """Traces for the seven large-scale scenes (or a subset)."""
    names = scenes or nerf360.NERF360_SCENES
    return [
        scene_workload(nerf360.make_scene(name), large_scale=True, **kwargs)
        for name in names
    ]
