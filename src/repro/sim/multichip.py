"""The Fusion-3D multi-chip system: four chips + an I/O module (Sec. V).

Level-1 (MoE) tiling broadcasts the camera/ray-generation spec to every
chip; each chip runs the complete pipeline on its own expert (gated by
its own occupancy grid) and ships one partial pixel per ray back to the
I/O module, which fuses by addition.  Chip-to-chip traffic therefore scales with *rays*,
not *samples* — the 94% communication saving of Fig. 12(a) against the
conventional layer-split mapping, whose chips exchange per-sample feature
vectors at every stage boundary.

The system-level clock is set by the slowest chip (Challenge C4); the
two-level hash tiling removes the bank-conflict variance that would
otherwise skew per-chip runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..hw.interconnect import LinkSpec, PCB_CHIP_LINK, USB_3_2_GEN1, degrade
from ..robustness import faults
from ..robustness.degradation import plan_remap
from .chip import ChipConfig, ChipReport, SingleChipAccelerator
from .trace import WorkloadTrace

#: Bytes to broadcast one batch's camera pose / ray-generation spec.
#: Rays are generated on-chip (Stage I), so per-ray broadcast is zero.
CAMERA_BROADCAST_BYTES = 128
#: Bytes per partial pixel an expert returns (RGB fp16; opacity is folded
#: into the fused-background correction).
PARTIAL_PIXEL_BYTES = 6
#: Feature bytes per sample a layer-split mapping must exchange per
#: stage boundary (L=16 levels x 2 fp16 features).
FEATURE_BYTES_PER_SAMPLE = 64


@dataclass(frozen=True)
class MultiChipConfig:
    """Static configuration of the PCB multi-chip system."""

    n_chips: int = 4
    chip: ChipConfig = field(default_factory=ChipConfig.scaled)
    chip_link: LinkSpec = PCB_CHIP_LINK
    host_link: LinkSpec = USB_3_2_GEN1
    #: I/O-module overheads measured against the four-chip totals
    #: (paper: 0.5% area, 2.3% SRAM).
    io_area_fraction: float = 0.005
    io_sram_fraction: float = 0.023
    #: Static + fusion-adder power of the FPGA/ASIC I/O module, watts.
    io_power_w: float = 0.12

    def __post_init__(self):
        if self.n_chips < 1:
            raise ValueError("need at least one chip")


@dataclass
class CommunicationReport:
    """Chip-to-chip traffic of the MoE mapping vs the layer-split baseline."""

    moe_bytes: float
    layer_split_bytes: float
    transfer_s: float
    energy_j: float

    @property
    def saving(self) -> float:
        if self.layer_split_bytes <= 0:
            return 0.0
        return 1.0 - self.moe_bytes / self.layer_split_bytes


@dataclass
class MultiChipReport:
    """Outcome of simulating one workload on the multi-chip system."""

    mode: str
    chip_reports: list
    runtime_s: float
    power_w: float
    communication: CommunicationReport
    n_rays: int
    #: Fault-injection bookkeeping; defaults describe a healthy board.
    degraded: bool = False
    dead_chips: tuple = ()
    #: ``{surviving chip: [expert, ...]}`` when degraded, else ``None``.
    expert_assignment: dict = None
    #: Runtime the same workload takes on a healthy board (for the
    #: latency-cost accounting of a degraded run), else ``None``.
    healthy_runtime_s: float = None

    @property
    def latency_cost(self) -> float:
        """Degraded over healthy runtime (1.0 for a healthy board)."""
        if self.healthy_runtime_s is None or self.healthy_runtime_s <= 0:
            return 1.0
        return self.runtime_s / self.healthy_runtime_s

    @property
    def n_samples(self) -> float:
        """Fused-pipeline samples: the experts march the same broadcast
        rays in lockstep, so system throughput counts one expert's samples
        (the paper's throughput/W accounting)."""
        return float(np.mean([r.n_samples for r in self.chip_reports]))

    @property
    def samples_per_second(self) -> float:
        if self.runtime_s <= 0:
            return 0.0
        return self.n_samples / self.runtime_s

    @property
    def throughput_per_watt(self) -> float:
        if self.power_w <= 0:
            return 0.0
        return self.samples_per_second / self.power_w

    @property
    def energy_j(self) -> float:
        return self.power_w * self.runtime_s

    @property
    def chip_imbalance(self) -> float:
        """Slowest over mean chip runtime (1.0 = perfectly balanced)."""
        runtimes = [r.runtime_s for r in self.chip_reports]
        mean = float(np.mean(runtimes))
        if mean <= 0:
            return 1.0
        return float(np.max(runtimes)) / mean


class MultiChipSystem:
    """Cycle/energy simulator of the four-chip Fusion-3D board."""

    def __init__(self, config: MultiChipConfig = MultiChipConfig()):
        self.config = config
        self.chips = [
            SingleChipAccelerator(config.chip) for _ in range(config.n_chips)
        ]
        #: ``(scene, fault fingerprint) -> expert routing table``; see
        #: :meth:`simulate_batch`.
        self._routing_cache = {}

    def clear_routing_cache(self) -> None:
        """Drop every cached per-scene expert routing table.

        Call after a scene's workload changes shape (hot-swapped model,
        different trace) so :meth:`simulate_batch` re-plans the routing.
        """
        self._routing_cache.clear()

    @staticmethod
    def _fault_fingerprint(fault_cfg) -> tuple:
        """Hashable identity of the board state a routing was planned for."""
        if fault_cfg is None:
            return None
        return (
            tuple(sorted(int(c) for c in fault_cfg.dead_chips)),
            fault_cfg.policy,
            float(fault_cfg.link_bandwidth_factor),
        )

    def _plan_routing(self, chip_traces: list, fault_cfg) -> dict:
        """Expert→chip routing table for the current board state.

        Healthy boards (``fault_cfg is None``) and link-only degradation
        route every expert to its own chip; dead chiplets route through
        :func:`~repro.robustness.degradation.plan_remap` (``remap``) or
        drop the dead experts (``drop``).
        """
        n = self.config.n_chips
        if fault_cfg is None:
            return {c: [c] for c in range(n)}
        dead = tuple(c for c in fault_cfg.dead_chips if c < n)
        if not dead:
            return {c: [c] for c in range(n)}
        if fault_cfg.policy == "remap":
            loads = [float(t.n_samples) for t in chip_traces]
            return plan_remap(n, dead, loads)
        survivors = [c for c in range(n) if c not in dead]
        if not survivors:
            raise ValueError("all chiplets dead: nothing left to simulate")
        return {c: [c] for c in survivors}

    def simulate_batch(
        self,
        scene: str,
        chip_traces: list,
        training: bool = False,
        workload_scale: float = 1.0,
    ) -> MultiChipReport:
        """Serving fast path: :meth:`simulate` with a cached routing table.

        A rendering service dispatches many batches per scene against an
        unchanging board state; the expert→chip routing (identity on a
        healthy board, greedy-LPT remap or drop under chiplet faults)
        depends only on the scene's traces and that state, so it is
        planned once per ``(scene, board state)`` and reused — the
        per-call :func:`~repro.robustness.degradation.plan_remap` and
        per-expert load scan disappear from the dispatch path.  The
        returned report is bit-identical to :meth:`simulate` (guarded by
        ``tests/test_multichip.py``); cycle simulation itself still runs
        per call because it depends on ``workload_scale``.
        """
        plan = faults.get_active()
        fault_cfg = (
            plan.chiplets if plan is not None and not plan.chiplets.is_empty else None
        )
        key = (scene, self._fault_fingerprint(fault_cfg))
        routing = self._routing_cache.get(key)
        if routing is None:
            routing = self._plan_routing(chip_traces, fault_cfg)
            self._routing_cache[key] = routing
        if fault_cfg is None:
            return self.simulate(
                chip_traces, training=training, workload_scale=workload_scale
            )
        return self._simulate_degraded(
            chip_traces,
            fault_cfg,
            training=training,
            workload_scale=workload_scale,
            routing=routing,
        )

    def simulate(
        self,
        chip_traces: list,
        training: bool = False,
        workload_scale: float = 1.0,
    ) -> MultiChipReport:
        """Simulate one batch: ``chip_traces[i]`` is chip *i*'s view of the
        broadcast workload (its expert's occupancy gating applied).
        ``workload_scale`` extrapolates the batch linearly, as in
        :meth:`SingleChipAccelerator.simulate`."""
        if len(chip_traces) != self.config.n_chips:
            raise ValueError("one trace per chip required")
        plan = faults.get_active()
        if plan is not None and not plan.chiplets.is_empty:
            return self._simulate_degraded(
                chip_traces,
                plan.chiplets,
                training=training,
                workload_scale=workload_scale,
            )
        tel = telemetry.get_session()
        with tel.tracer.span("multichip.simulate", n_chips=self.config.n_chips):
            reports = [
                chip.simulate(trace, training=training, workload_scale=workload_scale)
                for chip, trace in zip(self.chips, chip_traces)
            ]
            comm = self.communication(
                chip_traces, training=training, workload_scale=workload_scale
            )
            # All chips must finish before fusion (C4).  Ray broadcast and
            # partial-pixel return stream concurrently with compute over each
            # chip's private link, so the system is limited by whichever is
            # slower — the 0.6 GB/s links are provisioned to just keep up.
            runtime = max(max(r.runtime_s for r in reports), comm.transfer_s)
            chip_power = sum(r.energy_j for r in reports) / runtime
            power = chip_power + self.config.io_power_w + comm.energy_j / runtime
            report = MultiChipReport(
                mode="training" if training else "inference",
                chip_reports=reports,
                runtime_s=runtime,
                power_w=power,
                communication=comm,
                n_rays=int(round(chip_traces[0].n_rays * workload_scale)),
            )
        self._record_simulation(tel, report)
        return report

    def _simulate_degraded(
        self,
        chip_traces: list,
        fault_cfg,
        training: bool = False,
        workload_scale: float = 1.0,
        routing: dict = None,
    ) -> MultiChipReport:
        """Simulate the board with dead chiplets and/or degraded links.

        Graceful degradation of the MoE mapping: every expert is a
        complete pipeline gated by its own occupancy grid, so a dead
        chip's expert can run *serially* on a surviving chip
        (``policy="remap"`` — latency cost, no quality cost) or be
        dropped from the fused render (``policy="drop"`` — quality cost,
        no latency cost).  The report carries the healthy-board runtime
        so the latency cost of 4→3→2-chip operation is directly
        measurable.  ``routing`` is an optional precomputed expert→chip
        table (see :meth:`simulate_batch`); when omitted it is planned
        here via :meth:`_plan_routing`.
        """
        cfg = self.config
        n = cfg.n_chips
        dead = tuple(c for c in fault_cfg.dead_chips if c < n)
        link = degrade(cfg.chip_link, fault_cfg.link_bandwidth_factor)
        tel = telemetry.get_session()
        with tel.tracer.span(
            "multichip.simulate_degraded", n_chips=n, dead_chips=len(dead)
        ):
            # Every expert's trace, simulated once: the chips are
            # identical, so expert e costs the same cycles wherever it
            # lands.  The dead chips' reports only feed the remap
            # schedule and the healthy-baseline comparison.
            own_reports = [
                chip.simulate(trace, training=training, workload_scale=workload_scale)
                for chip, trace in zip(self.chips, chip_traces)
            ]
            healthy_comm = self.communication(
                chip_traces, training=training, workload_scale=workload_scale
            )
            healthy_runtime = max(
                max(r.runtime_s for r in own_reports), healthy_comm.transfer_s
            )
            assignment = (
                routing
                if routing is not None
                else self._plan_routing(chip_traces, fault_cfg)
            )
            if not dead:
                # Link-only degradation: schedule is the healthy one.
                per_chip_runtime = [own_reports[c].runtime_s for c in range(n)]
                reports = own_reports
            elif fault_cfg.policy == "remap":
                per_chip_runtime = [
                    sum(own_reports[e].runtime_s for e in experts)
                    for experts in assignment.values()
                ]
                # All experts still execute; fused quality is unchanged.
                reports = [
                    own_reports[e]
                    for experts in assignment.values()
                    for e in experts
                ]
            else:  # "drop": dead experts simply vanish from the fusion
                survivors = list(assignment)
                per_chip_runtime = [own_reports[c].runtime_s for c in survivors]
                reports = [own_reports[c] for c in survivors]
            n_links = max(n - len(dead), 1)
            n_senders = n if (not dead or fault_cfg.policy == "remap") else n_links
            comm = self.communication(
                chip_traces,
                training=training,
                workload_scale=workload_scale,
                n_senders=n_senders,
                n_links=n_links,
                link=link,
            )
            runtime = max(max(per_chip_runtime), comm.transfer_s)
            chip_power = sum(r.energy_j for r in reports) / runtime
            power = chip_power + cfg.io_power_w + comm.energy_j / runtime
            report = MultiChipReport(
                mode="training" if training else "inference",
                chip_reports=reports,
                runtime_s=runtime,
                power_w=power,
                communication=comm,
                n_rays=int(round(chip_traces[0].n_rays * workload_scale)),
                degraded=True,
                dead_chips=dead,
                expert_assignment=assignment,
                healthy_runtime_s=healthy_runtime,
            )
        self._record_simulation(tel, report)
        self._record_degradation(tel, report, fault_cfg)
        return report

    def _record_degradation(self, tel, report: MultiChipReport, fault_cfg) -> None:
        """Fault log + ``robustness.*`` metrics for a degraded run."""
        n = self.config.n_chips
        n_dead = len(report.dead_chips)
        log = faults.get_log()
        if log is not None:
            detail = (
                f"{n_dead}/{n} chiplets dead "
                f"(policy={fault_cfg.policy}), latency cost "
                f"{report.latency_cost:.2f}x"
            )
            if fault_cfg.link_bandwidth_factor < 1.0:
                detail += (
                    f", links at {fault_cfg.link_bandwidth_factor:.0%} bandwidth"
                )
            log.record("multichip", detail)
        if not tel.enabled:
            return
        m = tel.metrics
        m.gauge("robustness.chiplets.dead").set(float(n_dead))
        m.gauge("robustness.chiplets.survivors").set(float(n - n_dead))
        if fault_cfg.policy == "remap":
            m.gauge("robustness.chiplets.remapped_experts").set(float(n_dead))
        else:
            m.gauge("robustness.chiplets.dropped_experts").set(float(n_dead))
        m.gauge("robustness.remap.latency_cost").set(report.latency_cost)

    def _record_simulation(self, tel, report: MultiChipReport) -> None:
        """Per-chiplet utilization and interconnect-traffic telemetry."""
        for i, chip_report in enumerate(report.chip_reports):
            tel.hooks.emit(
                telemetry.ON_MODULE_SIMULATED,
                module=f"chiplet{i}",
                cycles=chip_report.total_cycles,
                chip=chip_report.config_name,
            )
        if not tel.enabled:
            return
        m = tel.metrics
        for i, chip_report in enumerate(report.chip_reports):
            # Utilization: this chiplet's busy time over the fused-batch
            # wall time set by the slowest chip / the interconnect (C4).
            utilization = (
                chip_report.runtime_s / report.runtime_s
                if report.runtime_s > 0
                else 0.0
            )
            m.gauge(f"multichip.chiplet{i}.utilization").set(utilization)
        m.gauge("multichip.imbalance").set(report.chip_imbalance)
        comm = report.communication
        m.counter("multichip.interconnect.moe_bytes").inc(comm.moe_bytes)
        m.counter("multichip.interconnect.layer_split_bytes").inc(
            comm.layer_split_bytes
        )
        m.counter("multichip.interconnect.transfer_s").inc(comm.transfer_s)
        m.gauge("multichip.interconnect.comm_saving").set(comm.saving)

    def communication(
        self,
        chip_traces: list,
        training: bool = False,
        workload_scale: float = 1.0,
        *,
        n_senders: int = None,
        n_links: int = None,
        link: LinkSpec = None,
    ) -> CommunicationReport:
        """Traffic accounting: MoE mapping vs layer-split baseline.

        The keyword-only parameters exist for degraded-board simulation:
        ``n_senders`` experts contribute partial-pixel streams (fewer
        than ``n_chips`` when dead experts are dropped), carried over
        ``n_links`` surviving links of spec ``link``.  Defaults
        reproduce the healthy board exactly.
        """
        cfg = self.config
        senders = cfg.n_chips if n_senders is None else n_senders
        links = cfg.n_chips if n_links is None else n_links
        chip_link = cfg.chip_link if link is None else link
        n_rays = chip_traces[0].n_rays * workload_scale
        # MoE: broadcast the camera spec once (rays are generated
        # on-chip), one partial pixel back per ray per chip; in training
        # the fused residual is broadcast back per ray.
        moe = (
            senders * CAMERA_BROADCAST_BYTES
            + senders * n_rays * PARTIAL_PIXEL_BYTES
        )
        if training:
            moe += senders * n_rays * PARTIAL_PIXEL_BYTES
        # Layer-split baseline: every sample's feature vector crosses one
        # chip boundary at the Stage II/III split; training returns the
        # feature gradients as well.
        total_samples = float(np.mean([t.n_samples for t in chip_traces])) * workload_scale
        layer_split = total_samples * FEATURE_BYTES_PER_SAMPLE
        if training:
            layer_split *= 2.0
        # Each chip has a private link to the I/O module carrying its own
        # broadcast copy and partial-pixel return stream.
        per_link = moe / links
        transfer_s = chip_link.transfer_s(per_link)
        energy = chip_link.transfer_energy_j(moe)
        return CommunicationReport(
            moe_bytes=moe,
            layer_split_bytes=layer_split,
            transfer_s=transfer_s,
            energy_j=energy,
        )

    def die_area_mm2(self) -> float:
        """Total silicon: four chips plus the I/O module overhead."""
        chips = self.config.n_chips * self.chips[0].die_area_mm2()
        return chips * (1.0 + self.config.io_area_fraction)

    def sram_kb(self) -> float:
        chips = self.config.n_chips * self.config.chip.sram_kb
        return chips * (1.0 + self.config.io_sram_fraction)
