"""Stage III cycle model: the Post Processing Module.

Evaluates the density/color MLPs on every sample and volumetrically
composites the results into pixels.  Per the paper's design methodology,
Stage III's MAC array is sized so it never throttles Stage II ("first
push the speed of Stage II ..., then match the speed of Stages I and III
by adjusting the number of computing cores").  Inference runs the MLPs in
INT8 (Table II shows post-training INT8 is lossless); training keeps FP16
and triples the MAC traffic (forward, input-grad, weight-grad passes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hw.energy import OpCounts
from .trace import WorkloadTrace


@dataclass(frozen=True)
class PostProcModuleConfig:
    """Stage III hardware parameters."""

    #: Multiply-accumulate lanes in the MLP array.
    mac_lanes: int = 12288
    #: MLP multiply-accumulates per sample (model-dependent; the default
    #: matches the paper's 2-hidden-layer Instant-NGP heads).
    macs_per_sample: int = 8960
    #: Renderer ops per sample: one exp, a handful of FP32 blends.
    renderer_flops_per_sample: int = 8

    @classmethod
    def balanced_for(
        cls,
        samples_per_cycle: float,
        macs_per_sample: int,
        headroom: float = 1.1,
    ) -> "PostProcModuleConfig":
        """Size the MAC array to sustain Stage II's sample rate."""
        lanes = int(np.ceil(samples_per_cycle * macs_per_sample * headroom))
        return cls(mac_lanes=lanes, macs_per_sample=macs_per_sample)


@dataclass
class PostProcReport:
    """Cycle and energy outcome of simulating Stage III on a trace."""

    cycles: float
    ops: OpCounts
    mode: str


class PostProcModule:
    """Cycle/energy simulator for the post-processing stage."""

    #: Training multiplies MAC traffic by ~3 (forward + two grad passes).
    TRAIN_MAC_FACTOR = 3.0

    def __init__(self, config: PostProcModuleConfig = PostProcModuleConfig()):
        self.config = config

    def simulate(self, trace: WorkloadTrace, training: bool = False) -> PostProcReport:
        cfg = self.config
        macs = trace.n_samples * cfg.macs_per_sample
        if training:
            macs *= self.TRAIN_MAC_FACTOR
        cycles = macs / cfg.mac_lanes
        ops = OpCounts()
        ops.fp16_mac += macs
        ops.exp_lookup += trace.n_samples  # density -> alpha
        ops.fp32_add += cfg.renderer_flops_per_sample * trace.n_samples
        if training:
            # Backward rendering: transmittance suffix scan + grads.
            ops.fp32_add += 2 * cfg.renderer_flops_per_sample * trace.n_samples
        # Composited pixels leave through the I/O path: 3 x fp16 + alpha.
        ops.noc_bytes += 8 * trace.n_rays
        # MLP weights stay resident; activations spill to cluster SRAM.
        ops.sram_read_bytes += 2 * 32 * trace.n_samples
        ops.sram_write_bytes += 2 * 16 * trace.n_samples
        return PostProcReport(
            cycles=cycles, ops=ops, mode="training" if training else "inference"
        )
