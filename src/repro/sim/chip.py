"""The Fusion-3D single-chip accelerator: end-to-end cycle/energy model.

Composes the three stage simulators, the memory clusters, and the NoC
into one chip.  Two standard configurations mirror the paper:

* :meth:`ChipConfig.prototype` — the taped-out 28 nm die: 16 sampling
  cores, five feature-interpolation cores, one post-processing module,
  two memory clusters;
* :meth:`ChipConfig.scaled` — the evaluation configuration of Table III:
  five additional interpolation cores and three more memory clusters,
  8.7 mm^2 post-layout.

``simulate`` runs a workload trace through all three stages, overlaps
them with the flow-shop pipeline model (ping-pong buffered batches), and
folds the operation counts into energy/power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..hw.area import AreaModel, ModuleArea
from ..hw.energy import EnergyModel, OpCounts
from ..hw.memory_cluster import MemoryClusterSpec
from ..hw.technology import Technology, TECH_28NM
from ..nerf.hash_encoding import HashEncodingConfig
from ..robustness import faults
from ..robustness.injection import scrub_trace
from .engine import pipeline_makespan
from .interp_module import InterpModule, InterpModuleConfig
from .postproc_module import PostProcModule, PostProcModuleConfig
from .sampling_module import SamplingModule, SamplingModuleConfig
from .trace import WorkloadTrace


@dataclass(frozen=True)
class ChipConfig:
    """Static configuration of one Fusion-3D chip."""

    name: str
    sampling: SamplingModuleConfig = field(default_factory=SamplingModuleConfig)
    interp: InterpModuleConfig = field(default_factory=InterpModuleConfig)
    postproc: PostProcModuleConfig = field(default_factory=PostProcModuleConfig)
    encoding: HashEncodingConfig = field(
        default_factory=lambda: HashEncodingConfig(
            n_levels=16, n_features=2, log2_table_size=14
        )
    )
    cluster: MemoryClusterSpec = field(
        default_factory=lambda: MemoryClusterSpec(n_arrays=2, banks_per_array=8, bank_kb=4.0)
    )
    n_clusters: int = 5
    #: Feature-table SRAM (the paper's 2 x 5 x 64 KB = 640 KB).
    feature_sram_kb: float = 640.0
    #: Misc buffers: controller queues, ray FIFOs, weight store.
    misc_sram_kb: float = 139.0
    tech: Technology = TECH_28NM
    #: Batches in flight through the three-stage pipeline.
    pipeline_batches: int = 16

    @classmethod
    def prototype(cls) -> "ChipConfig":
        """The taped-out prototype: 5 interp cores, 2 memory clusters."""
        return cls(
            name="fusion3d-prototype",
            interp=InterpModuleConfig(n_cores=5),
            n_clusters=2,
            misc_sram_kb=75.0,
        )

    @classmethod
    def scaled(cls) -> "ChipConfig":
        """The Table III evaluation chip: 10 interp cores, 5 clusters."""
        return cls(name="fusion3d-scaled", interp=InterpModuleConfig(n_cores=10))

    @property
    def sram_kb(self) -> float:
        return (
            self.feature_sram_kb
            + self.n_clusters * self.cluster.total_kb
            + self.misc_sram_kb
        )

    def module_gate_counts(self) -> dict:
        """NAND2-equivalent logic gates per module (area/leakage inputs)."""
        logic = self.tech.logic
        sampling_core = (
            2 * logic.int32_mul_gates  # position MAC + DDA stepper
            + 4 * logic.int32_add_gates
            + 2600  # occupancy mask scan + control
        )
        preproc = 8 * (3 * logic.int16_mul_gates + 900)  # normalized tests
        sampling = self.sampling.n_cores * sampling_core + preproc
        # Interp core: shared vertex path + reconfigurable arrays (gate
        # inventory matches hw.area.stage2_sharing_ablation).
        shared_path = 8 * 800 + 8 * (2 * logic.int32_mul_gates + 500) + 26000
        interp_array = 8 * 1125 + 7 * 1100 + 4000
        interp = self.interp.n_cores * (
            shared_path + self.interp.arrays_per_core * interp_array
        )
        postproc = (
            self.postproc.mac_lanes * 520  # fp16 MAC lane incl. pipeline regs
            + 45000  # renderer: exp LUT, blend units, accumulators
        )
        noc_ctrl = 180000
        return {
            "sampling": sampling,
            "interp": interp,
            "postproc": postproc,
            "noc_ctrl": noc_ctrl,
        }

    @property
    def logic_mgates(self) -> float:
        return sum(self.module_gate_counts().values()) / 1e6


@dataclass
class StageReport:
    """One stage's contribution to a chip simulation."""

    name: str
    cycles: float
    ops: OpCounts


@dataclass
class ChipReport:
    """Outcome of simulating one workload on one chip."""

    config_name: str
    mode: str
    n_samples: int
    n_rays: int
    stages: list
    total_cycles: float
    runtime_s: float
    energy_j: float
    power_w: float

    @property
    def samples_per_second(self) -> float:
        if self.runtime_s <= 0:
            return 0.0
        return self.n_samples / self.runtime_s

    @property
    def energy_per_sample_j(self) -> float:
        if self.n_samples == 0:
            return 0.0
        return self.energy_j / self.n_samples

    @property
    def bottleneck_stage(self) -> str:
        return max(self.stages, key=lambda s: s.cycles).name

    def stage_cycles(self) -> dict:
        return {stage.name: stage.cycles for stage in self.stages}


class SingleChipAccelerator:
    """Cycle/energy simulator of one Fusion-3D chip."""

    def __init__(self, config: ChipConfig = None):
        self.config = config or ChipConfig.scaled()
        self.sampling = SamplingModule(self.config.sampling)
        self.interp = InterpModule(self.config.interp, self.config.encoding)
        self.postproc = PostProcModule(self.config.postproc)
        self.energy_model = EnergyModel(self.config.tech)

    def simulate(
        self,
        trace: WorkloadTrace,
        training: bool = False,
        optimized_sampling: bool = True,
        workload_scale: float = 1.0,
    ) -> ChipReport:
        """Run a trace through the three pipelined stages.

        ``workload_scale`` linearly extrapolates the representative batch
        to a larger run (cycles and operation counts are both linear in
        workload volume), so a full 2-second training job can reuse one
        traced batch.
        """
        if workload_scale <= 0:
            raise ValueError("workload_scale must be positive")
        tel = telemetry.get_session()
        if faults.get_active() is not None:
            # Scrub-and-flag: corrupted trace entries (NaN/negative
            # durations from injected SRAM faults in the trace buffers)
            # are clamped to zero so the cycle model stays finite.
            trace, n_scrubbed = scrub_trace(trace)
            if n_scrubbed:
                log = faults.get_log()
                if log is not None:
                    log.record(
                        "chip",
                        f"scrubbed {n_scrubbed} corrupted trace entries",
                    )
                if tel.enabled:
                    tel.metrics.counter("robustness.trace.scrubbed_entries").inc(
                        n_scrubbed
                    )
        mode = "training" if training else "inference"
        with tel.tracer.span("chip.simulate", chip=self.config.name, mode=mode):
            with tel.tracer.span("sampling"):
                s1 = self.sampling.simulate(trace, optimized=optimized_sampling)
            with tel.tracer.span("interpolation"):
                s2 = self.interp.simulate(trace, training=training)
            with tel.tracer.span("post-processing"):
                s3 = self.postproc.simulate(trace, training=training)
            stages = [
                StageReport("sampling", s1.cycles * workload_scale, s1.ops.scaled(workload_scale)),
                StageReport("interp", s2.cycles * workload_scale, s2.ops.scaled(workload_scale)),
                StageReport("postproc", s3.cycles * workload_scale, s3.ops.scaled(workload_scale)),
            ]
            total_cycles = self._pipeline_cycles([s.cycles for s in stages])
        self._record_simulation(tel, stages, total_cycles)
        runtime = total_cycles * self.config.tech.cycle_s
        ops = OpCounts()
        for stage in stages:
            ops += stage.ops
        breakdown = self.energy_model.energy(
            ops,
            runtime_s=runtime,
            sram_kb=self.config.sram_kb,
            logic_mgates=self.config.logic_mgates,
        )
        return ChipReport(
            config_name=self.config.name,
            mode="training" if training else "inference",
            n_samples=int(round(trace.n_samples * workload_scale)),
            n_rays=int(round(trace.n_rays * workload_scale)),
            stages=stages,
            total_cycles=total_cycles,
            runtime_s=runtime,
            energy_j=breakdown.total_j,
            power_w=breakdown.total_j / runtime if runtime > 0 else 0.0,
        )

    #: StageReport.name -> display name used for spans, metrics and hooks.
    MODULE_NAMES = {
        "sampling": "sampling",
        "interp": "interpolation",
        "postproc": "post-processing",
    }

    def _record_simulation(self, tel, stages: list, total_cycles: float) -> None:
        """Per-module cycle metrics, overlap efficiency, and hook dispatch."""
        for stage in stages:
            tel.hooks.emit(
                telemetry.ON_MODULE_SIMULATED,
                module=self.MODULE_NAMES[stage.name],
                cycles=stage.cycles,
                chip=self.config.name,
            )
        if not tel.enabled:
            return
        m = tel.metrics
        serial = 0.0
        for stage in stages:
            serial += stage.cycles
            m.counter(f"sim.{self.MODULE_NAMES[stage.name]}.cycles").inc(
                stage.cycles
            )
        m.counter("sim.total_cycles").inc(total_cycles)
        # Overlap efficiency: share of the hideable work (everything beyond
        # the bottleneck stage) the flow-shop pipeline actually hid.
        bottleneck = max(stage.cycles for stage in stages)
        hideable = serial - bottleneck
        if hideable > 0:
            m.gauge("sim.stage_overlap_efficiency").set(
                (serial - total_cycles) / hideable
            )
        else:
            m.gauge("sim.stage_overlap_efficiency").set(1.0)

    def power_breakdown(
        self, trace: WorkloadTrace, training: bool = False
    ) -> dict:
        """Average watts per module for a workload (Fig. 10(c)'s power
        half).  Dynamic energy is attributed to the stage whose ops
        produced it; leakage is apportioned by module area."""
        report = self.simulate(trace, training=training)
        runtime = report.runtime_s
        if runtime <= 0:
            raise ValueError("workload produced no runtime")
        modules = self.area()
        total_area = sum(m.total_mm2 for m in modules)
        leak_w = (
            self.config.sram_kb * self.config.tech.sram.leakage_mw_per_kb
            + self.config.logic_mgates * self.config.tech.logic.leakage_mw_per_mgate
        ) * 1e-3
        breakdown = {}
        for stage in report.stages:
            dynamic = self.energy_model.dynamic_energy(stage.ops).total_j
            breakdown[stage.name] = dynamic / runtime
        for module in modules:
            share = leak_w * module.total_mm2 / total_area
            breakdown[module.name] = breakdown.get(module.name, 0.0) + share
        return breakdown

    def area(self) -> list:
        """Per-module areas (Fig. 10(c) breakdown)."""
        model = AreaModel(self.config.tech)
        gates = self.config.module_gate_counts()
        cluster_kb = self.config.n_clusters * self.config.cluster.total_kb
        return [
            model.module("sampling", gates["sampling"], 0.0),
            model.module(
                "interp", gates["interp"], self.config.feature_sram_kb
            ),
            model.module("postproc", gates["postproc"], 0.0),
            model.module(
                "memory_clusters", 0.0, cluster_kb + self.config.misc_sram_kb
            ),
            model.module("noc_ctrl", gates["noc_ctrl"], 0.0),
        ]

    def die_area_mm2(self) -> float:
        return AreaModel.chip_total_mm2(self.area())

    def _pipeline_cycles(self, stage_cycles: list) -> float:
        """Overlap the stages across ping-pong buffered batches."""
        n = self.config.pipeline_batches
        per_batch = np.asarray(stage_cycles, dtype=np.float64)[None, :] / n
        return pipeline_makespan(np.repeat(per_batch, n, axis=0))
