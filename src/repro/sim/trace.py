"""Workload traces: the interface between the NeRF algorithms and the
cycle simulator.

A trace summarizes one batch of pipeline work — rays, their octant
cube-pairs, the occupancy-gated samples each pair produces, and
(optionally) the integer vertex coordinates Stage II will hash, which the
bank-conflict simulation replays.  Traces come from two sources:

* :func:`trace_from_rays` runs the real Stage I on real rays against a
  real occupancy grid (exact, used by tests and small experiments);
* :func:`synthetic_trace` draws a trace from summary statistics (scene
  occupancy, samples-per-ray distribution), used for chip-scale workloads
  where replaying millions of rays through NumPy would be wasteful.

Durations are measured in *kept samples*: the sampling cores skip empty
occupancy cells at bitmask speed (a 32-cell mask word per cycle, folded
into the per-pair setup constant), so marching time is dominated by the
samples that survive gating.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nerf.aabb import intersect_octants
from ..nerf.occupancy import OccupancyGrid
from ..nerf.sampling import RayMarcher, SamplerConfig


@dataclass
class WorkloadTrace:
    """Per-batch workload description consumed by the chip simulator."""

    n_rays: int
    #: ``pair_durations[r]`` lists, for ray r, the kept-sample count of
    #: each of its valid cube-pairs (the core-occupancy time of the pair).
    pair_durations: list
    #: Samples surviving occupancy gating (Stage II/III work).
    n_samples: int
    #: Candidate points tested by Stage I before gating.
    n_candidates: int
    #: Optional ``(k, 8, 3)`` integer vertex coordinates of a subsample of
    #: Stage II lookups at the finest level, for conflict replay.
    vertex_corners: np.ndarray = None
    #: Optional matching ``(k, 8)`` hash-table indices.
    vertex_indices: np.ndarray = None
    #: Per-ray kept-sample counts (workload-balance statistics).
    samples_per_ray: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    #: Occupancy-grid cells the DDA walk visits (Stage I mask reads);
    #: falls back to a candidate-derived estimate when not traced.
    n_cells_visited: int = 0

    def __post_init__(self):
        if self.n_rays < 0 or self.n_samples < 0 or self.n_candidates < 0:
            raise ValueError("trace counts must be non-negative")
        if len(self.pair_durations) != self.n_rays:
            raise ValueError("one pair-duration list per ray required")

    @property
    def n_pairs(self) -> int:
        return sum(len(p) for p in self.pair_durations)

    @property
    def mean_samples_per_ray(self) -> float:
        if self.n_rays == 0:
            return 0.0
        return self.n_samples / self.n_rays

    @property
    def occupancy_fraction(self) -> float:
        """Fraction of candidate points that survived gating."""
        if self.n_candidates == 0:
            return 0.0
        return self.n_samples / self.n_candidates

    def ray_durations(self) -> np.ndarray:
        """Total kept samples per ray: the naive (unpartitioned) job sizes."""
        return np.array([sum(p) for p in self.pair_durations], dtype=np.float64)

    def to_arrays(self) -> dict:
        """Flatten the trace into named NumPy arrays (``.npz``-ready).

        The ragged ``pair_durations`` lists are stored as a flat value
        array plus per-ray counts; scalars become 0-d arrays.  Inverse of
        :meth:`from_arrays`, the round trip is exact (durations are
        float64 on both sides) — this is the on-disk format of the
        workload-trace cache (``repro.parallel.cache``).
        """
        pair_counts = np.array(
            [len(p) for p in self.pair_durations], dtype=np.int64
        )
        pair_values = np.array(
            [d for p in self.pair_durations for d in p], dtype=np.float64
        )
        arrays = {
            "n_rays": np.int64(self.n_rays),
            "n_samples": np.int64(self.n_samples),
            "n_candidates": np.int64(self.n_candidates),
            "n_cells_visited": np.int64(self.n_cells_visited),
            "pair_counts": pair_counts,
            "pair_values": pair_values,
            "samples_per_ray": np.asarray(self.samples_per_ray),
        }
        if self.vertex_corners is not None:
            arrays["vertex_corners"] = self.vertex_corners
        if self.vertex_indices is not None:
            arrays["vertex_indices"] = self.vertex_indices
        return arrays

    @classmethod
    def from_arrays(cls, arrays: dict) -> "WorkloadTrace":
        """Rebuild a trace from a :meth:`to_arrays` mapping (cache load)."""
        pair_counts = np.asarray(arrays["pair_counts"]).astype(np.int64)
        pair_values = np.asarray(arrays["pair_values"])
        pair_durations = []
        cursor = 0
        for count in pair_counts:
            pair_durations.append(pair_values[cursor : cursor + count].tolist())
            cursor += count
        return cls(
            n_rays=int(arrays["n_rays"]),
            pair_durations=pair_durations,
            n_samples=int(arrays["n_samples"]),
            n_candidates=int(arrays["n_candidates"]),
            vertex_corners=arrays.get("vertex_corners"),
            vertex_indices=arrays.get("vertex_indices"),
            samples_per_ray=np.asarray(arrays["samples_per_ray"]),
            n_cells_visited=int(arrays["n_cells_visited"]),
        )

    def scale_for_samples(self, target_samples: float) -> float:
        """Workload-scale factor covering ``target_samples``.

        The simulator is linear in workload volume: chip-scale runs
        simulate this representative batch once and multiply cycles and
        operation counts by the returned factor (see the ``workload_scale``
        argument of the chip simulators) instead of re-tracing millions of
        rays.
        """
        if self.n_samples == 0:
            raise ValueError("cannot scale an empty trace")
        return target_samples / self.n_samples


def distribute_samples_over_pairs(
    pair_ray_idx: np.ndarray,
    spans: np.ndarray,
    kept_per_ray: np.ndarray,
    n_rays: int,
) -> list:
    """Distribute each ray's kept samples over its cube-pairs
    proportionally to the pairs' span lengths.

    Vectorized replacement for the original append loop: ``np.bincount``
    accumulates weights in input order exactly like the ``np.add.at`` it
    replaces, and ``intersect_octants`` returns pairs sorted by
    ``ray_idx``, so the per-ray slices below reproduce the loop bit for
    bit (see :func:`repro.perf.reference.pair_durations_reference`).
    """
    spans = np.asarray(spans, dtype=np.float64)
    span_per_ray = np.bincount(pair_ray_idx, weights=spans, minlength=n_rays)
    total = span_per_ray[pair_ray_idx]
    share = np.divide(spans, total, out=np.zeros_like(spans), where=total > 0)
    dur = np.asarray(kept_per_ray)[pair_ray_idx].astype(np.float64) * share
    fences = np.concatenate(
        ([0], np.cumsum(np.bincount(pair_ray_idx, minlength=n_rays)))
    )
    return [dur[fences[ray] : fences[ray + 1]].tolist() for ray in range(n_rays)]


def trace_from_rays(
    origins: np.ndarray,
    directions: np.ndarray,
    occupancy: OccupancyGrid,
    encoding=None,
    max_samples: int = 128,
    max_traced_vertices: int = 4096,
    chunk: int = None,
    jobs: int = 1,
) -> WorkloadTrace:
    """Exact trace: run Stage I on unit-space rays.

    When ``encoding`` (a :class:`~repro.nerf.hash_encoding.HashEncoding`)
    is given, the finest-level vertex lookups of up to
    ``max_traced_vertices`` samples are recorded for conflict replay.

    ``chunk``/``jobs`` shard the Stage I march over ray chunks (see
    :meth:`~repro.nerf.sampling.RayMarcher.sample_chunked`); the
    resulting trace is bit-identical to the one-shot march, so large
    experiments can parallelize trace extraction freely.
    """
    origins = np.atleast_2d(origins)
    directions = np.atleast_2d(directions)
    n_rays = origins.shape[0]
    pairs = intersect_octants(origins, directions)
    marcher = RayMarcher(SamplerConfig(max_samples=max_samples))
    if chunk is not None:
        batch = marcher.sample_chunked(
            origins, directions, occupancy=occupancy, chunk=chunk, jobs=jobs
        )
    else:
        batch = marcher.sample(origins, directions, occupancy=occupancy)
    # DDA walk over the occupancy grid: the Stage I mask-read workload.
    from .trace_traversal import count_cells_visited

    n_cells = count_cells_visited(origins, directions, occupancy)
    kept_per_ray = batch.samples_per_ray
    spans = pairs.t1 - pairs.t0
    pair_durations = distribute_samples_over_pairs(
        pairs.ray_idx, spans, kept_per_ray, n_rays
    )
    corners = indices = None
    if encoding is not None and len(batch):
        k = min(len(batch), max_traced_vertices)
        subset = batch.positions[:k]
        finest = encoding.config.n_levels - 1
        corners, indices, _ = encoding.level_lookup(subset, finest)
    return WorkloadTrace(
        n_rays=n_rays,
        pair_durations=pair_durations,
        n_samples=len(batch),
        n_candidates=batch.candidates,
        vertex_corners=corners,
        vertex_indices=indices,
        samples_per_ray=kept_per_ray,
        n_cells_visited=n_cells,
    )


def synthetic_trace(
    n_rays: int,
    mean_samples_per_ray: float,
    occupancy_fraction: float,
    rng: np.random.Generator,
    mean_pairs_per_ray: float = 1.8,
    max_samples: int = 128,
    table_size: int = 1 << 14,
    traced_vertices: int = 2048,
) -> WorkloadTrace:
    """Draw a trace from workload statistics.

    Pair counts are truncated-Poisson in [1, 3] (the paper's observed
    range); per-pair kept-sample counts are geometric with the requested
    per-ray mean, reproducing the heavy skew that motivates dynamic
    scheduling.
    """
    if n_rays < 1:
        raise ValueError("need at least one ray")
    if not 0.0 < occupancy_fraction <= 1.0:
        raise ValueError("occupancy_fraction must be in (0, 1]")
    if mean_samples_per_ray <= 0:
        raise ValueError("mean_samples_per_ray must be positive")
    pair_counts = np.clip(rng.poisson(mean_pairs_per_ray - 1, size=n_rays) + 1, 1, 3)
    total_pairs = int(pair_counts.sum())
    mean_per_pair = max(mean_samples_per_ray * n_rays / total_pairs, 1e-6)
    # Geometric lengths (support >= 1) shifted down by one to allow empty
    # pairs; the +1 in the success probability keeps the requested mean.
    lengths = np.minimum(
        rng.geometric(min(1.0 / (mean_per_pair + 1.0), 1.0), size=total_pairs) - 1,
        max_samples,
    ).astype(np.float64)
    pair_durations = []
    cursor = 0
    for count in pair_counts:
        pair_durations.append(lengths[cursor : cursor + count].tolist())
        cursor += count
    n_samples = int(lengths.sum())
    n_candidates = int(round(n_samples / occupancy_fraction))
    per_ray = np.array([sum(p) for p in pair_durations])
    # Synthetic finest-level vertex coordinates for conflict replay.
    from ..nerf.hash_encoding import CORNER_OFFSETS, hash_vertices

    base = rng.integers(0, 256, size=(traced_vertices, 3))
    corners = base[:, None, :] + CORNER_OFFSETS[None, :, :]
    indices = hash_vertices(corners, table_size)
    return WorkloadTrace(
        n_rays=n_rays,
        pair_durations=pair_durations,
        n_samples=n_samples,
        n_candidates=n_candidates,
        vertex_corners=corners,
        vertex_indices=indices,
        samples_per_ray=per_ray,
    )
