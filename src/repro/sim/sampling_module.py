"""Stage I cycle model: the Sampling Module (Technique T1).

The module is a pre-processing unit (ray setup and box intersection)
feeding sixteen parallel sampling cores that march ray-cube pairs.  Two
designs are modeled:

* **optimized** (this work, T1-1 + T1-2): model normalization &
  partitioning reduce each ray-cube intersection to 3 muls + 3 MACs,
  executed by the shared, pipelined pre-processing unit; the controller
  dynamically dispatches a whole ray's cube-pairs the moment enough cores
  are simultaneously free.
* **naive baseline** (Table VI's comparison point): no normalization and
  no partitioning — each ray is a single unsplit job whose core first
  solves the general 6-equation box intersection (the 18 divisions
  dominate its latency) and then marches the whole segment; rays issue in
  lockstep batches, so every batch waits for its slowest ray.

Marching time is counted in kept samples (empty occupancy cells are
skipped at bitmask speed; the residual cost is folded into the per-job
setup constants).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hw.energy import OpCounts
from .engine import schedule_dynamic, schedule_lockstep_batches, ScheduleResult
from .trace import WorkloadTrace


@dataclass(frozen=True)
class SamplingModuleConfig:
    """Stage I hardware parameters."""

    n_cores: int = 16
    #: Kept samples generated per core per cycle.
    points_per_core_cycle: float = 1.0
    #: Pipelined normalized intersections per cycle: eight parallel
    #: 3-mul/3-MAC units, each retiring one octant test per cycle, times
    #: an 8-deep unrolling across octants (the intersections are so cheap
    #: after normalization that the pre-processing unit tests a full
    #: ray-octant fan-out every cycle).
    normalized_tests_per_cycle: int = 64
    #: Latency of one general box intersection: 18 divisions on a radix-4
    #: divider, partially overlapped with the 54 muls/adds.
    general_intersect_cycles: float = 40.0
    #: Per-pair core setup in the optimized design (load t0/t1, DDA init,
    #: amortized empty-cell skipping).
    pair_setup_cycles: float = 0.25


@dataclass
class SamplingReport:
    """Cycle and energy outcome of simulating Stage I on a trace."""

    cycles: float
    utilization: float
    ops: OpCounts
    scheduler: str


class SamplingModule:
    """Cycle/energy simulator for the sampling stage."""

    def __init__(self, config: SamplingModuleConfig = SamplingModuleConfig()):
        self.config = config

    def simulate(self, trace: WorkloadTrace, optimized: bool = True) -> SamplingReport:
        """Simulate the trace with the optimized or naive design."""
        if optimized:
            schedule = self._schedule_optimized(trace)
            ops = self._ops_optimized(trace)
            cycles = max(schedule.makespan, self._preproc_cycles(trace))
            name = "dynamic"
        else:
            schedule = self._schedule_naive(trace)
            ops = self._ops_naive(trace)
            cycles = schedule.makespan
            name = "naive-lockstep"
        utilization = (
            schedule.busy_cycles / (cycles * self.config.n_cores)
            if cycles > 0
            else 0.0
        )
        return SamplingReport(
            cycles=cycles, utilization=utilization, ops=ops, scheduler=name
        )

    def speedup(self, trace: WorkloadTrace) -> float:
        """T1 ablation: naive cycles over optimized cycles (Table VI)."""
        base = self.simulate(trace, optimized=False)
        opt = self.simulate(trace, optimized=True)
        if opt.cycles <= 0:
            return float("inf")
        return base.cycles / opt.cycles

    def _schedule_optimized(self, trace: WorkloadTrace) -> ScheduleResult:
        cfg = self.config
        groups = [
            [
                cfg.pair_setup_cycles + length / cfg.points_per_core_cycle
                for length in pairs
            ]
            for pairs in trace.pair_durations
            if pairs
        ]
        return schedule_dynamic(groups, cfg.n_cores)

    def _schedule_naive(self, trace: WorkloadTrace) -> ScheduleResult:
        cfg = self.config
        durations = (
            cfg.general_intersect_cycles
            + trace.ray_durations() / cfg.points_per_core_cycle
        )
        return schedule_lockstep_batches(durations, cfg.n_cores)

    def _preproc_cycles(self, trace: WorkloadTrace) -> float:
        """Pipelined normalized intersections: 8 octant tests per ray."""
        return 8.0 * trace.n_rays / self.config.normalized_tests_per_cycle

    def _ops_optimized(self, trace: WorkloadTrace) -> OpCounts:
        ops = OpCounts()
        tests = 8 * trace.n_rays
        # Normalized intersection: 3 muls + 3 MACs per octant test.
        ops.int32_mul += 6 * tests
        ops.int32_add += 3 * tests
        self._add_march_ops(ops, trace)
        return ops

    def _ops_naive(self, trace: WorkloadTrace) -> OpCounts:
        ops = OpCounts()
        # General intersection: 18 div + 54 mul + 54 add per ray.
        ops.int32_div += 18 * trace.n_rays
        ops.int32_mul += 54 * trace.n_rays
        ops.int32_add += 54 * trace.n_rays
        self._add_march_ops(ops, trace)
        return ops

    def _add_march_ops(self, ops: OpCounts, trace: WorkloadTrace) -> None:
        """Marching costs shared by both designs."""
        # Position update: 3-axis MAC per candidate point.
        ops.int16_mac += 3 * trace.n_candidates
        # Occupancy test: the DDA visits each cell once and reads a 32-bit
        # mask word; when the trace lacks a traversal count, estimate one
        # mask read per 8 candidate points.
        if trace.n_cells_visited:
            ops.sram_read_bytes += 4.0 * trace.n_cells_visited
        else:
            ops.sram_read_bytes += trace.n_candidates / 8.0
        # Kept samples spill to the Stage II ping-pong buffer:
        # 3 x int16 coords + dt + ray id = 10 bytes.
        ops.sram_write_bytes += 10 * trace.n_samples
