"""Stage II cycle model: the Feature Interpolation Module (Technique T2).

Each interpolation core owns a shared vertex path (coordinate generation,
hash computation, weight generation — used identically by inference and
training) and two reconfigurable interpolation arrays.  In the forward
pass an array is a MAC tree folding eight FIEM products per level; in the
backward pass it flips into a vector-multiply/scatter unit updating the
same eight vertices.  With the two-level hash tiling of
:mod:`repro.sim.hash_tiling` every 8-fetch group is conflict-free, so an
array sustains one level per cycle; the untiled baseline multiplies
memory-bound cycles by the replayed conflict factor.

Training walks read-compute-write per level; time-division multiplexing
(T2-1) slots an inference task into the otherwise idle feature-SRAM
cycle, modeled as the difference between ``train_rmw_cycles_per_level``
with and without TDM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hw.energy import OpCounts
from ..nerf.hash_encoding import HashEncodingConfig
from .hash_tiling import BankingScheme, TwoLevelTiling, BaselineBanking, replay_feature_fetches
from .trace import WorkloadTrace


@dataclass(frozen=True)
class InterpModuleConfig:
    """Stage II hardware parameters."""

    n_cores: int = 10
    #: Reconfigurable interpolation arrays per core (levels per cycle).
    arrays_per_core: int = 2
    #: Backward read-modify-write cycles per level with TDM (T2-1).
    train_rmw_cycles_with_tdm: float = 2.0
    #: ... and without TDM (the idle memory slot stalls the pipeline).
    train_rmw_cycles_without_tdm: float = 3.0
    #: Use the two-level hash tiling (T4); False replays baseline banking.
    use_two_level_tiling: bool = True
    #: Use time-division multiplexing of training and inference (T2-1).
    use_tdm: bool = True
    #: Sustained issue rate of the interpolation pipeline, measured on the
    #: prototype (hazards between dependent level fetches and ping-pong
    #: swaps keep it below 1.0).
    issue_efficiency: float = 0.85


@dataclass
class InterpReport:
    """Cycle and energy outcome of simulating Stage II on a trace."""

    cycles: float
    conflict_factor: float
    ops: OpCounts
    mode: str


class InterpModule:
    """Cycle/energy simulator for the feature-interpolation stage."""

    def __init__(
        self,
        config: InterpModuleConfig = InterpModuleConfig(),
        encoding: HashEncodingConfig = HashEncodingConfig(),
    ):
        self.config = config
        self.encoding = encoding

    @property
    def tiling(self) -> BankingScheme:
        if self.config.use_two_level_tiling:
            return TwoLevelTiling()
        return BaselineBanking()

    def conflict_factor(self, trace: WorkloadTrace) -> float:
        """Mean cycles per 8-fetch group under the active bank mapping."""
        if trace.vertex_corners is None or self.config.use_two_level_tiling:
            # Tiled accesses are conflict-free by construction; without a
            # recorded fetch trace we also assume the design point (tiled).
            return 1.0
        stats = replay_feature_fetches(
            trace.vertex_corners, trace.vertex_indices, self.tiling
        )
        return max(stats.mean_cycles_per_group, 1.0)

    def forward_cycles_per_sample(self) -> float:
        """Conflict-free forward cycles per sample on one core."""
        levels = self.encoding.n_levels
        return np.ceil(levels / self.config.arrays_per_core)

    def backward_cycles_per_sample(self) -> float:
        """Gradient-scatter cycles per sample on one core."""
        cfg = self.config
        rmw = (
            cfg.train_rmw_cycles_with_tdm
            if cfg.use_tdm
            else cfg.train_rmw_cycles_without_tdm
        )
        return self.encoding.n_levels * rmw / cfg.arrays_per_core

    def simulate(self, trace: WorkloadTrace, training: bool = False) -> InterpReport:
        """Cycles/energy for one batch of samples through Stage II."""
        factor = self.conflict_factor(trace)
        per_sample = self.forward_cycles_per_sample()
        if training:
            per_sample = per_sample + self.backward_cycles_per_sample()
        cycles = (
            trace.n_samples
            * per_sample
            * factor
            / (self.config.n_cores * self.config.issue_efficiency)
        )
        ops = self._ops(trace, training)
        return InterpReport(
            cycles=cycles,
            conflict_factor=factor,
            ops=ops,
            mode="training" if training else "inference",
        )

    def _ops(self, trace: WorkloadTrace, training: bool) -> OpCounts:
        ops = OpCounts()
        n = trace.n_samples
        levels = self.encoding.n_levels
        feats = self.encoding.n_features
        lookups = n * levels  # 8-vertex groups
        # Shared vertex path: hash needs 2 int muls per corner (x prime is
        # 1), xor/mod folded into adds; weights need 2 int16 muls/corner.
        ops.int32_mul += 2 * 8 * lookups
        ops.int32_add += 2 * 8 * lookups
        ops.int16_mac += 2 * 8 * lookups
        # Forward interpolation: 8 FIEM products + adder tree per feature.
        ops.fiem_mul += 8 * feats * lookups
        ops.fp16_mac += 7 * feats * lookups
        ops.sram_read_bytes += 8 * feats * 2 * lookups  # fp16 features
        if training:
            # Backward: weight x upstream-grad products, then
            # read-modify-write of the eight vertices per level.
            ops.fiem_mul += 8 * feats * lookups
            ops.fp16_mac += 8 * feats * lookups
            ops.sram_read_bytes += 8 * feats * 2 * lookups
            ops.sram_write_bytes += 8 * feats * 2 * lookups
        # Encoded features stream to Stage III over the NoC.
        ops.noc_bytes += 2 * levels * feats * n
        return ops
