"""Minimal multi-core event engine for the module-level simulations.

The Stage I scheduling study (T1-2) needs an actual discrete-event model:
sixteen sampling cores finishing at different times, with a controller
deciding when the next ray's cube-pairs may launch.  This engine keeps
just enough state for that — a free-time per core — and exposes the two
dispatch disciplines the paper compares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CorePool:
    """A pool of identical cores tracked by their next-free cycle."""

    n_cores: int

    def __post_init__(self):
        if self.n_cores < 1:
            raise ValueError("need at least one core")
        self.free_at = np.zeros(self.n_cores, dtype=np.float64)

    def reset(self) -> None:
        self.free_at[:] = 0.0

    @property
    def makespan(self) -> float:
        return float(self.free_at.max())

    def busy_cycles(self) -> float:
        """Total core-cycles consumed so far (for utilization metrics)."""
        return float(self.free_at.sum())

    def time_until_free(self, k: int, now: float) -> float:
        """Earliest time at which at least ``k`` cores are simultaneously free."""
        if k > self.n_cores:
            raise ValueError("cannot wait for more cores than exist")
        kth = np.partition(self.free_at, k - 1)[k - 1]
        return max(now, kth)

    def dispatch_group(self, durations: np.ndarray, start: float) -> float:
        """Start one job per core on the ``len(durations)`` earliest-free
        cores at ``start``; returns the group's completion time."""
        durations = np.asarray(durations, dtype=np.float64)
        k = durations.shape[0]
        if k > self.n_cores:
            raise ValueError("group larger than the pool")
        order = np.argsort(self.free_at)[:k]
        begin = np.maximum(self.free_at[order], start)
        finish = begin + durations
        self.free_at[order] = finish
        return float(finish.max())


@dataclass
class ScheduleResult:
    """Outcome of scheduling one batch of grouped jobs."""

    makespan: float
    busy_cycles: float
    n_cores: int

    @property
    def utilization(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.busy_cycles / (self.makespan * self.n_cores)


def schedule_dynamic(
    group_durations: list,
    n_cores: int,
) -> ScheduleResult:
    """The paper's dynamic workload scheduling (T1-2).

    The controller watches core availability and dispatches *all* of a
    ray's cube-pairs as soon as enough cores are simultaneously free —
    the whole-ray threshold that bounds both control complexity and the
    partial-sum buffer per ray.
    """
    pool = CorePool(n_cores)
    now = 0.0
    for durations in group_durations:
        k = len(durations)
        if k == 0:
            continue
        if k > n_cores:
            raise ValueError("a ray needs more cores than the pool has")
        now = pool.time_until_free(k, now)
        pool.dispatch_group(np.asarray(durations), now)
    return ScheduleResult(
        makespan=pool.makespan, busy_cycles=pool.busy_cycles(), n_cores=n_cores
    )


def schedule_ray_by_ray(
    group_durations: list,
    n_cores: int,
    setup_cycles: float = 0.0,
) -> ScheduleResult:
    """The naive baseline: one ray occupies the pool at a time.

    A ray's pairs run in parallel, but the next ray cannot start until the
    current ray (plus its per-ray setup, e.g. a general box intersection)
    fully completes — the idle-core pattern of paper Fig. 5(c).
    """
    makespan = 0.0
    busy = 0.0
    for durations in group_durations:
        if len(durations) == 0:
            makespan += setup_cycles
            continue
        durations = np.asarray(durations, dtype=np.float64)
        makespan += setup_cycles + float(durations.max())
        busy += float(durations.sum())
    return ScheduleResult(makespan=makespan, busy_cycles=busy, n_cores=n_cores)


def pipeline_makespan(stage_cycles: np.ndarray) -> float:
    """Makespan of a linear pipeline over batches.

    ``stage_cycles`` is ``(n_batches, n_stages)``; stage *s* of batch *b*
    may start once stage *s* finished batch *b-1* and stage *s-1* finished
    batch *b* — the classic flow-shop recurrence, which models the
    three-stage chip pipeline fed by ping-pong buffers.
    """
    stage_cycles = np.atleast_2d(np.asarray(stage_cycles, dtype=np.float64))
    n_batches, n_stages = stage_cycles.shape
    # finish[s] holds the completion time of the most recent batch at
    # stage s; the flow-shop recurrence is
    # finish[b][s] = max(finish[b-1][s], finish[b][s-1]) + c[b][s].
    finish = np.zeros(n_stages)
    for b in range(n_batches):
        upstream = 0.0
        for s in range(n_stages):
            start = max(finish[s], upstream)
            finish[s] = start + stage_cycles[b, s]
            upstream = finish[s]
    return float(finish[-1])


def schedule_lockstep_batches(
    durations: np.ndarray,
    n_cores: int,
) -> ScheduleResult:
    """Synchronous batching: the simplest real controller.

    Jobs are issued to all cores at once, and the next batch waits for the
    slowest core — the idle pattern of paper Fig. 5(c).  Used as the naive
    Stage I baseline together with per-ray general intersections.
    """
    durations = np.asarray(durations, dtype=np.float64)
    if durations.size == 0:
        return ScheduleResult(makespan=0.0, busy_cycles=0.0, n_cores=n_cores)
    pad = (-durations.size) % n_cores
    padded = np.concatenate([durations, np.zeros(pad)])
    batches = padded.reshape(-1, n_cores)
    return ScheduleResult(
        makespan=float(batches.max(axis=1).sum()),
        busy_cycles=float(durations.sum()),
        n_cores=n_cores,
    )
