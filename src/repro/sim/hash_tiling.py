"""Two-level hash tiling (Technique T4) and the untiled baseline.

Stage II fetches eight vertices per sampled point per level.  With naive
bank assignment (``bank = index mod n_banks``) several of the eight can
land in the same single-ported bank, serializing the access group to
anywhere from 1 to 8 cycles.  The paper's remedy exploits two properties
of the Instant-NGP hash:

* **Level 2 ("interpolation level") tiling** — the eight corners split
  into four YZ-offset groups of two, and because the hash multiplies Y/Z
  by large primes, different YZ groups are spread far apart in the table;
  the table is physically partitioned into four SRAM groups by YZ offset,
  so each group serves exactly two of the eight requests.
* **Level 3 ("parity") tiling** — within a YZ group the two corners
  differ by one in X, and because the X hash factor is 1, their indices
  always have opposite parity; an even and an odd bank per group make the
  whole 8-fetch group conflict-free by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import telemetry
from ..hw.sram import BankedSram, SramBankSpec, AccessStats
from ..hw.technology import Technology, TECH_28NM


@dataclass(frozen=True)
class BankingScheme:
    """Maps the 8 vertex fetches of each sample to SRAM banks."""

    name: str
    n_banks: int = 8

    def bank_ids(self, corners: np.ndarray, indices: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class BaselineBanking(BankingScheme):
    """Untiled baseline: banks interleaved on the low index bits."""

    def __init__(self, n_banks: int = 8):
        super().__init__(name="baseline", n_banks=n_banks)

    def bank_ids(self, corners: np.ndarray, indices: np.ndarray) -> np.ndarray:
        return np.asarray(indices) % self.n_banks


class TwoLevelTiling(BankingScheme):
    """Level-2 + Level-3 tiling: bank = YZ-group * 2 + index parity."""

    def __init__(self):
        super().__init__(name="two-level-tiling", n_banks=8)

    def bank_ids(self, corners: np.ndarray, indices: np.ndarray) -> np.ndarray:
        corners = np.asarray(corners)
        indices = np.asarray(indices)
        if corners.shape[:-1] != indices.shape:
            raise ValueError("corners and indices must describe the same fetches")
        yz_group = (corners[..., 1] % 2) * 2 + (corners[..., 2] % 2)
        parity = indices % 2
        return yz_group * 2 + parity


def replay_feature_fetches(
    corners: np.ndarray,
    indices: np.ndarray,
    scheme: BankingScheme,
    bytes_per_access: int = 4,
    bank_kb: float = 8.0,
    tech: Technology = TECH_28NM,
) -> AccessStats:
    """Replay one level's vertex fetches against a banked feature SRAM.

    ``corners``/``indices`` are ``(n_samples, 8, 3)`` / ``(n_samples, 8)``
    as produced by ``HashEncoding.level_lookup``.
    """
    tel = telemetry.get_session()
    with tel.tracer.span("hash_tiling.replay", scheme=scheme.name):
        banks = BankedSram(scheme.n_banks, SramBankSpec(size_kb=bank_kb), tech)
        bank_ids = scheme.bank_ids(corners, indices)
        stats = banks.replay_groups(bank_ids, bytes_per_access=bytes_per_access)
    if tel.enabled:
        m = tel.metrics
        prefix = f"sram.{scheme.name}"
        m.counter(f"{prefix}.bank_conflicts").inc(stats.conflicts)
        m.counter(f"{prefix}.access_cycles").inc(stats.cycles)
        m.counter(f"{prefix}.requests").inc(stats.requests)
    return stats


@dataclass
class TilingComparison:
    """Side-by-side conflict behaviour of baseline vs two-level tiling."""

    baseline: AccessStats
    tiled: AccessStats

    @property
    def latency_saving(self) -> float:
        if self.baseline.cycles == 0:
            return 0.0
        return 1.0 - self.tiled.cycles / self.baseline.cycles

    @property
    def baseline_variance(self) -> float:
        return self.baseline.cycle_variance

    @property
    def tiled_variance(self) -> float:
        return self.tiled.cycle_variance


def compare_tilings(
    corners: np.ndarray,
    indices: np.ndarray,
    bytes_per_access: int = 4,
) -> TilingComparison:
    """Run both schemes on the same fetch trace (paper Fig. 12(c)-(e))."""
    return TilingComparison(
        baseline=replay_feature_fetches(
            corners, indices, BaselineBanking(), bytes_per_access
        ),
        tiled=replay_feature_fetches(
            corners, indices, TwoLevelTiling(), bytes_per_access
        ),
    )


def access_pattern_matrix(
    corners: np.ndarray, indices: np.ndarray, scheme: BankingScheme
) -> np.ndarray:
    """``(8, n_banks)`` histogram of which bank each vertex slot hits.

    The paper's Fig. 12(e): under two-level tiling the matrix is a
    permutation-like diagonal (each slot owns one bank); the baseline
    smears every slot across all banks.
    """
    bank_ids = scheme.bank_ids(corners, indices)
    n = bank_ids.shape[0]
    matrix = np.zeros((8, scheme.n_banks), dtype=np.int64)
    for slot in range(8):
        counts = np.bincount(bank_ids[:, slot], minlength=scheme.n_banks)
        matrix[slot] = counts[: scheme.n_banks]
    return matrix
