"""DDA cell-visit counting for trace extraction (Stage I mask reads)."""

from __future__ import annotations

import numpy as np

from ..nerf.aabb import intersect_unit_cube
from ..nerf.occupancy import OccupancyGrid, traverse_grid


def count_cells_visited(
    origins: np.ndarray,
    directions: np.ndarray,
    occupancy: OccupancyGrid,
) -> int:
    """Total occupancy cells the rays' DDA walks visit."""
    origins = np.atleast_2d(origins)
    directions = np.atleast_2d(directions)
    unit = directions / np.linalg.norm(directions, axis=-1, keepdims=True)
    t0, t1, hit = intersect_unit_cube(origins, unit)
    if not hit.any():
        return 0
    counts = traverse_grid(
        origins[hit], unit[hit], occupancy, t0[hit], t1[hit]
    )
    return int(counts.sum())
