"""Cycle-level simulator of the Fusion-3D chip and multi-chip system.

Module-by-module cycle and energy accounting driven by workload traces
extracted from the functional NeRF substrate, calibrated with the 28 nm
technology models of :mod:`repro.hw`.
"""

from .engine import (
    CorePool,
    ScheduleResult,
    schedule_dynamic,
    schedule_ray_by_ray,
    schedule_lockstep_batches,
    pipeline_makespan,
)
from .trace import WorkloadTrace, trace_from_rays, synthetic_trace
from .hash_tiling import (
    BankingScheme,
    BaselineBanking,
    TwoLevelTiling,
    replay_feature_fetches,
    compare_tilings,
    TilingComparison,
    access_pattern_matrix,
)
from .sampling_module import SamplingModule, SamplingModuleConfig, SamplingReport
from .interp_module import InterpModule, InterpModuleConfig, InterpReport
from .postproc_module import PostProcModule, PostProcModuleConfig, PostProcReport
from .chip import ChipConfig, ChipReport, SingleChipAccelerator, StageReport
from .chiplet import ChipletConfig, ChipletSystem, ChipletReport
from .multichip import (
    MultiChipConfig,
    MultiChipSystem,
    MultiChipReport,
    CommunicationReport,
    CAMERA_BROADCAST_BYTES,
    PARTIAL_PIXEL_BYTES,
    FEATURE_BYTES_PER_SAMPLE,
)

__all__ = [
    "CorePool",
    "ScheduleResult",
    "schedule_dynamic",
    "schedule_ray_by_ray",
    "schedule_lockstep_batches",
    "pipeline_makespan",
    "WorkloadTrace",
    "trace_from_rays",
    "synthetic_trace",
    "BankingScheme",
    "BaselineBanking",
    "TwoLevelTiling",
    "replay_feature_fetches",
    "compare_tilings",
    "TilingComparison",
    "access_pattern_matrix",
    "SamplingModule",
    "SamplingModuleConfig",
    "SamplingReport",
    "InterpModule",
    "InterpModuleConfig",
    "InterpReport",
    "PostProcModule",
    "PostProcModuleConfig",
    "PostProcReport",
    "ChipConfig",
    "ChipReport",
    "SingleChipAccelerator",
    "StageReport",
    "ChipletConfig",
    "ChipletSystem",
    "ChipletReport",
    "MultiChipConfig",
    "MultiChipSystem",
    "MultiChipReport",
    "CommunicationReport",
    "CAMERA_BROADCAST_BYTES",
    "PARTIAL_PIXEL_BYTES",
    "FEATURE_BYTES_PER_SAMPLE",
]
