"""Chiplet-based multi-chip scaling (the Sec. VIII discussion).

In the PCB system, supporting a model larger than the chips' combined
SRAM means adding more chips.  With chiplets, the high in-package
bandwidth lets a buffer in the I/O module cache the model working set:
the computing chips are *temporally* reused, streaming one model shard at
a time, while the off-package link stays at the 0.6 GB/s USB budget.
The cost is I/O-module silicon for the buffer — the rising curve of
Fig. 14.

This simulator quantifies that trade: runtime inflates by the number of
shard passes (plus any chiplet-link stall), and the I/O module grows with
the buffered bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hw.area import AreaModel
from ..hw.interconnect import CHIPLET_LINK, LinkSpec, USB_3_2_GEN1
from .chip import ChipConfig, SingleChipAccelerator
from .trace import WorkloadTrace

#: Logic of the I/O module without any buffer (fusion adder, PHYs, control).
IO_MODULE_BASE_GATES = 420000


@dataclass(frozen=True)
class ChipletConfig:
    """Static configuration of the chiplet-based system."""

    n_chips: int = 4
    chip: ChipConfig = field(default_factory=ChipConfig.scaled)
    link: LinkSpec = CHIPLET_LINK
    off_package: LinkSpec = USB_3_2_GEN1

    def __post_init__(self):
        if self.n_chips < 1:
            raise ValueError("need at least one chip")

    @property
    def resident_table_bytes(self) -> float:
        """Feature-table bytes the compute chips hold at once."""
        return self.n_chips * self.chip.feature_sram_kb * 1024


@dataclass
class ChipletReport:
    """Outcome of one chiplet-system simulation."""

    mode: str
    shard_passes: int
    compute_s: float
    stream_s: float
    runtime_s: float
    io_buffer_bytes: float
    io_module_mm2: float
    off_package_gbps: float

    @property
    def temporal_reuse_overhead(self) -> float:
        """Runtime vs a hypothetical spatially scaled system (which would
        run the whole model in one pass): >= shard_passes."""
        single_pass = self.compute_s / max(self.shard_passes, 1)
        if single_pass <= 0:
            return 1.0
        return self.runtime_s / single_pass


class ChipletSystem:
    """Temporal model-sharding on a chiplet package."""

    def __init__(self, config: ChipletConfig = ChipletConfig()):
        self.config = config
        self.chip = SingleChipAccelerator(config.chip)

    def shard_passes(self, model_table_bytes: float) -> int:
        """Temporal passes needed to cover the model."""
        resident = self.config.resident_table_bytes
        return max(1, int(np.ceil(model_table_bytes / resident)))

    def io_buffer_bytes(self, model_table_bytes: float) -> float:
        """Buffered bytes: whatever exceeds the chips' resident capacity."""
        return max(0.0, model_table_bytes - self.config.resident_table_bytes)

    def io_module_area_mm2(self, model_table_bytes: float) -> float:
        """Fig. 14: base logic plus buffer SRAM."""
        area = AreaModel(self.config.chip.tech)
        return area.logic_area_mm2(IO_MODULE_BASE_GATES) + area.sram_area_mm2(
            self.io_buffer_bytes(model_table_bytes) / 1024.0
        )

    def simulate(
        self,
        trace: WorkloadTrace,
        model_table_bytes: float,
        training: bool = False,
        workload_scale: float = 1.0,
    ) -> ChipletReport:
        """Runtime of one workload when the model needs sharding.

        Every shard pass re-runs the sample stream against one model
        shard (each sample needs every level group, so work replicates
        across passes); shard swaps stream over the in-package link,
        overlapped with compute (double-buffered).
        """
        passes = self.shard_passes(model_table_bytes)
        base = self.chip.simulate(
            trace, training=training, workload_scale=workload_scale
        )
        compute = base.runtime_s * passes
        shard_bytes = min(model_table_bytes, self.config.resident_table_bytes)
        stream = passes * self.config.link.transfer_s(shard_bytes) if passes > 1 else 0.0
        runtime = max(compute, stream)
        return ChipletReport(
            mode=base.mode,
            shard_passes=passes,
            compute_s=compute,
            stream_s=stream,
            runtime_s=runtime,
            io_buffer_bytes=self.io_buffer_bytes(model_table_bytes),
            io_module_mm2=self.io_module_area_mm2(model_table_bytes),
            off_package_gbps=min(0.6, self.config.off_package.bandwidth_gbps),
        )
