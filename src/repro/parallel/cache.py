"""Content-addressed on-disk cache for experiment results and traces.

Layout (under :func:`default_cache_root`, overridable via the
``FUSION3D_CACHE_DIR`` environment variable or ``--cache-dir``)::

    <root>/results/<sha256>.json   # ExperimentResult payload + metadata
    <root>/traces/<sha256>.npz     # WorkloadTrace arrays + metadata

Entries are *content addressed*: the filename is the SHA-256 of the
canonicalized key, and the key includes a source fingerprint
(:mod:`repro.parallel.fingerprint`), so editing ``repro.sim`` or
``repro.nerf`` makes every stale entry unreachable without any explicit
invalidation step.  Corrupted entries (truncated writes, bit rot,
hand-edited JSON) are treated as misses and deleted on first touch —
the cache is always allowed to forget, never to lie.

Writes are atomic (temp file + ``os.replace``) so a crashed or killed
worker can not leave a half-written entry behind, and concurrent
writers of the same key simply race to an identical file.

The *active* cache is a process-global installed by the engine (and by
its worker initializer, so forked pool workers inherit the setting):
:func:`activate` / :func:`deactivate` / :func:`get_active`.  Library
code that can exploit trace reuse (``repro.experiments.workloads``)
asks :func:`get_active` and proceeds uncached when it returns ``None``,
keeping the default path dependency-free and byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import zipfile

import numpy as np

logger = logging.getLogger("repro.parallel.cache")

#: Schema version folded into every key; bump when the payload layout
#: changes so old entries become unreachable instead of mis-parsed.
CACHE_VERSION = 1


def default_cache_root() -> str:
    """``$FUSION3D_CACHE_DIR`` if set, else ``~/.cache/fusion3d``."""
    env = os.environ.get("FUSION3D_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "fusion3d")


def cache_key(kind: str, **fields) -> str:
    """SHA-256 of the canonical JSON encoding of ``kind`` + ``fields``.

    ``kind`` namespaces result vs trace keys; fields must be
    JSON-serializable (strings, numbers, bools, lists).  Key order is
    canonicalized by ``sort_keys`` so call sites never coordinate.
    """
    payload = {"kind": kind, "version": CACHE_VERSION, **fields}
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk store of experiment results and workload traces."""

    def __init__(self, root: str = None):
        self.root = root if root is not None else default_cache_root()
        self.results_dir = os.path.join(self.root, "results")
        self.traces_dir = os.path.join(self.root, "traces")

    # -- result entries ------------------------------------------------

    def _result_path(self, key: str) -> str:
        return os.path.join(self.results_dir, f"{key}.json")

    def get_result(self, key: str) -> dict:
        """Stored payload for ``key``, or ``None`` on miss.

        A corrupted entry (unparseable JSON, wrong shape) is deleted and
        reported as a miss, so one bad file never wedges the engine.
        """
        path = self._result_path(key)
        try:
            with open(path, "r") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            logger.warning("dropping corrupted cache entry %s", path)
            self._remove(path)
            return None
        if not isinstance(entry, dict) or "result" not in entry:
            logger.warning("dropping malformed cache entry %s", path)
            self._remove(path)
            return None
        return entry

    def put_result(self, key: str, result_payload: dict, meta: dict = None) -> str:
        """Atomically store ``result_payload`` (plus ``meta``) under ``key``."""
        entry = {"meta": dict(meta or {}), "result": result_payload}
        path = self._result_path(key)
        self._atomic_write(path, json.dumps(entry, sort_keys=True).encode("utf-8"))
        return path

    # -- trace entries -------------------------------------------------

    def _trace_path(self, key: str) -> str:
        return os.path.join(self.traces_dir, f"{key}.npz")

    def get_trace(self, key: str):
        """Stored :class:`~repro.sim.trace.WorkloadTrace` arrays, or ``None``.

        Returns the ``{name: array}`` mapping produced by
        ``WorkloadTrace.to_arrays`` (reconstruction stays in
        :mod:`repro.sim.trace`, which owns the schema).  Corrupted or
        unreadable archives are deleted and reported as misses.
        """
        path = self._trace_path(key)
        try:
            with np.load(path, allow_pickle=False) as archive:
                return {name: archive[name] for name in archive.files}
        except FileNotFoundError:
            return None
        except (ValueError, OSError, KeyError, zipfile.BadZipFile):
            logger.warning("dropping corrupted trace cache entry %s", path)
            self._remove(path)
            return None

    def put_trace(self, key: str, arrays: dict) -> str:
        """Atomically store a trace's array mapping under ``key``."""
        path = self._trace_path(key)
        os.makedirs(self.traces_dir, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.traces_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, path)
        except BaseException:
            self._remove(tmp)
            raise
        return path

    # -- maintenance ---------------------------------------------------

    def clear(self) -> int:
        """Delete every cache entry; returns the number of files removed."""
        removed = 0
        for directory in (self.results_dir, self.traces_dir):
            if not os.path.isdir(directory):
                continue
            for name in os.listdir(directory):
                self._remove(os.path.join(directory, name))
                removed += 1
        return removed

    def stats(self) -> dict:
        """Entry counts and byte totals per section, for ``cache info``."""
        out = {"root": self.root}
        for label, directory in (
            ("results", self.results_dir),
            ("traces", self.traces_dir),
        ):
            entries = 0
            size = 0
            if os.path.isdir(directory):
                for name in os.listdir(directory):
                    path = os.path.join(directory, name)
                    try:
                        size += os.path.getsize(path)
                    except OSError:
                        continue
                    entries += 1
            out[label] = {"entries": entries, "bytes": size}
        return out

    # -- helpers -------------------------------------------------------

    def _atomic_write(self, path: str, data: bytes) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            self._remove(tmp)
            raise

    @staticmethod
    def _remove(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass


_active_cache = None


def activate(cache: ResultCache) -> None:
    """Install ``cache`` as this process's active cache (trace reuse on)."""
    global _active_cache
    _active_cache = cache


def deactivate() -> None:
    """Remove the active cache (trace reuse off — the default)."""
    global _active_cache
    _active_cache = None


def get_active() -> ResultCache:
    """The process-global active cache, or ``None`` when caching is off."""
    return _active_cache
