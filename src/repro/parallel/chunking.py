"""Chunked evaluation: shard one large batch across worker threads.

The NeRF hot loops (ray marching, MLP forward, compositing) are NumPy
array programs whose heavy kernels release the GIL, so *threads* give
real parallel speedup on large batches without pickling models across
process boundaries.  The contract that keeps results bit-identical to
serial execution: work is split into **fixed, index-ordered chunks**,
each chunk is computed independently, and outputs are written to (or
concatenated in) chunk order — never completion order.  Scheduling
nondeterminism therefore cannot reach the numbers.

These helpers are deliberately tiny; the policy (chunk size, when to
engage threads) lives at the call sites in :mod:`repro.nerf.renderer`
and :mod:`repro.nerf.sampling`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor


def chunk_spans(n_items: int, chunk: int) -> list:
    """Split ``range(n_items)`` into ``(start, stop)`` spans of ``chunk``.

    The final span is short when ``chunk`` does not divide ``n_items``;
    zero items yields no spans.
    """
    if chunk < 1:
        raise ValueError("chunk must be positive")
    return [
        (start, min(start + chunk, n_items)) for start in range(0, n_items, chunk)
    ]


def parallel_map_chunks(fn, n_items: int, chunk: int, jobs: int = 1) -> list:
    """Apply ``fn(start, stop)`` to every chunk span; results in span order.

    With ``jobs <= 1`` (or a single span) this is a plain loop — no
    executor, no overhead, identical code path to the historical serial
    behaviour.  With more, spans are fanned out over a thread pool and
    the result list is still assembled in span order, so callers can
    concatenate without sorting.
    """
    spans = chunk_spans(n_items, chunk)
    if jobs <= 1 or len(spans) <= 1:
        return [fn(start, stop) for start, stop in spans]
    with ThreadPoolExecutor(max_workers=min(jobs, len(spans))) as pool:
        futures = [pool.submit(fn, start, stop) for start, stop in spans]
        return [future.result() for future in futures]
