"""Source fingerprints: content hashes that key the result cache.

A cached experiment result is only valid while the code that produced it
is unchanged.  Rather than tracking imports precisely, the cache keys on
a *fingerprint* — one SHA-256 digest over the source text of every
module in a declared set of packages.  Any edit anywhere in those
packages changes the digest and silently invalidates every entry keyed
on it; stale entries are never deleted eagerly, they simply stop being
found (content addressing).

Two fingerprint scopes are used:

* :data:`RESULT_PACKAGES` — everything an experiment's numbers can
  depend on (algorithms, simulator, hardware models, datasets, the
  experiment code itself).  Keys :class:`~repro.parallel.cache.ResultCache`
  result entries.
* :data:`TRACE_PACKAGES` — the subset that determines a workload trace
  (Stage I sampling, occupancy, scene geometry).  Keys cached traces,
  which therefore survive edits to e.g. ``repro.hw``.

Fingerprints are memoized per process: hashing ~90 small files costs a
few milliseconds, but the engine asks for the same digest once per job.
"""

from __future__ import annotations

import hashlib
import importlib
import os

#: Packages whose source an ExperimentResult may depend on.  Telemetry
#: and the parallel engine itself are deliberately excluded: they must
#: not perturb results (PR 1's bit-identity guarantee), so editing them
#: should not cold the cache.
RESULT_PACKAGES = (
    "repro.core",
    "repro.nerf",
    "repro.sim",
    "repro.hw",
    "repro.baselines",
    "repro.datasets",
    "repro.experiments",
)

#: Packages that determine a workload trace (see module docstring).
TRACE_PACKAGES = (
    "repro.nerf",
    "repro.sim",
    "repro.datasets",
)

_memo: dict = {}


def package_source_files(package: str) -> list:
    """All ``.py`` files of an importable package, sorted by relative path.

    Returns ``(relative_path, absolute_path)`` pairs; the relative path
    (with ``/`` separators) is what enters the digest, so fingerprints
    are stable across machines and checkout locations.
    """
    module = importlib.import_module(package)
    paths = getattr(module, "__path__", None)
    if paths is None:  # plain module, not a package
        filename = module.__file__
        return [(os.path.basename(filename), filename)]
    files = []
    for root in paths:
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in filenames:
                if not name.endswith(".py"):
                    continue
                absolute = os.path.join(dirpath, name)
                relative = os.path.relpath(absolute, root).replace(os.sep, "/")
                files.append((relative, absolute))
    return sorted(files)


def fingerprint_files(files) -> str:
    """SHA-256 over ``(relative_path, content)`` pairs, hex-encoded.

    ``files`` is an iterable of ``(relative_path, absolute_path)`` pairs
    (the :func:`package_source_files` output format).  Exposed separately
    from :func:`source_fingerprint` so tests can fingerprint arbitrary
    temporary trees without importing them as packages.
    """
    digest = hashlib.sha256()
    for relative, absolute in files:
        digest.update(relative.encode("utf-8"))
        digest.update(b"\x00")
        with open(absolute, "rb") as fh:
            digest.update(fh.read())
        digest.update(b"\x00")
    return digest.hexdigest()


def source_fingerprint(packages=RESULT_PACKAGES) -> str:
    """Combined content digest of every module in ``packages``.

    Memoized per process (source files do not change under a running
    engine); call :func:`clear_fingerprint_cache` in tests that rewrite
    source trees mid-process.
    """
    key = tuple(packages)
    cached = _memo.get(key)
    if cached is None:
        files = []
        for package in key:
            for relative, absolute in package_source_files(package):
                files.append((f"{package}/{relative}", absolute))
        cached = _memo[key] = fingerprint_files(files)
    return cached


def clear_fingerprint_cache() -> None:
    """Drop the per-process fingerprint memo (test hook)."""
    _memo.clear()
