"""Parallel experiment execution, result caching, chunked evaluation.

The scaling layer of the reproduction, three parts:

* :mod:`~repro.parallel.engine` — fans independent experiments out over
  a ``concurrent.futures`` process pool (``runner run-all --jobs N``)
  with per-experiment timeouts, retry-once-on-crash, and a merged
  telemetry/metrics :class:`~repro.parallel.engine.RunReport`;
* :mod:`~repro.parallel.cache` — a content-addressed on-disk cache for
  :class:`~repro.experiments.base.ExperimentResult` payloads and
  :class:`~repro.sim.trace.WorkloadTrace` arrays, keyed by experiment
  name + config + the source fingerprint of the packages the numbers
  depend on (:mod:`~repro.parallel.fingerprint`), so unchanged
  experiments are skipped and *any* relevant source edit silently
  invalidates stale entries;
* :mod:`~repro.parallel.chunking` — thread-pool sharding of one large
  ray batch (used by ``repro.nerf.renderer`` / ``sampling``) under a
  bit-identical chunk-ordering contract.

Every future scaling PR (multi-backend, distributed sweeps) plugs into
this layer: the engine owns "what runs where", the cache owns "what can
be skipped", chunking owns "how one big job splits".
"""

from .cache import ResultCache, activate, cache_key, deactivate, default_cache_root, get_active
from .chunking import chunk_spans, parallel_map_chunks
from .engine import (
    MAX_POOL_REBUILDS,
    ExperimentTimeout,
    JobOutcome,
    PoolRebuildLimitError,
    RunReport,
    execute_job,
    merge_metric_snapshots,
    merge_span_aggregates,
    resolve_names,
    result_cache_key,
    run_experiments,
)
from .fingerprint import (
    RESULT_PACKAGES,
    TRACE_PACKAGES,
    clear_fingerprint_cache,
    fingerprint_files,
    package_source_files,
    source_fingerprint,
)

__all__ = [
    "ExperimentTimeout",
    "JobOutcome",
    "MAX_POOL_REBUILDS",
    "PoolRebuildLimitError",
    "RESULT_PACKAGES",
    "ResultCache",
    "RunReport",
    "TRACE_PACKAGES",
    "activate",
    "cache_key",
    "chunk_spans",
    "clear_fingerprint_cache",
    "deactivate",
    "default_cache_root",
    "execute_job",
    "fingerprint_files",
    "get_active",
    "merge_metric_snapshots",
    "merge_span_aggregates",
    "package_source_files",
    "parallel_map_chunks",
    "resolve_names",
    "result_cache_key",
    "run_experiments",
    "source_fingerprint",
]
