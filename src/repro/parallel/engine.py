"""The parallel experiment engine behind ``runner run-all``.

Independent experiments (each already deterministic via fixed seeds) fan
out across a ``concurrent.futures`` process pool.  Each job runs in the
worker's main thread under its own telemetry session, with an optional
per-experiment timeout enforced by ``SIGALRM`` *inside* the worker (the
only way to actually interrupt a compute-bound NumPy job), and ships its
result payload plus span/metric snapshots back to the parent, which
merges them into one :class:`RunReport`.

Failure policy: a crashed job (any exception, including a dead worker
process) is retried once by default; a timed-out job is **not** retried
— it would time out again and double the damage.  Retry pacing is
delegated to :class:`repro.robustness.backoff.BackoffPolicy` (the
default reproduces the historical retry-once-immediately behavior;
callers can pass a jittered exponential schedule instead).  A broken
pool is rebuilt so one segfaulting experiment cannot take down the rest
of the sweep — but only :data:`MAX_POOL_REBUILDS` *consecutive* times:
a worker function that crashes the pool persistently would otherwise
rebuild forever, so past the cap the remaining jobs fail loudly with a
structured ``PoolRebuildLimitError`` outcome instead of spinning.

Caching: with a :class:`~repro.parallel.cache.ResultCache` attached, the
parent consults the cache *before* submitting anything (a warm sweep
never even spawns workers) and stores fresh results afterwards.  Keys
include the source fingerprint of every package the numbers depend on
(:data:`~repro.parallel.fingerprint.RESULT_PACKAGES`), so editing the
simulator silently invalidates the cache.  Workers additionally activate
the *trace* cache so repeated scene-workload extraction inside an
experiment is reused across experiments and runs.

Determinism: results are bit-identical across ``jobs`` settings because
every experiment seeds its own RNGs and jobs never share state; the
``--jobs 1`` path runs the very same job function inline (same payload
normalization, same cache writes), which the test suite asserts.
"""

from __future__ import annotations

import logging
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace

import numpy as np

from ..robustness.backoff import BackoffPolicy, ENGINE_DEFAULT
from . import cache as cache_mod
from .fingerprint import RESULT_PACKAGES, source_fingerprint

logger = logging.getLogger("repro.parallel")

#: Consecutive broken-pool rebuilds tolerated before the engine stops
#: resubmitting and fails the remaining jobs with a structured error.
MAX_POOL_REBUILDS = 3

# NOTE: repro.experiments is imported lazily throughout this module.  The
# experiments package pulls in the whole algorithm stack, and the nerf hot
# paths import repro.parallel.chunking — a module-level import here would
# close that cycle.


class ExperimentTimeout(Exception):
    """Raised inside a worker when a job exceeds its time budget."""


class PoolRebuildLimitError(RuntimeError):
    """The process pool broke down more consecutive times than allowed.

    Jobs abandoned by the cap carry this error's message in their
    :class:`JobOutcome` (status ``failed``) — a structured, greppable
    verdict instead of an endless rebuild loop.
    """


def resolve_names(names=None) -> list:
    """Expand ``names`` (``None``/``"all"`` = every experiment) against
    the registry, in registry order, rejecting unknown names early."""
    from ..experiments import runner

    if not names or names == "all" or list(names) == ["all"]:
        return list(runner.REGISTRY)
    unknown = [n for n in names if n not in runner.REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}; see `list`")
    return list(names)


def result_cache_key(name: str, quick: bool, fingerprint: str) -> str:
    """Cache key of one experiment run: name + config + source digest."""
    return cache_mod.cache_key(
        "experiment-result", name=name, quick=bool(quick), fingerprint=fingerprint
    )


@dataclass
class JobOutcome:
    """What happened to one experiment in a sweep."""

    name: str
    #: ``ok`` | ``cached`` | ``failed`` | ``timeout``
    status: str
    #: Wall-clock seconds this run actually spent (0 for cache hits).
    elapsed_s: float = 0.0
    #: Seconds of compute a cache hit avoided (the original run's cost).
    saved_s: float = 0.0
    attempts: int = 1
    error: str = None
    #: The :class:`~repro.experiments.base.ExperimentResult`, if any.
    result: object = None
    #: Per-job telemetry summary (metrics snapshot + span aggregates).
    telemetry: dict = None
    #: Chrome-trace events recorded in the worker, pid-tagged.
    trace_events: list = field(default_factory=list)
    worker_pid: int = 0


@dataclass
class RunReport:
    """Merged outcome of one ``run-all`` sweep.

    ``wall_s`` is the parent's elapsed time; ``compute_s`` sums what the
    jobs spent; ``saved_s`` sums what cache hits avoided.  The headline
    ``speedup`` is compute over wall — the number the ISSUE's ≥2×
    acceptance bar reads off this report on a multi-core machine.
    """

    outcomes: list
    wall_s: float
    jobs: int
    quick: bool
    fingerprint: str = None
    cache_root: str = None

    def __post_init__(self):
        self.by_status = {}
        for outcome in self.outcomes:
            self.by_status.setdefault(outcome.status, []).append(outcome)

    @property
    def compute_s(self) -> float:
        """Total seconds of fresh experiment compute across all jobs."""
        return sum(o.elapsed_s for o in self.outcomes)

    @property
    def saved_s(self) -> float:
        """Seconds of compute avoided by cache hits."""
        return sum(o.saved_s for o in self.outcomes)

    @property
    def speedup(self) -> float:
        """Aggregate job seconds per wall second (parallel efficiency)."""
        if self.wall_s <= 0:
            return 0.0
        return self.compute_s / self.wall_s

    @property
    def skipped_fraction(self) -> float:
        """Fraction of known compute the cache skipped this run."""
        total = self.compute_s + self.saved_s
        if total <= 0:
            return 1.0 if self.by_status.get("cached") else 0.0
        return self.saved_s / total

    @property
    def failures(self) -> list:
        """Outcomes that produced no result (failed or timed out)."""
        return [o for o in self.outcomes if o.result is None]

    def merged_metrics(self) -> dict:
        """One metrics snapshot summing every job's snapshot."""
        return merge_metric_snapshots(
            [o.telemetry["metrics"] for o in self.outcomes if o.telemetry]
        )

    def merged_spans(self) -> dict:
        """One span aggregate combining every job's span aggregate."""
        return merge_span_aggregates(
            [o.telemetry["spans"] for o in self.outcomes if o.telemetry]
        )

    def merged_trace_events(self) -> list:
        """All workers' Chrome-trace events (pid column = worker)."""
        events = []
        for outcome in self.outcomes:
            events.extend(outcome.trace_events)
        return events

    def summary(self) -> dict:
        """JSON-serializable digest of the sweep."""
        return {
            "jobs": self.jobs,
            "quick": self.quick,
            "wall_s": self.wall_s,
            "compute_s": self.compute_s,
            "saved_s": self.saved_s,
            "speedup": self.speedup,
            "cache_skipped_fraction": self.skipped_fraction,
            "counts": {status: len(v) for status, v in sorted(self.by_status.items())},
            "outcomes": [
                {
                    "name": o.name,
                    "status": o.status,
                    "elapsed_s": o.elapsed_s,
                    "saved_s": o.saved_s,
                    "attempts": o.attempts,
                    "error": o.error,
                    "worker_pid": o.worker_pid,
                }
                for o in self.outcomes
            ],
        }

    def to_text(self) -> str:
        """Render the sweep report as an aligned text table."""
        from ..experiments.base import _fmt

        header = f"{'experiment':20s}  {'status':8s}  {'tries':>5s}  {'wall s':>8s}"
        lines = [
            f"run-all report  (jobs={self.jobs}, "
            f"{'quick' if self.quick else 'full'} mode)",
            "",
            header,
            "-" * len(header),
        ]
        for o in self.outcomes:
            detail = f"  [{o.error}]" if o.error else ""
            shown = o.elapsed_s if o.status != "cached" else o.saved_s
            lines.append(
                f"{o.name:20s}  {o.status:8s}  {o.attempts:>5d}  "
                f"{_fmt(shown):>8s}{detail}"
            )
        lines.append("")
        lines.append(
            f"wall {_fmt(self.wall_s)} s for {_fmt(self.compute_s)} s of compute "
            f"-> speedup {_fmt(self.speedup)}x"
        )
        if self.by_status.get("cached"):
            lines.append(
                f"cache: {len(self.by_status['cached'])} hits, "
                f"{_fmt(self.saved_s)} s of compute skipped "
                f"({_fmt(100 * self.skipped_fraction)}% of the known total)"
            )
        if self.failures:
            names = ", ".join(o.name for o in self.failures)
            lines.append(f"FAILED: {names}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# worker side


def _alarm_available() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


def _raise_timeout(signum, frame):
    raise ExperimentTimeout()


def execute_job(
    name: str,
    quick: bool = True,
    timeout_s: float = None,
    collect_telemetry: bool = False,
) -> dict:
    """Run one experiment and return a picklable outcome payload.

    This is the unit of work shipped to pool workers *and* run inline by
    the ``jobs=1`` path — one code path, so payload normalization (and
    therefore the bytes that reach the cache and the report) cannot
    depend on the jobs setting.  Raises :class:`ExperimentTimeout` when
    the ``SIGALRM`` budget expires mid-experiment.

    Where ``SIGALRM`` cannot be armed (non-main thread, or a platform
    without it), the budget is still enforced post-hoc by wall clock:
    the job cannot be *interrupted*, but one that exceeded its budget
    raises :class:`ExperimentTimeout` on completion rather than being
    silently reported as ``ok``.
    """
    from ..experiments import runner
    from .. import telemetry

    want_timeout = timeout_s is not None and timeout_s > 0
    arm = want_timeout and _alarm_available()
    previous_handler = None
    if arm:
        previous_handler = signal.signal(signal.SIGALRM, _raise_timeout)
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
    session = telemetry.session() if collect_telemetry else None
    start = time.perf_counter()
    try:
        if session is not None:
            with session as tel:
                result = runner.run_experiment(name, quick=quick)
                summary = tel.summary()
                events = tel.tracer.to_chrome_trace()["traceEvents"]
        else:
            result = runner.run_experiment(name, quick=quick)
            summary = None
            events = []
    finally:
        if arm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)
    elapsed = time.perf_counter() - start
    if want_timeout and not arm and elapsed > timeout_s:
        raise ExperimentTimeout(
            f"{name} exceeded its {timeout_s:g}s budget "
            f"({elapsed:.2f}s, wall-clock fallback; SIGALRM unavailable)"
        )
    return {
        "name": name,
        "result": result.to_payload(),
        "telemetry": summary,
        "trace_events": events,
        "elapsed_s": elapsed,
        "pid": os.getpid(),
    }


def _worker_init(cache_root) -> None:
    """Pool-worker initializer: activate the trace cache (if caching)."""
    if cache_root is not None:
        cache_mod.activate(cache_mod.ResultCache(cache_root))


# ----------------------------------------------------------------------
# parent side


def run_experiments(
    names=None,
    jobs: int = 1,
    quick: bool = True,
    timeout_s: float = None,
    retries: int = 1,
    cache: cache_mod.ResultCache = None,
    collect_telemetry: bool = False,
    backoff: BackoffPolicy = None,
    max_pool_rebuilds: int = MAX_POOL_REBUILDS,
) -> RunReport:
    """Run a set of experiments, possibly in parallel, with caching.

    ``cache=None`` disables caching entirely (the ``--no-cache`` path).
    ``jobs <= 1`` executes inline in this process; otherwise a process
    pool of ``jobs`` workers is used.  See the module docstring for the
    retry/timeout/caching policy.  ``backoff`` overrides the retry
    schedule (and its ``max_retries`` supersedes ``retries``); the
    default is immediate resubmission, ``retries`` times.  Always
    returns a :class:`RunReport`; per-experiment errors are reported in
    it, not raised.
    """
    from ..experiments.base import ExperimentResult

    names = resolve_names(names)
    policy = (
        backoff
        if backoff is not None
        else replace(ENGINE_DEFAULT, max_retries=max(0, retries))
    )
    rng = np.random.default_rng(0)
    start = time.perf_counter()
    fingerprint = source_fingerprint(RESULT_PACKAGES) if cache is not None else None
    outcomes = {}
    pending = []
    for name in names:
        hit = None
        if cache is not None:
            hit = cache.get_result(result_cache_key(name, quick, fingerprint))
        if hit is not None:
            outcomes[name] = JobOutcome(
                name=name,
                status="cached",
                saved_s=float(hit.get("meta", {}).get("elapsed_s", 0.0)),
                result=ExperimentResult.from_payload(hit["result"]),
            )
        else:
            pending.append(name)

    if pending:
        previous_active = cache_mod.get_active()
        if cache is not None:
            cache_mod.activate(cache)
        try:
            if jobs <= 1:
                fresh = _run_inline(
                    pending, quick, timeout_s, collect_telemetry, policy, rng
                )
            else:
                fresh = _run_pool(
                    pending, jobs, quick, timeout_s, collect_telemetry,
                    policy, rng, cache, max_pool_rebuilds,
                )
        finally:
            if previous_active is not None:
                cache_mod.activate(previous_active)
            else:
                cache_mod.deactivate()
        outcomes.update(fresh)
        if cache is not None:
            for outcome in fresh.values():
                if outcome.result is not None:
                    cache.put_result(
                        result_cache_key(outcome.name, quick, fingerprint),
                        outcome.result.to_payload(),
                        meta={"elapsed_s": outcome.elapsed_s, "quick": quick},
                    )

    return RunReport(
        outcomes=[outcomes[name] for name in names],
        wall_s=time.perf_counter() - start,
        jobs=jobs,
        quick=quick,
        fingerprint=fingerprint,
        cache_root=cache.root if cache is not None else None,
    )


def _outcome_from_payload(payload: dict, attempts: int) -> JobOutcome:
    """Convert a worker's success payload into a :class:`JobOutcome`."""
    from ..experiments.base import ExperimentResult

    result = ExperimentResult.from_payload(payload["result"])
    if payload["telemetry"] is not None:
        result.telemetry = payload["telemetry"]
    return JobOutcome(
        name=payload["name"],
        status="ok",
        elapsed_s=payload["elapsed_s"],
        attempts=attempts,
        result=result,
        telemetry=payload["telemetry"],
        trace_events=payload["trace_events"],
        worker_pid=payload["pid"],
    )


def _failure_outcome(name: str, exc: BaseException, attempts: int) -> JobOutcome:
    status = "timeout" if isinstance(exc, ExperimentTimeout) else "failed"
    error = status if isinstance(exc, ExperimentTimeout) else (
        f"{type(exc).__name__}: {exc}"
    )
    return JobOutcome(name=name, status=status, attempts=attempts, error=error)


def _run_inline(names, quick, timeout_s, collect_telemetry, policy, rng) -> dict:
    """Sequential fallback sharing the worker code path (``jobs=1``)."""
    outcomes = {}
    for name in names:
        attempts = 0
        while True:
            attempts += 1
            try:
                payload = execute_job(name, quick, timeout_s, collect_telemetry)
            except ExperimentTimeout as exc:
                outcomes[name] = _failure_outcome(name, exc, attempts)
                break
            except Exception as exc:
                # Failure number `attempts` asks for retry number `attempts`.
                if policy.allows(attempts):
                    delay = policy.delay_s(attempts, rng)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                outcomes[name] = _failure_outcome(name, exc, attempts)
                break
            outcomes[name] = _outcome_from_payload(payload, attempts)
            break
    return outcomes


def _run_pool(
    names, jobs, quick, timeout_s, collect_telemetry, policy, rng, cache,
    max_pool_rebuilds,
) -> dict:
    """Fan ``names`` out over a process pool with crash retry.

    The pool is rebuilt when a worker death poisons it, but only
    ``max_pool_rebuilds`` *consecutive* times: a job whose worker
    function kills every pool it touches would otherwise rebuild
    forever.  Past the cap, every not-yet-finished job fails with a
    structured :class:`PoolRebuildLimitError` outcome.
    """
    cache_root = cache.root if cache is not None else None
    outcomes = {}
    attempts = {name: 0 for name in names}
    queue = list(names)

    def make_pool():
        return ProcessPoolExecutor(
            max_workers=min(jobs, max(1, len(names))),
            initializer=_worker_init,
            initargs=(cache_root,),
        )

    pool = make_pool()
    consecutive_rebuilds = 0
    try:
        futures = {}
        for name in queue:
            attempts[name] += 1
            futures[pool.submit(
                execute_job, name, quick, timeout_s, collect_telemetry
            )] = name
        while futures:
            done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
            resubmit = []
            pool_broken = False
            saw_live_result = False
            for future in done:
                name = futures.pop(future)
                try:
                    payload = future.result()
                except ExperimentTimeout as exc:
                    saw_live_result = True
                    outcomes[name] = _failure_outcome(name, exc, attempts[name])
                except BrokenProcessPool as exc:
                    pool_broken = True
                    if policy.allows(attempts[name]):
                        resubmit.append(name)
                    else:
                        outcomes[name] = _failure_outcome(
                            name, exc, attempts[name]
                        )
                except Exception as exc:
                    saw_live_result = True
                    if policy.allows(attempts[name]):
                        resubmit.append(name)
                    else:
                        outcomes[name] = _failure_outcome(
                            name, exc, attempts[name]
                        )
                else:
                    saw_live_result = True
                    outcomes[name] = _outcome_from_payload(
                        payload, attempts[name]
                    )
            if saw_live_result:
                # Any reply that reached the parent proves the pool was
                # alive: only back-to-back breakdowns count as a streak.
                consecutive_rebuilds = 0
            if pool_broken:
                # A dead worker poisons the whole executor: drain the
                # still-queued names and rebuild before resubmitting.
                for future, name in futures.items():
                    resubmit.append(name)
                futures = {}
                pool.shutdown(wait=False)
                consecutive_rebuilds += 1
                if consecutive_rebuilds > max_pool_rebuilds:
                    exc = PoolRebuildLimitError(
                        f"process pool broke {consecutive_rebuilds} "
                        f"consecutive times (limit {max_pool_rebuilds}); "
                        "a submitted worker function is killing every "
                        "pool it runs in"
                    )
                    logger.error("%s", exc)
                    for name in resubmit:
                        outcomes[name] = _failure_outcome(
                            name, exc, attempts[name]
                        )
                    break
                pool = make_pool()
            if resubmit:
                delay = max(
                    policy.delay_s(attempts[name], rng) for name in resubmit
                )
                if delay > 0:
                    time.sleep(delay)
            for name in resubmit:
                attempts[name] += 1
                futures[pool.submit(
                    execute_job, name, quick, timeout_s, collect_telemetry
                )] = name
    finally:
        pool.shutdown(wait=True)
    return outcomes


# ----------------------------------------------------------------------
# telemetry merging


def merge_metric_snapshots(snapshots) -> dict:
    """Combine per-worker metrics snapshots into one.

    Counters sum (they are totals); gauges keep the last job's value
    (they are last-write-wins by definition); histogram summaries sum
    counts and sums, take the min/max envelope, and average percentiles
    weighted by count — approximate, but consistent with the log-bucket
    estimates the single-process histogram already reports.
    """
    merged = {"counters": {}, "gauges": {}, "histograms": {}}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0.0) + value
        for name, value in snapshot.get("gauges", {}).items():
            merged["gauges"][name] = value
        for name, summ in snapshot.get("histograms", {}).items():
            if not summ:
                continue
            into = merged["histograms"].get(name)
            if into is None:
                merged["histograms"][name] = dict(summ)
                continue
            n_old, n_new = into["count"], summ["count"]
            total = n_old + n_new
            for quantile in ("p50", "p95", "p99"):
                into[quantile] = (
                    (into[quantile] * n_old + summ[quantile] * n_new) / total
                    if total
                    else 0.0
                )
            into["count"] = total
            into["sum"] = into["sum"] + summ["sum"]
            into["mean"] = into["sum"] / total if total else 0.0
            into["min"] = min(into["min"], summ["min"])
            into["max"] = max(into["max"], summ["max"])
    return merged


def merge_span_aggregates(aggregates) -> dict:
    """Combine per-worker span aggregates: counts and totals sum."""
    merged = {}
    for aggregate in aggregates:
        for name, entry in aggregate.items():
            into = merged.setdefault(name, {"count": 0, "total_s": 0.0})
            into["count"] += entry["count"]
            into["total_s"] += entry["total_s"]
    for entry in merged.values():
        entry["mean_s"] = entry["total_s"] / entry["count"] if entry["count"] else 0.0
    return merged
