"""Bench-history log and speedup trends over ``BENCH_nerf.json`` runs.

The perf harness (:mod:`repro.perf`) gates each change against one
committed baseline, but a single baseline cannot answer "has
``render_frame`` been eroding for five PRs?".  This module keeps an
**append-only JSONL log** of bench payloads (one line per recorded run:
timestamp, revision, and the payload's per-mode speedups) and renders a
trend table — first/latest/best speedup per bench with an ASCII
sparkline — consumed by the ops dashboard (``runner top``) and the
``tools/bench_history.py`` CLI.

The log is append-only by construction: :func:`append_entry` only ever
opens the file in ``"a"`` mode, and entries carry everything needed to
re-render trends without consulting git.
"""

from __future__ import annotations

import json
import os

#: Default history log, committed at the repo root next to the baseline.
DEFAULT_HISTORY = "BENCH_history.jsonl"

#: Glyphs used for the trend sparkline (low -> high).
_SPARK = "▁▂▃▄▅▆▇█"

#: Kernels shared by every renderer (compositing scatter, occupancy,
#: trace accounting) — grouped separately from renderer-owned benches.
_COMMON_BENCHES = frozenset(
    {"scatter_add", "occupancy_init", "trace_pair_durations"}
)


def renderer_of_bench(bench: str) -> str:
    """Renderer family a bench name belongs to.

    History entries predating renderer tags only carry bench names, so
    grouping works off the naming convention: ``tensorf_*`` benches
    belong to the ``tensorf`` renderer, the shared kernels to
    ``common``, everything else (hash encoding, the original e2e pair)
    to ``ngp``.
    """
    if bench.startswith("tensorf_"):
        return "tensorf"
    if bench in _COMMON_BENCHES:
        return "common"
    return "ngp"


def entry_from_payload(payload: dict, rev: str = None, timestamp: str = None) -> dict:
    """Build one history entry from a bench payload (``BENCH_nerf.json``).

    Keeps only the per-mode ``speedup`` ratios (the machine-portable
    quantity the regression gate also compares) plus provenance.
    """
    modes = {}
    for mode, benches in payload.get("modes", {}).items():
        modes[mode] = {
            name: float(entry["speedup"])
            for name, entry in sorted(benches.items())
            if "speedup" in entry
        }
    return {
        "timestamp": timestamp,
        "rev": rev,
        "numpy": payload.get("numpy"),
        "modes": modes,
    }


def _speedup_keys(entry: dict) -> set:
    """The ``(mode, bench)`` pairs an entry carries speedups for."""
    return {
        (mode, bench)
        for mode, benches in entry.get("modes", {}).items()
        for bench in benches
    }


def is_duplicate(history_path: str, entry: dict) -> bool:
    """Whether the log already covers this entry's revision and benches.

    True when some logged entry has the same ``rev`` and its
    ``(mode, bench)`` speedup keys are a superset of the new entry's —
    re-running the recorder on the same commit would then only repeat
    rows the trend table already has.  Entries without a revision are
    never duplicates (there is nothing safe to match on), and a same-rev
    entry carrying *new* benches (e.g. after a renderer gained kernels)
    still appends.
    """
    rev = entry.get("rev")
    if not rev:
        return False
    new_keys = _speedup_keys(entry)
    if not new_keys:
        return False
    for existing in load_history(history_path):
        if existing.get("rev") == rev and new_keys <= _speedup_keys(existing):
            return True
    return False


def append_entry(history_path: str, entry: dict, dedupe: bool = True) -> bool:
    """Append one entry to the JSONL log (append-only: mode ``"a"``).

    With ``dedupe`` (the default), an entry whose revision and benches
    the log already covers is skipped — double-recording one commit
    (a re-run CI job, a manual append after the hook) would otherwise
    repeat every sparkline point.  Returns whether the entry was
    written.
    """
    if dedupe and is_duplicate(history_path, entry):
        return False
    with open(history_path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return True


def load_history(history_path: str) -> list:
    """All logged entries, oldest first; missing file -> empty list.

    Corrupt lines (a crashed writer, a merge artifact) are skipped
    rather than poisoning the whole log.
    """
    if not os.path.exists(history_path):
        return []
    entries = []
    with open(history_path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if isinstance(entry, dict) and "modes" in entry:
                entries.append(entry)
    return entries


def trend_rows(entries, mode: str = "full") -> list:
    """Per-bench trend over the history, for one bench mode.

    Each row: ``{"bench", "runs", "first", "latest", "best",
    "delta_pct", "history"}`` where ``delta_pct`` is the latest speedup
    relative to the best ever seen (0 when at the high-water mark,
    negative when eroded) and ``history`` is the raw speedup series.
    """
    series = {}
    for entry in entries:
        for bench, speedup in entry.get("modes", {}).get(mode, {}).items():
            series.setdefault(bench, []).append(float(speedup))
    rows = []
    for bench in sorted(series):
        values = series[bench]
        best = max(values)
        rows.append(
            {
                "bench": bench,
                "renderer": renderer_of_bench(bench),
                "runs": len(values),
                "first": values[0],
                "latest": values[-1],
                "best": best,
                "delta_pct": (
                    (values[-1] - best) / best * 100.0 if best else 0.0
                ),
                "history": values,
            }
        )
    return rows


def sparkline(values, width: int = 12) -> str:
    """ASCII sparkline of a speedup series (most recent ``width`` runs)."""
    values = list(values)[-width:]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK[3] * len(values)
    scale = (len(_SPARK) - 1) / (hi - lo)
    return "".join(_SPARK[int((v - lo) * scale)] for v in values)


def format_trend_table(rows, mode: str = "full") -> str:
    """Aligned text trend table (what ``runner top`` and the CLI print).

    Rows are grouped by renderer family (``ngp`` / ``tensorf`` /
    ``common``), one subheader per group, so per-renderer erosion is
    visible at a glance.
    """
    if not rows:
        return f"bench trends ({mode}): no history recorded"
    header = (
        f"{'bench':24s} {'runs':>4s} {'first':>7s} {'latest':>7s} "
        f"{'best':>7s} {'vs best':>8s}  trend"
    )
    lines = [f"bench trends ({mode} mode)", header, "-" * len(header)]
    groups = {}
    for row in rows:
        renderer = row.get("renderer", renderer_of_bench(row["bench"]))
        groups.setdefault(renderer, []).append(row)
    for renderer in sorted(groups):
        lines.append(f"renderer: {renderer}")
        for row in groups[renderer]:
            lines.append(
                f"  {row['bench']:22s} {row['runs']:>4d} "
                f"{row['first']:>6.2f}x {row['latest']:>6.2f}x "
                f"{row['best']:>6.2f}x {row['delta_pct']:>+7.1f}%  "
                f"{sparkline(row['history'])}"
            )
    return "\n".join(lines)
