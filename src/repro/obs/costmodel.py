"""Per-scene cost models fitted from recorded telemetry.

The paper's provisioning argument — how many chips a workload needs —
starts from *measured* per-scene cost: seconds of board time per ray,
cycles per sample per pipeline module, and the samples-per-ray
distribution the occupancy grid actually produces.  FlexNeRFer's
observation (PAPERS.md) is that these vary strongly with scene sparsity,
so they must be fitted from telemetry rather than assumed.

This module turns recorded telemetry into a :class:`SceneCostModel`:

* each profiled run yields one :class:`CostObservation`, extracted from
  a service's operational stats plus the run's metrics snapshot
  (:func:`observation_from_run`) — and optionally wall-clock dispatch
  cost recovered from a recorded Chrome trace
  (:func:`wall_s_per_ray_from_trace`);
* :func:`fit_cost_model` aggregates repeated runs into per-quantity
  :class:`FittedStat` means with Student-t 95% confidence intervals;
* the model serializes to a stable on-disk JSON schema
  (:data:`SCHEMA_VERSION`, :meth:`SceneCostModel.save` /
  :meth:`SceneCostModel.load`) consumed by the capacity planner
  (:mod:`repro.obs.planner`) and the ``runner plan`` CLI.

:func:`profile_demo_scene` is the batteries-included driver: it runs the
real serving stack (:mod:`repro.serve`) over a demo scene several times
under telemetry and fits the model from what was recorded.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field

#: On-disk schema version of :meth:`SceneCostModel.to_payload`.
SCHEMA_VERSION = 1

#: Two-sided Student-t 97.5% critical values by degrees of freedom
#: (df >= 30 uses the normal approximation) — enough for the handful of
#: repeated profiling runs a cost model is fitted from.
_T_975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 15: 2.131, 20: 2.086,
    25: 2.060, 30: 1.960,
}


def _t_critical(df: int) -> float:
    """Two-sided 95% Student-t critical value for ``df`` degrees of freedom."""
    if df <= 0:
        return float("inf")
    for bound in sorted(_T_975):
        if df <= bound:
            return _T_975[bound]
    return _T_975[30]


@dataclass(frozen=True)
class FittedStat:
    """Mean and spread of one repeated-run cost measurement.

    ``ci95`` is the half-width of the 95% confidence interval of the
    mean (Student-t over ``n`` runs); a single run reports ``ci95=0.0``
    with ``n=1`` — the spread is simply unknown, and consumers can read
    ``n`` to tell "tight" from "unmeasured".
    """

    mean: float
    ci95: float
    n: int
    values: tuple = ()

    @classmethod
    def fit(cls, values) -> "FittedStat":
        """Fit mean + CI from repeated measurements of one quantity."""
        values = tuple(float(v) for v in values)
        if not values:
            raise ValueError("cannot fit a statistic from zero runs")
        n = len(values)
        mean = sum(values) / n
        if n == 1:
            return cls(mean=mean, ci95=0.0, n=1, values=values)
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        sem = math.sqrt(var / n)
        return cls(
            mean=mean, ci95=_t_critical(n - 1) * sem, n=n, values=values
        )

    def to_payload(self) -> dict:
        """JSON-safe dict form (stable keys: mean/ci95/n/values)."""
        return {
            "mean": self.mean,
            "ci95": self.ci95,
            "n": self.n,
            "values": list(self.values),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FittedStat":
        """Rebuild from a :meth:`to_payload` dict."""
        return cls(
            mean=float(payload["mean"]),
            ci95=float(payload["ci95"]),
            n=int(payload["n"]),
            values=tuple(payload.get("values", ())),
        )


@dataclass
class CostObservation:
    """Raw cost measurements of one profiled run.

    ``rays`` and ``sim_busy_s`` are the load-bearing pair (their ratio
    is the simulated seconds-per-ray the planner provisions from);
    everything else enriches the model when available and degrades to
    ``None``/empty when the telemetry source did not record it.
    """

    #: Rays dispatched to the board over the run.
    rays: float
    #: Simulated board-busy seconds over the run.
    sim_busy_s: float
    #: Wall-clock seconds spent inside ``serve.dispatch`` spans.
    wall_dispatch_s: float = None
    #: Samples kept by the ray marcher (occupancy-gated).
    samples: float = None
    #: Per-module simulated cycle totals (``sim.<module>.cycles``).
    module_cycles: dict = field(default_factory=dict)
    #: ``sampler.samples_per_ray`` histogram summary of the run.
    samples_per_ray: dict = None
    #: Measured per-request latency beyond pure board time at low load
    #: (typical completed latency minus the frame's board cost) —
    #: dominated by the batch scheduler's coalescing ``max_wait_s``.
    overhead_s: float = None

    @property
    def sim_s_per_ray(self) -> float:
        """Simulated board seconds per dispatched ray."""
        if self.rays <= 0:
            raise ValueError("observation saw no dispatched rays")
        return self.sim_busy_s / self.rays


def observation_from_run(
    stats: dict, snapshot: dict, span_aggregate: dict = None
) -> CostObservation:
    """Extract one :class:`CostObservation` from a recorded serving run.

    ``stats`` is :meth:`repro.serve.RenderService.stats`; ``snapshot`` a
    :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot` taken at
    the end of the run; ``span_aggregate`` (optional) the tracer's
    ``aggregate()`` dict supplying wall-clock dispatch time.
    """
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    batch_rays = histograms.get("serve.batch.rays", {})
    rays = float(batch_rays.get("sum", 0.0))
    module_cycles = {}
    for name, value in counters.items():
        if name.startswith("sim.") and name.endswith(".cycles"):
            module = name[len("sim."):-len(".cycles")]
            if module != "total":
                module_cycles[module] = float(value)
    wall = None
    if span_aggregate and "serve.dispatch" in span_aggregate:
        wall = float(span_aggregate["serve.dispatch"].get("total_s", 0.0))
    samples = counters.get("sampler.kept")
    return CostObservation(
        rays=rays,
        sim_busy_s=float(stats.get("hardware_busy_s", 0.0)),
        wall_dispatch_s=wall,
        samples=float(samples) if samples is not None else None,
        module_cycles=module_cycles,
        samples_per_ray=histograms.get("sampler.samples_per_ray") or None,
    )


def wall_s_per_ray_from_trace(trace_events) -> list:
    """Per-dispatch wall seconds-per-ray samples from Chrome-trace events.

    Accepts the ``traceEvents`` list of a recorded Chrome trace (the
    format :meth:`repro.telemetry.Tracer.write_chrome_trace` emits) and
    returns one wall s/ray sample per ``serve.dispatch`` event that
    carries a positive ``rays`` arg — the second telemetry source a cost
    model can be fitted from when only a trace file was kept.
    """
    samples = []
    for event in trace_events:
        if event.get("name") != "serve.dispatch" or event.get("ph") != "X":
            continue
        rays = event.get("args", {}).get("rays", 0)
        dur_us = event.get("dur", 0.0)
        if rays and rays > 0 and dur_us > 0:
            samples.append((dur_us / 1e6) / float(rays))
    return samples


def _merge_hist_summaries(summaries) -> dict:
    """Count-weighted merge of ``samples_per_ray`` histogram summaries."""
    merged = None
    for summ in summaries:
        if not summ:
            continue
        if merged is None:
            merged = dict(summ)
            continue
        n_old, n_new = merged["count"], summ["count"]
        total = n_old + n_new
        for quantile in ("p50", "p95", "p99"):
            merged[quantile] = (
                (merged[quantile] * n_old + summ[quantile] * n_new) / total
                if total else 0.0
            )
        merged["count"] = total
        merged["sum"] = merged["sum"] + summ["sum"]
        merged["mean"] = merged["sum"] / total if total else 0.0
        merged["min"] = min(merged["min"], summ["min"])
        merged["max"] = max(merged["max"], summ["max"])
    return merged


@dataclass
class SceneCostModel:
    """Fitted per-scene, per-module cost model (on-disk schema 1).

    All costs are in the units the planner consumes directly:
    ``sim_s_per_ray`` in simulated board seconds per dispatched ray
    (*including* the ``hw_scale`` billing factor recorded in ``meta``),
    ``cycles_per_sample`` in simulated cycles per kept sample per
    pipeline module, ``samples_per_ray`` as a histogram summary of the
    occupancy-gated per-ray sample counts.
    """

    scene: str
    sim_s_per_ray: FittedStat
    wall_s_per_ray: FittedStat = None
    cycles_per_sample: dict = field(default_factory=dict)
    samples_per_ray: dict = None
    #: Renderer family (``repro.pipeline`` name) the scene was profiled
    #: under.  Costs are renderer-specific — a model fitted for one
    #: renderer must not price another — so the planner and dashboards
    #: carry the tag through.  Defaults to ``"ngp"`` (also what schema-1
    #: payloads written before the tag existed load as).
    renderer: str = "ngp"
    #: Fixed per-request latency beyond pure board time, measured at low
    #: load (batching max-wait pooling, comm round trips).  The planner
    #: subtracts it from the SLO budget before applying the queueing tail
    #: bound — without it, a coalescing wait comparable to the budget
    #: silently sinks every plan.
    overhead_s: FittedStat = None
    #: Profiling provenance: hw_scale, probe resolution, rays per frame,
    #: run count — whatever the fitter knew.
    meta: dict = field(default_factory=dict)

    @property
    def rays_per_frame(self) -> int:
        """Rays in one client frame at the profiled probe resolution."""
        return int(self.meta.get("rays_per_frame", 0))

    def sim_s_per_frame(self, rays_per_frame: int = None) -> float:
        """Expected simulated board seconds for one ``rays_per_frame`` frame."""
        rays = self.rays_per_frame if rays_per_frame is None else rays_per_frame
        if rays <= 0:
            raise ValueError("rays_per_frame unknown; pass it explicitly")
        return self.sim_s_per_ray.mean * rays

    def to_payload(self) -> dict:
        """Stable JSON-safe dict (``schema`` key = :data:`SCHEMA_VERSION`)."""
        return {
            "schema": SCHEMA_VERSION,
            "scene": self.scene,
            "renderer": self.renderer,
            "sim_s_per_ray": self.sim_s_per_ray.to_payload(),
            "wall_s_per_ray": (
                self.wall_s_per_ray.to_payload()
                if self.wall_s_per_ray is not None else None
            ),
            "cycles_per_sample": {
                module: stat.to_payload()
                for module, stat in sorted(self.cycles_per_sample.items())
            },
            "samples_per_ray": self.samples_per_ray,
            "overhead_s": (
                self.overhead_s.to_payload()
                if self.overhead_s is not None else None
            ),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SceneCostModel":
        """Rebuild a model from its :meth:`to_payload` dict.

        Unknown schema versions are rejected loudly — a planner running
        on a mis-parsed cost model would emit confidently wrong capacity
        numbers.
        """
        schema = payload.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported cost-model schema {schema!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        wall = payload.get("wall_s_per_ray")
        overhead = payload.get("overhead_s")
        return cls(
            scene=payload["scene"],
            renderer=payload.get("renderer", "ngp"),
            sim_s_per_ray=FittedStat.from_payload(payload["sim_s_per_ray"]),
            wall_s_per_ray=(
                FittedStat.from_payload(wall) if wall is not None else None
            ),
            cycles_per_sample={
                module: FittedStat.from_payload(stat)
                for module, stat in payload.get("cycles_per_sample", {}).items()
            },
            samples_per_ray=payload.get("samples_per_ray"),
            overhead_s=(
                FittedStat.from_payload(overhead)
                if overhead is not None else None
            ),
            meta=dict(payload.get("meta", {})),
        )

    def save(self, path: str) -> None:
        """Write the model as JSON to ``path`` (atomic rename)."""
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(self.to_payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "SceneCostModel":
        """Load a model previously written by :meth:`save`."""
        with open(path) as fh:
            return cls.from_payload(json.load(fh))


def fit_cost_model(
    scene: str,
    observations,
    wall_ray_samples=None,
    meta: dict = None,
    renderer: str = "ngp",
) -> SceneCostModel:
    """Fit a :class:`SceneCostModel` from repeated-run observations.

    ``observations`` is a non-empty sequence of :class:`CostObservation`;
    ``wall_ray_samples`` optionally adds trace-derived wall s/ray samples
    (:func:`wall_s_per_ray_from_trace`) to the snapshot-derived ones.
    ``renderer`` tags the fitted model with the renderer family the runs
    were served by (costs do not transfer across renderers).
    """
    observations = list(observations)
    if not observations:
        raise ValueError("need at least one observation to fit a cost model")
    sim = FittedStat.fit([o.sim_s_per_ray for o in observations])
    wall_values = [
        o.wall_dispatch_s / o.rays
        for o in observations
        if o.wall_dispatch_s is not None and o.rays > 0
    ]
    if wall_ray_samples:
        wall_values.extend(wall_ray_samples)
    wall = FittedStat.fit(wall_values) if wall_values else None
    modules = set()
    for o in observations:
        modules.update(o.module_cycles)
    cycles = {}
    for module in sorted(modules):
        per_sample = [
            o.module_cycles[module] / o.samples
            for o in observations
            if module in o.module_cycles and o.samples
        ]
        if per_sample:
            cycles[module] = FittedStat.fit(per_sample)
    spr = _merge_hist_summaries(o.samples_per_ray for o in observations)
    overhead_values = [
        o.overhead_s for o in observations if o.overhead_s is not None
    ]
    overhead = FittedStat.fit(overhead_values) if overhead_values else None
    meta = dict(meta or {})
    meta.setdefault("n_runs", len(observations))
    return SceneCostModel(
        scene=scene,
        renderer=renderer,
        sim_s_per_ray=sim,
        wall_s_per_ray=wall,
        cycles_per_sample=cycles,
        samples_per_ray=spr,
        overhead_s=overhead,
        meta=meta,
    )


def profile_demo_scene(
    scene: str,
    runs: int = 3,
    probe: int = 16,
    max_samples: int = 32,
    hw_scale: float = 400.0,
    frames: int = 8,
    seed: int = 0,
    batch_policy=None,
) -> SceneCostModel:
    """Profile one demo scene through the real serving stack and fit.

    Runs a one-frame closed loop to estimate the uncongested per-frame
    latency, then ``runs`` low-rate open-loop runs (distinct arrival
    seeds, ~30% utilization so queueing does not pollute the cost) with
    telemetry recording, and fits the cost model from what each run's
    metrics snapshot, span aggregate, and service stats recorded.

    ``batch_policy`` (a :class:`~repro.serve.scheduler.BatchPolicy`, or
    ``None`` for the service default) must match the deployment being
    planned for: the fitted ``overhead_s`` mostly *is* the policy's
    coalescing ``max_wait_s``, and a model profiled under one policy
    mis-prices latency under another.
    """
    import numpy as np

    from .. import telemetry
    from ..serve import (
        PRIORITY_STANDARD,
        RenderService,
        ServiceConfig,
        build_demo_registry,
        demo_camera,
        run_closed_loop,
        run_open_loop,
    )

    if runs < 1:
        raise ValueError("runs must be positive")
    camera = demo_camera(probe, probe)

    def _fresh_service():
        registry = build_demo_registry(
            scenes=[scene], max_samples_per_ray=max_samples, seed=seed
        )
        config = (
            ServiceConfig(batch=batch_policy)
            if batch_policy is not None else None
        )
        return RenderService(registry, config=config)

    # Pilot: one closed-loop frame prices the uncongested frame latency,
    # which sets the probing rate for the measurement runs.
    pilot = _fresh_service()
    renderer = next(
        s["renderer"] for s in pilot.registry.scenes() if s["name"] == scene
    )
    pilot_report = run_closed_loop(
        pilot, scene, n_frames=1, camera=camera, hw_scale=hw_scale
    )
    frame_s = pilot_report.duration_s / max(pilot_report.completed, 1)
    rate_hz = 0.3 / frame_s if frame_s > 0 else 1.0

    observations = []
    for run in range(runs):
        service = _fresh_service()
        with telemetry.session() as tel:
            run_open_loop(
                service,
                [scene],
                rate_hz=rate_hz,
                duration_s=frames / rate_hz,
                camera=camera,
                rng=np.random.default_rng(seed + 7919 * (run + 1)),
                priority_mix=((PRIORITY_STANDARD, 1.0),),
                hw_scale=hw_scale,
            )
            snapshot = tel.metrics.snapshot()
            spans = tel.tracer.aggregate()
        obs = observation_from_run(service.stats(), snapshot, spans)
        if obs.rays > 0:
            # Typical uncongested latency minus pure board time = fixed
            # per-request overhead (coalescing wait, comm round trips).
            p50 = service.slo.class_stats(PRIORITY_STANDARD)["p50_s"]
            if not math.isnan(p50):
                obs.overhead_s = max(
                    0.0, p50 - obs.sim_s_per_ray * probe * probe
                )
            observations.append(obs)
    if not observations:
        raise RuntimeError(
            f"profiling {scene!r} dispatched no rays; raise frames or rate"
        )
    return fit_cost_model(
        scene,
        observations,
        renderer=renderer,
        meta={
            "hw_scale": hw_scale,
            "probe": probe,
            "rays_per_frame": probe * probe,
            "max_samples_per_ray": max_samples,
            "profile_rate_hz": rate_hz,
            "frames_per_run": frames,
            "seed": seed,
            "batch_max_wait_s": pilot.config.batch.max_wait_s,
        },
    )
