"""Observability and ops plane: cost models, capacity planning, dashboard.

``repro.obs`` turns the telemetry the rest of the stack records
(:mod:`repro.telemetry` spans and metrics, :mod:`repro.serve` SLO
attainment, the committed ``BENCH_*.json`` perf baselines) into
operational answers — the layer the paper's provisioning argument lives
in, and the plane a distributed render fleet will be operated through:

* :mod:`~repro.obs.costmodel` — fit per-scene, per-module cost models
  (s/ray, cycles/sample, samples/ray distributions) from recorded
  telemetry snapshots and Chrome traces, with Student-t confidence
  intervals over repeated runs and a stable on-disk JSON schema;
* :mod:`~repro.obs.planner` — answer "how many boards / what max
  admission rate" for a target load and latency SLO from a fitted cost
  model (M/M/1 sojourn tail bound), size a churn-tolerant worker fleet
  on top of it (:func:`~repro.obs.planner.plan_fleet`), and validate
  the answer empirically by driving the Poisson load generator at the
  planned rate;
* :mod:`~repro.obs.dashboard` — a stdlib-only terminal dashboard
  (``runner top``) over the periodic metrics snapshots a
  :class:`~repro.telemetry.metrics.SnapshotPublisher` retains:
  per-module throughput, queue depths, shed/degrade/eviction rates,
  SLO attainment, bench trends;
* :mod:`~repro.obs.bench_trends` — append-only bench-run log and trend
  tables over ``BENCH_nerf.json`` history (CLI:
  ``tools/bench_history.py``).

The whole package is read-only with respect to the pipeline: it
consumes telemetry, never mutates model or simulator state, so enabling
it cannot change a rendered pixel.
"""

from .bench_trends import (
    append_entry,
    entry_from_payload,
    format_trend_table,
    load_history,
    sparkline,
    trend_rows,
)
from .costmodel import (
    CostObservation,
    FittedStat,
    SCHEMA_VERSION,
    SceneCostModel,
    fit_cost_model,
    observation_from_run,
    profile_demo_scene,
    wall_s_per_ray_from_trace,
)
from .dashboard import render_dashboard, run_demo_ops
from .planner import (
    CapacityPlan,
    FleetPlan,
    PlanTarget,
    format_fleet_plan,
    format_plan,
    plan_capacity,
    plan_fleet,
    validate_plan,
)

__all__ = [
    "CapacityPlan",
    "CostObservation",
    "FittedStat",
    "FleetPlan",
    "PlanTarget",
    "SCHEMA_VERSION",
    "SceneCostModel",
    "append_entry",
    "entry_from_payload",
    "fit_cost_model",
    "format_fleet_plan",
    "format_plan",
    "format_trend_table",
    "load_history",
    "observation_from_run",
    "plan_capacity",
    "plan_fleet",
    "profile_demo_scene",
    "render_dashboard",
    "run_demo_ops",
    "sparkline",
    "trend_rows",
    "validate_plan",
    "wall_s_per_ray_from_trace",
]
