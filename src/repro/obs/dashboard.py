"""Live ops dashboard: terminal rendering of the telemetry plane.

``runner top`` is the operator's view of a running (simulated) service:
per-module throughput, queue depths, shed/degrade/eviction rates, SLO
attainment, and bench trends, rendered as plain text (stdlib only — no
curses, no ANSI requirements) so the same frame works interactively, in
CI snapshot mode, and pasted into an incident report.

Rates are derived by differencing the timestamped metrics snapshots a
:class:`~repro.telemetry.metrics.SnapshotPublisher` retains: counters
are monotone totals, so ``(last - first) / dt`` over the retained window
is the average rate; gauges and histogram summaries are read from the
latest snapshot.  The renderer is a pure function of its inputs —
feeding it recorded snapshots replays an incident exactly.
"""

from __future__ import annotations

from . import bench_trends as bench_trends_mod

#: Counter names rendered in the request-outcome rate line, with labels.
_REQUEST_COUNTERS = (
    ("completed", "serve.requests.completed"),
    ("shed", "serve.requests.shed_overload"),
    ("degraded", "serve.requests.degraded"),
    ("evicted", "serve.registry.evictions"),
)


def _counter(snapshot: dict, name: str) -> float:
    return float(snapshot.get("counters", {}).get(name, 0.0))


def _gauge(snapshot: dict, name: str, default: float = 0.0) -> float:
    return float(snapshot.get("gauges", {}).get(name, default))


def _fmt_si(value: float) -> str:
    """Compact SI-ish magnitude formatting for throughput numbers."""
    for cut, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= cut:
            return f"{value / cut:.2f}{suffix}"
    return f"{value:.2f}"


def window(history) -> tuple:
    """(first, last, dt) of a snapshot history; dt=0 for a single frame."""
    if not history:
        raise ValueError("dashboard needs at least one published snapshot")
    first, last = history[0], history[-1]
    dt = float(last.get("t_s", 0.0)) - float(first.get("t_s", 0.0))
    return first, last, max(dt, 0.0)


def _rates_section(first, last, dt) -> list:
    lines = ["requests"]
    parts = []
    for label, name in _REQUEST_COUNTERS:
        total = _counter(last, name)
        if dt > 0:
            rate = (total - _counter(first, name)) / dt
            parts.append(f"{label} {rate:.1f}/s")
        else:
            parts.append(f"{label} {total:.0f}")
    rejected = sum(
        value for name, value in last.get("counters", {}).items()
        if name.startswith("serve.requests.rejected")
    )
    parts.append(f"rejected {rejected:.0f} total")
    lines.append("  " + "   ".join(parts))
    return lines


def _throughput_section(first, last, dt) -> list:
    lines = ["throughput (per-module, simulated)"]
    modules = []
    for name, total in sorted(last.get("counters", {}).items()):
        if name.startswith("sim.") and name.endswith(".cycles"):
            module = name[len("sim."):-len(".cycles")]
            if module == "total":
                continue
            delta = total - _counter(first, name)
            modules.append((module, total, delta))
    grand = sum(delta for _, _, delta in modules) or sum(
        total for _, total, _ in modules
    )
    if not modules:
        lines.append("  (no simulated cycles recorded yet)")
        return lines
    for module, total, delta in modules:
        rate = f"{_fmt_si(delta / dt):>10s} cyc/s" if dt > 0 else f"{'-':>14s}"
        basis = delta if dt > 0 else total
        share = basis / grand * 100.0 if grand else 0.0
        lines.append(
            f"  {module:16s} {_fmt_si(total):>10s} cycles  {rate}  "
            f"{share:5.1f}%"
        )
    batch = last.get("histograms", {}).get("serve.batch.rays")
    if batch:
        rays = batch.get("sum", 0.0) - (
            first.get("histograms", {}).get("serve.batch.rays", {}).get("sum", 0.0)
            if dt > 0 else 0.0
        )
        suffix = "/s" if dt > 0 else " total"
        value = rays / dt if dt > 0 else batch.get("sum", 0.0)
        lines.append(
            f"  rays dispatched: {_fmt_si(value)}{suffix}   "
            f"batches: {batch.get('count', 0)}  "
            f"(p50 {batch.get('p50', 0.0):.0f} rays)"
        )
    return lines


def _queues_section(last) -> list:
    util = _gauge(last, "serve.utilization")
    return [
        "queues",
        (
            f"  queued rays: {_gauge(last, 'serve.queue.rays'):.0f}   "
            f"queued slices: {_gauge(last, 'serve.queue.slices'):.0f}   "
            f"scenes deployed: {_gauge(last, 'serve.registry.scenes'):.0f}   "
            f"board util: {util:.0%}"
        ),
    ]


def _slo_section(slo: dict) -> list:
    lines = ["slo attainment"]
    header = (
        f"  {'class':<12} {'done':>6} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'target':>8} {'attain':>7} {'slo':>5}"
    )
    lines.append(header)
    for stats in slo.get("classes", []):
        def _ms(key):
            value = stats.get(key)
            return f"{value * 1e3:8.2f}" if value is not None else f"{'-':>8}"

        attained = stats.get("attained")
        att_str = f"{attained:7.3f}" if attained is not None else f"{'-':>7}"
        lines.append(
            f"  {stats.get('name', '?'):<12} {stats.get('completed', 0):>6} "
            f"{_ms('p50_s')} {_ms('p99_s')} {_ms('target_s')} "
            f"{att_str} "
            f"{'met' if stats.get('slo_met') else 'MISS':>5}"
        )
    statuses = slo.get("statuses", {})
    if statuses:
        lines.append(
            "  terminal: "
            + "  ".join(f"{k}={v}" for k, v in sorted(statuses.items()))
        )
    return lines


def _fleet_section(fleet: dict) -> list:
    """Fleet panel from a :meth:`~repro.fleet.FleetController.stats` dict."""
    workers = fleet.get("workers", [])
    dead = [w for w in workers if w.get("health") == "dead"]
    lines = [
        "fleet",
        (
            f"  workers: {len(workers)} ({len(dead)} dead)   "
            f"rebalances: {fleet.get('rebalances', 0)}   "
            f"util: {fleet.get('utilization', 0.0):.0%}   "
            f"in-flight: {fleet.get('in_flight', 0)}   "
            f"unaccounted: {fleet.get('unaccounted', 0)}"
        ),
        (
            f"  rpc: timeouts {fleet.get('rpc_timeouts', 0)}   "
            f"retries {fleet.get('retries', 0)}   "
            f"hedges {fleet.get('hedges', 0)}   "
            f"dropped {fleet.get('dropped_replies', 0)}   "
            f"late {fleet.get('late_replies', 0)}"
        ),
    ]
    for worker in workers:
        lines.append(
            f"    worker {worker.get('index')}: "
            f"{worker.get('health', '?'):<8} "
            f"experts={worker.get('experts')} "
            f"rpcs={worker.get('completed_rpcs', 0)} "
            f"busy={worker.get('busy_s', 0.0):.3f}s"
        )
    return lines


def _online_section(online: dict) -> list:
    """Online-reconstruction panel from a
    :meth:`~repro.online.SessionResult.ops_panel` dict."""
    trend = online.get("psnr_trend") or []
    target = online.get("target_psnr_db")
    time_to_target = online.get("time_to_target_s")
    last = online.get("last_psnr_db")
    lines = [
        "online reconstruction",
        (
            f"  scene: {online.get('scene', '?')}   "
            f"frames ingested: {online.get('frames_ingested', 0)}   "
            f"generations deployed: {online.get('generations', 0)}   "
            f"rollbacks: {online.get('rollbacks', 0)}"
        ),
        (
            f"  train steps: {online.get('steps_total', 0)} "
            f"({online.get('steps_per_s', 0.0):.0f} steps/s simulated)"
        ),
    ]
    psnr = (
        f"  psnr: {last:.2f} dB" if last is not None else "  psnr: (no eval yet)"
    )
    if target is not None:
        psnr += f" (target {target:.1f} dB"
        psnr += (
            f", reached at t={time_to_target:.2f}s)"
            if time_to_target is not None
            else ", not reached)"
        )
    if trend:
        psnr += f"   trend {bench_trends_mod.sparkline(trend)}"
    lines.append(psnr)
    return lines


def render_dashboard(
    history,
    slo: dict = None,
    bench_rows: list = None,
    bench_mode: str = "full",
    fleet: dict = None,
    online: dict = None,
    title: str = "fusion3d ops",
) -> str:
    """Render one dashboard frame from published telemetry.

    ``history`` is a :meth:`~repro.telemetry.metrics.SnapshotPublisher.history`
    list (>= 1 snapshot; rates need >= 2), ``slo`` an
    :meth:`~repro.serve.slo.SLOTracker.to_payload` dict, ``bench_rows``
    the output of :func:`repro.obs.bench_trends.trend_rows`, ``fleet``
    a :meth:`~repro.fleet.FleetController.stats` dict (adds the
    per-worker fleet panel), ``online`` a
    :meth:`~repro.online.SessionResult.ops_panel` dict (adds the
    ingest/training/deploy panel of a live reconstruction session).
    """
    first, last, dt = window(history)
    head = (
        f"{title} dashboard   t={last.get('t_s', 0.0):.2f}s   "
        f"window={dt:.2f}s over {len(history)} snapshot(s)"
    )
    lines = [head, "=" * max(len(head), 64)]
    lines.extend(_throughput_section(first, last, dt))
    lines.extend(_queues_section(last))
    lines.extend(_rates_section(first, last, dt))
    if fleet is not None:
        lines.extend(_fleet_section(fleet))
    if online is not None:
        lines.extend(_online_section(online))
    if slo is not None:
        lines.extend(_slo_section(slo))
    if bench_rows is not None:
        lines.append(
            bench_trends_mod.format_trend_table(bench_rows, mode=bench_mode)
        )
    return "\n".join(lines)


def run_demo_ops(
    rate_hz: float = 300.0,
    duration_s: float = 2.0,
    n_scenes: int = 2,
    probe: int = 16,
    hw_scale: float = 400.0,
    interval_s: float = 0.05,
    seed: int = 0,
):
    """Drive a short demo serving burst with the snapshot publisher on.

    Returns ``(history, slo_payload, stats)`` — everything
    :func:`render_dashboard` needs for a live frame.  This is the data
    source behind ``runner top``: a real
    :class:`~repro.serve.service.RenderService` run under a recording
    telemetry session with a publisher sampling on the service clock.
    """
    import numpy as np

    from .. import telemetry
    from ..serve import (
        RenderService,
        build_demo_registry,
        demo_camera,
        run_open_loop,
    )

    with telemetry.session() as tel:
        publisher = tel.attach_publisher(interval_s=interval_s)
        # Deploy inside the session so registry gauges (scenes, bytes)
        # are recorded into the published snapshots.
        registry = build_demo_registry(n_scenes=n_scenes)
        service = RenderService(registry)
        run_open_loop(
            service,
            [s["name"] for s in registry.scenes()],
            rate_hz=rate_hz,
            duration_s=duration_s,
            camera=demo_camera(probe, probe),
            rng=np.random.default_rng(seed),
            hw_scale=hw_scale,
        )
        publisher.publish(service.now_s)  # final frame: totals at drain
        history = publisher.history()
    return history, service.slo.to_payload(), service.stats()
