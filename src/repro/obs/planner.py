"""Capacity planner: from fitted cost models to provisioning answers.

Turns a :class:`~repro.obs.costmodel.SceneCostModel` plus an operator
target (offered frame rate, per-frame latency SLO, required attainment)
into "how many boards, and how hard may each be driven" — the
reproduction's version of the paper's chips-per-workload provisioning
argument, grounded in measured telemetry instead of datasheet numbers.

The queueing model is deliberately the simplest one that is honest
about tails: each board is a serial server (one dispatch at a time — a
real property of :class:`~repro.serve.service.RenderService`), arrivals
are Poisson (the open-loop load generator's model), so per-board
behavior is M/M/1-like and the sojourn-time tail bound

    P(latency > T)  =  exp(-(mu - lambda) * T)

inverts into the maximum admission rate that still meets attainment
``a`` at budget ``T``::

    lambda_max  =  mu - ln(1 / (1 - a)) / T

capped by a utilization ceiling.  ``T`` is the SLO budget *after*
subtracting the cost model's fitted fixed per-request overhead
(``overhead_s`` — mostly the batch scheduler's coalescing
``max_wait_s``).  With immediate dispatch (``max_wait_s=0``) the real
service has near-deterministic per-frame cost, so its tails are
*lighter* than M/M/1 and the plan errs conservative.  With a non-zero
coalescing wait the model prices the wait itself but **not** the
rate-dependent growth of a frame's own batch (waiting behind batchmates
pooled during the wait) — such plans can be optimistic under load,
which is exactly why :func:`validate_plan` (and the ``capacity_study``
experiment) exists: it drives the Poisson load generator at the planned
rate and measures attainment empirically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .costmodel import SceneCostModel


@dataclass(frozen=True)
class PlanTarget:
    """Operator-facing load + SLO target the planner answers for."""

    #: Offered frame rate across the whole fleet (frames/s).
    rate_hz: float
    #: Rays per client frame (probe resolution squared).
    rays_per_frame: int
    #: Per-frame latency budget in (simulated) seconds.
    slo_s: float
    #: Fraction of frames that must land within ``slo_s``.
    attainment: float = 0.95
    #: Per-board utilization ceiling the plan must respect.
    max_utilization: float = 0.9

    def __post_init__(self):
        if self.rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if self.rays_per_frame < 1:
            raise ValueError("rays_per_frame must be positive")
        if self.slo_s <= 0:
            raise ValueError("slo_s must be positive")
        if not 0.0 < self.attainment < 1.0:
            raise ValueError("attainment must be in (0, 1)")
        if not 0.0 < self.max_utilization <= 1.0:
            raise ValueError("max_utilization must be in (0, 1]")


@dataclass
class CapacityPlan:
    """The planner's answer for one scene + target."""

    scene: str
    target: PlanTarget
    #: Expected simulated board seconds per frame (from the cost model).
    s_per_frame: float
    #: Per-board service rate in frames/s (1 / s_per_frame).
    service_rate_hz: float
    #: Max admission rate per board meeting the SLO tail bound.
    max_admission_hz: float
    #: Boards needed to carry ``target.rate_hz`` (0 when infeasible).
    boards: int
    #: Predicted per-board utilization when the target load is spread
    #: evenly over ``boards``.
    utilization: float
    feasible: bool
    #: Fixed per-request overhead (from the cost model) subtracted from
    #: the SLO budget before the queueing tail bound was applied.
    overhead_s: float = 0.0
    #: Human-readable reasons when infeasible.
    notes: list = field(default_factory=list)

    def to_payload(self) -> dict:
        """JSON-safe dict form for reports and the dashboard."""
        return {
            "scene": self.scene,
            "rate_hz": self.target.rate_hz,
            "rays_per_frame": self.target.rays_per_frame,
            "slo_ms": self.target.slo_s * 1e3,
            "attainment": self.target.attainment,
            "s_per_frame": self.s_per_frame,
            "service_rate_hz": self.service_rate_hz,
            "max_admission_hz": self.max_admission_hz,
            "boards": self.boards,
            "utilization": self.utilization,
            "feasible": self.feasible,
            "overhead_s": self.overhead_s,
            "notes": list(self.notes),
        }


def plan_capacity(model: SceneCostModel, target: PlanTarget) -> CapacityPlan:
    """Answer "how many boards / what max admission rate" for a target.

    Uses the M/M/1 sojourn tail bound (see module docstring); infeasible
    targets (a single frame cannot fit its own budget, or the tail term
    eats the whole service rate) come back with ``feasible=False`` and
    explanatory notes rather than raising — the CLI renders them.
    """
    s_frame = model.sim_s_per_frame(target.rays_per_frame)
    mu = 1.0 / s_frame
    notes = []
    # Fixed per-request overhead (batch coalescing wait, comm round
    # trips) spends SLO budget before any queueing happens — the tail
    # bound applies to what is left.
    overhead = model.overhead_s.mean if model.overhead_s is not None else 0.0
    budget = target.slo_s - overhead
    if s_frame + overhead > target.slo_s:
        notes.append(
            f"one frame costs {s_frame * 1e3:.2f} ms board time + "
            f"{overhead * 1e3:.2f} ms fixed overhead > "
            f"SLO budget {target.slo_s * 1e3:.2f} ms"
        )
    # Tail bound: keep P(latency > slo) below 1 - attainment.
    tail_hz = (
        math.log(1.0 / (1.0 - target.attainment)) / budget
        if budget > 0 else float("inf")
    )
    lam_tail = mu - tail_hz
    lam_util = mu * target.max_utilization
    lam_max = min(lam_tail, lam_util)
    if lam_max <= 0 and not notes:
        notes.append(
            f"SLO tail term ({tail_hz:.1f} Hz) exceeds the board service "
            f"rate ({mu:.1f} Hz)"
        )
    feasible = not notes
    if feasible:
        boards = max(1, math.ceil(target.rate_hz / lam_max))
        utilization = target.rate_hz / boards * s_frame
    else:
        boards = 0
        utilization = float("inf")
        lam_max = max(lam_max, 0.0)
    return CapacityPlan(
        scene=model.scene,
        target=target,
        s_per_frame=s_frame,
        service_rate_hz=mu,
        max_admission_hz=lam_max,
        boards=boards,
        utilization=utilization,
        feasible=feasible,
        overhead_s=overhead,
        notes=notes,
    )


def format_plan(plan: CapacityPlan, model: SceneCostModel = None) -> str:
    """Render a capacity plan as the greppable text report.

    The final line is ``plan: FEASIBLE`` / ``plan: INFEASIBLE`` — the
    token CI smoke jobs grep.
    """
    t = plan.target
    lines = [f"capacity plan: scene={plan.scene}", "=" * 60]
    if model is not None:
        stat = model.sim_s_per_ray
        lines.append(
            f"cost model: {stat.mean * 1e6:.3f} us/ray "
            f"(+/- {stat.ci95 * 1e6:.3f} us 95% CI, {stat.n} runs)"
        )
        if model.samples_per_ray:
            spr = model.samples_per_ray
            lines.append(
                f"samples/ray: mean {spr.get('mean', 0.0):.1f}  "
                f"p50 {spr.get('p50', 0.0):.1f}  p99 {spr.get('p99', 0.0):.1f}"
            )
    lines.append(
        f"target: {t.rate_hz:.0f} frames/s of {t.rays_per_frame} rays, "
        f"p-tail {t.slo_s * 1e3:.1f} ms @ {t.attainment:.0%} attainment"
    )
    lines.append(
        f"per-board: service rate {plan.service_rate_hz:.1f} Hz "
        f"({plan.s_per_frame * 1e3:.3f} ms/frame + "
        f"{plan.overhead_s * 1e3:.3f} ms fixed overhead), "
        f"max admission {plan.max_admission_hz:.1f} Hz"
    )
    if plan.feasible:
        lines.append(
            f"fleet: {plan.boards} board(s) at "
            f"{plan.utilization:.0%} utilization each"
        )
        lines.append("plan: FEASIBLE")
    else:
        for note in plan.notes:
            lines.append(f"infeasible: {note}")
        lines.append("plan: INFEASIBLE")
    return "\n".join(lines)


@dataclass
class FleetPlan:
    """Worker-count answer for a replicated render fleet.

    Wraps the single-board :class:`CapacityPlan` with the fleet-level
    sizing question: how many *workers* (one board each) so the target
    still holds after losing ``spare_workers`` of them.  Spares are
    live, load-carrying workers — the fleet runs below the per-board
    admission ceiling until a death consumes the headroom — which is
    what lets :class:`~repro.fleet.FleetController`'s rebalance recover
    attainment instead of merely surviving.
    """

    base: CapacityPlan
    #: Scene copies the fleet keeps (consistent-hash preference length).
    replication: int
    #: Worker deaths the fleet must absorb at full SLO.
    spare_workers: int

    @property
    def workers(self) -> int:
        """Total workers to provision (0 when the target is infeasible)."""
        return (
            self.base.boards + self.spare_workers if self.base.feasible else 0
        )

    @property
    def feasible(self) -> bool:
        """Whether the underlying single-board plan is feasible."""
        return self.base.feasible

    @property
    def utilization(self) -> float:
        """Per-worker utilization with the full fleet healthy."""
        if not self.base.feasible:
            return float("inf")
        return self.base.target.rate_hz / self.workers * self.base.s_per_frame

    def to_payload(self) -> dict:
        """JSON-safe dict form for reports and the dashboard."""
        return {
            "plan": self.base.to_payload(),
            "replication": self.replication,
            "spare_workers": self.spare_workers,
            "workers": self.workers,
            "utilization": self.utilization,
            "feasible": self.feasible,
        }


def plan_fleet(
    model: SceneCostModel,
    target: PlanTarget,
    replication: int = 2,
    spare_workers: int = 1,
) -> FleetPlan:
    """Answer "how many workers" for a churn-tolerant fleet.

    ``spare_workers`` deaths must leave enough survivors to carry the
    target at the single-board plan's admission ceiling; ``replication``
    must not exceed the fleet size (every replica needs a distinct
    worker), so tiny fleets are grown to hold it.
    """
    if replication < 1:
        raise ValueError("replication must be positive")
    if spare_workers < 0:
        raise ValueError("spare_workers must be non-negative")
    base = plan_capacity(model, target)
    if base.feasible and base.boards + spare_workers < replication:
        base.boards = replication - spare_workers
        base.utilization = target.rate_hz / base.boards * base.s_per_frame
        base.notes.append(
            f"boards grown to seat replication={replication}"
        )
    return FleetPlan(
        base=base, replication=replication, spare_workers=spare_workers
    )


def format_fleet_plan(plan: FleetPlan, model: SceneCostModel = None) -> str:
    """Render a fleet plan: the capacity report plus the worker answer.

    Appends the greppable ``fleet plan:`` line CI smoke jobs look for.
    """
    lines = [format_plan(plan.base, model)]
    if plan.feasible:
        lines.append(
            f"fleet plan: {plan.workers} worker(s) "
            f"({plan.base.boards} serving + {plan.spare_workers} spare), "
            f"replication {plan.replication}, "
            f"{plan.utilization:.0%} utilization healthy"
        )
    else:
        lines.append("fleet plan: INFEASIBLE (see notes above)")
    return "\n".join(lines)


def validate_plan(
    model: SceneCostModel,
    target: PlanTarget,
    plan: CapacityPlan,
    rate_scale: float = 1.0,
    min_frames: int = 60,
    seed: int = 0,
    batch_policy=None,
) -> dict:
    """Drive the real service at ``rate_scale`` x the planned rate.

    Runs the open-loop Poisson load generator against a fresh single
    -scene service at ``rate_scale * plan.max_admission_hz`` (one board)
    with the SLO tracker configured to the target's budget, and reports
    *goodput attainment*: frames completed within the budget over frames
    offered — the denominator includes shed and late work, so overload
    degrades it even when admission control protects completed-request
    latencies.  This is the planner's self-consistency oracle.

    ``batch_policy`` should match the one the model was profiled under
    (see :func:`~repro.obs.costmodel.profile_demo_scene`) — the model's
    ``overhead_s`` prices that policy's coalescing wait.
    """
    import numpy as np

    from ..serve import (
        PRIORITY_STANDARD,
        RenderService,
        ServiceConfig,
        SLOTarget,
        build_demo_registry,
        demo_camera,
        run_open_loop,
    )

    if not plan.feasible:
        raise ValueError("cannot validate an infeasible plan")
    rate = plan.max_admission_hz * rate_scale
    probe = int(model.meta.get("probe", round(math.sqrt(target.rays_per_frame))))
    registry = build_demo_registry(
        scenes=[model.scene],
        max_samples_per_ray=int(model.meta.get("max_samples_per_ray", 32)),
        seed=int(model.meta.get("seed", 0)),
    )
    config_kwargs = {
        "slo_targets": {
            PRIORITY_STANDARD: SLOTarget(
                "standard",
                latency_s=target.slo_s,
                attainment=target.attainment,
            )
        }
    }
    if batch_policy is not None:
        config_kwargs["batch"] = batch_policy
    service = RenderService(registry, config=ServiceConfig(**config_kwargs))
    report = run_open_loop(
        service,
        [model.scene],
        rate_hz=rate,
        duration_s=min_frames / rate,
        camera=demo_camera(probe, probe),
        rng=np.random.default_rng(seed),
        priority_mix=((PRIORITY_STANDARD, 1.0),),
        hw_scale=float(model.meta.get("hw_scale", 1.0)),
    )
    payload = service.slo.to_payload()
    standard = next(
        (c for c in payload["classes"] if c["priority"] == PRIORITY_STANDARD),
        None,
    )
    completed = standard["completed"] if standard else 0
    attained_completed = (standard or {}).get("attained") or 0.0
    within_slo = attained_completed * completed
    offered = max(report.n_offered, 1)
    return {
        "rate_scale": rate_scale,
        "rate_hz": rate,
        "offered": report.n_offered,
        "completed": completed,
        "within_slo": within_slo,
        "goodput_attainment": within_slo / offered,
        "completed_attainment": attained_completed,
        "p99_ms": (standard or {}).get("p99_s") and standard["p99_s"] * 1e3,
        "statuses": payload["statuses"],
        "utilization": report.stats["utilization"],
        "slo": payload,
    }
