#!/usr/bin/env python
"""Dtype-discipline lint for the numeric hot paths.

Usage::

    python tools/check_dtypes.py          # lint the default hot-path modules
    python tools/check_dtypes.py FILE...  # lint specific files

Two rules, enforced by AST inspection (nothing is imported):

1. **Explicit-dtype rule** — in hot-path modules, every fresh array
   allocation (``np.empty``/``zeros``/``ones``/``full``) must pass an
   explicit ``dtype=``.  NumPy's silent float64 default is exactly how
   the serving pipeline grew a float64 frame buffer: the allocation
   *looks* innocent and every downstream store upcasts.  ``*_like``
   variants are exempt (they inherit their prototype's dtype, which is
   the disciplined behavior).

2. **No-float64 zone** — modules listed in ``NO_FLOAT64`` (the serving
   frame path) must not mention ``np.float64`` at all; frames are
   float32 end to end.

The hot-module list is deliberately short: discipline is enforced where
profiling says dtype mistakes cost real memory bandwidth, not
repo-wide (parameters and accumulators elsewhere are float64 *on
purpose* — finite-difference gradient checks need the headroom).

Exit status: 0 clean, 1 with one ``path:line: message`` per offender —
used as a CI gate and enforced in-tree by ``tests/test_dtype_check.py``.
"""

from __future__ import annotations

import ast
import os
import sys

#: Allocation calls whose dtype defaults to float64 when omitted.
ALLOCATORS = ("empty", "zeros", "ones", "full")

#: Names the lint treats as the NumPy module.
NUMPY_ALIASES = ("np", "numpy")

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Hot-path modules where rule 1 (explicit dtype) applies.
HOT_MODULES = (
    "src/repro/nerf/hash_encoding.py",
    "src/repro/nerf/sampling.py",
    "src/repro/nerf/renderer.py",
    "src/repro/nerf/volume_rendering.py",
    "src/repro/nerf/early_termination.py",
    "src/repro/nerf/occupancy.py",
    "src/repro/nerf/precision.py",
    "src/repro/sim/trace.py",
    "src/repro/serve/batching.py",
)

#: Modules where rule 2 (no np.float64 at all) additionally applies.
NO_FLOAT64 = ("src/repro/serve/batching.py",)


def _is_numpy_attr(node: ast.AST, attr: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id in NUMPY_ALIASES
    )


def check_file(path: str, no_float64: bool = False) -> list:
    """Lint one file; returns ``(line, message)`` offender tuples."""
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    offenders = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            for allocator in ALLOCATORS:
                if _is_numpy_attr(node.func, allocator):
                    if not any(kw.arg == "dtype" for kw in node.keywords):
                        offenders.append(
                            (
                                node.lineno,
                                f"np.{allocator}(...) without explicit dtype "
                                "(silent float64)",
                            )
                        )
        if no_float64 and _is_numpy_attr(node, "float64"):
            offenders.append(
                (node.lineno, "np.float64 in a float32-only module")
            )
    return sorted(offenders)


def check_files(paths: list) -> list:
    """Lint many files; returns ``(path, line, message)`` tuples."""
    no64 = {os.path.normpath(os.path.join(_REPO, p)) for p in NO_FLOAT64}
    results = []
    for path in paths:
        normalized = os.path.normpath(os.path.abspath(path))
        for line, message in check_file(path, no_float64=normalized in no64):
            results.append((path, line, message))
    return results


def main(argv: list = None) -> int:
    """CLI entry point; prints offenders and returns the exit code."""
    argv = argv if argv is not None else sys.argv[1:]
    paths = argv or [os.path.join(_REPO, p) for p in HOT_MODULES]
    offenders = check_files(paths)
    for path, line, message in offenders:
        print(f"{os.path.relpath(path, _REPO)}:{line}: {message}")
    if offenders:
        print(f"dtype check: {len(offenders)} offender(s)")
        return 1
    print("dtype check: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
