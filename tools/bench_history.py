#!/usr/bin/env python
"""Append-only bench history log and trend tables.

Usage::

    python tools/bench_history.py append [--payload BENCH_nerf.json]
                                         [--history BENCH_history.jsonl]
                                         [--rev REV] [--timestamp TS]
    python tools/bench_history.py trends [--history BENCH_history.jsonl]
                                         [--mode full|smoke]

``append`` records one entry (per-mode speedups + provenance) from a
bench payload into the JSONL history log — the log is append-only by
construction, so committed history is never rewritten.  ``trends``
renders the per-bench speedup trend table (first/latest/best + ASCII
sparkline) that ``runner top`` also embeds.

Thin CLI over :mod:`repro.obs.bench_trends`; see that module for the
entry schema.
"""

from __future__ import annotations

import argparse
import datetime
import os
import subprocess
import sys

# Runnable straight from a checkout: the in-tree `src/` layout sits next
# to this tools/ directory.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _import_bench_trends():
    """Import :mod:`repro.obs.bench_trends`, adding ``src/`` if needed."""
    try:
        from repro.obs import bench_trends
    except ModuleNotFoundError:
        if os.path.isdir(_SRC) and _SRC not in sys.path:
            sys.path.insert(0, _SRC)
            from repro.obs import bench_trends
        else:
            raise
    return bench_trends


def _git_rev() -> str:
    """Current short revision, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def main(argv=None) -> int:
    """CLI entry point; returns an exit code."""
    bench_trends = _import_bench_trends()
    parser = argparse.ArgumentParser(
        prog="bench_history",
        description="Append-only bench history log and trend tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    append_p = sub.add_parser("append", help="log one bench payload")
    append_p.add_argument(
        "--payload", default="BENCH_nerf.json", metavar="FILE",
        help="bench payload to record (default: BENCH_nerf.json)",
    )
    append_p.add_argument(
        "--history", default=bench_trends.DEFAULT_HISTORY, metavar="FILE",
        help=f"history log (default: {bench_trends.DEFAULT_HISTORY})",
    )
    append_p.add_argument(
        "--rev", default=None, help="revision label (default: git short rev)"
    )
    append_p.add_argument(
        "--timestamp", default=None,
        help="ISO timestamp (default: current UTC time)",
    )
    trends_p = sub.add_parser("trends", help="print the trend table")
    trends_p.add_argument(
        "--history", default=bench_trends.DEFAULT_HISTORY, metavar="FILE",
        help=f"history log (default: {bench_trends.DEFAULT_HISTORY})",
    )
    trends_p.add_argument(
        "--mode", default="full", choices=("full", "smoke"),
        help="bench mode whose speedups to trend (default: full)",
    )
    args = parser.parse_args(argv)

    if args.command == "append":
        import json

        with open(args.payload) as fh:
            payload = json.load(fh)
        entry = bench_trends.entry_from_payload(
            payload,
            rev=args.rev or _git_rev(),
            timestamp=args.timestamp
            or datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="seconds"
            ),
        )
        appended = bench_trends.append_entry(args.history, entry)
        n = len(bench_trends.load_history(args.history))
        if appended:
            print(f"recorded {args.payload} into {args.history} ({n} entries)")
        else:
            print(
                f"skipped duplicate of rev {entry['rev']} "
                f"({args.history} already has its benches; {n} entries)"
            )
        return 0

    rows = bench_trends.trend_rows(
        bench_trends.load_history(args.history), mode=args.mode
    )
    print(bench_trends.format_trend_table(rows, mode=args.mode))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream consumer (| head, | grep -q) closed the pipe early:
        # that is a normal way to read a table, not an error.  Detach
        # stdout so the interpreter's shutdown flush cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
