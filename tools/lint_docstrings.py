#!/usr/bin/env python
"""Docstring-coverage lint: fail when public API lacks docstrings.

Usage::

    python tools/lint_docstrings.py [package ...]   # default: repro.parallel repro.experiments repro.serve repro.perf repro.obs

Walks every ``.py`` file of the named packages (via the AST — nothing is
imported, so the lint is safe on broken code) and reports each *public*
module-level function, class, or method without a docstring.  Public
means the name (and, for methods, the enclosing class) does not start
with ``_``; ``__init__`` methods are exempt (the class docstring covers
construction).

Exit status: 0 when fully covered, 1 with one ``path:line: name`` report
per offender otherwise — suitable as a CI gate (see
``.github/workflows/ci.yml``) and enforced in-tree by
``tests/test_docstring_coverage.py``.
"""

from __future__ import annotations

import ast
import importlib
import os
import sys

DEFAULT_PACKAGES = (
    "repro.parallel",
    "repro.experiments",
    "repro.serve",
    "repro.perf",
    "repro.obs",
    "repro.pipeline",
    "repro.fleet",
    "repro.online",
    "repro.nerf.precision",
)

# Runnable straight from a checkout: the in-tree `src/` layout sits next
# to this tools/ directory.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def iter_package_files(package: str):
    """Yield the absolute path of every ``.py`` file in ``package``."""
    try:
        module = importlib.import_module(package)
    except ModuleNotFoundError:
        if os.path.isdir(_SRC) and _SRC not in sys.path:
            sys.path.insert(0, _SRC)
            module = importlib.import_module(package)
        else:
            raise
    roots = getattr(module, "__path__", None)
    if roots is None:
        yield module.__file__
        return
    for root in roots:
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def missing_docstrings(source: str, filename: str = "<string>") -> list:
    """``(line, qualified_name)`` for each undocumented public def/class."""
    tree = ast.parse(source, filename=filename)
    offenders = []

    def check(node, prefix=""):
        public = not node.name.startswith("_")
        if public and ast.get_docstring(node) is None:
            offenders.append((node.lineno, prefix + node.name))
        if isinstance(node, ast.ClassDef) and public:
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    check(sub, prefix=f"{node.name}.")

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            check(node)
    return offenders


def lint_packages(packages) -> list:
    """All offenders across ``packages`` as ``(path, line, name)`` tuples."""
    offenders = []
    for package in packages:
        for path in iter_package_files(package):
            with open(path, "r") as fh:
                source = fh.read()
            for line, name in missing_docstrings(source, filename=path):
                offenders.append((path, line, name))
    return offenders


def main(argv=None) -> int:
    """CLI entry point; prints offenders and returns the exit status."""
    packages = (argv if argv is not None else sys.argv[1:]) or list(DEFAULT_PACKAGES)
    offenders = lint_packages(packages)
    for path, line, name in offenders:
        print(f"{path}:{line}: public `{name}` has no docstring")
    if offenders:
        print(f"docstring lint: {len(offenders)} offender(s) in {packages}")
        return 1
    print(f"docstring lint: OK ({', '.join(packages)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
