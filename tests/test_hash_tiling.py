"""Two-level hash tiling (T4): the conflict-freedom proof in test form."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nerf.hash_encoding import CORNER_OFFSETS, hash_vertices
from repro.sim.hash_tiling import (
    BaselineBanking,
    TwoLevelTiling,
    access_pattern_matrix,
    compare_tilings,
    replay_feature_fetches,
)


def _fetch_groups(rng, n=256, table_size=1 << 12):
    base = rng.integers(0, 500, size=(n, 3))
    corners = base[:, None, :] + CORNER_OFFSETS[None, :, :]
    indices = hash_vertices(corners, table_size)
    return corners, indices


@given(x=st.integers(0, 5000), y=st.integers(0, 5000), z=st.integers(0, 5000))
@settings(max_examples=100, deadline=None)
def test_two_level_tiling_is_conflict_free_for_any_sample(x, y, z):
    """The core hardware invariant: for ANY sampled point, the eight
    vertex fetches map to eight distinct banks."""
    corners = np.array([x, y, z]) + CORNER_OFFSETS
    indices = hash_vertices(corners, 1 << 14)
    banks = TwoLevelTiling().bank_ids(corners[None], indices[None])[0]
    assert len(set(banks.tolist())) == 8


def test_tiled_replay_always_one_cycle(rng):
    corners, indices = _fetch_groups(rng)
    stats = replay_feature_fetches(corners, indices, TwoLevelTiling())
    assert stats.cycles == corners.shape[0]
    assert stats.conflicts == 0
    assert stats.cycle_variance == 0.0


def test_baseline_replay_has_conflicts(rng):
    corners, indices = _fetch_groups(rng)
    stats = replay_feature_fetches(corners, indices, BaselineBanking())
    assert stats.conflicts > 0
    assert stats.cycle_variance > 0.0
    assert stats.mean_cycles_per_group > 1.0


def test_comparison_latency_saving_positive(rng):
    corners, indices = _fetch_groups(rng)
    cmp = compare_tilings(corners, indices)
    assert 0.0 < cmp.latency_saving < 1.0
    assert cmp.tiled_variance == 0.0
    assert cmp.baseline_variance > 0.0


def test_access_pattern_diagonal_when_tiled(rng):
    """Fig. 12(e): with aligned sample bases, each vertex slot owns
    exactly one bank (a permutation matrix); in general every access
    group still covers all eight banks exactly once."""
    base = 2 * rng.integers(0, 250, size=(256, 3))  # even-parity bases
    corners = base[:, None, :] + CORNER_OFFSETS[None, :, :]
    indices = hash_vertices(corners, 1 << 12)
    matrix = access_pattern_matrix(corners, indices, TwoLevelTiling())
    banks_per_slot = (matrix > 0).sum(axis=1)
    assert np.all(banks_per_slot == 1)
    # And it is a permutation: each bank serves exactly one slot.
    slots_per_bank = (matrix > 0).sum(axis=0)
    assert np.all(slots_per_bank == 1)


def test_access_pattern_smeared_for_baseline(rng):
    corners, indices = _fetch_groups(rng)
    matrix = access_pattern_matrix(corners, indices, BaselineBanking())
    banks_per_slot = (matrix > 0).sum(axis=1)
    assert banks_per_slot.max() > 4


def test_bank_ids_stable_per_vertex(rng):
    """A physical vertex always lands in the same bank (the mapping is a
    storage layout, not a per-access choice)."""
    corners, indices = _fetch_groups(rng, n=64)
    tiling = TwoLevelTiling()
    banks_a = tiling.bank_ids(corners, indices)
    banks_b = tiling.bank_ids(corners, indices)
    assert np.array_equal(banks_a, banks_b)


def test_bank_ids_shape_validation(rng):
    corners, indices = _fetch_groups(rng, n=4)
    with pytest.raises(ValueError):
        TwoLevelTiling().bank_ids(corners, indices[:2])


def test_baseline_bank_count_configurable(rng):
    corners, indices = _fetch_groups(rng, n=32)
    banking = BaselineBanking(n_banks=4)
    banks = banking.bank_ids(corners, indices)
    assert banks.max() < 4
